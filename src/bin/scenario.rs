//! The `scenario` CLI: lists and runs named scenario suites.
//!
//! ```text
//! cargo run --release --bin scenario -- list
//! cargo run --release --bin scenario -- run --suite paper
//! cargo run --release --bin scenario -- bench --out BENCH_scenarios.json
//! ```
//!
//! All logic lives in [`ga_scenario::cli`]; this shim only exists so the
//! binary is runnable from the workspace root package.

fn main() {
    std::process::exit(ga_scenario::cli::main(std::env::args().skip(1).collect()));
}

//! # game-authority-suite — facade over the full reproduction
//!
//! One `use` away from everything in the workspace:
//!
//! * [`simnet`] — deterministic synchronous simulator with Byzantine
//!   adversaries and transient-fault injection;
//! * [`crypto`] — SHA-256, commitments, committed PRGs, signature chains,
//!   hash-chained audit logs (all from scratch);
//! * [`agreement`] — OM(f)/EIG, phase-king and authenticated Byzantine
//!   agreement, interactive consistency;
//! * [`clocksync`] — self-stabilizing Byzantine clock synchronization and
//!   the SSBA composition (the paper's Theorem 1);
//! * [`game_theory`] — strategic games, equilibria, repeated games, and
//!   the anarchy cost family (PoA/PoS/PoM/multi-round);
//! * [`games`] — matching pennies with Fig. 1's hidden manipulation,
//!   repeated resource allocation (§6), virus inoculation, and more;
//! * [`authority`] — the game authority middleware itself: legislative,
//!   judicial and executive services, reference engine and the fully
//!   distributed clock-driven protocol;
//! * [`scenario`] — declarative scenario specs, the deterministic parallel
//!   sweep engine, and the named suites behind the `scenario` CLI binary.
//!
//! See the `examples/` directory for runnable walkthroughs and
//! `ga-bench`'s `experiments` binary for the paper's reproduced artifacts.
//!
//! ```
//! use game_authority_suite::games::matching_pennies;
//! use game_authority_suite::game_theory::nash::pure_nash_equilibria;
//!
//! // Matching pennies famously has no pure equilibrium…
//! assert!(pure_nash_equilibria(&matching_pennies()).is_empty());
//! ```

pub use ga_agreement as agreement;
pub use ga_clocksync as clocksync;
pub use ga_crypto as crypto;
pub use ga_game_theory as game_theory;
pub use ga_games as games;
pub use ga_scenario as scenario;
pub use ga_simnet as simnet;
pub use game_authority as authority;

//! Quickstart: referee a prisoner's dilemma with the game authority.
//!
//! Two honest-but-selfish agents play the repeated prisoner's dilemma
//! under the authority's commit–reveal–audit loop; a third run adds an
//! equivocating cheat and shows it being caught and punished.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use game_authority_suite::authority::agent::Behavior;
use game_authority_suite::authority::authority::{Authority, AuthorityConfig};
use game_authority_suite::games::prisoners_dilemma;

fn main() {
    let game = prisoners_dilemma();

    println!("=== honest repeated prisoner's dilemma under the authority ===");
    let mut authority = Authority::new(
        &game,
        vec![Behavior::honest_pure(0), Behavior::honest_pure(0)],
        AuthorityConfig::default(),
    );
    for report in authority.play(5) {
        let outcome = report
            .outcome
            .as_ref()
            .map(|p| format!("{:?}", p.actions()))
            .unwrap_or_else(|| "void".into());
        println!(
            "play {}: outcome {:>8}  costs {:?}  fouls {:?}",
            report.round, outcome, report.costs, report.punished
        );
    }
    println!("(best responders lock into mutual defection — the PNE — after play 0)\n");

    println!("=== same game, but agent 1 equivocates on its commitment ===");
    let mut authority = Authority::new(
        &game,
        vec![Behavior::honest_pure(0), Behavior::equivocator(0, 1)],
        AuthorityConfig::default(),
    );
    for report in authority.play(3) {
        println!(
            "play {}: verdicts {:?}  newly punished {:?}",
            report.round, report.verdicts, report.punished
        );
    }
    println!(
        "agent 1 active afterwards? {}",
        authority.executive().is_active(1)
    );
    println!("the judicial service catches the bad opening in play 0; the executive disconnects");
}

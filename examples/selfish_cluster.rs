//! A distributed selfish-computer system, end to end.
//!
//! Four processors run the *fully distributed* game authority over the
//! synchronous simulator: a self-stabilizing clock schedules each play as
//! a sequence of Byzantine agreement activations (agree on the previous
//! outcome, on the commitment set, and on the foul set) — §3.3 of the
//! paper executed literally. One processor plays deliberate non-best
//! responses and gets disconnected by unanimous agreement; then a
//! transient fault scrambles everything and the middleware recovers
//! (Theorem 1's self-stabilization).
//!
//! ```text
//! cargo run --example selfish_cluster
//! ```

use std::sync::Arc;

use game_authority_suite::agreement::consensus::OmConsensus;
use game_authority_suite::agreement::traits::BaInstance;
use game_authority_suite::authority::distributed::{
    build_authority_sim, AgentMode, AuthorityProcess,
};
use game_authority_suite::game_theory::game::ClosureGame;
use game_authority_suite::simnet::fault::TransientFault;
use game_authority_suite::simnet::ids::ProcessId;

fn main() {
    // A 4-agent, 2-resource congestion game: cost = peers on my resource.
    let game = Arc::new(ClosureGame::new(
        "cluster",
        4,
        vec![2, 2, 2, 2],
        |agent, p| {
            let mine = p.action(agent);
            p.actions().iter().filter(|&&a| a == mine).count() as f64
        },
    ));

    let modes = vec![
        AgentMode::Honest,
        AgentMode::Honest,
        AgentMode::Honest,
        AgentMode::WorstResponse, // processor 3 plays foul
    ];
    let mut sim = build_authority_sim(game, modes, 1, 42);

    // One play per clock period: 3 BA activations + commit/reveal/execute.
    let ba_rounds = OmConsensus::new(0, 4, 1).rounds();
    let modulus = AuthorityProcess::schedule_len(ba_rounds);

    println!("running 4 plays ({} pulses each)…", modulus);
    sim.run(modulus * 4 + 2);
    let p0 = sim.process_as::<AuthorityProcess>(ProcessId(0)).unwrap();
    for (i, rec) in p0.records().iter().enumerate() {
        println!(
            "play {i}: outcome {:?}  agreed fouls {:#06b}",
            rec.outcome.actions(),
            rec.fouls
        );
    }
    println!("processor 3 disconnected? {}\n", p0.punished()[3]);

    println!("injecting a total transient fault (arbitrary configuration)…");
    sim.inject(&TransientFault::total(4, 0xDEAD));
    sim.run(modulus * 40);
    let before = sim
        .process_as::<AuthorityProcess>(ProcessId(0))
        .unwrap()
        .records()
        .len();
    sim.run(modulus * 3);
    let p0 = sim.process_as::<AuthorityProcess>(ProcessId(0)).unwrap();
    let after = p0.records().len();
    println!(
        "plays completed after recovery: {} → {} (self-stabilized: {})",
        before,
        after,
        after > before
    );
    let last = p0.records().last().unwrap();
    println!(
        "latest agreed outcome: {:?} (fouls {:#06b})",
        last.outcome.actions(),
        last.fouls
    );

    // The same §3.3 play families, spec-driven: the scenario engine's
    // `authority` suite sweeps honest / selfish-cluster / mute / churn /
    // noise variants (seed-derived adversary placement included) with
    // deterministic summaries — `scenario run --suite authority`.
    let suite = game_authority_suite::scenario::suites::find("authority").expect("registered");
    let summary = suite.run(Some(1), 2);
    println!(
        "\nscenario suite `authority`: {}/{} runs passed",
        summary.passed(),
        summary.runs()
    );
    for scenario in &summary.scenarios {
        println!(
            "  {:<26} plays {:>2}  punished {}",
            scenario.name,
            scenario.metric("plays").map_or(0.0, |m| m.mean),
            scenario.metric("punished").map_or(0.0, |m| m.mean),
        );
    }
}

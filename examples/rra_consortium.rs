//! The paper's §6 motivating scenario: "a consortium of Internet companies
//! shares licenses for advertisement clips on video Web sites".
//!
//! Every play, each company places one unit demand on a host; everyone
//! learns the loads afterwards. Under authority supervision the repeated
//! Nash play keeps the multi-round anarchy cost R(k) inside the proven
//! 1 + 2b/k bound and drives it to 1 — the consortium loses (asymptotically)
//! nothing to decentralization.
//!
//! ```text
//! cargo run --example rra_consortium
//! ```

use game_authority_suite::games::resource_allocation::RraProcess;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let (companies, hosts) = (8usize, 4usize);
    println!("consortium: {companies} companies sharing {hosts} hosts\n");
    println!(
        "{:>6}  {:>8}  {:>8}  {:>6}  {:>6}",
        "k", "R(k)", "1+2b/k", "Δ(k)", "2n−1"
    );

    let mut rra = RraProcess::new(companies, hosts);
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let checkpoints = [1u64, 5, 10, 50, 100, 500, 1000, 5000];
    for stats in rra.play(5000, &mut rng) {
        if checkpoints.contains(&stats.k) {
            println!(
                "{:>6}  {:>8.4}  {:>8.4}  {:>6}  {:>6}",
                stats.k,
                stats.ratio,
                stats.bound,
                stats.gap,
                2 * companies - 1
            );
        }
    }

    let final_stats = rra.stats();
    println!(
        "\nfinal loads: {:?} (max−min = {})",
        rra.loads(),
        final_stats.gap
    );
    println!(
        "Theorem 5 verdict: R(5000) = {:.4} ≤ {:.4} — supervised RRA is asymptotically optimal",
        final_stats.ratio, final_stats.bound
    );
}

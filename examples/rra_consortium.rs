//! The paper's §6 motivating scenario: "a consortium of Internet companies
//! shares licenses for advertisement clips on video Web sites" — as a
//! seeded scenario sweep.
//!
//! Every play, each company places one unit demand on a host; everyone
//! learns the loads afterwards. Under authority supervision the repeated
//! Nash play keeps the multi-round anarchy cost R(k) inside the proven
//! 1 + 2b/k bound and drives it to 1 — the consortium loses
//! (asymptotically) nothing to decentralization. The claim is checked at
//! *every* round of *every* seeded run by the ported scenario's verdict;
//! the sweep engine batches the runs and aggregates deterministically.
//!
//! ```text
//! cargo run --example rra_consortium
//! ```

use game_authority_suite::scenario::ports::rra_consortium_port;
use game_authority_suite::scenario::sweep::sweep;

fn main() {
    let (companies, hosts) = (8usize, 4usize);
    println!("consortium: {companies} companies sharing {hosts} hosts\n");

    let scenarios = vec![rra_consortium_port()];
    let summary = sweep("rra_consortium", &scenarios, 0..12, 4);

    println!(
        "{:>6}  {:>10}  {:>10}  {:>6}  {:>6}",
        "seed", "R(5000)", "1+2b/k", "Δ", "2n−1"
    );
    for r in &summary.records {
        println!(
            "{:>6}  {:>10.4}  {:>10.4}  {:>6}  {:>6}",
            r.seed,
            r.get_metric("ratio_final").unwrap_or(f64::NAN),
            r.get_metric("bound_final").unwrap_or(f64::NAN),
            r.get_metric("gap_final").unwrap_or(f64::NAN),
            2 * companies - 1
        );
    }

    let ratio = summary.scenarios[0]
        .metric("ratio_final")
        .expect("metric present");
    println!(
        "\nTheorem 5 verdict over {} seeds: mean R(5000) = {:.4}, worst = {:.4} — \
         supervised RRA is asymptotically optimal",
        summary.runs(),
        ratio.mean,
        ratio.max
    );
    println!("verdicts: {}/{} passed", summary.passed(), summary.runs());
    assert!(summary.all_passed(), "an anarchy-cost bound was violated");
}

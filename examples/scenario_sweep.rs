//! Authoring a scenario family from scratch: gossip on a star whose hub
//! fails mid-run, swept over loss rates and seeds.
//!
//! This is the scenario engine's authoring surface in one place: a
//! declarative spec (topology family, delivery model, churn schedule,
//! protocol, stop + verdict predicates), a parameter grid, and the
//! deterministic parallel sweep — the same JSON comes out at any worker
//! count.
//!
//! ```text
//! cargo run --example scenario_sweep
//! ```

use game_authority_suite::scenario::prelude::*;

fn main() {
    // The spec family: star(12) max-gossip; the hub dies at round 3 and
    // recovers at round 10; delivery losses come from the grid axis.
    let grid = ParamGrid::new().axis("p", [0.0, 0.1, 0.3]);
    let scenarios = expand_grid("star_outage", &grid, |point| {
        let p = point[0].1;
        ScenarioSpec::new("star_outage", TopologyFamily::Star(12), |id, _n| {
            Box::new(MaxGossip::new(id.index() as u64)) as Box<dyn Process>
        })
        .delivery(if p > 0.0 {
            Delivery::Lossy { p }
        } else {
            Delivery::Reliable
        })
        .schedule(
            Schedule::new()
                .at(3, ScheduledAction::Disconnect(ProcessId(0)))
                .at(
                    10,
                    ScheduledAction::Reconnect(ProcessId(0), (1..12).map(ProcessId).collect()),
                ),
        )
        .max_rounds(60)
        .stop_when(gossip_agreed_all)
        .verdict(|_, record| {
            Verdict::check(
                record.stopped_at.is_some(),
                "gossip should reach the fixpoint despite the outage",
            )
        })
    });

    let summary = sweep("star_outage_sweep", &scenarios, 0..10, 4);

    println!("hub-outage gossip sweep ({} runs):\n", summary.runs());
    println!(
        "{:<22}  {:>5}  {:>12}  {:>10}",
        "scenario", "runs", "mean rounds", "drop rate"
    );
    for s in &summary.scenarios {
        println!(
            "{:<22}  {:>5}  {:>12.1}  {:>10.3}",
            s.name, s.runs, s.mean_rounds, s.mean_drop_rate
        );
    }
    println!(
        "\nall {} verdicts passed: {} (convergence slows with loss, but survives the churn)",
        summary.runs(),
        summary.all_passed()
    );
    assert!(summary.all_passed());
}

fn gossip_agreed_all(sim: &Simulation) -> bool {
    game_authority_suite::scenario::workload::gossip_agreed(sim, 0..sim.len())
}

//! The legislative service: the society elects the rules of the game.
//!
//! Seven agents rank three candidate games — prisoner's dilemma, matching
//! pennies, and a resource allocation game — and the legislative service
//! tallies the same agreed ballot set under all three voting rules,
//! showing how the rule itself changes the winner (why the paper defers to
//! manipulation-resistant voting \[14\]).
//!
//! ```text
//! cargo run --example election_night
//! ```

use game_authority_suite::authority::legislative::{tally, Ballot, VotingRule};

fn main() {
    let candidates = [
        "prisoners-dilemma",
        "matching-pennies",
        "resource-allocation",
    ];
    println!("candidates: {candidates:?}\n");

    // A profile with a Condorcet-style tension: RA has broad second-choice
    // support, PD and MP have zealous first-choice blocs.
    let ballots = vec![
        Ballot::new(vec![0, 2, 1]),
        Ballot::new(vec![0, 2, 1]),
        Ballot::new(vec![0, 2, 1]),
        Ballot::new(vec![1, 2, 0]),
        Ballot::new(vec![1, 2, 0]),
        Ballot::new(vec![2, 1, 0]),
        Ballot::new(vec![2, 0, 1]),
    ];
    for (i, b) in ballots.iter().enumerate() {
        let names: Vec<&str> = b.ranking().iter().map(|&c| candidates[c]).collect();
        println!("agent {i} ranks: {names:?}");
    }
    println!();

    for rule in [
        VotingRule::Plurality,
        VotingRule::Borda,
        VotingRule::InstantRunoff,
    ] {
        let winner = tally(rule, &ballots, candidates.len()).expect("valid election");
        println!("{rule:?} elects: {}", candidates[winner]);
    }
    println!();
    println!("once elected, the judicial service enforces the winner's rules");
    println!("(in the distributed stack, the ballot set first passes Byzantine agreement,");
    println!(" so every honest agent tallies the exact same ballots)");
}

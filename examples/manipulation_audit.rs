//! Fig. 1 end-to-end: the hidden manipulative strategy and its audit —
//! now expressed as a scenario and swept over seeds.
//!
//! Agent B secretly plays the "Manipulate" strategy from the paper's
//! Fig. 1 while claiming a fair coin. Without the authority, A bleeds an
//! expected 4 per play; with the authority, the §5.3 audit exposes B in
//! the first play. Instead of a single hand-rolled run, this walkthrough
//! fans the ported scenario out over 16 seeds through the deterministic
//! sweep engine and reads the answer off the aggregates.
//!
//! ```text
//! cargo run --example manipulation_audit
//! ```

use game_authority_suite::scenario::ports::manipulation_audit_port;
use game_authority_suite::scenario::sweep::sweep;

fn main() {
    let scenarios = vec![manipulation_audit_port()];
    let summary = sweep("manipulation_audit", &scenarios, 0..16, 4);

    println!(
        "Fig. 1 manipulation across {} seeded runs:\n",
        summary.runs()
    );
    println!(
        "{:>6}  {:>12}  {:>12}  {:>10}",
        "seed", "A unsuperv.", "A supervised", "caught at"
    );
    for r in &summary.records {
        println!(
            "{:>6}  {:>12.1}  {:>12.1}  {:>10}",
            r.seed,
            r.get_metric("a_loss_unsupervised").unwrap_or(f64::NAN),
            r.get_metric("a_loss_supervised").unwrap_or(f64::NAN),
            match r.get_metric("caught_at") {
                Some(c) if c >= 0.0 => format!("play {c}"),
                _ => "never".into(),
            }
        );
    }

    let agg = &summary.scenarios[0];
    let unsup = agg.metric("a_loss_unsupervised").expect("metric present");
    let sup = agg.metric("a_loss_supervised").expect("metric present");
    println!(
        "\nmean A loss over 100 plays: {:.1} unsupervised (≈4/play, the §5.1 prediction)",
        unsup.mean
    );
    println!(
        "                            {:.1} supervised — damage reduced {:.0}x",
        sup.mean,
        unsup.mean / sup.mean.max(1.0)
    );
    println!(
        "verdicts: {}/{} passed (every seed: caught in play 0)",
        summary.passed(),
        summary.runs()
    );
    assert!(summary.all_passed(), "the §5.3 audit claim failed");
}

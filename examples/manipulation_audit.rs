//! Fig. 1 end-to-end: the hidden manipulative strategy and its audit.
//!
//! Agent B secretly plays the "Manipulate" strategy from the paper's
//! Fig. 1 while claiming a fair coin. Without the authority, A bleeds an
//! expected 4 per play; with the authority, the §5.3 audit exposes B in
//! the first play.
//!
//! ```text
//! cargo run --example manipulation_audit
//! ```

use game_authority_suite::authority::agent::Behavior;
use game_authority_suite::authority::authority::{Authority, AuthorityConfig};
use game_authority_suite::games::matching_pennies::{manipulated_matching_pennies, MANIPULATE};

fn behaviors() -> Vec<Behavior> {
    vec![
        Behavior::honest_mixed(vec![0.5, 0.5]),
        Behavior::hidden_manipulator(vec![0.5, 0.5, 0.0], MANIPULATE),
    ]
}

fn main() {
    let game = manipulated_matching_pennies();
    let rounds = 100;

    // Regime 1: nobody watching.
    let mut unsupervised = Authority::new(
        &game,
        behaviors(),
        AuthorityConfig {
            audits_enabled: false,
            ..AuthorityConfig::default()
        },
    );
    let a_loss: f64 = unsupervised.play(rounds).iter().map(|r| r.costs[0]).sum();
    println!("without the authority, over {rounds} plays:");
    println!("  A's total loss: {a_loss:.1} (≈4/play — the §5.1 prediction)\n");

    // Regime 2: the game authority audits every play.
    let mut supervised = Authority::new(&game, behaviors(), AuthorityConfig::default());
    let reports = supervised.play(rounds);
    let a_loss_supervised: f64 = reports.iter().map(|r| r.costs[0]).sum();
    let caught = reports
        .iter()
        .find(|r| r.punished.contains(&1))
        .map(|r| r.round);
    println!("with the authority:");
    println!(
        "  B caught in play {:?} with verdict {:?}",
        caught.expect("manipulation detected"),
        reports[0].verdicts[1]
    );
    println!("  A's total loss: {a_loss_supervised:.1}");
    println!(
        "  malice damage reduced {:.0}x",
        a_loss / a_loss_supervised.max(1.0)
    );
}

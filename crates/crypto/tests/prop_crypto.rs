//! Property tests for the cryptographic substrate.

use ga_crypto::audit_log::AuditLog;
use ga_crypto::hmac::hmac_sha256;
use ga_crypto::mac::{KeyRing, SignatureChain};
use ga_crypto::sha256::Sha256;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Incremental hashing over an arbitrary chunking equals one-shot.
    #[test]
    fn sha256_chunking_invariance(data in proptest::collection::vec(any::<u8>(), 0..512),
                                  cuts in proptest::collection::vec(any::<u16>(), 0..8)) {
        let one_shot = Sha256::digest(&data);
        let mut h = Sha256::new();
        let mut offsets: Vec<usize> = cuts.iter().map(|&c| c as usize % (data.len() + 1)).collect();
        offsets.push(0);
        offsets.push(data.len());
        offsets.sort_unstable();
        for w in offsets.windows(2) {
            h.update(&data[w[0]..w[1]]);
        }
        prop_assert_eq!(h.finalize(), one_shot);
    }

    /// Distinct messages (virtually) never collide.
    #[test]
    fn sha256_distinct_inputs_distinct_digests(a in proptest::collection::vec(any::<u8>(), 0..64),
                                               b in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assume!(a != b);
        prop_assert_ne!(Sha256::digest(&a), Sha256::digest(&b));
    }

    /// HMAC separates by key and by message.
    #[test]
    fn hmac_separation(k1 in proptest::collection::vec(any::<u8>(), 1..48),
                       k2 in proptest::collection::vec(any::<u8>(), 1..48),
                       m in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assume!(k1 != k2);
        prop_assert_ne!(hmac_sha256(&k1, &m), hmac_sha256(&k2, &m));
    }

    /// Any mid-log tamper is detected by chain verification.
    #[test]
    fn audit_log_tamper_detection(payloads in proptest::collection::vec(
                                      proptest::collection::vec(any::<u8>(), 0..16), 2..12),
                                  victim in any::<usize>(),
                                  replacement in proptest::collection::vec(any::<u8>(), 0..16)) {
        let mut log = AuditLog::new();
        for p in &payloads {
            log.append(p);
        }
        prop_assert!(log.verify().is_ok());
        // Tamper strictly before the last record so the chain must break.
        let idx = victim % (payloads.len() - 1);
        prop_assume!(payloads[idx] != replacement);
        log.tamper(idx, &replacement);
        prop_assert!(log.verify().is_err());
    }

    /// Signature chains: any prefix-respecting extension verifies; value
    /// tampering never does.
    #[test]
    fn signature_chain_soundness(value in proptest::collection::vec(any::<u8>(), 0..32),
                                 order in proptest::sample::subsequence(vec![0usize,1,2,3,4], 1..5)) {
        let ring = KeyRing::generate(5, 7);
        let mut iter = order.iter();
        let first = *iter.next().expect("nonempty");
        let mut chain = SignatureChain::originate(&ring.authenticator(first), &value);
        for &s in iter {
            chain = chain.extend(&ring.authenticator(s));
        }
        prop_assert!(chain.valid(&ring.authenticator(0)));
        // Tamper the value.
        let mut bad_value = value.clone();
        bad_value.push(0xFF);
        let bad = SignatureChain::from_parts(bad_value, chain.links().to_vec());
        prop_assert!(!bad.valid(&ring.authenticator(0)));
    }
}

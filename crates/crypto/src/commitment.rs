//! Hash-based commitment scheme (Blum-style commit/reveal).
//!
//! The judicial service needs every agent's action to be chosen *privately
//! and simultaneously* (paper §3.2, requirement 2): nobody may see another
//! agent's action before all have committed. The protocol of §3.3 achieves
//! this with a commitment scheme; here we provide the standard hash
//! construction `C = H(domain ‖ value ‖ nonce)` with a 32-byte random nonce.
//!
//! * **Hiding** — the nonce blinds low-entropy values (an action index!), so
//!   observing `C` reveals nothing before the opening is published.
//! * **Binding** — producing `(value', nonce') ≠ (value, nonce)` with the
//!   same digest requires a SHA-256 collision.
//!
//! ```
//! use ga_crypto::commitment::Commitment;
//!
//! # fn main() -> Result<(), ga_crypto::CryptoError> {
//! let (c, opening) = Commitment::commit(b"defect", [42u8; 32]);
//! c.verify(b"defect", &opening)?;          // honest reveal
//! assert!(c.verify(b"cooperate", &opening).is_err()); // equivocation caught
//! # Ok(())
//! # }
//! ```

use crate::sha256::Sha256;
use crate::{CryptoError, Digest};

/// Domain-separation prefix: commitments can never collide with other
/// protocol hashes (audit-log links, MAC inputs, ...).
const DOMAIN: &[u8] = b"ga-commitment-v1";

/// The blinding nonce an agent must keep secret until reveal time.
pub type Nonce = [u8; 32];

/// A binding, hiding commitment to a byte string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Commitment {
    digest: Digest,
}

/// The secret material needed to open a [`Commitment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Opening {
    nonce: Nonce,
}

impl Opening {
    /// Constructs an opening from a raw nonce (e.g. received over the wire).
    pub fn from_nonce(nonce: Nonce) -> Self {
        Opening { nonce }
    }

    /// The raw nonce, for serialization into protocol messages.
    pub fn nonce(&self) -> &Nonce {
        &self.nonce
    }
}

impl Commitment {
    /// Commits to `value` using the caller-supplied random `nonce`.
    ///
    /// The caller must draw `nonce` from its private randomness source; the
    /// deterministic signature keeps the whole simulation reproducible.
    /// Returns the public commitment and the secret opening.
    pub fn commit(value: &[u8], nonce: Nonce) -> (Commitment, Opening) {
        let digest = Self::digest_of(value, &nonce);
        (Commitment { digest }, Opening { nonce })
    }

    /// Reconstructs a commitment received from the network.
    pub fn from_digest(digest: Digest) -> Commitment {
        Commitment { digest }
    }

    /// The public digest, for serialization into protocol messages.
    pub fn digest(&self) -> &Digest {
        &self.digest
    }

    /// Verifies that `(value, opening)` opens this commitment.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BadOpening`] when the value/nonce pair does not
    /// reproduce the committed digest — the judicial service treats this as a
    /// foul play.
    pub fn verify(&self, value: &[u8], opening: &Opening) -> Result<(), CryptoError> {
        let expected = Self::digest_of(value, &opening.nonce);
        if crate::hmac::eq_digest(&expected, &self.digest) {
            Ok(())
        } else {
            Err(CryptoError::BadOpening)
        }
    }

    fn digest_of(value: &[u8], nonce: &Nonce) -> Digest {
        Sha256::digest_parts(&[DOMAIN, value, nonce])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nonce(b: u8) -> Nonce {
        [b; 32]
    }

    #[test]
    fn commit_and_verify_round_trip() {
        let (c, o) = Commitment::commit(b"action-3", nonce(1));
        assert!(c.verify(b"action-3", &o).is_ok());
    }

    #[test]
    fn wrong_value_rejected() {
        let (c, o) = Commitment::commit(b"action-3", nonce(1));
        assert_eq!(
            c.verify(b"action-4", &o).unwrap_err(),
            CryptoError::BadOpening
        );
    }

    #[test]
    fn wrong_nonce_rejected() {
        let (c, _) = Commitment::commit(b"action-3", nonce(1));
        assert!(c
            .verify(b"action-3", &Opening::from_nonce(nonce(2)))
            .is_err());
    }

    #[test]
    fn hiding_same_value_different_nonce_differs() {
        let (c1, _) = Commitment::commit(b"heads", nonce(1));
        let (c2, _) = Commitment::commit(b"heads", nonce(2));
        assert_ne!(c1, c2, "nonce must blind the committed value");
    }

    #[test]
    fn empty_value_supported() {
        let (c, o) = Commitment::commit(b"", nonce(9));
        assert!(c.verify(b"", &o).is_ok());
        assert!(c.verify(b"x", &o).is_err());
    }

    #[test]
    fn digest_round_trips_through_wire_form() {
        let (c, o) = Commitment::commit(b"payload", nonce(7));
        let wire = *c.digest();
        let c2 = Commitment::from_digest(wire);
        assert!(c2.verify(b"payload", &o).is_ok());
    }

    #[test]
    fn commitment_is_not_plain_hash_of_value() {
        // Domain separation: the commitment digest must differ from a bare
        // SHA-256 of the value, even with an all-zero nonce.
        let (c, _) = Commitment::commit(b"v", nonce(0));
        assert_ne!(*c.digest(), crate::sha256::Sha256::digest(b"v"));
    }
}

//! Message authentication for the authenticated Byzantine agreement variant.
//!
//! The paper's footnote 2 assumes "authentication utilizes a Byzantine
//! agreement that needs only a majority" — i.e. with authenticated messages
//! the honest-processor threshold drops from n > 3f to n > 2f. Inside the
//! simulation we realize authentication with pairwise-less *keyed MACs*: a
//! [`KeyRing`] (the trusted setup a PKI would provide) hands each processor a
//! [`Authenticator`] that can sign for its own identity and verify every
//! other identity's tags.
//!
//! A Byzantine processor in the simulator never learns another processor's
//! key, so it cannot forge third-party signatures — exactly the model
//! assumption Dolev–Strong-style protocols need.
//!
//! ```
//! use ga_crypto::mac::KeyRing;
//!
//! let ring = KeyRing::generate(4, 99);
//! let alice = ring.authenticator(0);
//! let bob = ring.authenticator(1);
//! let sig = alice.sign(b"value=1");
//! assert!(bob.verify(0, b"value=1", &sig));
//! assert!(!bob.verify(0, b"value=2", &sig));
//! assert!(!bob.verify(2, b"value=1", &sig)); // not Carol's signature
//! ```

use crate::hmac::{eq_digest, hmac_sha256};
use crate::prg::Prg;
use crate::Digest;

/// A signature tag over a message, bound to a signer identity.
pub type Tag = Digest;

/// Trusted key-setup: per-identity secret keys, all derived from one seed.
///
/// In a deployment this is a PKI; in the simulation the `KeyRing` is created
/// by the harness and each processor only ever holds its own
/// [`Authenticator`]. Verification uses the ring's *public* view (tag
/// recomputation), mirroring signature verification.
#[derive(Debug, Clone)]
pub struct KeyRing {
    keys: Vec<[u8; 32]>,
}

impl KeyRing {
    /// Derives `n` independent identity keys from `seed`.
    pub fn generate(n: usize, seed: u64) -> KeyRing {
        let mut prg = Prg::from_seed_material(b"ga-keyring", seed);
        let keys = (0..n).map(|_| prg.next_block()).collect();
        KeyRing { keys }
    }

    /// Number of identities in the ring.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The signing/verifying handle for identity `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn authenticator(&self, id: usize) -> Authenticator {
        assert!(id < self.keys.len(), "identity {id} out of range");
        Authenticator {
            ring: self.clone(),
            id,
        }
    }
}

/// A per-identity handle: signs as `id`, verifies any identity.
///
/// The full ring is embedded so verification works; a Byzantine *model*
/// adversary is denied access to other identities' `sign` calls by the
/// simulator (it only ever gets its own `Authenticator` and the public
/// `verify`), which is what "unforgeable signatures" means inside the model.
#[derive(Debug, Clone)]
pub struct Authenticator {
    ring: KeyRing,
    id: usize,
}

impl Authenticator {
    /// The identity this authenticator signs for.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Signs `message` as this identity.
    pub fn sign(&self, message: &[u8]) -> Tag {
        hmac_sha256(&self.ring.keys[self.id], message)
    }

    /// Verifies that `tag` is `signer`'s signature over `message`.
    ///
    /// Returns `false` (rather than erroring) for out-of-range signers so
    /// protocol code can treat garbage identities as forgeries.
    pub fn verify(&self, signer: usize, message: &[u8], tag: &Tag) -> bool {
        match self.ring.keys.get(signer) {
            Some(key) => eq_digest(&hmac_sha256(key, message), tag),
            None => false,
        }
    }
}

/// A signature chain for Dolev–Strong style relayed messages:
/// `v : p1 : p2 : ... : pk` where each processor signs the value plus all
/// previous signatures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignatureChain {
    value: Vec<u8>,
    /// `(signer, tag)` pairs in signing order.
    links: Vec<(usize, Tag)>,
}

impl SignatureChain {
    /// Reassembles a chain from wire data (value + ordered links).
    ///
    /// The result is *untrusted* until [`valid`](Self::valid) passes.
    pub fn from_parts(value: Vec<u8>, links: Vec<(usize, Tag)>) -> SignatureChain {
        SignatureChain { value, links }
    }

    /// The ordered `(signer, tag)` links, for serialization.
    pub fn links(&self) -> &[(usize, Tag)] {
        &self.links
    }

    /// Starts a chain: the originator signs the bare value.
    pub fn originate(auth: &Authenticator, value: &[u8]) -> SignatureChain {
        let mut chain = SignatureChain {
            value: value.to_vec(),
            links: Vec::new(),
        };
        let tag = auth.sign(&chain.signing_input());
        chain.links.push((auth.id(), tag));
        chain
    }

    /// Appends this processor's signature to the chain.
    pub fn extend(&self, auth: &Authenticator) -> SignatureChain {
        let mut chain = self.clone();
        let tag = auth.sign(&chain.signing_input());
        chain.links.push((auth.id(), tag));
        chain
    }

    /// The value being relayed.
    pub fn value(&self) -> &[u8] {
        &self.value
    }

    /// The ordered list of signer identities.
    pub fn signers(&self) -> impl Iterator<Item = usize> + '_ {
        self.links.iter().map(|(s, _)| *s)
    }

    /// Number of signatures on the chain.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the chain carries no signatures (never true for well-formed
    /// chains produced by [`originate`](Self::originate)).
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Validates the whole chain: every tag verifies and signers are
    /// distinct. `verifier` may be any processor's authenticator.
    pub fn valid(&self, verifier: &Authenticator) -> bool {
        if self.links.is_empty() {
            return false;
        }
        let mut seen = std::collections::HashSet::new();
        let mut probe = SignatureChain {
            value: self.value.clone(),
            links: Vec::new(),
        };
        for &(signer, tag) in &self.links {
            if !seen.insert(signer) {
                return false; // duplicate signer
            }
            if !verifier.verify(signer, &probe.signing_input(), &tag) {
                return false;
            }
            probe.links.push((signer, tag));
        }
        true
    }

    /// Byte string each new signer authenticates: value plus prior links.
    fn signing_input(&self) -> Vec<u8> {
        let mut input = Vec::with_capacity(self.value.len() + self.links.len() * 40 + 16);
        input.extend_from_slice(&(self.value.len() as u64).to_be_bytes());
        input.extend_from_slice(&self.value);
        for (signer, tag) in &self.links {
            input.extend_from_slice(&(*signer as u64).to_be_bytes());
            input.extend_from_slice(tag);
        }
        input
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> KeyRing {
        KeyRing::generate(5, 7)
    }

    #[test]
    fn sign_verify_round_trip() {
        let r = ring();
        let a = r.authenticator(2);
        let tag = a.sign(b"msg");
        assert!(r.authenticator(4).verify(2, b"msg", &tag));
    }

    #[test]
    fn tampered_message_rejected() {
        let r = ring();
        let tag = r.authenticator(0).sign(b"msg");
        assert!(!r.authenticator(1).verify(0, b"msG", &tag));
    }

    #[test]
    fn wrong_signer_rejected() {
        let r = ring();
        let tag = r.authenticator(0).sign(b"msg");
        assert!(!r.authenticator(1).verify(3, b"msg", &tag));
    }

    #[test]
    fn out_of_range_signer_is_forgery() {
        let r = ring();
        let tag = r.authenticator(0).sign(b"msg");
        assert!(!r.authenticator(1).verify(99, b"msg", &tag));
    }

    #[test]
    fn distinct_rings_do_not_cross_verify() {
        let r1 = KeyRing::generate(3, 1);
        let r2 = KeyRing::generate(3, 2);
        let tag = r1.authenticator(0).sign(b"msg");
        assert!(!r2.authenticator(1).verify(0, b"msg", &tag));
    }

    #[test]
    fn chain_originate_and_extend_valid() {
        let r = ring();
        let chain = SignatureChain::originate(&r.authenticator(0), b"v=1");
        let chain = chain.extend(&r.authenticator(1));
        let chain = chain.extend(&r.authenticator(2));
        assert!(chain.valid(&r.authenticator(4)));
        assert_eq!(chain.signers().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn chain_with_duplicate_signer_invalid() {
        let r = ring();
        let chain = SignatureChain::originate(&r.authenticator(0), b"v=1");
        let chain = chain.extend(&r.authenticator(1));
        let chain = chain.extend(&r.authenticator(1));
        assert!(!chain.valid(&r.authenticator(2)));
    }

    #[test]
    fn chain_value_tamper_invalid() {
        let r = ring();
        let chain = SignatureChain::originate(&r.authenticator(0), b"v=1");
        let mut bad = chain.extend(&r.authenticator(1));
        bad.value = b"v=2".to_vec();
        assert!(!bad.valid(&r.authenticator(2)));
    }

    #[test]
    fn empty_chain_invalid() {
        let r = ring();
        let chain = SignatureChain {
            value: b"v".to_vec(),
            links: vec![],
        };
        assert!(!chain.valid(&r.authenticator(0)));
    }

    #[test]
    fn chain_signature_order_matters() {
        let r = ring();
        let c01 = SignatureChain::originate(&r.authenticator(0), b"v").extend(&r.authenticator(1));
        let c10 = SignatureChain::originate(&r.authenticator(1), b"v").extend(&r.authenticator(0));
        assert_ne!(c01, c10);
        assert!(c01.valid(&r.authenticator(2)));
        assert!(c10.valid(&r.authenticator(2)));
    }
}

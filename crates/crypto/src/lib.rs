//! # ga-crypto — cryptographic substrate for the game authority
//!
//! The game authority of Dolev, Schiller, Spirakis and Tsigas (PODC'07 /
//! TCS'10) relies on three cryptographic building blocks:
//!
//! * a **commitment scheme** (Blum, SIGACT News 1983) so that the choices of
//!   all honest agents are *private and simultaneous* — agents commit before
//!   anyone reveals (paper §3.2 requirement 2, §3.3);
//! * a **committed pseudo-random generator** so the judicial service can
//!   validate that a *mixed* strategy was sampled honestly — agents commit to
//!   a seed, and every revealed action must equal the PRG output for that
//!   seed (paper §5.3);
//! * **message authentication** for the authenticated Byzantine agreement
//!   variant that needs only an honest majority (paper footnote 2).
//!
//! Everything here is implemented from scratch on top of a from-scratch
//! [SHA-256](sha256::Sha256) so the workspace needs no external crypto
//! dependency. The goal is *model-level* soundness (binding/hiding inside the
//! simulation, unforgeability against simulated adversaries), not resistance
//! to real-world attackers; a production deployment would swap in audited
//! implementations behind the same interfaces.
//!
//! ## Quickstart
//!
//! ```
//! use ga_crypto::commitment::Commitment;
//!
//! # fn main() -> Result<(), ga_crypto::CryptoError> {
//! // Agent commits to an action without revealing it...
//! let (commit, opening) = Commitment::commit(b"heads", [7u8; 32]);
//! // ...everyone receives `commit`, then the agent reveals:
//! commit.verify(b"heads", &opening)?;
//! assert!(commit.verify(b"tails", &opening).is_err());
//! # Ok(())
//! # }
//! ```

pub mod audit_log;
pub mod coin;
pub mod commitment;
pub mod hmac;
pub mod mac;
pub mod prg;
pub mod sha256;

use std::error::Error;
use std::fmt;

/// Errors produced by the cryptographic substrate.
///
/// Every failure mode the judicial service can act on is a distinct variant,
/// so audit code can punish precisely (wrong opening vs. forged tag vs.
/// seed/action mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// A commitment opening did not match the committed digest.
    BadOpening,
    /// A MAC tag failed verification.
    BadTag,
    /// A revealed PRG seed does not reproduce the claimed outputs.
    SeedMismatch,
    /// An audit-log entry does not extend the chain correctly.
    BrokenChain {
        /// Index of the first entry whose chaining hash is inconsistent.
        index: usize,
    },
    /// A coin-flipping transcript is malformed (missing or out-of-order step).
    BadTranscript(&'static str),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::BadOpening => write!(f, "commitment opening does not match digest"),
            CryptoError::BadTag => write!(f, "message authentication tag is invalid"),
            CryptoError::SeedMismatch => {
                write!(f, "revealed seed does not reproduce committed outputs")
            }
            CryptoError::BrokenChain { index } => {
                write!(f, "audit log chain broken at entry {index}")
            }
            CryptoError::BadTranscript(what) => write!(f, "malformed transcript: {what}"),
        }
    }
}

impl Error for CryptoError {}

/// A 256-bit digest, the common currency of this crate.
pub type Digest = [u8; 32];

/// Encodes bytes as lowercase hex, used by `Debug`/`Display` impls and tests.
///
/// ```
/// assert_eq!(ga_crypto::to_hex(&[0xde, 0xad]), "dead");
/// ```
pub fn to_hex(bytes: &[u8]) -> String {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(TABLE[(b >> 4) as usize] as char);
        out.push(TABLE[(b & 0xf) as usize] as char);
    }
    out
}

/// Decodes a lowercase/uppercase hex string into bytes.
///
/// Returns `None` on odd length or non-hex characters.
///
/// ```
/// assert_eq!(ga_crypto::from_hex("dead"), Some(vec![0xde, 0xad]));
/// assert_eq!(ga_crypto::from_hex("xyz"), None);
/// ```
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let nib = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    };
    let b = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for chunk in b.chunks(2) {
        out.push((nib(chunk[0])? << 4) | nib(chunk[1])?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let data = [0u8, 1, 2, 0xff, 0x80, 0x7f];
        assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
    }

    #[test]
    fn hex_rejects_bad_input() {
        assert_eq!(from_hex("abc"), None);
        assert_eq!(from_hex("zz"), None);
    }

    #[test]
    fn hex_handles_empty() {
        assert_eq!(to_hex(&[]), "");
        assert_eq!(from_hex(""), Some(vec![]));
    }

    #[test]
    fn error_display_is_lowercase_without_period() {
        let msgs = [
            CryptoError::BadOpening.to_string(),
            CryptoError::BadTag.to_string(),
            CryptoError::SeedMismatch.to_string(),
            CryptoError::BrokenChain { index: 3 }.to_string(),
            CryptoError::BadTranscript("x").to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'), "{m}");
            assert!(m.chars().next().unwrap().is_lowercase(), "{m}");
        }
    }
}

//! Committed pseudo-random generator for auditable mixed strategies.
//!
//! Section 5.3 of the paper: to validate that an agent's "random" choices
//! really follow its claimed mixed strategy, "the agents commit to the
//! private seed that they use for their pseudo-random generator; they reveal
//! their seed at the end of the sequence of rounds and then audit each
//! other's actions".
//!
//! [`Prg`] is a counter-mode generator, `block_i = HMAC(seed, domain ‖ i)`.
//! [`CommittedPrg`] couples a `Prg` with a [`Commitment`] on its seed so the
//! judicial service can later re-run the generator and check every sampled
//! action (see [`verify_samples`](CommittedPrg::verify_samples)).
//!
//! ```
//! use ga_crypto::prg::{CommittedPrg, sample_index};
//!
//! # fn main() -> Result<(), ga_crypto::CryptoError> {
//! // Agent: commit to a seed, then sample actions with it.
//! let mut cp = CommittedPrg::new([5u8; 32], [9u8; 32]);
//! let weights = [1.0, 1.0]; // fair coin
//! let a0 = cp.sample(&weights);
//!
//! // Auditor: given the commitment, the revealed seed and the action
//! // transcript, check the agent sampled honestly.
//! let commitment = cp.commitment();
//! CommittedPrg::verify_samples(commitment, cp.reveal(), &[(vec![1.0, 1.0], a0)])?;
//! # Ok(())
//! # }
//! ```

use crate::commitment::{Commitment, Nonce, Opening};
use crate::hmac::hmac_sha256;
use crate::{CryptoError, Digest};

const DOMAIN: &[u8] = b"ga-prg-v1";

/// Counter-mode deterministic generator over a 32-byte seed.
#[derive(Debug, Clone)]
pub struct Prg {
    seed: [u8; 32],
    counter: u64,
}

impl Prg {
    /// Creates a generator from a raw 32-byte seed.
    pub fn new(seed: [u8; 32]) -> Prg {
        Prg { seed, counter: 0 }
    }

    /// Derives a generator from a label and a small integer seed, for
    /// harness convenience (key rings, test fixtures).
    pub fn from_seed_material(label: &[u8], seed: u64) -> Prg {
        let material = hmac_sha256(label, &seed.to_be_bytes());
        Prg::new(material)
    }

    /// Produces the next 32-byte pseudo-random block.
    pub fn next_block(&mut self) -> Digest {
        let mut msg = Vec::with_capacity(DOMAIN.len() + 8);
        msg.extend_from_slice(DOMAIN);
        msg.extend_from_slice(&self.counter.to_be_bytes());
        self.counter += 1;
        hmac_sha256(&self.seed, &msg)
    }

    /// Produces the next pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let block = self.next_block();
        u64::from_be_bytes(block[..8].try_into().expect("block has 32 bytes"))
    }

    /// Produces a uniform float in `[0, 1)` (53 bits of precision).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// How many blocks have been consumed (the audit replays exactly this
    /// many).
    pub fn position(&self) -> u64 {
        self.counter
    }
}

/// Samples an index from non-negative `weights` using one PRG draw.
///
/// This is the canonical mapping from PRG output to a mixed-strategy action:
/// both the agent and the auditor use it, so an honest sample always
/// verifies.
///
/// # Panics
///
/// Panics if `weights` is empty or sums to a non-positive/non-finite value —
/// callers validate strategies before sampling.
pub fn sample_index(prg: &mut Prg, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "weights must be non-empty");
    let total: f64 = weights.iter().sum();
    assert!(
        total.is_finite() && total > 0.0,
        "weights must sum to a positive finite value"
    );
    let mut x = prg.next_f64() * total;
    for (i, &w) in weights.iter().enumerate() {
        assert!(w >= 0.0, "weights must be non-negative");
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1 // floating-point edge: land on the last index
}

/// A PRG whose seed is bound by a commitment, enabling post-hoc audits.
#[derive(Debug, Clone)]
pub struct CommittedPrg {
    prg: Prg,
    seed: [u8; 32],
    commitment: Commitment,
    opening: Opening,
}

impl CommittedPrg {
    /// Commits to `seed` (blinded by `nonce`) and readies the generator.
    pub fn new(seed: [u8; 32], nonce: Nonce) -> CommittedPrg {
        let (commitment, opening) = Commitment::commit(&seed, nonce);
        CommittedPrg {
            prg: Prg::new(seed),
            seed,
            commitment,
            opening,
        }
    }

    /// The public commitment to publish before any sampling.
    pub fn commitment(&self) -> Commitment {
        self.commitment
    }

    /// Samples an action index for a mixed strategy given by `weights`.
    pub fn sample(&mut self, weights: &[f64]) -> usize {
        sample_index(&mut self.prg, weights)
    }

    /// Reveals the seed and opening for the end-of-epoch audit.
    pub fn reveal(&self) -> SeedReveal {
        SeedReveal {
            seed: self.seed,
            opening: self.opening,
        }
    }

    /// Audits a transcript: checks the reveal opens `commitment` and that
    /// replaying the PRG over each round's `weights` reproduces each claimed
    /// action index.
    ///
    /// # Errors
    ///
    /// * [`CryptoError::BadOpening`] — the revealed seed is not the committed
    ///   one.
    /// * [`CryptoError::SeedMismatch`] — the seed is genuine but some claimed
    ///   action was not what the PRG would have produced (a §5.1-style hidden
    ///   manipulation).
    pub fn verify_samples(
        commitment: Commitment,
        reveal: SeedReveal,
        transcript: &[(Vec<f64>, usize)],
    ) -> Result<(), CryptoError> {
        commitment.verify(&reveal.seed, &reveal.opening)?;
        let mut replay = Prg::new(reveal.seed);
        for (weights, claimed) in transcript {
            let expected = sample_index(&mut replay, weights);
            if expected != *claimed {
                return Err(CryptoError::SeedMismatch);
            }
        }
        Ok(())
    }
}

/// The revealed seed plus the commitment opening, published at audit time.
#[derive(Debug, Clone, Copy)]
pub struct SeedReveal {
    seed: [u8; 32],
    opening: Opening,
}

impl SeedReveal {
    /// Reconstructs a reveal from wire data.
    pub fn from_parts(seed: [u8; 32], opening: Opening) -> SeedReveal {
        SeedReveal { seed, opening }
    }

    /// The revealed seed bytes.
    pub fn seed(&self) -> &[u8; 32] {
        &self.seed
    }

    /// The commitment opening.
    pub fn opening(&self) -> &Opening {
        &self.opening
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prg_is_deterministic() {
        let mut a = Prg::new([1u8; 32]);
        let mut b = Prg::new([1u8; 32]);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prg::new([1u8; 32]);
        let mut b = Prg::new([2u8; 32]);
        assert_ne!(a.next_block(), b.next_block());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut p = Prg::new([3u8; 32]);
        for _ in 0..1000 {
            let x = p.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut p = Prg::new([4u8; 32]);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| p.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn sample_index_respects_degenerate_weights() {
        let mut p = Prg::new([5u8; 32]);
        for _ in 0..100 {
            assert_eq!(sample_index(&mut p, &[0.0, 1.0, 0.0]), 1);
        }
    }

    #[test]
    fn sample_index_covers_support() {
        let mut p = Prg::new([6u8; 32]);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[sample_index(&mut p, &[1.0, 1.0, 1.0])] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn fair_coin_is_fair() {
        let mut p = Prg::new([7u8; 32]);
        let n = 10_000;
        let heads = (0..n)
            .filter(|_| sample_index(&mut p, &[1.0, 1.0]) == 0)
            .count();
        let frac = heads as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "frac={frac}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn sample_index_panics_on_empty() {
        let mut p = Prg::new([8u8; 32]);
        sample_index(&mut p, &[]);
    }

    #[test]
    fn honest_transcript_verifies() {
        let mut cp = CommittedPrg::new([9u8; 32], [1u8; 32]);
        let w = vec![0.5, 0.5];
        let transcript: Vec<(Vec<f64>, usize)> =
            (0..20).map(|_| (w.clone(), cp.sample(&w))).collect();
        CommittedPrg::verify_samples(cp.commitment(), cp.reveal(), &transcript).unwrap();
    }

    #[test]
    fn manipulated_action_detected() {
        let mut cp = CommittedPrg::new([9u8; 32], [1u8; 32]);
        let w = vec![0.5, 0.5];
        let mut transcript: Vec<(Vec<f64>, usize)> =
            (0..10).map(|_| (w.clone(), cp.sample(&w))).collect();
        // The manipulator flips round 5's claimed action.
        transcript[5].1 = 1 - transcript[5].1;
        assert_eq!(
            CommittedPrg::verify_samples(cp.commitment(), cp.reveal(), &transcript).unwrap_err(),
            CryptoError::SeedMismatch
        );
    }

    #[test]
    fn wrong_seed_reveal_detected() {
        let cp = CommittedPrg::new([9u8; 32], [1u8; 32]);
        let fake = SeedReveal::from_parts([8u8; 32], *cp.reveal().opening());
        assert_eq!(
            CommittedPrg::verify_samples(cp.commitment(), fake, &[]).unwrap_err(),
            CryptoError::BadOpening
        );
    }

    #[test]
    fn empty_transcript_verifies_with_genuine_seed() {
        let cp = CommittedPrg::new([10u8; 32], [2u8; 32]);
        CommittedPrg::verify_samples(cp.commitment(), cp.reveal(), &[]).unwrap();
    }

    #[test]
    fn from_seed_material_distinct_labels() {
        let a = Prg::from_seed_material(b"label-a", 1).next_block();
        let b = Prg::from_seed_material(b"label-b", 1).next_block();
        assert_ne!(a, b);
    }
}

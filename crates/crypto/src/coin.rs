//! Blum coin flipping by telephone (SIGACT News 1983).
//!
//! The paper cites Blum \[4\] as the template for "ensuring an action is
//! indeed random" (§5.3): commit first, reveal after everyone committed, and
//! combine the reveals so no party controls the outcome. This module gives a
//! two-party (and n-party) coin usable by tests and by tie-breaking logic in
//! the legislative service.
//!
//! Protocol (two parties):
//! 1. Each party draws a random 32-byte contribution and broadcasts a
//!    commitment to it.
//! 2. After receiving the other commitment, each reveals.
//! 3. The coin is the XOR-parity of the first bytes — unbiased as long as at
//!    least one party is honest, because the dishonest party committed before
//!    seeing the honest contribution.
//!
//! ```
//! use ga_crypto::coin::CoinFlip;
//!
//! # fn main() -> Result<(), ga_crypto::CryptoError> {
//! let alice = CoinFlip::contribute([1u8; 32], [11u8; 32]);
//! let bob = CoinFlip::contribute([2u8; 32], [22u8; 32]);
//! // Exchange commitments, then reveals; both compute the same coin.
//! let coin_a = CoinFlip::combine(&[
//!     (alice.commitment(), alice.reveal()),
//!     (bob.commitment(), bob.reveal()),
//! ])?;
//! # Ok(())
//! # }
//! ```

use crate::commitment::{Commitment, Nonce, Opening};
use crate::CryptoError;

/// One party's side of a coin-flipping protocol instance.
#[derive(Debug, Clone)]
pub struct CoinFlip {
    contribution: [u8; 32],
    commitment: Commitment,
    opening: Opening,
}

/// A revealed contribution: the bytes and the opening for their commitment.
#[derive(Debug, Clone, Copy)]
pub struct CoinReveal {
    contribution: [u8; 32],
    opening: Opening,
}

impl CoinReveal {
    /// Reconstructs a reveal from wire data.
    pub fn from_parts(contribution: [u8; 32], opening: Opening) -> CoinReveal {
        CoinReveal {
            contribution,
            opening,
        }
    }

    /// The revealed random bytes.
    pub fn contribution(&self) -> &[u8; 32] {
        &self.contribution
    }
}

impl CoinFlip {
    /// Creates this party's contribution from private randomness.
    pub fn contribute(contribution: [u8; 32], nonce: Nonce) -> CoinFlip {
        let (commitment, opening) = Commitment::commit(&contribution, nonce);
        CoinFlip {
            contribution,
            commitment,
            opening,
        }
    }

    /// The commitment to broadcast in phase 1.
    pub fn commitment(&self) -> Commitment {
        self.commitment
    }

    /// The reveal to broadcast in phase 2.
    pub fn reveal(&self) -> CoinReveal {
        CoinReveal {
            contribution: self.contribution,
            opening: self.opening,
        }
    }

    /// Verifies all reveals against their commitments and combines them into
    /// one unbiased coin: the XOR of every contribution byte, reduced to a
    /// boolean by parity.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BadOpening`] if any reveal does not open its
    /// commitment (that party is cheating) and
    /// [`CryptoError::BadTranscript`] when no parties are given.
    pub fn combine(parties: &[(Commitment, CoinReveal)]) -> Result<bool, CryptoError> {
        if parties.is_empty() {
            return Err(CryptoError::BadTranscript("no parties"));
        }
        let mut acc = 0u8;
        for (commitment, reveal) in parties {
            commitment.verify(&reveal.contribution, &reveal.opening)?;
            acc ^= reveal.contribution.iter().fold(0u8, |x, b| x ^ b);
        }
        Ok(acc.count_ones() % 2 == 1)
    }

    /// Like [`combine`](Self::combine), but yields a full 32-byte shared
    /// random value (XOR of contributions) — useful as a common seed.
    ///
    /// # Errors
    ///
    /// Same conditions as [`combine`](Self::combine).
    pub fn combine_bytes(parties: &[(Commitment, CoinReveal)]) -> Result<[u8; 32], CryptoError> {
        if parties.is_empty() {
            return Err(CryptoError::BadTranscript("no parties"));
        }
        let mut acc = [0u8; 32];
        for (commitment, reveal) in parties {
            commitment.verify(&reveal.contribution, &reveal.opening)?;
            for (a, b) in acc.iter_mut().zip(reveal.contribution.iter()) {
                *a ^= b;
            }
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prg::Prg;

    fn party(seed: u8) -> CoinFlip {
        let mut prg = Prg::new([seed; 32]);
        let c = prg.next_block();
        let n = prg.next_block();
        CoinFlip::contribute(c, n)
    }

    #[test]
    fn both_parties_agree_on_coin() {
        let a = party(1);
        let b = party(2);
        let pairs = [(a.commitment(), a.reveal()), (b.commitment(), b.reveal())];
        let coin1 = CoinFlip::combine(&pairs).unwrap();
        let reversed = [(b.commitment(), b.reveal()), (a.commitment(), a.reveal())];
        let coin2 = CoinFlip::combine(&reversed).unwrap();
        assert_eq!(coin1, coin2, "coin must be order-independent");
    }

    #[test]
    fn cheater_substituting_contribution_is_caught() {
        let a = party(1);
        let b = party(2);
        // b tries to swap its contribution after seeing a's reveal.
        let forged = CoinReveal::from_parts([0xff; 32], *b.reveal().opening_for_test());
        let pairs = [(a.commitment(), a.reveal()), (b.commitment(), forged)];
        assert_eq!(
            CoinFlip::combine(&pairs).unwrap_err(),
            CryptoError::BadOpening
        );
    }

    #[test]
    fn empty_party_set_rejected() {
        assert!(matches!(
            CoinFlip::combine(&[]),
            Err(CryptoError::BadTranscript(_))
        ));
    }

    #[test]
    fn coin_is_roughly_unbiased_over_seeds() {
        let mut heads = 0;
        let n = 400;
        for s in 0..n {
            let mut prg = Prg::from_seed_material(b"coin-test", s);
            let a = CoinFlip::contribute(prg.next_block(), prg.next_block());
            let b = CoinFlip::contribute(prg.next_block(), prg.next_block());
            let pairs = [(a.commitment(), a.reveal()), (b.commitment(), b.reveal())];
            if CoinFlip::combine(&pairs).unwrap() {
                heads += 1;
            }
        }
        let frac = heads as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.08, "frac={frac}");
    }

    #[test]
    fn combine_bytes_is_xor_of_contributions() {
        let a = party(3);
        let b = party(4);
        let pairs = [(a.commitment(), a.reveal()), (b.commitment(), b.reveal())];
        let bytes = CoinFlip::combine_bytes(&pairs).unwrap();
        let expect: Vec<u8> = a
            .reveal()
            .contribution()
            .iter()
            .zip(b.reveal().contribution().iter())
            .map(|(x, y)| x ^ y)
            .collect();
        assert_eq!(bytes.to_vec(), expect);
    }

    #[test]
    fn n_party_coin_with_one_honest_contribution_verifies() {
        let parties: Vec<CoinFlip> = (0..7).map(party).collect();
        let pairs: Vec<_> = parties
            .iter()
            .map(|p| (p.commitment(), p.reveal()))
            .collect();
        CoinFlip::combine(&pairs).unwrap();
    }

    impl CoinReveal {
        fn opening_for_test(&self) -> &Opening {
            &self.opening
        }
    }
}

//! HMAC-SHA256 (RFC 2104 / FIPS 198-1), built on the from-scratch
//! [`sha256`](crate::sha256) implementation.
//!
//! Used by [`mac`](crate::mac) to authenticate protocol messages in the
//! authenticated Byzantine agreement variant, and by
//! [`prg`](crate::prg) as the expansion function of the committed PRG.
//!
//! ```
//! use ga_crypto::hmac::hmac_sha256;
//!
//! let tag = hmac_sha256(b"key", b"message");
//! assert_eq!(tag, hmac_sha256(b"key", b"message"));
//! assert_ne!(tag, hmac_sha256(b"other key", b"message"));
//! ```

use crate::sha256::Sha256;
use crate::Digest;

const BLOCK: usize = 64;
const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the 64-byte block are pre-hashed, per RFC 2104.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        let kd = Sha256::digest(key);
        key_block[..32].copy_from_slice(&kd);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ IPAD).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ OPAD).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time digest comparison.
///
/// Inside the simulation timing attacks are not modelled, but verification
/// code should still never branch byte-by-byte on secret data.
pub fn eq_digest(a: &Digest, b: &Digest) -> bool {
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_hex;

    // RFC 4231 test vectors for HMAC-SHA-256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            to_hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            to_hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }

    #[test]
    fn different_messages_different_tags() {
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }

    #[test]
    fn eq_digest_agrees_with_eq() {
        let a = hmac_sha256(b"k", b"m");
        let mut b = a;
        assert!(eq_digest(&a, &b));
        b[31] ^= 1;
        assert!(!eq_digest(&a, &b));
    }
}

//! Hash-chained audit log for the judicial service.
//!
//! The judicial service "audits the agents' actions" every play (§3.2). To
//! make audits tamper-evident across plays — and to let a recovering
//! processor detect a transiently corrupted history — every record carries
//! the hash of its predecessor, like a lightweight blockchain. A verifier
//! can check the whole chain in one pass, and any retroactive edit breaks
//! every later link.
//!
//! ```
//! use ga_crypto::audit_log::AuditLog;
//!
//! let mut log = AuditLog::new();
//! log.append(b"play 0: outcome (H,T)");
//! log.append(b"play 1: agent 2 fouled");
//! assert!(log.verify().is_ok());
//! ```

use crate::sha256::Sha256;
use crate::{CryptoError, Digest};

const DOMAIN: &[u8] = b"ga-audit-v1";
/// The link value of the first record.
const GENESIS: Digest = [0u8; 32];

/// One tamper-evident record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// Position in the log.
    index: u64,
    /// Hash of the previous record (or all-zero for the first).
    prev: Digest,
    /// Application payload (serialized verdicts, outcomes, ...).
    payload: Vec<u8>,
}

impl AuditRecord {
    /// The record's own chaining hash.
    pub fn link(&self) -> Digest {
        Sha256::digest_parts(&[DOMAIN, &self.index.to_be_bytes(), &self.prev, &self.payload])
    }

    /// The application payload.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// The record's position.
    pub fn index(&self) -> u64 {
        self.index
    }
}

/// An append-only hash-chained log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditLog {
    records: Vec<AuditRecord>,
}

impl AuditLog {
    /// Creates an empty log.
    pub fn new() -> AuditLog {
        AuditLog::default()
    }

    /// Appends a record, returning its chaining hash (the value to gossip or
    /// agree upon so peers can cross-check logs cheaply).
    pub fn append(&mut self, payload: &[u8]) -> Digest {
        let prev = self.records.last().map(|r| r.link()).unwrap_or(GENESIS);
        let record = AuditRecord {
            index: self.records.len() as u64,
            prev,
            payload: payload.to_vec(),
        };
        let link = record.link();
        self.records.push(record);
        link
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over records in order.
    pub fn iter(&self) -> impl Iterator<Item = &AuditRecord> {
        self.records.iter()
    }

    /// The chaining hash of the latest record, if any.
    pub fn head(&self) -> Option<Digest> {
        self.records.last().map(|r| r.link())
    }

    /// Verifies the entire chain.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BrokenChain`] identifying the first
    /// inconsistent record (wrong index or wrong predecessor hash).
    pub fn verify(&self) -> Result<(), CryptoError> {
        let mut prev = GENESIS;
        for (i, record) in self.records.iter().enumerate() {
            if record.index != i as u64 || record.prev != prev {
                return Err(CryptoError::BrokenChain { index: i });
            }
            prev = record.link();
        }
        Ok(())
    }

    /// Direct record access for audits.
    pub fn get(&self, index: usize) -> Option<&AuditRecord> {
        self.records.get(index)
    }

    /// Test/fault-injection hook: overwrite a payload in place, which should
    /// subsequently be caught by [`verify`](Self::verify).
    pub fn tamper(&mut self, index: usize, payload: &[u8]) -> bool {
        match self.records.get_mut(index) {
            Some(r) => {
                r.payload = payload.to_vec();
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_log_verifies() {
        assert!(AuditLog::new().verify().is_ok());
        assert!(AuditLog::new().head().is_none());
    }

    #[test]
    fn append_and_verify() {
        let mut log = AuditLog::new();
        for i in 0..10u32 {
            log.append(&i.to_be_bytes());
        }
        assert_eq!(log.len(), 10);
        assert!(log.verify().is_ok());
    }

    #[test]
    fn tampering_mid_chain_detected_at_next_record() {
        let mut log = AuditLog::new();
        for i in 0..5u32 {
            log.append(&i.to_be_bytes());
        }
        log.tamper(2, b"rewritten history");
        // Record 2's payload change alters its link; record 3's `prev` no
        // longer matches, so the break is reported at index 3.
        assert_eq!(
            log.verify().unwrap_err(),
            CryptoError::BrokenChain { index: 3 }
        );
    }

    #[test]
    fn tampering_last_record_not_detectable_by_chain_alone() {
        // The chain only protects the *prefix*; the head hash must be
        // agreed upon out-of-band (the authority runs BA on it).
        let mut log = AuditLog::new();
        log.append(b"a");
        log.append(b"b");
        let honest_head = log.head().unwrap();
        log.tamper(1, b"b'");
        assert!(log.verify().is_ok());
        assert_ne!(
            log.head().unwrap(),
            honest_head,
            "head hash still exposes the edit"
        );
    }

    #[test]
    fn heads_differ_for_different_histories() {
        let mut a = AuditLog::new();
        let mut b = AuditLog::new();
        a.append(b"x");
        b.append(b"y");
        assert_ne!(a.head(), b.head());
    }

    #[test]
    fn identical_histories_share_head() {
        let mut a = AuditLog::new();
        let mut b = AuditLog::new();
        for payload in [b"p0".as_slice(), b"p1", b"p2"] {
            a.append(payload);
            b.append(payload);
        }
        assert_eq!(a.head(), b.head());
    }

    #[test]
    fn duplicate_payloads_get_distinct_links() {
        let mut log = AuditLog::new();
        let l0 = log.append(b"same");
        let l1 = log.append(b"same");
        assert_ne!(l0, l1, "index is part of the link");
    }

    #[test]
    fn get_returns_records_in_order() {
        let mut log = AuditLog::new();
        log.append(b"first");
        log.append(b"second");
        assert_eq!(log.get(0).unwrap().payload(), b"first");
        assert_eq!(log.get(1).unwrap().payload(), b"second");
        assert!(log.get(2).is_none());
    }
}

//! E4 — Lemma 2 / Theorem 1: SSBA convergence and closure.
//!
//! From arbitrary configurations (total transient faults), measures the
//! number of pulses until the honest clocks agree, across `(n, f)` and
//! trials; then checks closure: after recovery, SSBA periods keep
//! producing identical agreement logs.

use ga_clocksync::harness::{measure_convergence_with, run_ssba};

use crate::table::{f3, Table};

/// Convergence statistics for one `(n, f)` configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergencePoint {
    /// Processors.
    pub n: usize,
    /// Fault budget (and actively equivocating Byzantine count).
    pub f: usize,
    /// Trials run.
    pub trials: u32,
    /// Trials that converged within the pulse budget.
    pub converged: u32,
    /// Mean pulses to convergence (converged trials).
    pub mean_pulses: f64,
    /// Max pulses observed.
    pub max_pulses: u64,
}

/// Measures convergence across configurations.
pub fn run_convergence(
    configs: &[(usize, usize)],
    trials: u32,
    max_pulses: u64,
    seed: u64,
) -> Vec<ConvergencePoint> {
    configs
        .iter()
        .map(|&(n, f)| {
            let mut pulses = Vec::new();
            for t in 0..trials {
                if let Some(p) = measure_convergence_with(
                    n,
                    f,
                    f,
                    8,
                    seed ^ ((t as u64) << 32) ^ ((n as u64) << 4) ^ f as u64,
                    max_pulses,
                ) {
                    pulses.push(p);
                }
            }
            let converged = pulses.len() as u32;
            let mean = if pulses.is_empty() {
                f64::NAN
            } else {
                pulses.iter().sum::<u64>() as f64 / pulses.len() as f64
            };
            ConvergencePoint {
                n,
                f,
                trials,
                converged,
                mean_pulses: mean,
                max_pulses: pulses.iter().copied().max().unwrap_or(0),
            }
        })
        .collect()
}

/// Closure check: SSBA with a mid-run total fault still ends with common
/// agreement logs. Returns `(recovered, plays_after_recovery)`.
pub fn run_closure(n: usize, f: usize, seed: u64) -> (bool, usize) {
    let report = run_ssba(n, f, f.min(1), 1500, Some(200), seed);
    let recovered = report.common_suffix(2);
    (recovered, report.logs[0].len())
}

/// Renders E4.
pub fn tables(seed: u64) -> Vec<Table> {
    let points = run_convergence(&[(4, 0), (4, 1), (7, 1), (7, 2)], 10, 300_000, seed);
    let mut t = Table::new(
        "E4 / Lemma 2 — SSBA convergence from arbitrary configurations",
        &["n", "f", "trials", "converged", "mean pulses", "max pulses"],
    );
    for p in &points {
        t.row(vec![
            p.n.to_string(),
            p.f.to_string(),
            p.trials.to_string(),
            p.converged.to_string(),
            f3(p.mean_pulses),
            p.max_pulses.to_string(),
        ]);
    }
    t.note("paper: expected convergence within O(n^(n−f)) pulses (randomized, exponential flavor)");

    let (recovered, plays) = run_closure(4, 1, seed);
    let mut t2 = Table::new(
        "E4 / Lemma 3 + Theorem 1 — closure after a total transient fault",
        &[
            "n",
            "f",
            "fault at pulse",
            "recovered",
            "completed agreements",
        ],
    );
    t2.row(vec![
        "4".into(),
        "1".into(),
        "200".into(),
        if recovered { "yes" } else { "NO" }.into(),
        plays.to_string(),
    ]);
    t2.note("closure: identical agreement logs across honest processors after recovery");
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_systems_converge() {
        let points = run_convergence(&[(4, 1)], 3, 300_000, 42);
        assert_eq!(points[0].converged, 3, "{points:?}");
        assert!(points[0].mean_pulses > 0.0);
    }

    #[test]
    fn closure_holds() {
        let (recovered, plays) = run_closure(4, 1, 42);
        assert!(recovered);
        assert!(plays >= 2);
    }
}

//! E3 — Theorem 5 / Lemma 6: RRA multi-round anarchy cost.
//!
//! Sweeps round counts for several `(n, b)` and reports the measured
//! `R(k) = M(k)/OPT(k)` against the proven `1 + 2b/k` bound, and the load
//! gap `Δ(k)` against `2n − 1`.

use ga_games::resource_allocation::RraProcess;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::{f3, Table};

/// One sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct RraPoint {
    /// Agents.
    pub n: usize,
    /// Resources.
    pub b: usize,
    /// Rounds.
    pub k: u64,
    /// Measured multi-round anarchy cost.
    pub ratio: f64,
    /// Theorem 5's bound `1 + 2b/k`.
    pub bound: f64,
    /// Measured load gap `Δ(k)`.
    pub gap: u64,
    /// Lemma 6's bound `2n − 1`.
    pub gap_bound: u64,
    /// Whether both bounds held at every intermediate round.
    pub bounds_held_throughout: bool,
}

/// Runs the sweep: for each `(n, b)`, plays up to `max_k` rounds and
/// samples the listed checkpoints.
pub fn run(configs: &[(usize, usize)], checkpoints: &[u64], seed: u64) -> Vec<RraPoint> {
    let mut out = Vec::new();
    let max_k = checkpoints.iter().copied().max().unwrap_or(0);
    for &(n, b) in configs {
        let mut rra = RraProcess::new(n, b);
        let mut rng = StdRng::seed_from_u64(seed ^ ((n as u64) << 8) ^ b as u64);
        let stats = rra.play(max_k, &mut rng);
        let mut held = true;
        for s in &stats {
            held &= s.ratio <= s.bound + 1e-9 && s.gap < 2 * n as u64;
            if checkpoints.contains(&s.k) {
                out.push(RraPoint {
                    n,
                    b,
                    k: s.k,
                    ratio: s.ratio,
                    bound: s.bound,
                    gap: s.gap,
                    gap_bound: 2 * n as u64 - 1,
                    bounds_held_throughout: held,
                });
            }
        }
    }
    out
}

/// Renders E3.
pub fn tables(seed: u64) -> Vec<Table> {
    let points = run(
        &[(4, 2), (4, 4), (8, 4), (16, 8)],
        &[10, 100, 1000, 5000],
        seed,
    );
    let mut t = Table::new(
        "E3 / Theorem 5 + Lemma 6 — RRA multi-round anarchy cost R(k) and gap Δ(k)",
        &[
            "n",
            "b",
            "k",
            "R(k)",
            "1+2b/k",
            "Δ(k)",
            "2n−1",
            "bounds held",
        ],
    );
    for p in &points {
        t.row(vec![
            p.n.to_string(),
            p.b.to_string(),
            p.k.to_string(),
            f3(p.ratio),
            f3(p.bound),
            p.gap.to_string(),
            p.gap_bound.to_string(),
            if p.bounds_held_throughout {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
    }
    t.note("paper: R(k) ≤ 1 + 2b/k for all k; R → 1 (asymptotically optimal)");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_hold_across_configs() {
        let points = run(&[(4, 2), (6, 3)], &[50, 500], 3);
        for p in &points {
            assert!(p.bounds_held_throughout, "{p:?}");
            assert!(p.ratio <= p.bound + 1e-9);
            assert!(p.gap <= p.gap_bound);
        }
    }

    #[test]
    fn ratio_approaches_one() {
        let points = run(&[(4, 4)], &[10, 2000], 5);
        let early = points.iter().find(|p| p.k == 10).unwrap();
        let late = points.iter().find(|p| p.k == 2000).unwrap();
        assert!(late.ratio <= early.ratio + 1e-9, "monotone-ish decrease");
        assert!(late.ratio < 1.05, "R(2000) = {}", late.ratio);
    }
}

//! The experiment runner: regenerates every figure/theorem artifact of the
//! paper (see DESIGN.md §4 and EXPERIMENTS.md).
//!
//! ```text
//! cargo run -p ga-bench --bin experiments               # all experiments
//! cargo run -p ga-bench --bin experiments -- --exp e3   # one experiment
//! cargo run -p ga-bench --bin experiments -- --seed 7   # reseed
//! ```

use ga_bench::{
    e1_fig1, e2_pom_pennies, e3_rra, e4_ssba, e5_virus, e6_overhead, e7_dynamics, e8_audit_cadence,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut exp: Option<String> = None;
    let mut seed = 2010u64; // the journal version's year
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" if i + 1 < args.len() => {
                exp = Some(args[i + 1].to_lowercase());
                i += 2;
            }
            "--seed" if i + 1 < args.len() => {
                seed = args[i + 1].parse().unwrap_or(seed);
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!("usage: experiments [--exp e1..e8] [--seed N]");
                return;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                return;
            }
        }
    }

    let want = |name: &str| exp.as_deref().is_none_or(|e| e == name);

    println!("game-authority experiment suite (seed {seed})");
    println!("paper: Dolev, Schiller, Spirakis, Tsigas — TCS 411 (2010) 2459–2466");

    if want("e1") {
        for t in e1_fig1::tables() {
            print!("{}", t.render());
        }
    }
    if want("e2") {
        for t in e2_pom_pennies::tables(200, seed) {
            print!("{}", t.render());
        }
    }
    if want("e3") {
        for t in e3_rra::tables(seed) {
            print!("{}", t.render());
        }
    }
    if want("e4") {
        for t in e4_ssba::tables(seed) {
            print!("{}", t.render());
        }
    }
    if want("e5") {
        for t in e5_virus::tables() {
            print!("{}", t.render());
        }
    }
    if want("e6") {
        for t in e6_overhead::tables(seed) {
            print!("{}", t.render());
        }
    }
    if want("e7") {
        for t in e7_dynamics::tables(seed) {
            print!("{}", t.render());
        }
    }
    if want("e8") {
        for t in e8_audit_cadence::tables(seed) {
            print!("{}", t.render());
        }
    }
}

//! E2 — reduced price of malice on the Fig. 1 game (§5.4).
//!
//! Repeated play of the manipulated matching-pennies game under three
//! regimes:
//!
//! 1. **unsupervised** — no audits: B manipulates every round, A bleeds an
//!    expected 4 per round;
//! 2. **authority / disconnect** — the support audit catches B in round 0;
//!    A's loss stops immediately;
//! 3. **authority / fines** — B keeps playing but pays per offense; its
//!    manipulation becomes unprofitable.
//!
//! The *malice damage* is the honest agent's cumulative loss; the
//! authority's benefit is the ratio between regimes (the paper's "reducing
//! the price of malice").

use ga_games::matching_pennies::{manipulated_matching_pennies, MANIPULATE};
use game_authority::agent::Behavior;
use game_authority::authority::{Authority, AuthorityConfig};
use game_authority::executive::Punishment;

use crate::table::{f3, Table};

/// One regime's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RegimeResult {
    /// Regime label.
    pub label: &'static str,
    /// Honest agent A's cumulative payoff (negated cost) over the run.
    pub honest_payoff: f64,
    /// Manipulator B's cumulative payoff, including fines.
    pub manipulator_payoff: f64,
    /// Rounds until the manipulator was first punished (None = never).
    pub detected_at: Option<u64>,
}

/// E2 outcome: the three regimes plus the honest baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct PomPenniesResult {
    /// All-honest baseline (B mixes uniformly over Heads/Tails).
    pub baseline_honest_payoff: f64,
    /// The three regimes.
    pub regimes: Vec<RegimeResult>,
    /// Rounds played.
    pub rounds: u64,
}

fn run_regime(
    label: &'static str,
    rounds: u64,
    seed: u64,
    audits: bool,
    punishment: Punishment,
) -> RegimeResult {
    let game = manipulated_matching_pennies();
    let config = AuthorityConfig {
        punishment,
        epoch_len: 16,
        seed,
        audits_enabled: audits,
        ..AuthorityConfig::default()
    };
    let mut authority = Authority::new(
        &game,
        vec![
            Behavior::honest_mixed(vec![0.5, 0.5]),
            Behavior::hidden_manipulator(vec![0.5, 0.5, 0.0], MANIPULATE),
        ],
        config,
    );
    let reports = authority.play(rounds);
    let honest_payoff: f64 = reports.iter().map(|r| -r.costs[0]).sum();
    let raw_b: f64 = reports.iter().map(|r| -r.costs[1]).sum();
    let manipulator_payoff = raw_b - authority.executive().fine(1);
    let detected_at = reports
        .iter()
        .find(|r| r.punished.contains(&1))
        .map(|r| r.round);
    RegimeResult {
        label,
        honest_payoff,
        manipulator_payoff,
        detected_at,
    }
}

/// Runs E2.
pub fn run(rounds: u64, seed: u64) -> PomPenniesResult {
    // Baseline: two honest mixers — expected payoff 0 for both.
    let game = manipulated_matching_pennies();
    let mut baseline = Authority::new(
        &game,
        vec![
            Behavior::honest_mixed(vec![0.5, 0.5]),
            Behavior::honest_mixed(vec![0.5, 0.5, 0.0]),
        ],
        AuthorityConfig {
            seed,
            ..AuthorityConfig::default()
        },
    );
    let baseline_honest_payoff: f64 = baseline.play(rounds).iter().map(|r| -r.costs[0]).sum();

    let regimes = vec![
        run_regime("unsupervised", rounds, seed, false, Punishment::Disconnect),
        run_regime(
            "authority+disconnect",
            rounds,
            seed,
            true,
            Punishment::Disconnect,
        ),
        run_regime(
            "authority+fine(6)",
            rounds,
            seed,
            true,
            Punishment::Fine(6.0),
        ),
    ];
    PomPenniesResult {
        baseline_honest_payoff,
        regimes,
        rounds,
    }
}

/// Renders E2.
pub fn tables(rounds: u64, seed: u64) -> Vec<Table> {
    let r = run(rounds, seed);
    let mut t = Table::new(
        format!(
            "E2 — price of malice in Fig. 1's game over {} plays (baseline honest A payoff: {})",
            r.rounds,
            f3(r.baseline_honest_payoff)
        ),
        &[
            "regime",
            "A payoff",
            "B payoff",
            "A loss/round",
            "detected at",
        ],
    );
    for reg in &r.regimes {
        t.row(vec![
            reg.label.to_string(),
            f3(reg.honest_payoff),
            f3(reg.manipulator_payoff),
            f3(-reg.honest_payoff / r.rounds as f64),
            reg.detected_at
                .map(|d| format!("play {d}"))
                .unwrap_or_else(|| "never".into()),
        ]);
    }
    t.note("paper §5.1: unsupervised manipulation costs A ≈ 4/round; §5.4: auditing removes it");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn authority_reduces_malice_damage() {
        let r = run(60, 7);
        let unsupervised = &r.regimes[0];
        let disconnect = &r.regimes[1];
        let fine = &r.regimes[2];

        // Unsupervised: A loses roughly 4/round (the §5.1 number).
        let per_round = -unsupervised.honest_payoff / 60.0;
        assert!(per_round > 2.5, "A bleeds {per_round}/round unsupervised");
        assert_eq!(unsupervised.detected_at, None);

        // Authority catches B in the very first play.
        assert_eq!(disconnect.detected_at, Some(0));
        assert!(
            -disconnect.honest_payoff <= 10.0,
            "A's damage capped at one round: {}",
            disconnect.honest_payoff
        );

        // Fines make manipulation unprofitable for B.
        assert!(fine.manipulator_payoff < 0.0, "{}", fine.manipulator_payoff);

        // Reduction factor is large.
        assert!(
            unsupervised.honest_payoff < 10.0 * disconnect.honest_payoff.min(-0.01),
            "damage shrinks by >10x"
        );
    }

    #[test]
    fn baseline_is_near_zero() {
        let r = run(200, 11);
        assert!(
            r.baseline_honest_payoff.abs() / 200.0 < 0.5,
            "honest play is near-fair: {}",
            r.baseline_honest_payoff
        );
    }
}

//! E6 — the authority's per-play protocol cost (§3.3, implicit).
//!
//! Each play is three BA activations plus a commit and a reveal round.
//! This experiment measures rounds, messages and bytes per consensus for
//! every backend across `n`, exposing the scalability trade-offs the paper
//! alludes to ("further research can improve the design and allow better
//! scalability").

use ga_agreement::harness::{run_consensus, Backend};

use crate::table::Table;

/// One `(backend, n, f)` measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadPoint {
    /// Protocol backend.
    pub backend: Backend,
    /// Processors.
    pub n: usize,
    /// Fault budget.
    pub f: usize,
    /// Rounds per consensus.
    pub rounds: u64,
    /// Messages per consensus.
    pub messages: u64,
    /// Bytes per consensus.
    pub bytes: u64,
    /// Estimated pulses for one full authority play (3 BAs + commit +
    /// reveal + executive).
    pub play_pulses: u64,
    /// Whether the honest processors agreed (sanity).
    pub agreement: bool,
}

/// Sweeps consensus cost across backends and sizes.
pub fn run(ns: &[usize], seed: u64) -> Vec<OverheadPoint> {
    let mut out = Vec::new();
    for &n in ns {
        for backend in Backend::ALL {
            let f = backend.max_faults(n).min(2);
            if f == 0 && n > 4 {
                continue;
            }
            let byz: Vec<usize> = (n - f..n).collect();
            let report = run_consensus(backend, n, f, &byz, |i| (i % 2) as u64, seed);
            out.push(OverheadPoint {
                backend,
                n,
                f,
                rounds: report.rounds,
                messages: report.messages,
                bytes: report.bytes,
                play_pulses: 3 * report.rounds + 4,
                agreement: report.agreement(),
            });
        }
    }
    out
}

/// Renders E6.
pub fn tables(seed: u64) -> Vec<Table> {
    let points = run(&[4, 7, 9, 13], seed);
    let mut t = Table::new(
        "E6 — per-consensus and per-play cost of the authority's BA schedule",
        &[
            "backend",
            "n",
            "f",
            "rounds",
            "messages",
            "bytes",
            "play pulses",
            "agreement",
        ],
    );
    for p in &points {
        t.row(vec![
            p.backend.label().to_string(),
            p.n.to_string(),
            p.f.to_string(),
            p.rounds.to_string(),
            p.messages.to_string(),
            p.bytes.to_string(),
            p.play_pulses.to_string(),
            if p.agreement { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t.note("om: optimal resilience, exponential bytes; phase-king: O(f) rounds, polynomial; dolev-strong: honest majority via authentication");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_backends_agree_and_scale_shapes_hold() {
        let points = run(&[4, 7], 11);
        assert!(points.iter().all(|p| p.agreement), "{points:?}");
        // OM's message bytes grow much faster than phase-king's.
        let om4 = points
            .iter()
            .find(|p| p.backend == Backend::Om && p.n == 4)
            .unwrap();
        let om7 = points
            .iter()
            .find(|p| p.backend == Backend::Om && p.n == 7)
            .unwrap();
        assert!(om7.bytes > om4.bytes * 4, "exponential growth visible");
    }

    #[test]
    fn phase_king_rounds_grow_with_f() {
        let points = run(&[9, 13], 13);
        let pk9 = points
            .iter()
            .find(|p| p.backend == Backend::PhaseKing && p.n == 9)
            .unwrap();
        assert!(pk9.rounds >= 5);
    }
}

//! Minimal fixed-width table rendering for experiment output.

/// A printable table: header, rows, and a title/caption.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Caption printed above the table.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Row cells (each row should match the header length).
    pub rows: Vec<Vec<String>>,
    /// Footnotes printed below.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates a table with a title and header.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Appends a footnote.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-header"));
        assert!(s.contains("note: a note"));
    }

    #[test]
    fn f3_formats() {
        assert_eq!(f3(1.23456), "1.235");
    }
}

//! # ga-bench — experiment library
//!
//! One function per paper artifact (see DESIGN.md §4 and EXPERIMENTS.md).
//! Each returns a structured table so the `experiments` binary, the
//! Criterion benches and the integration tests all share one
//! implementation.

pub mod e1_fig1;
pub mod e2_pom_pennies;
pub mod e3_rra;
pub mod e4_ssba;
pub mod e5_virus;
pub mod e6_overhead;
pub mod e7_dynamics;
pub mod e8_audit_cadence;
pub mod table;

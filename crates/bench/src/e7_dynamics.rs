//! E7 — RRA load-gap trajectories: honest, cheated, and supervised.
//!
//! Tracks `Δ(k)` over rounds for three populations:
//!
//! 1. all honest — stays inside Lemma 6's `2n − 1` envelope;
//! 2. with a rule-violating cheater (extra demands) and no authority —
//!    the gap diverges linearly;
//! 3. same cheater under the authority: the legitimate-action audit (§3.2
//!    req. 1) flags the multi-demand in the first play, the executive
//!    disconnects the cheater, and the gap re-enters the envelope.

use ga_games::resource_allocation::{RraBehavior, RraProcess};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::Table;

/// Gap trajectories of the three regimes, sampled at checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicsResult {
    /// Agents.
    pub n: usize,
    /// Resources.
    pub b: usize,
    /// Checkpoints (round numbers).
    pub checkpoints: Vec<u64>,
    /// Gap per checkpoint: honest population.
    pub honest: Vec<u64>,
    /// Gap per checkpoint: cheater, unsupervised.
    pub cheated: Vec<u64>,
    /// Gap per checkpoint: cheater disconnected after play 1.
    pub supervised: Vec<u64>,
    /// Lemma 6 envelope `2n − 1`.
    pub envelope: u64,
}

/// Runs the three regimes.
pub fn run(n: usize, b: usize, checkpoints: &[u64], seed: u64) -> DynamicsResult {
    let max_k = checkpoints.iter().copied().max().unwrap_or(0);

    let sample = |mut rra: RraProcess, disconnect_cheater_after: Option<u64>| -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gaps = Vec::new();
        for k in 1..=max_k {
            rra.play_round(&mut rng);
            if Some(k) == disconnect_cheater_after {
                // The judicial service saw the multi-demand in play k; the
                // executive disconnects the cheater for all later plays.
                rra.set_behavior(n - 1, RraBehavior::Disconnected);
            }
            if checkpoints.contains(&k) {
                gaps.push(rra.stats().gap);
            }
        }
        gaps
    };

    let honest = sample(RraProcess::new(n, b), None);

    // The cheat must outpace the n−1 honest unit demands per round or the
    // water-filling absorbs it; n+2 extra units guarantee divergence.
    let mut behaviors = vec![RraBehavior::NashMixed; n];
    behaviors[n - 1] = RraBehavior::ExtraDemands(n as u32 + 2);
    let cheated = sample(RraProcess::with_behaviors(n, b, behaviors.clone()), None);
    let supervised = sample(RraProcess::with_behaviors(n, b, behaviors), Some(1));

    DynamicsResult {
        n,
        b,
        checkpoints: checkpoints.to_vec(),
        honest,
        cheated,
        supervised,
        envelope: 2 * n as u64 - 1,
    }
}

/// Renders E7.
pub fn tables(seed: u64) -> Vec<Table> {
    let r = run(6, 3, &[1, 10, 50, 200, 1000], seed);
    let mut t = Table::new(
        format!(
            "E7 — RRA load-gap Δ(k) trajectories (n={}, b={}, Lemma 6 envelope 2n−1 = {})",
            r.n, r.b, r.envelope
        ),
        &["k", "honest", "cheater unsupervised", "cheater + authority"],
    );
    for (i, k) in r.checkpoints.iter().enumerate() {
        t.row(vec![
            k.to_string(),
            r.honest[i].to_string(),
            r.cheated[i].to_string(),
            r.supervised[i].to_string(),
        ]);
    }
    t.note("the authority disconnects the cheater after play 1 (legitimate-action audit)");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectories_tell_the_story() {
        let r = run(5, 2, &[1, 100, 500], 9);
        let last = r.checkpoints.len() - 1;
        // Honest stays in the envelope.
        assert!(r.honest[last] <= r.envelope, "{:?}", r.honest);
        // Unsupervised cheating diverges past the envelope.
        assert!(r.cheated[last] > r.envelope, "{:?}", r.cheated);
        // Supervision restores the envelope (cheater contributes only one
        // cheated play's worth of skew, which honest play then absorbs
        // or at least stops growing).
        assert!(
            r.supervised[last] < r.cheated[last] / 2,
            "supervised {:?} vs cheated {:?}",
            r.supervised,
            r.cheated
        );
    }
}

//! E1 — Fig. 1: matching pennies with a hidden manipulative strategy.
//!
//! Regenerates (a) the payoff matrix itself and (b) the §5.1
//! expected-profit computation: against A's honest uniform mixture, B's
//! manipulation lifts B from 0 to +4 and drops A from 0 to −4.

use ga_game_theory::game::Game;
use ga_game_theory::profile::{MixedStrategy, PureProfile};
use ga_games::matching_pennies::{
    fig1_expected_payoffs, manipulated_matching_pennies, HEADS, MANIPULATE, TAILS,
};

use crate::table::{f3, Table};

/// The numbers behind Fig. 1 / §5.1.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Result {
    /// The 2×3 payoff matrix, `(A, B)` per cell, row-major.
    pub matrix: Vec<Vec<(f64, f64)>>,
    /// Expected payoffs `(A, B)` when B plays Heads / Tails / Manipulate
    /// against uniform A.
    pub expected: [(f64, f64); 3],
}

/// Computes the Fig. 1 artifact.
pub fn run() -> Fig1Result {
    let game = manipulated_matching_pennies();
    let matrix = (0..2)
        .map(|r| {
            (0..3)
                .map(|c| {
                    let p = PureProfile::new(vec![r, c]);
                    (-game.cost(0, &p), -game.cost(1, &p))
                })
                .collect()
        })
        .collect();
    let uniform = MixedStrategy::uniform(2);
    let expected = [
        fig1_expected_payoffs(&uniform, HEADS),
        fig1_expected_payoffs(&uniform, TAILS),
        fig1_expected_payoffs(&uniform, MANIPULATE),
    ];
    Fig1Result { matrix, expected }
}

/// Renders E1 as printable tables.
pub fn tables() -> Vec<Table> {
    let r = run();
    let mut matrix = Table::new(
        "E1 / Fig. 1 — matching pennies with a hidden manipulation strategy",
        &["A\\B", "Heads", "Tails", "Manipulate"],
    );
    let rows = ["Heads", "Tails"];
    for (i, name) in rows.iter().enumerate() {
        let mut cells = vec![name.to_string()];
        for c in 0..3 {
            let (a, b) = r.matrix[i][c];
            cells.push(format!("({:+},{:+})", a as i64, b as i64));
        }
        matrix.row(cells);
    }
    matrix.note("paper Fig. 1, regenerated from the game definition");

    let mut expected = Table::new(
        "E1 / §5.1 — expected profits vs. A's uniform mixture",
        &["B plays", "E[A]", "E[B]"],
    );
    for (i, name) in ["Heads", "Tails", "Manipulate"].iter().enumerate() {
        let (ea, eb) = r.expected[i];
        expected.row(vec![name.to_string(), f3(ea), f3(eb)]);
    }
    expected.note("paper: manipulation moves B from 0 to +4, A from 0 to −4");
    vec![matrix, expected]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_fig1() {
        let r = run();
        assert_eq!(r.matrix[0], vec![(1.0, -1.0), (-1.0, 1.0), (1.0, -1.0)]);
        assert_eq!(r.matrix[1], vec![(-1.0, 1.0), (1.0, -1.0), (-9.0, 9.0)]);
    }

    #[test]
    fn expected_profits_match_section_5_1() {
        let r = run();
        assert_eq!(r.expected[0], (0.0, 0.0));
        assert_eq!(r.expected[1], (0.0, 0.0));
        assert_eq!(r.expected[2], (-4.0, 4.0));
    }

    #[test]
    fn tables_render() {
        for t in tables() {
            assert!(!t.render().is_empty());
        }
    }
}

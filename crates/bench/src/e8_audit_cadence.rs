//! E8 — ablation: per-play audits vs. end-of-epoch seed audits (§5.3).
//!
//! The paper implements "the simplest auditing approach; the agents audit
//! each other's actions in every round" and suggests, "for the sake of
//! efficiency", committing to the PRG seed and auditing only at the end of
//! a bounded sequence of rounds. This ablation quantifies the trade:
//! detection latency (and the honest agents' interim losses) versus audit
//! work, on the Fig. 1 manipulation.

use ga_games::matching_pennies::{manipulated_matching_pennies, MANIPULATE};
use game_authority::agent::Behavior;
use game_authority::authority::{Authority, AuthorityConfig};

use crate::table::{f3, Table};

/// One cadence's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CadencePoint {
    /// Epoch length (1 = per-play support audit).
    pub epoch_len: u64,
    /// Play at which the manipulator was punished.
    pub detected_at: Option<u64>,
    /// Honest agent A's cumulative loss until (and including) detection.
    pub honest_loss_until_detection: f64,
    /// Audit operations performed until detection: per-play support checks
    /// count one per audited play; an epoch seed audit counts the replayed
    /// transcript length.
    pub audit_ops: u64,
}

/// Runs the Fig. 1 manipulation under one audit cadence.
///
/// `epoch_len == 1` means the per-play support audit (the paper's default);
/// larger values defer all mixed-strategy checking to the epoch boundary.
pub fn run_cadence(epoch_len: u64, rounds: u64, seed: u64) -> CadencePoint {
    let game = manipulated_matching_pennies();
    let per_play = epoch_len == 1;
    let config = AuthorityConfig {
        epoch_len: if per_play { u64::MAX } else { epoch_len },
        seed,
        per_play_support_audit: per_play,
        ..AuthorityConfig::default()
    };
    let mut authority = Authority::new(
        &game,
        vec![
            Behavior::honest_mixed(vec![0.5, 0.5]),
            Behavior::hidden_manipulator(vec![0.5, 0.5, 0.0], MANIPULATE),
        ],
        config,
    );
    let reports = authority.play(rounds);
    let detected_at = reports
        .iter()
        .find(|r| r.punished.contains(&1))
        .map(|r| r.round);
    let horizon = detected_at.map_or(rounds, |d| d + 1);
    let honest_loss_until_detection: f64 = reports
        .iter()
        .take(horizon as usize)
        .map(|r| r.costs[0])
        .sum();
    let audit_ops = if per_play {
        horizon // one support check per play, per mixed agent
    } else {
        // One seed replay per elapsed epoch, each replaying epoch_len
        // samples.
        horizon.div_ceil(epoch_len) * epoch_len
    };
    CadencePoint {
        epoch_len,
        detected_at,
        honest_loss_until_detection,
        audit_ops,
    }
}

/// Runs the cadence sweep.
pub fn run(rounds: u64, seed: u64) -> Vec<CadencePoint> {
    [1u64, 2, 4, 8, 16, 32]
        .iter()
        .map(|&l| run_cadence(l, rounds, seed))
        .collect()
}

/// Renders E8.
pub fn tables(seed: u64) -> Vec<Table> {
    let points = run(128, seed);
    let mut t = Table::new(
        "E8 — ablation: audit cadence on the Fig. 1 manipulation (per-play vs epoch seed audit)",
        &[
            "epoch len",
            "detected at",
            "A's loss until detection",
            "audit ops",
        ],
    );
    for p in &points {
        t.row(vec![
            if p.epoch_len == 1 {
                "per-play".into()
            } else {
                p.epoch_len.to_string()
            },
            p.detected_at
                .map(|d| format!("play {d}"))
                .unwrap_or_else(|| "never".into()),
            f3(p.honest_loss_until_detection),
            p.audit_ops.to_string(),
        ]);
    }
    t.note("§5.3: deferring audits to the epoch boundary trades detection latency (≈4/play interim loss) for batched audit work");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_play_detects_immediately() {
        let p = run_cadence(1, 64, 3);
        assert_eq!(p.detected_at, Some(0));
        assert!(p.honest_loss_until_detection <= 10.0);
    }

    #[test]
    fn epoch_audit_detects_at_boundary() {
        for epoch in [4u64, 8] {
            let p = run_cadence(epoch, 64, 3);
            assert_eq!(
                p.detected_at,
                Some(epoch - 1),
                "deferred detection lands on the epoch boundary"
            );
            assert!(
                p.honest_loss_until_detection > (epoch as f64 - 1.0) * 2.0,
                "interim bleeding grows with the epoch: {p:?}"
            );
        }
    }

    #[test]
    fn latency_grows_with_epoch_length() {
        let points = run(128, 5);
        let latencies: Vec<u64> = points.iter().filter_map(|p| p.detected_at).collect();
        assert_eq!(latencies.len(), points.len(), "always detected");
        assert!(latencies.windows(2).all(|w| w[0] <= w[1]), "{latencies:?}");
    }
}

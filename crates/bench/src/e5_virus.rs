//! E5 — price of malice in the virus inoculation game (\[21\]) and its
//! collapse under the game authority.
//!
//! Three regimes on a `side × side` grid:
//!
//! 1. **baseline** — all agents honest-selfish: best-response dynamics to a
//!    pure equilibrium; per-capita honest cost is the reference.
//! 2. **malicious, unsupervised** — `k` malicious agents *claim* to be
//!    inoculated but stay insecure. Honest agents best-respond to the
//!    *claimed* profile; costs are then realized on the *actual* profile
//!    (enlarged insecure components).
//! 3. **malicious, supervised** — the authority's commit–reveal audit
//!    exposes the lie; the executive disconnects the liars (their cells are
//!    quarantined, acting as blocked cells for the spread), and honest
//!    agents re-equilibrate among themselves.
//!
//! The price of malice is the per-capita honest cost ratio vs. baseline.

use ga_game_theory::best_response::best_response;
use ga_game_theory::game::Game;
use ga_game_theory::profile::PureProfile;
use ga_games::virus_inoculation::{VirusGame, INOCULATE, RISK};

use crate::table::{f3, Table};

/// E5 outcome for one malicious count `k`.
#[derive(Debug, Clone, PartialEq)]
pub struct VirusPoint {
    /// Malicious agent count.
    pub k: usize,
    /// Per-capita honest cost, baseline (no malice).
    pub baseline: f64,
    /// Per-capita honest cost with `k` unsupervised malicious agents.
    pub unsupervised: f64,
    /// Per-capita honest cost with the authority supervising.
    pub supervised: f64,
    /// PoM without supervision.
    pub pom_unsupervised: f64,
    /// PoM with supervision.
    pub pom_supervised: f64,
}

/// Best-response dynamics over a *subset* of agents, with the rest pinned.
fn converge(
    game: &VirusGame,
    mut profile: PureProfile,
    free: &[usize],
    max_sweeps: usize,
) -> PureProfile {
    for _ in 0..max_sweeps {
        let mut changed = false;
        for &agent in free {
            let br = best_response(game, agent, &profile);
            if br != profile.action(agent) {
                profile = profile.with_action(agent, br);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    profile
}

/// Picks `k` malicious agents spread over the grid.
fn malicious_set(n: usize, k: usize) -> Vec<usize> {
    // Evenly strided picks keep them spread out (worst case for honest
    // neighbors, who rely on their claimed inoculation).
    (0..k).map(|i| (i * n) / k.max(1)).collect()
}

/// Runs one grid configuration for several malicious counts.
pub fn run(side: usize, cost_c: f64, loss_l: f64, ks: &[usize]) -> Vec<VirusPoint> {
    let game = VirusGame::new(side, cost_c, loss_l);
    let n = game.n();
    let all: Vec<usize> = (0..n).collect();

    // Baseline equilibrium among all agents.
    let baseline_profile = converge(&game, PureProfile::new(vec![RISK; n]), &all, 200);
    let per_capita_baseline = game.social_cost(&baseline_profile) / n as f64;

    ks.iter()
        .map(|&k| {
            let malicious = malicious_set(n, k);
            let honest: Vec<usize> = (0..n).filter(|i| !malicious.contains(i)).collect();

            // -- Unsupervised: honest best-respond to the *claimed* profile
            // (malicious appear inoculated)…
            let mut claimed = PureProfile::new(vec![RISK; n]);
            for &m in &malicious {
                claimed = claimed.with_action(m, INOCULATE);
            }
            let perceived = converge(&game, claimed, &honest, 200);
            // …but reality has the malicious insecure.
            let mut actual = perceived.clone();
            for &m in &malicious {
                actual = actual.with_action(m, RISK);
            }
            let honest_cost_unsup: f64 =
                honest.iter().map(|&i| game.cost(i, &actual)).sum::<f64>() / honest.len() as f64;

            // -- Supervised: liars disconnected; quarantined cells block
            // the spread (modelled as inoculated cells whose cost nobody
            // pays), honest re-equilibrate.
            let mut quarantined = PureProfile::new(vec![RISK; n]);
            for &m in &malicious {
                quarantined = quarantined.with_action(m, INOCULATE);
            }
            let supervised_profile = converge(&game, quarantined, &honest, 200);
            let honest_cost_sup: f64 = honest
                .iter()
                .map(|&i| game.cost(i, &supervised_profile))
                .sum::<f64>()
                / honest.len() as f64;

            VirusPoint {
                k,
                baseline: per_capita_baseline,
                unsupervised: honest_cost_unsup,
                supervised: honest_cost_sup,
                pom_unsupervised: honest_cost_unsup / per_capita_baseline,
                pom_supervised: honest_cost_sup / per_capita_baseline,
            }
        })
        .collect()
}

/// Renders E5.
pub fn tables() -> Vec<Table> {
    let points = run(6, 1.0, 36.0, &[0, 2, 4, 6, 9]);
    let mut t = Table::new(
        "E5 — price of malice in the virus inoculation game (6×6 grid, C=1, L=n)",
        &[
            "k malicious",
            "baseline/agent",
            "unsupervised/agent",
            "supervised/agent",
            "PoM unsup.",
            "PoM superv.",
        ],
    );
    for p in &points {
        t.row(vec![
            p.k.to_string(),
            f3(p.baseline),
            f3(p.unsupervised),
            f3(p.supervised),
            f3(p.pom_unsupervised),
            f3(p.pom_supervised),
        ]);
    }
    t.note("paper §5.4: auditing reduces the ability of dishonest agents to manipulate (PoM → ≈1)");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malice_hurts_and_authority_repairs() {
        let points = run(5, 1.0, 25.0, &[0, 3, 6]);
        let k0 = &points[0];
        assert!((k0.pom_unsupervised - 1.0).abs() < 1e-9, "k=0 is baseline");
        for p in &points[1..] {
            assert!(
                p.pom_unsupervised > 1.0,
                "malice degrades honest welfare: {p:?}"
            );
            assert!(
                p.pom_supervised < p.pom_unsupervised,
                "authority reduces PoM: {p:?}"
            );
        }
    }

    #[test]
    fn supervised_is_close_to_baseline() {
        let points = run(5, 1.0, 25.0, &[4]);
        let p = &points[0];
        assert!(
            p.pom_supervised < 1.5,
            "supervised PoM near 1: {}",
            p.pom_supervised
        );
    }

    #[test]
    fn malicious_set_is_spread_and_sized() {
        let set = malicious_set(36, 4);
        assert_eq!(set.len(), 4);
        assert_eq!(set, vec![0, 9, 18, 27]);
    }
}

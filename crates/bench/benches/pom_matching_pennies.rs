//! Criterion bench for E2: PoM reduction on the Fig. 1 game.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ga_bench::e2_pom_pennies;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2/pom_matching_pennies");
    for rounds in [50u64, 200] {
        g.bench_with_input(BenchmarkId::from_parameter(rounds), &rounds, |b, &r| {
            b.iter(|| std::hint::black_box(e2_pom_pennies::run(r, 7)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion bench for E1: regenerating Fig. 1 and the §5.1 expectation.

use criterion::{criterion_group, criterion_main, Criterion};
use ga_bench::e1_fig1;

fn bench(c: &mut Criterion) {
    c.bench_function("e1/fig1_regenerate", |b| {
        b.iter(|| std::hint::black_box(e1_fig1::run()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion bench for E7: RRA gap trajectories under the three regimes.

use criterion::{criterion_group, criterion_main, Criterion};
use ga_bench::e7_dynamics;

fn bench(c: &mut Criterion) {
    c.bench_function("e7/rra_dynamics", |b| {
        b.iter(|| std::hint::black_box(e7_dynamics::run(6, 3, &[1, 10, 100, 500], 9)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

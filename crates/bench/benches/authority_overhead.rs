//! Criterion bench for E6: per-consensus cost of each BA backend.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ga_agreement::harness::{run_consensus, Backend};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6/authority_overhead");
    for backend in Backend::ALL {
        for n in [4usize, 7] {
            let f = backend.max_faults(n).min(2);
            g.bench_with_input(
                BenchmarkId::new(backend.label(), n),
                &(backend, n, f),
                |b, &(backend, n, f)| {
                    b.iter(|| {
                        std::hint::black_box(run_consensus(backend, n, f, &[], |i| i as u64 % 2, 1))
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion bench for E4: SSBA convergence from arbitrary configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ga_bench::e4_ssba;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4/ssba_convergence");
    g.sample_size(10);
    for (n, f) in [(4usize, 1usize), (7, 2)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_f{f}")),
            &(n, f),
            |b, &(n, f)| {
                b.iter(|| std::hint::black_box(e4_ssba::run_convergence(&[(n, f)], 2, 300_000, 5)))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

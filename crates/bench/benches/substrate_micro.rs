//! Micro-benchmarks of the substrates the authority's per-play cost is
//! built from: hashing, commitments, committed-PRG audits, and one
//! consensus of each backend via the pure executor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ga_agreement::consensus::{DolevStrongConsensus, OmConsensus};
use ga_agreement::executor::{no_tamper, run_pure};
use ga_agreement::king::PhaseKing;
use ga_bench as _;
use ga_crypto::commitment::Commitment;
use ga_crypto::mac::KeyRing;
use ga_crypto::prg::CommittedPrg;
use ga_crypto::sha256::Sha256;

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/crypto");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| std::hint::black_box(Sha256::digest(d)))
        });
    }
    g.bench_function("commit+verify", |b| {
        b.iter(|| {
            let (c, o) = Commitment::commit(b"action-1", [7u8; 32]);
            std::hint::black_box(c.verify(b"action-1", &o).is_ok())
        })
    });
    g.bench_function("committed_prg_audit_16", |b| {
        let mut cp = CommittedPrg::new([5u8; 32], [9u8; 32]);
        let w = vec![0.5, 0.5];
        let transcript: Vec<(Vec<f64>, usize)> =
            (0..16).map(|_| (w.clone(), cp.sample(&w))).collect();
        b.iter(|| {
            std::hint::black_box(CommittedPrg::verify_samples(
                cp.commitment(),
                cp.reveal(),
                &transcript,
            ))
        })
    });
    g.finish();
}

fn bench_consensus(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/consensus_n7_f2");
    g.bench_function("om", |b| {
        b.iter(|| {
            let instances: Vec<OmConsensus> = (0..7).map(|me| OmConsensus::new(me, 7, 2)).collect();
            std::hint::black_box(run_pure(instances, &[1, 1, 1, 1, 0, 0, 0], no_tamper))
        })
    });
    g.bench_function("phase_king_f1", |b| {
        b.iter(|| {
            let instances: Vec<PhaseKing> = (0..7).map(|me| PhaseKing::new(me, 7, 1)).collect();
            std::hint::black_box(run_pure(instances, &[1, 1, 1, 1, 0, 0, 0], no_tamper))
        })
    });
    g.bench_function("dolev_strong", |b| {
        let ring = KeyRing::generate(7, 1);
        b.iter(|| {
            let instances: Vec<DolevStrongConsensus> = (0..7)
                .map(|me| DolevStrongConsensus::new(me, 7, 2, ring.authenticator(me)))
                .collect();
            std::hint::black_box(run_pure(instances, &[1, 1, 1, 1, 0, 0, 0], no_tamper))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_crypto, bench_consensus);
criterion_main!(benches);

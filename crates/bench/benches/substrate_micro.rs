//! Micro-benchmarks of the substrates the authority's per-play cost is
//! built from: the simnet message substrate (zero-copy broadcast fan-out
//! and the steady-state step loop, against a naive `Vec<u8>`-clone
//! baseline), hashing, commitments, committed-PRG audits, and one
//! consensus of each backend via the pure executor.
//!
//! Run `scripts/bench_substrate.sh` to capture the substrate numbers as a
//! `BENCH_substrate.json` perf snapshot.

use bytes::Bytes;
use criterion::{
    criterion_group, criterion_main, record_metric, BenchmarkId, Criterion, Throughput,
};
use ga_agreement::consensus::{DolevStrongConsensus, OmConsensus};
use ga_agreement::executor::{no_tamper, run_pure};
use ga_agreement::king::PhaseKing;
use ga_bench as _;
use ga_crypto::commitment::Commitment;
use ga_crypto::mac::KeyRing;
use ga_crypto::prg::CommittedPrg;
use ga_crypto::sha256::Sha256;
use ga_simnet::prelude::*;

/// Fan-out size used by the substrate benches (the paper's default
/// complete graph on 64 processors has 63 recipients per broadcast).
const FANOUT: usize = 63;

/// Broadcasts a pre-built shared [`Bytes`] payload every pulse — the
/// zero-copy path: one refcount bump per recipient.
struct BytesBroadcaster {
    payload: Bytes,
}

impl Process for BytesBroadcaster {
    fn on_pulse(&mut self, ctx: &mut Context<'_>) {
        ctx.broadcast(self.payload.clone());
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Faithful re-implementation of the pre-zero-copy scheduler round — the
/// "before" side of the before/after comparison, kept here so future PRs
/// can still measure against it. Per round it: deep-clones the `Vec<u8>`
/// payload once per recipient, stages the whole round in one flat
/// `(from, to, payload)` vector, re-copies each payload into its `Bytes`
/// envelope on delivery, tears down and reallocates every inbox, checks
/// links by binary search, and derives the loss RNG unconditionally from a
/// `format!`ted label.
struct NaiveSubstrate {
    n: usize,
    adj: Vec<Vec<usize>>,
    inboxes: Vec<Vec<(usize, u64, Bytes)>>,
    payload: Vec<u8>,
    seed: u64,
    round: u64,
    delivered: u64,
}

impl NaiveSubstrate {
    fn new(n: usize, payload: Vec<u8>) -> NaiveSubstrate {
        NaiveSubstrate {
            n,
            adj: (0..n)
                .map(|i| (0..n).filter(|&j| j != i).collect())
                .collect(),
            inboxes: vec![Vec::new(); n],
            payload,
            seed: 0,
            round: 0,
            delivered: 0,
        }
    }

    fn step(&mut self) {
        let n = self.n;
        let inboxes = std::mem::replace(&mut self.inboxes, vec![Vec::new(); n]);
        let mut outgoing: Vec<(usize, usize, Vec<u8>)> = Vec::new();
        for (i, inbox) in inboxes.iter().enumerate() {
            std::hint::black_box(inbox);
            for &nb in &self.adj[i] {
                outgoing.push((i, nb, self.payload.clone()));
            }
        }
        let mut _loss_rng = ga_simnet::rng::labeled_rng(self.seed, &format!("loss-{}", self.round));
        for (from, to, payload) in outgoing {
            if to >= n || self.adj[from].binary_search(&to).is_err() {
                continue;
            }
            self.delivered += 1;
            self.inboxes[to].push((from, self.round, payload.into()));
        }
        self.round += 1;
    }
}

fn bench_substrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");

    // Pure fan-out cost: queueing one payload for 63 recipients, shared
    // `Bytes` vs a deep `Vec<u8>` clone per recipient, across payload
    // sizes. The refcount path is size-independent; the clone path
    // degrades with payload size.
    for size in [8usize, 256, 4096] {
        g.throughput(Throughput::Elements(FANOUT as u64));
        g.bench_with_input(
            BenchmarkId::new("fanout63_bytes", size),
            &size,
            |b, &size| {
                let payload = Bytes::from(vec![0x5Au8; size]);
                let mut queue: Vec<Bytes> = Vec::with_capacity(FANOUT);
                b.iter(|| {
                    queue.clear();
                    for _ in 0..FANOUT {
                        queue.push(payload.clone());
                    }
                    std::hint::black_box(queue.len())
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("fanout63_naive_vec_clone", size),
            &size,
            |b, &size| {
                let payload = vec![0x5Au8; size];
                let mut queue: Vec<Vec<u8>> = Vec::with_capacity(FANOUT);
                b.iter(|| {
                    queue.clear();
                    for _ in 0..FANOUT {
                        queue.push(payload.clone());
                    }
                    std::hint::black_box(queue.len())
                })
            },
        );
    }

    // Steady-state step loop: complete(n), every process broadcasts 8
    // bytes per pulse — n × (n-1) routed messages per step — on the
    // zero-copy substrate. n=64 is the paper's default population (and the
    // before/after anchor vs the naive substrate below); n=256/1024 form
    // the scaling series the sharded variants are measured against.
    for n in [64usize, 256, 1024] {
        g.throughput(Throughput::Elements((n * (n - 1)) as u64));
        g.bench_function(BenchmarkId::new("step_loop_bytes", format!("n{n}")), |b| {
            let mut sim = broadcaster_sim(n, 1);
            b.iter(|| {
                sim.step();
                std::hint::black_box(sim.round())
            })
        });
    }
    let n = 64;
    g.throughput(Throughput::Elements((n * (n - 1)) as u64));
    g.bench_function(
        BenchmarkId::new("step_loop_naive_substrate", format!("n{n}")),
        |b| {
            let mut naive = NaiveSubstrate::new(n, vec![0xEEu8; 8]);
            naive.step();
            naive.step();
            b.iter(|| {
                naive.step();
                std::hint::black_box(naive.delivered)
            })
        },
    );

    // Telemetry event plane priced against the sink-disabled default: the
    // same n=64 step loop with an `EventSink` attached, pushing one event
    // per delivered message plus round brackets into the ring. The
    // events-off cost is the `step_loop_bytes/n64` row above — with the
    // sink disabled the only telemetry residue on the hot path is an
    // `is_some()` branch per message, which must stay within noise of the
    // pre-telemetry substrate.
    g.throughput(Throughput::Elements((n * (n - 1)) as u64));
    g.bench_function(BenchmarkId::new("step_loop_events", format!("n{n}")), |b| {
        let mut sim = Simulation::builder(Topology::complete(n))
            .telemetry(TelemetryConfig::default())
            .build_with(|_| {
                Box::new(BytesBroadcaster {
                    payload: Bytes::from(vec![0xEEu8; 8]),
                }) as Box<dyn Process>
            });
        sim.run(2);
        b.iter(|| {
            sim.step();
            std::hint::black_box(sim.round())
        })
    });

    // Intra-run sharding at n=1024: the same step loop with the compute
    // phase fanned out over 1/2/4 persistent-pool workers. The s1 row
    // prices the shard plumbing itself (same code path, no batch
    // submission); speedup of s2/s4 over `step_loop_bytes/n1024` tracks
    // the host's core count — traces stay byte-identical regardless.
    let n = 1024;
    g.throughput(Throughput::Elements((n * (n - 1)) as u64));
    for shards in [1usize, 2, 4] {
        g.bench_function(
            BenchmarkId::new("step_loop_sharded", format!("n{n}s{shards}")),
            |b| {
                let mut sim = broadcaster_sim(n, shards);
                b.iter(|| {
                    sim.step();
                    std::hint::black_box(sim.round())
                })
            },
        );
    }

    // Small-n sharding on an explicit persistent pool: at n=64/256 the
    // old per-round `thread::scope` spawn (~tens of µs) used to eat the
    // entire parallel win; with the pool the only per-round cost is batch
    // submission, so these rows record whether small populations now
    // shard profitably (vs the serial `step_loop_bytes/n{64,256}` rows;
    // still bounded by the host's core count).
    for n in [64usize, 256] {
        let shards = 4;
        g.throughput(Throughput::Elements((n * (n - 1)) as u64));
        g.bench_function(
            BenchmarkId::new("step_loop_pooled", format!("n{n}s{shards}")),
            |b| {
                let runtime = Runtime::new(shards);
                let mut sim = Simulation::builder(Topology::complete(n))
                    .shards(shards)
                    .runtime(runtime)
                    .build_with(|_| {
                        Box::new(BytesBroadcaster {
                            payload: Bytes::from(vec![0xEEu8; 8]),
                        }) as Box<dyn Process>
                    });
                sim.run(2);
                b.iter(|| {
                    sim.step();
                    std::hint::black_box(sim.round())
                })
            },
        );
    }
    // Quiescence-aware sparse stepping: one token circulates a ring while
    // every other process sleeps, so the per-round cost is O(active) = O(1)
    // and must stay flat from n=4k to n=64k. (An O(n)-scan scheduler shows
    // a 16× jump between these two rows — that regression is the thing
    // this series pins.)
    for n in [4096usize, 65536] {
        g.throughput(Throughput::Elements(1));
        g.bench_function(BenchmarkId::new("step_loop_sparse", format!("n{n}")), |b| {
            let mut sim = token_walker_sim(Topology::ring(n));
            b.iter(|| {
                sim.step();
                std::hint::black_box(sim.round())
            })
        });
    }

    // Million-vertex grid: the paper-scale sparse population. One token
    // wanders a 1000×1000 grid; the row prices a round at n=10⁶ (it must
    // sit near the ring rows above, not scale with n), and the process's
    // peak RSS is recorded alongside so memory regressions in the CSR
    // topology or the inbox arena surface in the same snapshot.
    {
        let n = 1_000_000usize;
        g.throughput(Throughput::Elements(1));
        g.bench_function(BenchmarkId::new("step_loop_sparse", "grid1m"), |b| {
            let mut sim = token_walker_sim(Topology::grid(1000, 1000));
            assert_eq!(sim.pending_messages(), 1, "exactly one token in flight");
            assert_eq!(sim.quiescent_processes(), n - 1);
            b.iter(|| {
                sim.step();
                std::hint::black_box(sim.round())
            })
        });
        if let Some(rss) = peak_rss_bytes() {
            record_metric("substrate/step_loop_sparse/grid1m_peak_rss_bytes", rss);
        }
    }

    // Build path: constructing the paper-scale sparse topologies. The
    // streaming rows emit rows directly into one pre-sized CSR flat array
    // (no per-vertex `Vec` intermediates, no sort/dedup for family
    // constructors); the naive row is a faithful reimplementation of the
    // pre-streaming path — per-vertex `Vec<Vec<usize>>` adjacency, row
    // sort + dedup, then CSR flattening — kept as the "before" baseline
    // the ≥3x build-speed claim is measured against.
    g.throughput(Throughput::Elements(1));
    g.bench_function(BenchmarkId::new("build_grid1m", "streaming"), |b| {
        b.iter(|| std::hint::black_box(Topology::grid(1000, 1000).edge_count()))
    });
    g.bench_function(BenchmarkId::new("build_grid1m", "naive"), |b| {
        b.iter(|| std::hint::black_box(naive_grid_csr(1000, 1000)))
    });
    g.bench_function(BenchmarkId::new("build_ring1m", "streaming"), |b| {
        b.iter(|| std::hint::black_box(Topology::ring(1_000_000).edge_count()))
    });

    // Simulation build at n=10⁶: one slab arena vs 10⁶ separate boxes.
    // Both rows clone the same pre-built ring topology, so the delta is
    // purely the process-table (and side-table) construction cost.
    {
        let ring1m = Topology::ring(1_000_000);
        g.bench_function(BenchmarkId::new("build_sim1m", "slab"), |b| {
            let topology = &ring1m;
            b.iter(|| {
                let sim = Simulation::builder(topology.clone()).build_slab(|id| TokenWalker {
                    start: id.index() == 0,
                });
                std::hint::black_box(sim.len())
            })
        });
        g.bench_function(BenchmarkId::new("build_sim1m", "boxed"), |b| {
            let topology = &ring1m;
            b.iter(|| {
                let sim = Simulation::builder(topology.clone()).build_with(|id| {
                    Box::new(TokenWalker {
                        start: id.index() == 0,
                    }) as Box<dyn Process>
                });
                std::hint::black_box(sim.len())
            })
        });
    }

    // Dense activity at n=10⁵: every process broadcasts every round on a
    // ring, sharded over 4 pool workers — the active set is all of 0..n
    // and the topology never mutates, so the cached row pays the
    // degree-balanced bin-pack once while the replan baseline re-runs it
    // every round. Same trace either way; the gap is pure scheduler
    // overhead.
    {
        let n = 100_000usize;
        g.throughput(Throughput::Elements(n as u64));
        for (label, cache) in [("n100000", true), ("n100000_replan", false)] {
            g.bench_function(BenchmarkId::new("step_loop_dense_active", label), |b| {
                let runtime = Runtime::new(4);
                let mut sim = Simulation::builder(Topology::ring(n))
                    .shards(4)
                    .runtime(runtime)
                    .plan_cache(cache)
                    .build_slab(|_| BytesBroadcaster {
                        payload: Bytes::from_static(&[0xEE; 8]),
                    });
                sim.run(2);
                b.iter(|| {
                    sim.step();
                    std::hint::black_box(sim.round())
                })
            });
        }
    }
    g.finish();
}

/// The pre-streaming topology build path (see the build rows above): a
/// per-vertex `Vec<Vec<usize>>` adjacency for a w×h grid, sorted and
/// deduped per row, then flattened into CSR arrays.
fn naive_grid_csr(w: usize, h: usize) -> usize {
    let n = w * h;
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for r in 0..h {
        for c in 0..w {
            let i = r * w + c;
            if c + 1 < w {
                adj[i].push(i + 1);
                adj[i + 1].push(i);
            }
            if r + 1 < h {
                adj[i].push(i + w);
                adj[i + w].push(i);
            }
        }
    }
    let mut starts = Vec::with_capacity(n + 1);
    let mut flat = Vec::new();
    for row in &mut adj {
        row.sort_unstable();
        row.dedup();
        starts.push(flat.len());
        flat.extend_from_slice(row);
    }
    starts.push(flat.len());
    flat.len() / 2
}

/// Perpetually circulating token: the start process emits once, then every
/// process forwards an arriving token to a neighbor other than its sender.
/// Exactly one process is active per round at any n — the reference
/// workload for pricing quiescence-aware stepping.
struct TokenWalker {
    start: bool,
}

impl Process for TokenWalker {
    fn on_pulse(&mut self, ctx: &mut Context<'_>) {
        if self.start {
            self.start = false;
            let to = ctx.neighbors()[0];
            ctx.send(ProcessId(to), Bytes::from_static(&[0x70]));
            return;
        }
        if let Some(m) = ctx.inbox().first() {
            let from = m.from.index();
            let to = ctx
                .neighbors()
                .iter()
                .copied()
                .find(|&nb| nb != from)
                .unwrap_or(from);
            ctx.send(ProcessId(to), m.payload.clone());
        }
    }
    fn always_active(&self) -> bool {
        self.start
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A token-walker simulation on `topology`, warmed two rounds so the token
/// is in flight and the arena buffers are recycled.
fn token_walker_sim(topology: Topology) -> Simulation {
    let mut sim = Simulation::builder(topology).build_with(|id| {
        Box::new(TokenWalker {
            start: id.index() == 0,
        }) as Box<dyn Process>
    });
    sim.run(2);
    sim
}

/// Linux peak resident set (`VmHWM`) in bytes; `None` off-Linux.
fn peak_rss_bytes() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let kb: f64 = status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()?;
    Some(kb * 1024.0)
}

/// A complete-graph simulation of 8-byte broadcasters, warmed into steady
/// state (recycled buffers populated; sharded sims on the process-wide
/// pool) so iterations measure only the per-round cost.
fn broadcaster_sim(n: usize, shards: usize) -> Simulation {
    let mut sim = Simulation::builder(Topology::complete(n))
        .shards(shards)
        .build_with(|_| {
            Box::new(BytesBroadcaster {
                payload: Bytes::from(vec![0xEEu8; 8]),
            }) as Box<dyn Process>
        });
    sim.run(2);
    sim
}

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/crypto");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| std::hint::black_box(Sha256::digest(d)))
        });
    }
    g.bench_function("commit+verify", |b| {
        b.iter(|| {
            let (c, o) = Commitment::commit(b"action-1", [7u8; 32]);
            std::hint::black_box(c.verify(b"action-1", &o).is_ok())
        })
    });
    g.bench_function("committed_prg_audit_16", |b| {
        let mut cp = CommittedPrg::new([5u8; 32], [9u8; 32]);
        let w = vec![0.5, 0.5];
        let transcript: Vec<(Vec<f64>, usize)> =
            (0..16).map(|_| (w.clone(), cp.sample(&w))).collect();
        b.iter(|| {
            std::hint::black_box(CommittedPrg::verify_samples(
                cp.commitment(),
                cp.reveal(),
                &transcript,
            ))
        })
    });
    g.finish();
}

fn bench_consensus(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/consensus_n7_f2");
    g.bench_function("om", |b| {
        b.iter(|| {
            let instances: Vec<OmConsensus> = (0..7).map(|me| OmConsensus::new(me, 7, 2)).collect();
            std::hint::black_box(run_pure(instances, &[1, 1, 1, 1, 0, 0, 0], no_tamper))
        })
    });
    g.bench_function("phase_king_f1", |b| {
        b.iter(|| {
            let instances: Vec<PhaseKing> = (0..7).map(|me| PhaseKing::new(me, 7, 1)).collect();
            std::hint::black_box(run_pure(instances, &[1, 1, 1, 1, 0, 0, 0], no_tamper))
        })
    });
    g.bench_function("dolev_strong", |b| {
        let ring = KeyRing::generate(7, 1);
        b.iter(|| {
            let instances: Vec<DolevStrongConsensus> = (0..7)
                .map(|me| DolevStrongConsensus::new(me, 7, 2, ring.authenticator(me)))
                .collect();
            std::hint::black_box(run_pure(instances, &[1, 1, 1, 1, 0, 0, 0], no_tamper))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_substrate, bench_crypto, bench_consensus);
criterion_main!(benches);

//! Criterion bench for E3: RRA multi-round anarchy cost sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ga_bench::e3_rra;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3/rra_anarchy_cost");
    for (n, b) in [(4usize, 2usize), (8, 4), (16, 8)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_b{b}")),
            &(n, b),
            |bench, &(n, b)| {
                bench.iter(|| std::hint::black_box(e3_rra::run(&[(n, b)], &[1000], 3)))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Criterion bench for E8: audit-cadence ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ga_bench::e8_audit_cadence;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8/audit_cadence");
    for epoch in [1u64, 8, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(epoch), &epoch, |b, &e| {
            b.iter(|| std::hint::black_box(e8_audit_cadence::run_cadence(e, 64, 3)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

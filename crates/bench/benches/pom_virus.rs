//! Criterion bench for E5: PoM in the virus inoculation game.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ga_bench::e5_virus;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5/pom_virus");
    for side in [4usize, 6] {
        g.bench_with_input(BenchmarkId::from_parameter(side), &side, |b, &side| {
            let l = (side * side) as f64;
            b.iter(|| std::hint::black_box(e5_virus::run(side, 1.0, l, &[0, 2, 4])))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! The digital clock rule.
//!
//! Every pulse, each processor broadcasts its clock value and then applies
//! [`ClockRule::step`] to the received multiset:
//!
//! * **Adopt** — if some value `v` is supported by at least `n − f`
//!   distinct processors (own value included), set the clock to
//!   `(v + 1) mod M`. Two different values can never both reach `n − f`
//!   support when `n > 3f` (they would need `2(n−f) ≤ n` ⟺ `n ≤ 2f`), so
//!   the adopted value is unique — this branch gives deterministic
//!   *closure*: synchronized honest clocks tick in unison forever.
//! * **Randomize** — otherwise flip a private coin: keep the current value
//!   or reset to 0. Once every honest processor happens to reset in the
//!   same pulse (or a coalition of `n − 2f` honest values aligns enough to
//!   drag the rest through the adopt branch), the system enters the
//!   synchronized regime. Expected convergence is exponential in the worst
//!   case, matching the randomized flavor of the paper's reference \[11\].

use rand::Rng;

/// The per-processor clock state and update rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockRule {
    /// Number of processors.
    n: usize,
    /// Fault bound.
    f: usize,
    /// Clock modulus `M`.
    modulus: u64,
    /// Current clock value in `0..modulus`.
    value: u64,
}

impl ClockRule {
    /// Creates a clock with an initial value.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 3f` and `modulus ≥ 2`; the initial value is
    /// reduced mod `modulus`.
    pub fn new(n: usize, f: usize, modulus: u64, initial: u64) -> ClockRule {
        assert!(n > 3 * f, "clock synchronization requires n > 3f");
        assert!(modulus >= 2, "need at least two clock values");
        ClockRule {
            n,
            f,
            modulus,
            value: initial % modulus,
        }
    }

    /// The current clock value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The modulus `M`.
    pub fn modulus(&self) -> u64 {
        self.modulus
    }

    /// Transient-fault hook: force an arbitrary value.
    pub fn set_arbitrary(&mut self, value: u64) {
        self.value = value % self.modulus;
    }

    /// Applies one pulse given `received` clock claims (at most one per
    /// other processor; own value is counted automatically) and private
    /// randomness. Returns the new clock value.
    pub fn step(&mut self, received: &[u64], rng: &mut impl Rng) -> u64 {
        // Tally support per value, own value included.
        let mut counts: std::collections::HashMap<u64, usize> = Default::default();
        *counts.entry(self.value).or_insert(0) += 1;
        for &v in received.iter().take(self.n - 1) {
            *counts.entry(v % self.modulus).or_insert(0) += 1;
        }
        let threshold = self.n - self.f;
        let supported = counts
            .iter()
            .filter(|&(_, &c)| c >= threshold)
            .map(|(&v, _)| v)
            .max();
        self.value = match supported {
            Some(v) => (v + 1) % self.modulus,
            None => {
                if rng.gen_bool(0.5) {
                    0
                } else {
                    self.value
                }
            }
        };
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn synchronized_clocks_increment_together() {
        // n=4, f=1: all honest at 5 → everyone sees ≥3 fives → 6.
        let mut c = ClockRule::new(4, 1, 10, 5);
        let next = c.step(&[5, 5, 9], &mut rng());
        assert_eq!(next, 6, "byzantine 9 cannot break the quorum");
    }

    #[test]
    fn wraparound_at_modulus() {
        let mut c = ClockRule::new(4, 1, 10, 9);
        assert_eq!(c.step(&[9, 9, 9], &mut rng()), 0);
    }

    #[test]
    fn closure_holds_under_any_byzantine_vote() {
        // Whatever the f=1 adversary claims, 3 honest 7s carry the quorum.
        for byz_claim in [0u64, 6, 7, 8, 9] {
            let mut c = ClockRule::new(4, 1, 10, 7);
            assert_eq!(c.step(&[7, 7, byz_claim], &mut rng()), 8);
        }
    }

    #[test]
    fn unsupported_values_randomize_to_zero_or_keep() {
        let mut saw_zero = false;
        let mut saw_keep = false;
        for seed in 0..64 {
            let mut c = ClockRule::new(4, 1, 10, 5);
            let mut r = StdRng::seed_from_u64(seed);
            let next = c.step(&[1, 2, 3], &mut r);
            match next {
                0 => saw_zero = true,
                5 => saw_keep = true,
                other => panic!("unexpected clock value {other}"),
            }
        }
        assert!(saw_zero && saw_keep, "both coin outcomes reachable");
    }

    #[test]
    fn byzantine_cannot_fake_quorum_alone() {
        // f=1 of n=4: one loud liar repeating 3 claims of "2" — counts as
        // received entries but `received` is capped at n-1 = 3 values; a
        // single sender appears once in the caller's dedup, here we emulate
        // the cap only.
        let mut c = ClockRule::new(4, 1, 10, 5);
        // Liar contributes one claim; two other honest at 1 and 2.
        let next = c.step(&[2, 1, 2], &mut rng());
        assert_ne!(next, 3, "support 2 < n-f=3 must not adopt");
    }

    #[test]
    fn set_arbitrary_reduces_mod_m() {
        let mut c = ClockRule::new(4, 1, 10, 0);
        c.set_arbitrary(123);
        assert_eq!(c.value(), 3);
    }

    #[test]
    #[should_panic(expected = "n > 3f")]
    fn rejects_bad_resilience() {
        ClockRule::new(3, 1, 10, 0);
    }

    #[test]
    fn two_values_cannot_both_have_quorum() {
        // Structural: threshold n-f with n>3f means a second quorum value
        // is impossible; adopting max() is thus unambiguous. Check the
        // tally picks the quorum value, not a larger unsupported one.
        let mut c = ClockRule::new(7, 2, 16, 4);
        // 5 processors say 4 (incl. self), liars say 15, 15.
        let next = c.step(&[4, 4, 4, 4, 15, 15], &mut rng());
        assert_eq!(next, 5);
    }
}

//! The clock-synchronization simulator process.

use ga_agreement::wire::{Reader, Writer};
use ga_simnet::prelude::*;
use rand::Rng;

use crate::clock::ClockRule;
use crate::tags;

/// Runs a [`ClockRule`] over `ga-simnet`: broadcasts the clock every pulse
/// and applies the rule to what arrived.
///
/// State is scrambleable for transient-fault experiments.
#[derive(Debug, Clone)]
pub struct ClockProcess {
    rule: ClockRule,
    n: usize,
}

impl ClockProcess {
    /// Creates the process for one processor.
    pub fn new(n: usize, f: usize, modulus: u64, initial: u64) -> ClockProcess {
        ClockProcess {
            rule: ClockRule::new(n, f, modulus, initial),
            n,
        }
    }

    /// Current clock value.
    pub fn value(&self) -> u64 {
        self.rule.value()
    }

    /// Encodes a clock announcement.
    pub fn encode(value: u64) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(tags::CLOCK);
        w.put_u64(value);
        w.finish()
    }

    /// Decodes a clock announcement (None for foreign/garbled payloads).
    pub fn decode(payload: &[u8]) -> Option<u64> {
        let mut r = Reader::new(payload);
        if r.get_u8()? != tags::CLOCK {
            return None;
        }
        let v = r.get_u64()?;
        r.is_exhausted().then_some(v)
    }
}

impl Process for ClockProcess {
    fn on_pulse(&mut self, ctx: &mut Context<'_>) {
        // One claim per sender: Byzantine floods must not multiply votes.
        let mut claims: Vec<Option<u64>> = vec![None; self.n];
        for m in ctx.inbox() {
            if let Some(v) = Self::decode(m.bytes()) {
                let idx = m.from.index();
                if idx < self.n && claims[idx].is_none() {
                    claims[idx] = Some(v);
                }
            }
        }
        let received: Vec<u64> = claims.into_iter().flatten().collect();
        let rng = ctx.rng();
        self.rule.step(&received, rng);
        ctx.broadcast(Self::encode(self.rule.value()));
    }

    fn scramble(&mut self, rng: &mut rand::rngs::StdRng) {
        self.rule.set_arbitrary(rng.gen());
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "clock-sync"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trip() {
        let p = ClockProcess::encode(17);
        assert_eq!(ClockProcess::decode(&p), Some(17));
        assert_eq!(ClockProcess::decode(b"junk"), None);
        assert_eq!(ClockProcess::decode(&[]), None);
    }

    #[test]
    fn synchronized_start_stays_synchronized() {
        let n = 4;
        let mut sim = Simulation::builder(Topology::complete(n))
            .seed(1)
            .build_with(|_| Box::new(ClockProcess::new(n, 1, 8, 0)) as Box<dyn Process>);
        // Pulse 0 has empty inboxes: no quorum visible, clocks may reset to
        // 0 or keep 0 — both are 0, so from pulse 1 on the quorum branch
        // drives everything.
        sim.run(10);
        let values: Vec<u64> = (0..n)
            .map(|i| {
                sim.process_as::<ClockProcess>(ProcessId(i))
                    .unwrap()
                    .value()
            })
            .collect();
        assert!(values.windows(2).all(|w| w[0] == w[1]), "{values:?}");
    }

    #[test]
    fn clock_advances_once_per_pulse_when_synchronized() {
        let n = 4;
        let mut sim = Simulation::builder(Topology::complete(n))
            .seed(2)
            .build_with(|_| Box::new(ClockProcess::new(n, 1, 100, 0)) as Box<dyn Process>);
        sim.run(5);
        let v5 = sim
            .process_as::<ClockProcess>(ProcessId(0))
            .unwrap()
            .value();
        sim.run(3);
        let v8 = sim
            .process_as::<ClockProcess>(ProcessId(0))
            .unwrap()
            .value();
        assert_eq!(v8, v5 + 3, "one tick per pulse in the synchronized regime");
    }

    #[test]
    fn scramble_changes_value() {
        use rand::SeedableRng;
        let mut p = ClockProcess::new(4, 1, 1 << 30, 0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        p.scramble(&mut rng);
        // With modulus 2^30 a random value is almost surely nonzero.
        assert_ne!(p.value(), 0);
    }
}

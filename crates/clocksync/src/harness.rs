//! Measurement harnesses for convergence (Lemma 2) and closure (Lemma 3).

use ga_agreement::consensus::OmConsensus;
use ga_agreement::traits::BaInstance;
use ga_agreement::Value;
use ga_simnet::adversary::Adversary;
use ga_simnet::adversary::ByzantineProcess;
use ga_simnet::prelude::*;
use rand::Rng;

use crate::process::ClockProcess;
use crate::ssba::SsbaProcess;

/// A Byzantine strategy speaking the clock protocol: sends a *different
/// random but well-formed* clock claim to every neighbor, every pulse —
/// much stronger than random noise, which mostly fails to decode.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClockEquivocator;

impl Adversary for ClockEquivocator {
    fn act(&mut self, ctx: &mut Context<'_>) {
        let neighbors: Vec<usize> = ctx.neighbors().to_vec();
        for nb in neighbors {
            let v = ctx.rng().gen_range(0..64);
            ctx.send(ProcessId(nb), ClockProcess::encode(v));
        }
    }

    fn name(&self) -> &'static str {
        "clock-equivocator"
    }
}

/// Builds a clock-sync system of `n` processors (`f` budgeted faults, the
/// last `byzantine_count` of them actively equivocating), scrambles every
/// honest clock, and counts pulses until all honest clocks agree.
///
/// Returns `None` if agreement is not reached within a generous bound
/// (the rule is randomized; the paper's own bound is exponential-flavored).
pub fn measure_convergence(n: usize, f: usize, modulus: u64, seed: u64) -> Option<u64> {
    measure_convergence_with(n, f, f, modulus, seed, 200_000)
}

/// [`measure_convergence`] with explicit Byzantine count and pulse budget.
pub fn measure_convergence_with(
    n: usize,
    f: usize,
    byzantine_count: usize,
    modulus: u64,
    seed: u64,
    max_pulses: u64,
) -> Option<u64> {
    assert!(byzantine_count <= f, "byzantine count within fault budget");
    let byzantine: Vec<usize> = (n - byzantine_count..n).collect();
    let mut sim = Simulation::builder(Topology::complete(n))
        .seed(seed)
        .build_with(|id| {
            if byzantine.contains(&id.index()) {
                Box::new(ByzantineProcess::new(Box::new(ClockEquivocator))) as Box<dyn Process>
            } else {
                Box::new(ClockProcess::new(n, f, modulus, 0))
            }
        });
    // Arbitrary starting configuration: scramble every honest clock and the
    // channels.
    sim.inject(&TransientFault::total(n, seed ^ 0xFA17));

    let honest: Vec<usize> = (0..n - byzantine_count).collect();
    let synced = |sim: &Simulation| {
        let values: Vec<u64> = honest
            .iter()
            .map(|&i| {
                sim.process_as::<ClockProcess>(ProcessId(i))
                    .map(|p| p.value())
                    .unwrap_or(u64::MAX)
            })
            .collect();
        values.windows(2).all(|w| w[0] == w[1])
    };
    sim.run_until(max_pulses, |s| synced(s))
}

/// Result of an SSBA period run (see [`run_ssba`]).
#[derive(Debug, Clone)]
pub struct SsbaReport {
    /// Per-honest-process logs of completed agreement decisions.
    pub logs: Vec<Vec<Value>>,
    /// Ids that were Byzantine.
    pub byzantine: Vec<usize>,
    /// Pulses executed.
    pub pulses: u64,
}

impl SsbaReport {
    /// Whether all honest logs share an identical suffix of `k` decisions
    /// (the steady-state closure property).
    pub fn common_suffix(&self, k: usize) -> bool {
        if self.logs.iter().any(|l| l.len() < k) {
            return false;
        }
        let tails: Vec<&[Value]> = self.logs.iter().map(|l| &l[l.len() - k..]).collect();
        tails.windows(2).all(|w| w[0] == w[1])
    }
}

/// Runs SSBA (OM-consensus backend) for `pulses` pulses with an optional
/// total transient fault injected at pulse `fault_at`.
pub fn run_ssba(
    n: usize,
    f: usize,
    byzantine_count: usize,
    pulses: u64,
    fault_at: Option<u64>,
    seed: u64,
) -> SsbaReport {
    assert!(byzantine_count <= f);
    let byzantine: Vec<usize> = (n - byzantine_count..n).collect();
    let rounds = OmConsensus::new(0, n, f).rounds();
    let modulus = rounds + 2;
    let mut sim = Simulation::builder(Topology::complete(n))
        .seed(seed)
        .build_with(|id| {
            if byzantine.contains(&id.index()) {
                Box::new(ByzantineProcess::new(Box::new(ClockEquivocator))) as Box<dyn Process>
            } else {
                Box::new(SsbaProcess::new(
                    n,
                    f,
                    modulus,
                    Box::new(OmConsensus::new(id.index(), n, f)),
                    1 + id.index() as u64,
                ))
            }
        });
    match fault_at {
        Some(at) if at < pulses => {
            sim.run(at);
            sim.inject(&TransientFault::total(n, seed ^ 0xBAD));
            sim.run(pulses - at);
        }
        _ => sim.run(pulses),
    }
    let logs = (0..n - byzantine_count)
        .map(|i| {
            sim.process_as::<SsbaProcess>(ProcessId(i))
                .unwrap()
                .agreements()
                .to_vec()
        })
        .collect();
    SsbaReport {
        logs,
        byzantine,
        pulses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convergence_without_byzantine() {
        let pulses = measure_convergence_with(4, 1, 0, 8, 11, 100_000).expect("converges");
        assert!(pulses < 50_000, "pulses={pulses}");
    }

    #[test]
    fn convergence_with_equivocator() {
        let pulses = measure_convergence(4, 1, 8, 13).expect("converges despite equivocator");
        assert!(pulses < 100_000, "pulses={pulses}");
    }

    #[test]
    fn convergence_larger_system() {
        let pulses = measure_convergence_with(7, 2, 1, 8, 17, 200_000).expect("converges");
        assert!(pulses < 200_000, "pulses={pulses}");
    }

    #[test]
    fn ssba_steady_state_has_common_decisions() {
        let report = run_ssba(4, 1, 1, 300, None, 21);
        assert!(report.common_suffix(2), "{:?}", report.logs);
    }

    #[test]
    fn ssba_recovers_from_fault() {
        let report = run_ssba(4, 1, 0, 800, Some(100), 23);
        assert!(report.common_suffix(2), "{:?}", report.logs);
        assert!(report.logs[0].len() >= 3);
    }
}

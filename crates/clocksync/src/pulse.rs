//! The Byzantine common pulse generator.
//!
//! §3.3: "we use a Byzantine common pulse generator (similar to the one of
//! \[11\]) to synchronize the different services … the Byzantine common
//! pulse generator allows the system to repeat a sequence of activating the
//! different instantiations of the Byzantine agreement protocol."
//!
//! [`PulseGenerator`] is the thin event layer over [`ClockRule`]: it
//! reports *wraps* (the clock reaching its designated start value) so a
//! consumer can key "start a new play / a new BA activation" off them —
//! exactly what [`SsbaProcess`](crate::ssba::SsbaProcess) and the
//! distributed authority do with their inline clocks.

use ga_simnet::prelude::*;
use rand::Rng;

use crate::clock::ClockRule;
use crate::process::ClockProcess;

/// What one generator step observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PulseEvent {
    /// The clock wrapped to the start value: a new macro-period begins.
    Wrap,
    /// An ordinary tick within the period.
    Tick {
        /// The position inside the period (the clock value).
        position: u64,
    },
}

/// A wrap-detecting wrapper around the self-stabilizing clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PulseGenerator {
    clock: ClockRule,
    /// The clock value treated as the period start (the paper uses 1).
    start_value: u64,
    /// Completed periods observed (resets never count).
    periods: u64,
}

impl PulseGenerator {
    /// Creates a generator over a clock of size `modulus`, firing
    /// [`PulseEvent::Wrap`] whenever the synchronized value reaches
    /// `start_value`.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 3f`, `modulus ≥ 2` and
    /// `start_value < modulus`.
    pub fn new(n: usize, f: usize, modulus: u64, start_value: u64) -> PulseGenerator {
        assert!(start_value < modulus, "start value must be a clock value");
        PulseGenerator {
            clock: ClockRule::new(n, f, modulus, 0),
            start_value,
            periods: 0,
        }
    }

    /// Steps the underlying clock with this round's received claims and
    /// private randomness; reports whether this step wrapped.
    pub fn step(&mut self, received: &[u64], rng: &mut impl Rng) -> PulseEvent {
        let value = self.clock.step(received, rng);
        if value == self.start_value {
            self.periods += 1;
            PulseEvent::Wrap
        } else {
            PulseEvent::Tick { position: value }
        }
    }

    /// The current clock value (to broadcast to peers).
    pub fn value(&self) -> u64 {
        self.clock.value()
    }

    /// Number of wraps observed so far.
    pub fn periods(&self) -> u64 {
        self.periods
    }

    /// Transient-fault hook.
    pub fn set_arbitrary(&mut self, value: u64) {
        self.clock.set_arbitrary(value);
    }
}

/// Runs a [`PulseGenerator`] over `ga-simnet`: broadcasts the clock value
/// every pulse (the same [`tags::CLOCK`](crate::tags::CLOCK) wire format
/// as [`ClockProcess`]) and steps the generator on what arrived — the
/// simulator citizen the `stabilize` scenario suite sweeps.
///
/// State is scrambleable for transient-fault experiments: a fault leaves
/// the underlying clock at an arbitrary value, from which the generator
/// must re-synchronize before wraps are trustworthy again.
#[derive(Debug, Clone)]
pub struct PulseProcess {
    generator: PulseGenerator,
    n: usize,
}

impl PulseProcess {
    /// Creates the process for one processor (same contracts as
    /// [`PulseGenerator::new`]).
    pub fn new(n: usize, f: usize, modulus: u64, start_value: u64) -> PulseProcess {
        PulseProcess {
            generator: PulseGenerator::new(n, f, modulus, start_value),
            n,
        }
    }

    /// Current clock value.
    pub fn value(&self) -> u64 {
        self.generator.value()
    }

    /// Number of wraps observed so far.
    pub fn periods(&self) -> u64 {
        self.generator.periods()
    }
}

impl Process for PulseProcess {
    fn on_pulse(&mut self, ctx: &mut Context<'_>) {
        // One claim per sender: Byzantine floods must not multiply votes.
        let mut claims: Vec<Option<u64>> = vec![None; self.n];
        for m in ctx.inbox() {
            if let Some(v) = ClockProcess::decode(m.bytes()) {
                let idx = m.from.index();
                if idx < self.n && claims[idx].is_none() {
                    claims[idx] = Some(v);
                }
            }
        }
        let received: Vec<u64> = claims.into_iter().flatten().collect();
        let rng = ctx.rng();
        self.generator.step(&received, rng);
        ctx.broadcast(ClockProcess::encode(self.generator.value()));
    }

    fn scramble(&mut self, rng: &mut rand::rngs::StdRng) {
        self.generator.set_arbitrary(rng.gen());
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "pulse-generator"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn wraps_once_per_period_when_synchronized() {
        // 4 synchronized generators; drive one of them with the claims the
        // others would send (all equal).
        let mut g = PulseGenerator::new(4, 1, 5, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let mut wraps = 0;
        let mut value = 0u64;
        for _ in 0..20 {
            let claims = [value, value, value];
            if g.step(&claims, &mut rng) == PulseEvent::Wrap {
                wraps += 1;
            }
            value = g.value();
        }
        assert_eq!(wraps, 4, "one wrap per 5-pulse period");
        assert_eq!(g.periods(), 4);
    }

    #[test]
    fn tick_reports_position() {
        let mut g = PulseGenerator::new(4, 1, 8, 1);
        let mut rng = StdRng::seed_from_u64(2);
        // All peers at 2 → adopt 3: a tick at position 3.
        let e = g.step(&[2, 2, 2], &mut rng);
        assert_eq!(e, PulseEvent::Tick { position: 3 });
    }

    #[test]
    fn wrap_fires_on_start_value() {
        let mut g = PulseGenerator::new(4, 1, 8, 1);
        let mut rng = StdRng::seed_from_u64(3);
        // Peers at 0 → adopt 1 = start value.
        assert_eq!(g.step(&[0, 0, 0], &mut rng), PulseEvent::Wrap);
    }

    #[test]
    #[should_panic(expected = "start value")]
    fn start_value_must_be_in_range() {
        PulseGenerator::new(4, 1, 4, 4);
    }

    #[test]
    fn pulse_process_wraps_in_unison_over_simnet() {
        let n = 4;
        let mut sim = Simulation::builder(Topology::complete(n))
            .seed(4)
            .build_with(|_| Box::new(PulseProcess::new(n, 1, 5, 1)) as Box<dyn Process>);
        // Synchronized start: every generator sees the quorum and wraps
        // once per 5-pulse period.
        sim.run(21);
        let periods: Vec<u64> = (0..n)
            .map(|i| {
                sim.process_as::<PulseProcess>(ProcessId(i))
                    .unwrap()
                    .periods()
            })
            .collect();
        assert!(periods.iter().all(|&p| p >= 3), "{periods:?}");
        assert!(periods.windows(2).all(|w| w[0] == w[1]), "{periods:?}");
    }

    #[test]
    fn pulse_process_scramble_changes_value() {
        let mut p = PulseProcess::new(4, 1, 1 << 30, 1);
        let mut rng = StdRng::seed_from_u64(3);
        Process::scramble(&mut p, &mut rng);
        assert_ne!(p.value(), 0, "random value almost surely nonzero");
    }
}

//! SSBA — the self-stabilizing Byzantine agreement composition
//! (Theorem 1).
//!
//! "The self-stabilizing Byzantine agreement algorithm is a composition of
//! two distributed algorithms. We use the self-stabilizing Byzantine clock
//! synchronization algorithm of \[11\]. Whenever the clock value reaches the
//! value 1, the self-stabilizing Byzantine agreement algorithm invokes the
//! Byzantine agreement protocol (BAP) … We take the clock size M to be
//! large enough to allow exactly one Byzantine agreement." (§4)
//!
//! [`SsbaProcess`] implements exactly that loop. The two lemmas become
//! executable properties:
//!
//! * **Convergence (Lemma 2)** — from an arbitrary configuration (scrambled
//!   clocks, misaligned BA epochs, garbage in flight), within finitely many
//!   pulses all clocks agree; the next wrap to 1 then starts a *clean* BA.
//! * **Closure (Lemma 3)** — once synchronized, every period of `M` pulses
//!   contains exactly one complete agreement, forever.

use bytes::Bytes;
use ga_agreement::traits::BaInstance;
use ga_agreement::wire::{Reader, Writer};
use ga_agreement::Value;
use ga_simnet::prelude::*;
use rand::Rng;

use crate::clock::ClockRule;
use crate::process::ClockProcess;
use crate::tags;

/// The composed clock + BA process of Theorem 1.
pub struct SsbaProcess {
    clock: ClockRule,
    n: usize,
    instance: Box<dyn BaInstance>,
    /// `Some(r)` while an agreement is in flight and has executed relative
    /// round `r`.
    ba_round: Option<u64>,
    /// The input contributed to every agreement activation.
    input: Value,
    /// Log of completed agreement decisions, in order.
    agreements: Vec<Value>,
}

impl std::fmt::Debug for SsbaProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SsbaProcess")
            .field("clock", &self.clock.value())
            .field("ba_round", &self.ba_round)
            .field("agreements", &self.agreements.len())
            .finish_non_exhaustive()
    }
}

impl SsbaProcess {
    /// Composes a clock of modulus `modulus` with a BA `instance`.
    ///
    /// # Panics
    ///
    /// Panics unless `modulus ≥ instance.rounds() + 1` — the paper's "large
    /// enough to allow exactly one Byzantine agreement" — and `n > 3f`
    /// (inherited from the clock rule).
    pub fn new(
        n: usize,
        f: usize,
        modulus: u64,
        instance: Box<dyn BaInstance>,
        input: Value,
    ) -> SsbaProcess {
        assert!(
            modulus > instance.rounds(),
            "clock modulus must fit one full agreement (need ≥ {})",
            instance.rounds() + 1
        );
        SsbaProcess {
            clock: ClockRule::new(n, f, modulus, 0),
            n,
            instance,
            ba_round: None,
            input,
            agreements: Vec::new(),
        }
    }

    /// Current clock value.
    pub fn clock_value(&self) -> u64 {
        self.clock.value()
    }

    /// Completed agreement decisions so far.
    pub fn agreements(&self) -> &[Value] {
        &self.agreements
    }

    /// Changes the input used by *future* agreement activations.
    pub fn set_input(&mut self, input: Value) {
        self.input = input;
    }

    /// Wraps an inner BA payload with the BA channel tag.
    fn tag_ba(inner: &[u8]) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(tags::BA);
        w.put_bytes(inner);
        w.finish()
    }

    /// Unwraps a BA-channel payload.
    fn untag_ba(payload: &[u8]) -> Option<&[u8]> {
        let mut r = Reader::new(payload);
        if r.get_u8()? != tags::BA {
            return None;
        }
        r.get_bytes()
    }
}

impl Process for SsbaProcess {
    fn on_pulse(&mut self, ctx: &mut Context<'_>) {
        // Split the multiplexed inbox (owned copies: the context is
        // mutably borrowed again below for the clock tick and sends).
        let mut clock_claims: Vec<Option<u64>> = vec![None; self.n];
        let mut ba_owned: Vec<(usize, Vec<u8>)> = Vec::new();
        for m in ctx.inbox() {
            let idx = m.from.index();
            if let Some(v) = ClockProcess::decode(m.bytes()) {
                if idx < self.n && clock_claims[idx].is_none() {
                    clock_claims[idx] = Some(v);
                }
            } else if let Some(inner) = Self::untag_ba(m.bytes()) {
                ba_owned.push((idx, inner.to_vec()));
            }
        }
        let ba_inbox: Vec<(usize, &[u8])> =
            ba_owned.iter().map(|(s, p)| (*s, p.as_slice())).collect();

        // Clock tick.
        let received: Vec<u64> = clock_claims.into_iter().flatten().collect();
        let clock_value = self.clock.step(&received, ctx.rng());
        ctx.broadcast(ClockProcess::encode(clock_value));

        // BA schedule, driven purely by the clock value. The relative round
        // is *derived* from the clock (value 1 ⇒ round 0), so a scrambled
        // `ba_round` from a transient fault cannot outlive one wrap.
        let mut outgoing: Vec<(usize, Bytes)> = Vec::new();
        if clock_value == 1 {
            self.instance.begin(self.input);
            self.ba_round = Some(0);
            let mut send = |to: usize, payload: Bytes| outgoing.push((to, payload));
            self.instance.step(0, &ba_inbox, &mut send);
        } else if let Some(prev) = self.ba_round {
            let r = prev + 1;
            if r < self.instance.rounds() {
                {
                    let mut send = |to: usize, payload: Bytes| outgoing.push((to, payload));
                    self.instance.step(r, &ba_inbox, &mut send);
                }
                self.ba_round = Some(r);
                if r == self.instance.rounds() - 1 {
                    if let Some(d) = self.instance.decided() {
                        self.agreements.push(d);
                    }
                    self.ba_round = None;
                }
            } else {
                self.ba_round = None;
            }
        }
        for (to, inner) in outgoing {
            ctx.send(ProcessId(to), Self::tag_ba(&inner));
        }
    }

    fn scramble(&mut self, rng: &mut rand::rngs::StdRng) {
        // The full transient fault of §4: arbitrary clock, arbitrary BA
        // epoch alignment, arbitrary in-progress agreement state.
        self.clock.set_arbitrary(rng.gen());
        self.instance.begin(rng.gen());
        self.ba_round = if rng.gen_bool(0.5) {
            Some(rng.gen_range(0..self.instance.rounds()))
        } else {
            None
        };
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "ssba"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_agreement::consensus::OmConsensus;

    fn build(n: usize, f: usize, seed: u64) -> Simulation {
        let rounds = OmConsensus::new(0, n, f).rounds();
        let modulus = rounds + 2;
        Simulation::builder(Topology::complete(n))
            .seed(seed)
            .build_with(|id| {
                Box::new(SsbaProcess::new(
                    n,
                    f,
                    modulus,
                    Box::new(OmConsensus::new(id.index(), n, f)),
                    10 + id.index() as u64, // distinct inputs
                )) as Box<dyn Process>
            })
    }

    fn agreement_logs(sim: &Simulation, n: usize) -> Vec<Vec<Value>> {
        (0..n)
            .map(|i| {
                sim.process_as::<SsbaProcess>(ProcessId(i))
                    .unwrap()
                    .agreements()
                    .to_vec()
            })
            .collect()
    }

    #[test]
    fn synchronized_start_produces_periodic_agreements() {
        let n = 4;
        let mut sim = build(n, 1, 5);
        sim.run(60);
        let logs = agreement_logs(&sim, n);
        assert!(logs[0].len() >= 2, "several periods elapsed: {:?}", logs[0]);
        // All processes hold identical agreement logs (agreement property,
        // repeatedly).
        assert!(logs.windows(2).all(|w| w[0] == w[1]), "{logs:?}");
    }

    #[test]
    fn recovers_after_total_transient_fault() {
        let n = 4;
        let mut sim = build(n, 1, 6);
        sim.run(20);
        sim.inject(&TransientFault::total(n, 99));
        // Convergence: give the clock time to re-synchronize, then closure:
        // compare agreement logs appended after recovery.
        sim.run(400);
        let before: Vec<usize> = agreement_logs(&sim, n).iter().map(Vec::len).collect();
        sim.run(60);
        let logs = agreement_logs(&sim, n);
        for i in 0..n {
            assert!(
                logs[i].len() > before[i],
                "agreements resumed after the fault"
            );
        }
        // The post-recovery suffix must again be identical everywhere.
        let min_len = logs.iter().map(Vec::len).min().unwrap();
        let tails: Vec<&[Value]> = logs
            .iter()
            .map(|l| &l[l.len() - min_len.min(2)..])
            .collect();
        assert!(tails.windows(2).all(|w| w[0] == w[1]), "{tails:?}");
    }

    #[test]
    #[should_panic(expected = "clock modulus must fit")]
    fn modulus_too_small_rejected() {
        SsbaProcess::new(4, 1, 2, Box::new(OmConsensus::new(0, 4, 1)), 0);
    }

    #[test]
    fn tag_untag_round_trip() {
        let tagged = SsbaProcess::tag_ba(b"inner");
        assert_eq!(SsbaProcess::untag_ba(&tagged), Some(b"inner".as_slice()));
        assert_eq!(SsbaProcess::untag_ba(b"junk"), None);
        // Clock messages are not BA messages.
        assert_eq!(SsbaProcess::untag_ba(&ClockProcess::encode(5)), None);
    }
}

//! # ga-clocksync — self-stabilizing Byzantine clock synchronization and
//! the SSBA composition
//!
//! Section 4 of the game-authority paper builds its self-stabilizing
//! middleware on two pieces:
//!
//! 1. a **self-stabilizing Byzantine clock synchronization** algorithm "in
//!    the spirit of Dolev–Welch (JACM 2004)" — digital clocks over `0..M`
//!    that, from *any* starting configuration and despite `f` Byzantine
//!    processors, eventually tick in unison ([`clock`]);
//! 2. **SSBA** (Theorem 1): whenever the synchronized clock wraps to 1, a
//!    (non-stabilizing) Byzantine agreement protocol is freshly invoked,
//!    with the clock period `M` sized to fit exactly one agreement —
//!    yielding a *self-stabilizing Byzantine agreement* ([`ssba`]).
//!
//! The clock rule here is randomized; as in the paper's reference \[11\],
//! *closure* is deterministic (synchronized clocks stay synchronized, even
//! against Byzantine votes, for `n > 3f`) while *convergence* is
//! probabilistic with an expected time that grows quickly in `n` — the
//! paper itself states an exponential-flavored `O(n^(n−f))` pulse bound.
//! Experiment E4 measures it.
//!
//! ## Quickstart
//!
//! ```
//! use ga_clocksync::harness::measure_convergence;
//!
//! // 4 processors, 1 Byzantine, clocks start arbitrary: how many pulses
//! // until all honest clocks agree (and then stay agreeing)?
//! let pulses = measure_convergence(4, 1, 8, 0xC10C).expect("converges");
//! assert!(pulses < 2_000);
//! ```

pub mod clock;
pub mod harness;
pub mod process;
pub mod pulse;
pub mod ssba;

/// Channel tags distinguishing multiplexed traffic inside one simulation
/// payload.
pub mod tags {
    /// Clock-synchronization messages.
    pub const CLOCK: u8 = 0x0C;
    /// Byzantine-agreement messages (relayed to the embedded instance).
    pub const BA: u8 = 0xBA;
}

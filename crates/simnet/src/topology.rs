//! Communication graphs.
//!
//! The paper requires the communication graph to remain well connected in
//! spite of Byzantine processors: "there are 2f + 1 vertex disjoint paths
//! between any 2 processes, in the presence of at most f Byzantine
//! processes" (footnote 2 / §4.1). [`Topology`] models the graph and
//! provides a max-flow based [vertex-connectivity
//! check](Topology::vertex_connectivity_at_least) so harnesses can validate
//! that assumption before running a protocol.
//!
//! ## Representation: CSR rows plus an optional dense fast path
//!
//! Adjacency is stored in compressed-sparse-row form: one flat neighbor
//! array plus per-vertex `(start, len)` row descriptors. Sparse families
//! (rings, grids, bounded-degree random graphs) therefore cost O(n + E)
//! memory, which is what makes 10⁵–10⁶-process rounds feasible — the old
//! per-vertex bitmask plane was O(n²) bits and topped out near n ≈ 1024.
//!
//! Small graphs still get the O(1) [`connected`](Topology::connected)
//! bitmask as a *fast path*: below [`DENSE_AUTO_THRESHOLD`] a flat bitmask
//! is kept in sync with the CSR rows; above it, `connected` is a binary
//! search on the sorted row (O(log deg)). The representation is a pure
//! cache — it never changes any answer — and can be forced per instance
//! with [`Topology::set_repr`] or process-wide with [`set_default_repr`]
//! (the scenario CLI's `--repr` flag), which is how the tier-1 suite
//! checks sparse-vs-dense byte-identity.
//!
//! Mutation keeps CSR rows sorted in place: [`cut_link`](Topology::cut_link)
//! and [`isolate`](Topology::isolate) shrink rows (leaving slack capacity
//! in the gap), [`heal_link`](Topology::heal_link) re-inserts into that
//! slack, and only linking a *never-present* edge with no slack triggers an
//! O(n + E) rebuild — so cut/heal churn schedules never rebuild.
//!
//! ## Construction: streaming CSR, no per-vertex intermediates
//!
//! Every constructor builds the CSR arrays directly. Family constructors
//! (`ring`/`grid`/`star`/`complete`) know each row's exact degree and
//! sorted order up front, so they emit rows straight into a pre-sized flat
//! array in one pass — no counting pass, no sort, no dedup.
//! [`from_edges`](Topology::from_edges) takes two passes over the edge
//! list (count degrees into row offsets, then scatter endpoints through
//! per-row cursors) followed by an in-place per-row sort+dedup; duplicate
//! edges become row slack. Either way a 10⁶-vertex build performs O(1)
//! allocations instead of the n per-vertex `Vec`s the old adjacency-list
//! intermediate cost. Every mutation bumps a generation counter so
//! downstream caches (the simulator's shard-plan cache) can invalidate on
//! topology change without diffing rows.

use crate::ids::ProcessId;
use crate::SimError;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};

/// Graph sizes up to this many vertices keep the dense `connected` bitmask
/// (O(n²) bits) under [`AdjacencyRepr::Auto`]; larger graphs are CSR-only.
pub const DENSE_AUTO_THRESHOLD: usize = 1024;

/// Which `connected`-query representation a [`Topology`] carries alongside
/// its CSR rows. Purely a performance knob: every query answers
/// identically under every variant (the tier-1 suite compares full runs
/// across reprs byte-for-byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdjacencyRepr {
    /// Dense bitmask at or below [`DENSE_AUTO_THRESHOLD`] vertices,
    /// sparse above. The default.
    Auto,
    /// Always keep the dense bitmask (O(n²) bits — avoid at large n).
    Dense,
    /// Never keep the bitmask; `connected` binary-searches the CSR row.
    Sparse,
}

/// Process-wide default representation consulted by every constructor.
/// 0 = Auto, 1 = Dense, 2 = Sparse.
static DEFAULT_REPR: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide default [`AdjacencyRepr`] used by topology
/// constructors. Intended for CLI-level forcing (`scenario run --repr`);
/// prefer [`Topology::set_repr`] for per-instance control (tests
/// especially — this global is shared across threads).
pub fn set_default_repr(repr: AdjacencyRepr) {
    let v = match repr {
        AdjacencyRepr::Auto => 0,
        AdjacencyRepr::Dense => 1,
        AdjacencyRepr::Sparse => 2,
    };
    DEFAULT_REPR.store(v, Ordering::Relaxed);
}

/// The process-wide default [`AdjacencyRepr`] (see [`set_default_repr`]).
pub fn default_repr() -> AdjacencyRepr {
    match DEFAULT_REPR.load(Ordering::Relaxed) {
        1 => AdjacencyRepr::Dense,
        2 => AdjacencyRepr::Sparse,
        _ => AdjacencyRepr::Auto,
    }
}

/// Whether a graph of `n` vertices keeps the dense bitmask under `repr`.
fn wants_bits(n: usize, repr: AdjacencyRepr) -> bool {
    match repr {
        AdjacencyRepr::Auto => n <= DENSE_AUTO_THRESHOLD,
        AdjacencyRepr::Dense => true,
        AdjacencyRepr::Sparse => false,
    }
}

/// An undirected communication graph over processors `0..n`.
///
/// Equality compares the *logical* graph (vertex count and live neighbor
/// rows) — two topologies compare equal regardless of representation
/// (dense vs sparse) or internal row layout after mutation churn.
#[derive(Debug, Clone)]
pub struct Topology {
    n: usize,
    /// CSR row offsets into `flat`: row `u` lives at
    /// `flat[starts[u] .. starts[u] + lens[u]]`, with slack capacity up to
    /// `starts[u + 1]`. `starts.len() == n + 1` (sentinel at the end).
    starts: Vec<usize>,
    /// Live length of each CSR row (`lens[u] <= starts[u+1] - starts[u]`).
    lens: Vec<usize>,
    /// Flat sorted neighbor array, one row per vertex.
    flat: Vec<usize>,
    /// Dense fast path: row-major `n × ceil(n/64)` adjacency bitmask kept
    /// in sync with the CSR rows. `None` in the sparse representation.
    bits: Option<Vec<u64>>,
    /// Bumped by every mutation (`link`/`cut_link`/`isolate`): the
    /// invalidation key for caches derived from degrees or edges, e.g. the
    /// simulator's shard-plan cache. Representation changes don't bump it
    /// — they never change a logical answer.
    generation: u64,
}

impl PartialEq for Topology {
    fn eq(&self, other: &Topology) -> bool {
        self.n == other.n && (0..self.n).all(|u| self.row(u) == other.row(u))
    }
}

impl Eq for Topology {}

impl Topology {
    /// The old construction path, kept as the reference the property tests
    /// pin the streaming builders against: materializes per-vertex `Vec`
    /// adjacency lists, then packs them into CSR.
    #[cfg(test)]
    fn from_adj(n: usize, adj: Vec<Vec<usize>>) -> Topology {
        let total: usize = adj.iter().map(Vec::len).sum();
        let mut starts = Vec::with_capacity(n + 1);
        let mut lens = Vec::with_capacity(n);
        let mut flat = Vec::with_capacity(total);
        for list in &adj {
            starts.push(flat.len());
            lens.push(list.len());
            flat.extend_from_slice(list);
        }
        starts.push(flat.len());
        Topology::finish(n, starts, lens, flat)
    }

    /// Final assembly shared by every construction path: attaches the
    /// dense bitmask when the process-wide default representation asks
    /// for one.
    fn finish(n: usize, starts: Vec<usize>, lens: Vec<usize>, flat: Vec<usize>) -> Topology {
        let mut t = Topology {
            n,
            starts,
            lens,
            flat,
            bits: None,
            generation: 0,
        };
        if wants_bits(n, default_repr()) {
            t.build_bits();
        }
        t
    }

    /// Streaming single-pass CSR builder for constructors whose rows can
    /// be emitted directly in sorted order: `emit(u, flat)` appends vertex
    /// `u`'s sorted neighbor row to the flat array. No per-vertex `Vec`
    /// intermediates and no sort/dedup pass — one pre-sized allocation for
    /// `flat` (from `total`, the exact directed-edge count family
    /// constructors know up front) plus one each for `starts`/`lens`.
    fn from_sorted_rows(
        n: usize,
        total: usize,
        mut emit: impl FnMut(usize, &mut Vec<usize>),
    ) -> Topology {
        let mut starts = Vec::with_capacity(n + 1);
        let mut lens = Vec::with_capacity(n);
        let mut flat = Vec::with_capacity(total);
        for u in 0..n {
            let before = flat.len();
            starts.push(before);
            emit(u, &mut flat);
            lens.push(flat.len() - before);
            debug_assert!(
                flat[before..].windows(2).all(|w| w[0] < w[1]),
                "row {u} must be emitted strictly sorted"
            );
        }
        starts.push(flat.len());
        Topology::finish(n, starts, lens, flat)
    }

    /// Two-pass streaming CSR builder from a validated undirected edge
    /// list: pass 1 counts degrees into the row offsets, pass 2 scatters
    /// endpoints into the pre-sized flat array through per-row write
    /// cursors, then each row is sorted and deduplicated in place
    /// (duplicate edges become row slack). Three allocations total,
    /// independent of E.
    fn from_edge_list(n: usize, edges: &[(usize, usize)]) -> Topology {
        let mut cursors = vec![0usize; n];
        for &(a, b) in edges {
            cursors[a] += 1;
            cursors[b] += 1;
        }
        let mut starts = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        starts.push(0);
        for count in &mut cursors {
            acc += *count;
            starts.push(acc);
            *count = 0; // reused as the pass-2 write cursor
        }
        let mut flat = vec![0usize; acc];
        for &(a, b) in edges {
            flat[starts[a] + cursors[a]] = b;
            cursors[a] += 1;
            flat[starts[b] + cursors[b]] = a;
            cursors[b] += 1;
        }
        let mut lens = Vec::with_capacity(n);
        for u in 0..n {
            let row = &mut flat[starts[u]..starts[u + 1]];
            row.sort_unstable();
            let mut live = 0;
            for i in 0..row.len() {
                if live == 0 || row[i] != row[live - 1] {
                    row[live] = row[i];
                    live += 1;
                }
            }
            lens.push(live); // duplicates leave slack at the row tail
        }
        Topology::finish(n, starts, lens, flat)
    }

    /// Mutation counter for cache invalidation — see the field docs.
    #[inline]
    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }

    /// Live neighbor row of vertex `u`.
    #[inline]
    fn row(&self, u: usize) -> &[usize] {
        &self.flat[self.starts[u]..self.starts[u] + self.lens[u]]
    }

    /// Allocated capacity of row `u` (live length plus slack).
    #[inline]
    fn cap(&self, u: usize) -> usize {
        self.starts[u + 1] - self.starts[u]
    }

    /// (Re)builds the dense bitmask from the CSR rows.
    fn build_bits(&mut self) {
        let words = self.n.div_ceil(64);
        let mut bits = vec![0u64; self.n * words];
        for u in 0..self.n {
            for &v in &self.flat[self.starts[u]..self.starts[u] + self.lens[u]] {
                bits[u * words + v / 64] |= 1 << (v % 64);
            }
        }
        self.bits = Some(bits);
    }

    #[inline]
    fn set_bit(&mut self, u: usize, v: usize) {
        if let Some(bits) = &mut self.bits {
            let words = self.n.div_ceil(64);
            bits[u * words + v / 64] |= 1 << (v % 64);
        }
    }

    #[inline]
    fn clear_bit(&mut self, u: usize, v: usize) {
        if let Some(bits) = &mut self.bits {
            let words = self.n.div_ceil(64);
            bits[u * words + v / 64] &= !(1 << (v % 64));
        }
    }

    /// Removes the element at `pos` of row `u` by shifting the row tail
    /// left; the freed slot becomes slack capacity for later inserts.
    fn remove_at(&mut self, u: usize, pos: usize) {
        let start = self.starts[u];
        let len = self.lens[u];
        self.flat
            .copy_within(start + pos + 1..start + len, start + pos);
        self.lens[u] = len - 1;
    }

    /// Inserts `v` at `pos` of row `u` by shifting the row tail right into
    /// slack capacity. Caller guarantees `lens[u] < cap(u)`.
    fn insert_at(&mut self, u: usize, pos: usize, v: usize) {
        let start = self.starts[u];
        let len = self.lens[u];
        self.flat
            .copy_within(start + pos..start + len, start + pos + 1);
        self.flat[start + pos] = v;
        self.lens[u] = len + 1;
    }

    /// O(n + E) fallback for [`link`](Topology::link) when a row has no
    /// slack: re-packs every live row into a fresh flat array with the new
    /// edge merged in. Only reached for never-before-present edges —
    /// cut-then-heal churn always finds slack and stays in place.
    fn rebuild_with_edge(&mut self, a: usize, b: usize) {
        let live: usize = self.lens.iter().sum();
        let mut starts = Vec::with_capacity(self.n + 1);
        let mut lens = Vec::with_capacity(self.n);
        let mut flat = Vec::with_capacity(live + 2);
        for u in 0..self.n {
            starts.push(flat.len());
            let row = &self.flat[self.starts[u]..self.starts[u] + self.lens[u]];
            let extra = if u == a {
                Some(b)
            } else if u == b {
                Some(a)
            } else {
                None
            };
            match extra {
                Some(v) => {
                    let pos = row.binary_search(&v).unwrap_err();
                    flat.extend_from_slice(&row[..pos]);
                    flat.push(v);
                    flat.extend_from_slice(&row[pos..]);
                    lens.push(row.len() + 1);
                }
                None => {
                    flat.extend_from_slice(row);
                    lens.push(row.len());
                }
            }
        }
        starts.push(flat.len());
        self.starts = starts;
        self.lens = lens;
        self.flat = flat;
        self.set_bit(a, b);
        self.set_bit(b, a);
    }

    /// The representation this instance currently carries.
    pub fn repr(&self) -> AdjacencyRepr {
        if self.bits.is_some() {
            AdjacencyRepr::Dense
        } else {
            AdjacencyRepr::Sparse
        }
    }

    /// Forces this instance's representation: builds the dense bitmask,
    /// drops it, or (under [`AdjacencyRepr::Auto`]) applies the size
    /// threshold. Never changes any query answer — only the `connected`
    /// lookup strategy and the memory footprint.
    pub fn set_repr(&mut self, repr: AdjacencyRepr) {
        if wants_bits(self.n, repr) {
            if self.bits.is_none() {
                self.build_bits();
            }
        } else {
            self.bits = None;
        }
    }

    /// The complete graph on `n` processors — the paper's default setting
    /// (every BA activation is a broadcast to everyone).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn complete(n: usize) -> Topology {
        assert!(n > 0, "topology needs at least one processor");
        Topology::from_sorted_rows(n, n * (n - 1), |i, flat| {
            flat.extend((0..n).filter(|&j| j != i));
        })
    }

    /// A ring on `n` processors (useful for worst-case connectivity tests).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn ring(n: usize) -> Topology {
        assert!(n >= 3, "a ring needs at least 3 processors");
        // With n >= 3 the two ring neighbors are always distinct, so each
        // row is exactly {prev, next} in ascending order.
        Topology::from_sorted_rows(n, 2 * n, |i, flat| {
            let (prev, next) = ((i + n - 1) % n, (i + 1) % n);
            flat.push(prev.min(next));
            flat.push(prev.max(next));
        })
    }

    /// A star on `n` processors: processor 0 is the hub, every other
    /// processor has the hub as its only neighbor. The minimal connected
    /// topology with a single point of failure — disconnecting the hub
    /// partitions everyone, which makes it the worst case for churn
    /// scenarios.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn star(n: usize) -> Topology {
        assert!(n >= 2, "a star needs a hub and at least one leaf");
        Topology::from_sorted_rows(n, 2 * (n - 1), |i, flat| {
            if i == 0 {
                flat.extend(1..n);
            } else {
                flat.push(0);
            }
        })
    }

    /// A `w × h` grid (4-neighbor lattice); vertex `(x, y)` has index
    /// `y * w + x`. The topology of the virus-inoculation game's network
    /// and a natural setting for spatially local fault scenarios.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0` or `h == 0`.
    pub fn grid(w: usize, h: usize) -> Topology {
        assert!(w > 0 && h > 0, "grid needs positive dimensions");
        let n = w * h;
        // (w−1)·h horizontal + w·(h−1) vertical undirected edges, each
        // appearing in two rows; the up/left/right/down emit order is
        // ascending by index.
        let total = 2 * ((w - 1) * h + w * (h - 1));
        Topology::from_sorted_rows(n, total, |i, flat| {
            let (x, y) = (i % w, i / w);
            if y > 0 {
                flat.push(i - w);
            }
            if x > 0 {
                flat.push(i - 1);
            }
            if x + 1 < w {
                flat.push(i + 1);
            }
            if y + 1 < h {
                flat.push(i + w);
            }
        })
    }

    /// Builds a topology from explicit undirected edges.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadTopology`] for self-loops or out-of-range
    /// endpoints.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Topology, SimError> {
        if n == 0 {
            return Err(SimError::BadTopology("zero processors".into()));
        }
        // Validate every edge before any n-sized allocation: a bad edge on
        // a 10⁶-vertex call must fail fast, not after the big build.
        for &(a, b) in edges {
            if a == b {
                return Err(SimError::BadTopology(format!("self loop at {a}")));
            }
            if a >= n || b >= n {
                return Err(SimError::BadTopology(format!(
                    "edge ({a},{b}) out of range for n={n}"
                )));
            }
        }
        Ok(Topology::from_edge_list(n, edges))
    }

    /// A random graph where every vertex gets at least `k` neighbors:
    /// a Harary-style `k`-connected backbone (each vertex linked to its `k/2`
    /// successors around a ring) plus random extra edges at `extra_p`
    /// probability.
    ///
    /// The extra-edge sweep is O(n²) draws; with `extra_p == 0.0` it is
    /// skipped entirely (the result is identical — no draw can add an
    /// edge), which keeps the pure backbone usable at 10⁵⁺ vertices.
    ///
    /// # Panics
    ///
    /// Panics if `k >= n` or `k < 2`.
    pub fn random_k_connected(n: usize, k: usize, extra_p: f64, rng: &mut impl Rng) -> Topology {
        assert!(k >= 2 && k < n, "need 2 <= k < n");
        let half = k.div_ceil(2);
        // The Harary backbone is exactly n·⌈k/2⌉ edges, known up front.
        let mut edges = Vec::with_capacity(n * half);
        for i in 0..n {
            for d in 1..=half {
                edges.push((i, (i + d) % n));
            }
        }
        if extra_p > 0.0 {
            for i in 0..n {
                for j in i + 1..n {
                    if rng.gen_bool(extra_p) {
                        edges.push((i, j));
                    }
                }
            }
            edges.shuffle(rng);
        }
        Topology::from_edges(n, &edges).expect("generated edges are valid")
    }

    /// Number of processors.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the topology has no processors (never true — constructors
    /// require `n > 0`).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Neighbor ids of processor `id` (sorted).
    pub fn neighbors(&self, id: ProcessId) -> &[usize] {
        self.row(id.index())
    }

    /// Degree of processor `id` — the basis for worst-case-by-degree
    /// adversary placement.
    pub fn degree(&self, id: ProcessId) -> usize {
        self.lens[id.index()]
    }

    /// The `k` highest-degree processors, ties broken toward the lower id,
    /// returned in ascending id order. Heap-selected in O(n log k) — the
    /// shared helper behind worst-case-by-degree corruption targeting and
    /// adversary placement, which previously each sorted all n degrees.
    pub fn top_k_by_degree(&self, k: usize) -> Vec<ProcessId> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let k = k.min(self.n);
        if k == 0 {
            return Vec::new();
        }
        // Min-heap of the k best (degree, Reverse(id)) keys: higher degree
        // wins, lower id wins ties.
        let mut heap: BinaryHeap<Reverse<(usize, Reverse<usize>)>> =
            BinaryHeap::with_capacity(k + 1);
        for u in 0..self.n {
            let key = (self.lens[u], Reverse(u));
            if heap.len() < k {
                heap.push(Reverse(key));
            } else if heap.peek().is_some_and(|&Reverse(min)| key > min) {
                heap.pop();
                heap.push(Reverse(key));
            }
        }
        let mut ids: Vec<ProcessId> = heap
            .into_iter()
            .map(|Reverse((_, Reverse(u)))| ProcessId(u))
            .collect();
        ids.sort_unstable_by_key(|id| id.index());
        ids
    }

    /// Whether `a` and `b` share an edge — O(1) via the dense bitmask when
    /// present, O(log deg) binary search on the CSR row otherwise.
    pub fn connected(&self, a: ProcessId, b: ProcessId) -> bool {
        let (a, b) = (a.index(), b.index());
        match &self.bits {
            Some(bits) => {
                let words = self.n.div_ceil(64);
                bits[a * words + b / 64] & (1 << (b % 64)) != 0
            }
            None => self.row(a).binary_search(&b).is_ok(),
        }
    }

    /// Removes every edge incident to `id`, in place.
    ///
    /// This is the executive's punitive disconnection. Unlike rebuilding
    /// the topology from its surviving edge list (O(n²)), this mutates the
    /// CSR rows directly: O(deg(id) · deg(peer)) overall, leaving the
    /// freed slots as slack for later [`link`](Topology::link)s.
    pub fn isolate(&mut self, id: ProcessId) {
        let victim = id.index();
        let peers: Vec<usize> = self.row(victim).to_vec();
        if !peers.is_empty() {
            self.generation += 1;
        }
        self.lens[victim] = 0;
        if self.bits.is_some() {
            for &peer in &peers {
                self.clear_bit(victim, peer);
            }
        }
        for peer in peers {
            if let Ok(pos) = self.row(peer).binary_search(&victim) {
                self.remove_at(peer, pos);
            }
            self.clear_bit(peer, victim);
        }
    }

    /// Adds the undirected edge `(a, b)` in place, keeping the sorted CSR
    /// rows (and the dense bitmask, when present) in sync. The inverse of
    /// [`isolate`](Topology::isolate) at single-edge granularity — churn
    /// schedules use it to model recoveries. Re-inserting into slack left
    /// by an earlier cut is O(deg); a brand-new edge with no slack falls
    /// back to an O(n + E) row re-pack.
    ///
    /// Returns `Ok(true)` if the edge was inserted, `Ok(false)` if it
    /// already existed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadTopology`] for self-loops or out-of-range
    /// endpoints.
    pub fn link(&mut self, a: ProcessId, b: ProcessId) -> Result<bool, SimError> {
        let (a, b) = (a.index(), b.index());
        if a == b {
            return Err(SimError::BadTopology(format!("self loop at {a}")));
        }
        if a >= self.n || b >= self.n {
            return Err(SimError::BadTopology(format!(
                "edge ({a},{b}) out of range for n={}",
                self.n
            )));
        }
        let Err(pos_a) = self.row(a).binary_search(&b) else {
            return Ok(false);
        };
        self.generation += 1;
        if self.lens[a] < self.cap(a) && self.lens[b] < self.cap(b) {
            self.insert_at(a, pos_a, b);
            if let Err(pos_b) = self.row(b).binary_search(&a) {
                self.insert_at(b, pos_b, a);
            }
            self.set_bit(a, b);
            self.set_bit(b, a);
        } else {
            self.rebuild_with_edge(a, b);
        }
        Ok(true)
    }

    /// Removes the single undirected edge `(a, b)` in place, keeping the
    /// sorted CSR rows and the bitmask in sync — the edge-level
    /// counterpart of [`isolate`](Topology::isolate), used by partition
    /// churn schedules ([`ScheduledAction::CutLink`]). The freed slots
    /// remain as slack so a later heal never rebuilds.
    ///
    /// Returns `Ok(true)` if the edge was removed, `Ok(false)` if it was
    /// not present.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadTopology`] for self-loops or out-of-range
    /// endpoints.
    ///
    /// [`ScheduledAction::CutLink`]: crate::schedule::ScheduledAction::CutLink
    pub fn cut_link(&mut self, a: ProcessId, b: ProcessId) -> Result<bool, SimError> {
        let (a, b) = (a.index(), b.index());
        if a == b {
            return Err(SimError::BadTopology(format!("self loop at {a}")));
        }
        if a >= self.n || b >= self.n {
            return Err(SimError::BadTopology(format!(
                "edge ({a},{b}) out of range for n={}",
                self.n
            )));
        }
        let Ok(pos_a) = self.row(a).binary_search(&b) else {
            return Ok(false);
        };
        self.generation += 1;
        self.remove_at(a, pos_a);
        if let Ok(pos_b) = self.row(b).binary_search(&a) {
            self.remove_at(b, pos_b);
        }
        self.clear_bit(a, b);
        self.clear_bit(b, a);
        Ok(true)
    }

    /// Re-adds the single undirected edge `(a, b)` — the healing inverse
    /// of [`cut_link`](Topology::cut_link), with the same contract as
    /// [`link`](Topology::link) (`Ok(false)` when already present).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadTopology`] for self-loops or out-of-range
    /// endpoints.
    pub fn heal_link(&mut self, a: ProcessId, b: ProcessId) -> Result<bool, SimError> {
        self.link(a, b)
    }

    /// Minimum degree over all vertices — an upper bound on connectivity.
    pub fn min_degree(&self) -> usize {
        self.lens.iter().copied().min().unwrap_or(0)
    }

    /// Total number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.lens.iter().sum::<usize>() / 2
    }

    /// Whether the graph is connected (BFS reachability).
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return false;
        }
        let mut seen = vec![false; self.n];
        let mut queue = VecDeque::from([0usize]);
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for &v in self.row(u) {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        count == self.n
    }

    /// Breadth-first hop distances from `from` to every vertex: `None` for
    /// unreachable vertices (and for everything when `from` is out of
    /// range). `O(n + E)` off the CSR rows.
    ///
    /// This is the ground truth self-stabilizing spanning-tree workloads
    /// check their distance registers against, and the building block of
    /// [`diameter`](Topology::diameter) — the quantity certified
    /// convergence bounds are stated in.
    pub fn bfs_distances(&self, from: ProcessId) -> Vec<Option<u64>> {
        let mut dist = vec![None; self.n];
        if from.index() >= self.n {
            return dist;
        }
        dist[from.index()] = Some(0);
        let mut queue = VecDeque::from([from.index()]);
        while let Some(u) = queue.pop_front() {
            let d = dist[u].expect("queued vertices have a distance");
            for &v in self.row(u) {
                if dist[v].is_none() {
                    dist[v] = Some(d + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// The graph diameter (largest finite hop distance over all pairs), or
    /// `None` when the graph is disconnected or empty. `O(n · (n + E))` —
    /// one BFS per vertex, fine at simulator scales.
    pub fn diameter(&self) -> Option<u64> {
        if self.n == 0 {
            return None;
        }
        let mut best = 0;
        for u in 0..self.n {
            for d in self.bfs_distances(ProcessId(u)) {
                best = best.max(d?);
            }
        }
        Some(best)
    }

    /// Checks that every pair of distinct vertices has at least `k` vertex
    /// disjoint paths (Menger / max-flow with vertex splitting).
    ///
    /// For the paper's resilience condition use `k = 2f + 1`.
    /// Runs `O(n² · k · E)` — fine for the simulator's scales.
    pub fn vertex_connectivity_at_least(&self, k: usize) -> bool {
        if k == 0 {
            return true;
        }
        if self.n < 2 {
            return false;
        }
        for s in 0..self.n {
            for t in s + 1..self.n {
                if !self.pair_connectivity_at_least(s, t, k) {
                    return false;
                }
            }
        }
        true
    }

    /// Max-flow check for a single (s, t) pair.
    ///
    /// Adjacent pairs: an edge is itself a path that no vertex cut can
    /// remove, so we count the direct edge plus the connectivity of the graph
    /// without it (standard Menger adjustment via flow on the split graph,
    /// where the direct arc bypasses interior capacities).
    fn pair_connectivity_at_least(&self, s: usize, t: usize, k: usize) -> bool {
        // Vertex splitting: vertex v becomes v_in (2v) -> v_out (2v+1) with
        // capacity 1, except s and t which have infinite self-capacity.
        // Edge (u,v) becomes u_out -> v_in and v_out -> u_in with capacity 1:
        // vertex-disjoint paths never share an edge, and unit capacity keeps
        // a direct (s,t) edge from being counted as more than one path.
        let inf = (k + 1) as i64;
        let nodes = 2 * self.n;
        let mut graph: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nodes]; // (to, edge index)
        let mut cap: Vec<i64> = Vec::new();
        let add_edge = |graph: &mut Vec<Vec<(usize, usize)>>,
                        cap: &mut Vec<i64>,
                        u: usize,
                        v: usize,
                        c: i64| {
            graph[u].push((v, cap.len()));
            cap.push(c);
            graph[v].push((u, cap.len()));
            cap.push(0);
        };
        for v in 0..self.n {
            let c = if v == s || v == t { inf } else { 1 };
            add_edge(&mut graph, &mut cap, 2 * v, 2 * v + 1, c);
        }
        for u in 0..self.n {
            for &v in self.row(u) {
                // Each undirected edge appears twice (u->v and v->u); add
                // the directed arc each time.
                add_edge(&mut graph, &mut cap, 2 * u + 1, 2 * v, 1);
            }
        }
        let source = 2 * s + 1; // s_out
        let sink = 2 * t; // t_in
        let mut flow = 0i64;
        while flow < k as i64 {
            // BFS for an augmenting path.
            let mut parent: Vec<Option<(usize, usize)>> = vec![None; nodes];
            let mut queue = VecDeque::from([source]);
            while let Some(u) = queue.pop_front() {
                if u == sink {
                    break;
                }
                for &(v, e) in &graph[u] {
                    if cap[e] > 0 && parent[v].is_none() && v != source {
                        parent[v] = Some((u, e));
                        queue.push_back(v);
                    }
                }
            }
            if parent[sink].is_none() {
                break;
            }
            // Unit augmentation (all path bottlenecks are 1 or inf).
            let mut v = sink;
            while v != source {
                let (u, e) = parent[v].expect("path exists");
                cap[e] -= 1;
                cap[e ^ 1] += 1;
                v = u;
            }
            flow += 1;
        }
        flow >= k as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn complete_graph_structure() {
        let t = Topology::complete(5);
        assert_eq!(t.len(), 5);
        assert_eq!(t.edge_count(), 10);
        assert_eq!(t.min_degree(), 4);
        assert!(t.connected(ProcessId(0), ProcessId(4)));
        assert!(!t.connected(ProcessId(2), ProcessId(2)));
    }

    #[test]
    fn ring_structure() {
        let t = Topology::ring(6);
        assert_eq!(t.edge_count(), 6);
        assert_eq!(t.min_degree(), 2);
        assert!(t.connected(ProcessId(0), ProcessId(5)));
        assert!(!t.connected(ProcessId(0), ProcessId(3)));
    }

    /// The `connected` answer must agree with the adjacency rows for every
    /// ordered pair, under both representations.
    fn assert_bitmask_parity(t: &Topology) {
        for (t, repr) in [
            (
                {
                    let mut d = t.clone();
                    d.set_repr(AdjacencyRepr::Dense);
                    d
                },
                "dense",
            ),
            (
                {
                    let mut s = t.clone();
                    s.set_repr(AdjacencyRepr::Sparse);
                    s
                },
                "sparse",
            ),
        ] {
            for a in 0..t.len() {
                for b in 0..t.len() {
                    let in_list = t.neighbors(ProcessId(a)).contains(&b);
                    assert_eq!(
                        t.connected(ProcessId(a), ProcessId(b)),
                        in_list,
                        "{repr} repr disagrees with adjacency on ({a},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn star_structure_and_parity() {
        let t = Topology::star(7);
        assert_eq!(t.len(), 7);
        assert_eq!(t.edge_count(), 6, "one spoke per leaf");
        assert_eq!(t.neighbors(ProcessId(0)).len(), 6);
        assert_eq!(t.min_degree(), 1);
        assert!(t.is_connected());
        assert!(t.vertex_connectivity_at_least(1));
        assert!(!t.vertex_connectivity_at_least(2), "hub is a cut vertex");
        for leaf in 1..7 {
            assert!(t.connected(ProcessId(0), ProcessId(leaf)));
            assert_eq!(t.neighbors(ProcessId(leaf)), &[0]);
        }
        assert!(!t.connected(ProcessId(1), ProcessId(2)));
        assert_bitmask_parity(&t);
    }

    #[test]
    fn star_crosses_word_boundary() {
        let t = Topology::star(70);
        assert!(t.connected(ProcessId(0), ProcessId(69)));
        assert!(!t.connected(ProcessId(65), ProcessId(69)));
        assert_bitmask_parity(&t);
    }

    #[test]
    fn grid_structure_and_parity() {
        let t = Topology::grid(4, 3);
        assert_eq!(t.len(), 12);
        // Horizontal edges: 3 per row × 3 rows; vertical: 4 per column gap × 2.
        assert_eq!(t.edge_count(), 3 * 3 + 4 * 2);
        // Corner (0,0) has degree 2, edge cell (1,0) degree 3, interior (1,1)
        // degree 4.
        assert_eq!(t.neighbors(ProcessId(0)), &[1, 4]);
        assert_eq!(t.neighbors(ProcessId(1)), &[0, 2, 5]);
        assert_eq!(t.neighbors(ProcessId(5)), &[1, 4, 6, 9]);
        assert!(t.is_connected());
        assert!(t.vertex_connectivity_at_least(2));
        assert!(!t.vertex_connectivity_at_least(3));
        assert_bitmask_parity(&t);
    }

    #[test]
    fn grid_degenerate_shapes() {
        // 1×1: a single isolated vertex.
        let t = Topology::grid(1, 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.edge_count(), 0);
        // 1×5: a path.
        let path = Topology::grid(1, 5);
        assert_eq!(path.edge_count(), 4);
        assert!(path.is_connected());
        assert!(!path.vertex_connectivity_at_least(2));
        assert_bitmask_parity(&path);
        // 5×1 is the same path transposed.
        assert_eq!(Topology::grid(5, 1).edge_count(), 4);
    }

    #[test]
    fn link_inserts_edge_and_keeps_parity() {
        let mut t = Topology::ring(6);
        assert!(!t.connected(ProcessId(0), ProcessId(3)));
        assert_eq!(t.link(ProcessId(0), ProcessId(3)), Ok(true));
        assert!(t.connected(ProcessId(0), ProcessId(3)));
        assert!(t.connected(ProcessId(3), ProcessId(0)));
        assert_eq!(t.neighbors(ProcessId(0)), &[1, 3, 5], "stays sorted");
        assert_eq!(t.link(ProcessId(0), ProcessId(3)), Ok(false), "idempotent");
        assert_eq!(t.edge_count(), 7);
        assert_bitmask_parity(&t);
    }

    #[test]
    fn link_rejects_bad_input() {
        let mut t = Topology::ring(4);
        assert!(t.link(ProcessId(1), ProcessId(1)).is_err());
        assert!(t.link(ProcessId(0), ProcessId(4)).is_err());
    }

    #[test]
    fn link_undoes_isolate() {
        let mut t = Topology::star(5);
        let before = t.clone();
        t.isolate(ProcessId(0));
        assert_eq!(t.edge_count(), 0);
        for leaf in 1..5 {
            t.link(ProcessId(0), ProcessId(leaf)).unwrap();
        }
        assert_eq!(t, before, "reconnecting every spoke restores the star");
        assert_bitmask_parity(&t);
    }

    #[test]
    fn cut_link_removes_one_edge_and_keeps_parity() {
        let mut t = Topology::complete(5);
        assert_eq!(t.cut_link(ProcessId(1), ProcessId(3)), Ok(true));
        assert!(!t.connected(ProcessId(1), ProcessId(3)));
        assert!(!t.connected(ProcessId(3), ProcessId(1)));
        assert_eq!(t.edge_count(), 9);
        assert_eq!(
            t.cut_link(ProcessId(1), ProcessId(3)),
            Ok(false),
            "already cut"
        );
        // Other edges untouched.
        assert!(t.connected(ProcessId(1), ProcessId(2)));
        assert_bitmask_parity(&t);
        // heal_link is the exact inverse.
        assert_eq!(t.heal_link(ProcessId(3), ProcessId(1)), Ok(true));
        assert_eq!(t, Topology::complete(5));
    }

    #[test]
    fn cut_link_rejects_bad_input() {
        let mut t = Topology::ring(4);
        assert!(t.cut_link(ProcessId(2), ProcessId(2)).is_err());
        assert!(t.cut_link(ProcessId(0), ProcessId(9)).is_err());
        assert!(t.heal_link(ProcessId(0), ProcessId(9)).is_err());
    }

    #[test]
    fn from_edges_rejects_bad_input() {
        assert!(Topology::from_edges(3, &[(0, 0)]).is_err());
        assert!(Topology::from_edges(3, &[(0, 3)]).is_err());
        assert!(Topology::from_edges(0, &[]).is_err());
    }

    #[test]
    fn from_edges_dedups() {
        let t = Topology::from_edges(3, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(t.edge_count(), 1);
    }

    #[test]
    fn connectivity_of_complete_graph() {
        let t = Topology::complete(6);
        assert!(t.vertex_connectivity_at_least(5));
        assert!(!t.vertex_connectivity_at_least(6));
    }

    #[test]
    fn connectivity_of_ring_is_two() {
        let t = Topology::ring(7);
        assert!(t.vertex_connectivity_at_least(2));
        assert!(!t.vertex_connectivity_at_least(3));
    }

    #[test]
    fn path_graph_has_connectivity_one() {
        let t = Topology::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(t.is_connected());
        assert!(t.vertex_connectivity_at_least(1));
        assert!(!t.vertex_connectivity_at_least(2));
    }

    #[test]
    fn disconnected_graph_detected() {
        let t = Topology::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!t.is_connected());
        assert!(!t.vertex_connectivity_at_least(1));
    }

    #[test]
    fn bfs_distances_on_known_shapes() {
        let ring = Topology::ring(8);
        let d = ring.bfs_distances(ProcessId(0));
        assert_eq!(
            d,
            [0u64, 1, 2, 3, 4, 3, 2, 1].map(Some).to_vec(),
            "ring distances wrap both ways"
        );
        // Grid (3×3): vertex (x, y) = y*3 + x, corner to corner is 4 hops.
        let grid = Topology::grid(3, 3);
        assert_eq!(grid.bfs_distances(ProcessId(0))[8], Some(4));
        assert_eq!(grid.bfs_distances(ProcessId(4))[0], Some(2));
        // Star: hub at 0, every leaf 1 from hub and 2 from each other.
        let star = Topology::star(6);
        assert_eq!(star.bfs_distances(ProcessId(0))[5], Some(1));
        assert_eq!(star.bfs_distances(ProcessId(1))[5], Some(2));
    }

    #[test]
    fn bfs_distances_handle_unreachable_and_out_of_range() {
        let t = Topology::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let d = t.bfs_distances(ProcessId(0));
        assert_eq!(d, vec![Some(0), Some(1), None, None]);
        assert!(t.bfs_distances(ProcessId(9)).iter().all(|d| d.is_none()));
    }

    #[test]
    fn diameter_of_known_shapes() {
        assert_eq!(Topology::complete(5).diameter(), Some(1));
        assert_eq!(Topology::ring(8).diameter(), Some(4));
        assert_eq!(Topology::ring(7).diameter(), Some(3));
        assert_eq!(Topology::grid(3, 3).diameter(), Some(4));
        assert_eq!(Topology::grid(1, 5).diameter(), Some(4), "path graph");
        assert_eq!(Topology::star(6).diameter(), Some(2));
        assert_eq!(Topology::grid(1, 1).diameter(), Some(0), "single vertex");
        assert_eq!(
            Topology::from_edges(4, &[(0, 1), (2, 3)])
                .unwrap()
                .diameter(),
            None,
            "disconnected graphs have no finite diameter"
        );
    }

    #[test]
    fn paper_condition_2f_plus_1_on_complete_graph() {
        // With n = 7, f = 2: need 2f+1 = 5 disjoint paths; K7 offers 6.
        let t = Topology::complete(7);
        assert!(t.vertex_connectivity_at_least(5));
    }

    #[test]
    fn random_k_connected_meets_min_degree() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let t = Topology::random_k_connected(12, 4, 0.1, &mut rng);
        assert!(t.min_degree() >= 4);
        assert!(t.is_connected());
        assert!(t.vertex_connectivity_at_least(3));
    }

    #[test]
    fn random_k_connected_skips_extra_edge_sweep_at_zero_p() {
        // With extra_p == 0 the result is the pure Harary backbone and no
        // RNG draw is consumed — the O(n²) sweep must be skipped.
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let t = Topology::random_k_connected(10, 2, 0.0, &mut rng);
        assert_eq!(t, Topology::ring(10), "k=2 backbone is the ring");
        let mut fresh = rand::rngs::StdRng::seed_from_u64(7);
        assert_eq!(rng.gen::<u64>(), fresh.gen::<u64>(), "rng untouched");
    }

    #[test]
    fn isolate_removes_only_incident_edges() {
        let mut t = Topology::complete(5);
        let before = t.clone();
        t.isolate(ProcessId(2));
        assert!(t.neighbors(ProcessId(2)).is_empty());
        assert_eq!(t.edge_count(), 6, "C(4,2) survivors");
        for u in [0usize, 1, 3, 4] {
            assert!(!t.connected(ProcessId(u), ProcessId(2)));
            assert!(!t.connected(ProcessId(2), ProcessId(u)));
            for v in [0usize, 1, 3, 4] {
                if u != v {
                    assert!(t.connected(ProcessId(u), ProcessId(v)), "{u}-{v} kept");
                }
            }
        }
        // Equivalent to the O(n²) rebuild the scheduler used to do.
        let n = before.len();
        let mut edges = Vec::new();
        for u in 0..n {
            for &v in before.neighbors(ProcessId(u)) {
                if u < v && u != 2 && v != 2 {
                    edges.push((u, v));
                }
            }
        }
        assert_eq!(t, Topology::from_edges(n, &edges).unwrap());
    }

    #[test]
    fn isolate_twice_is_idempotent() {
        let mut t = Topology::ring(5);
        t.isolate(ProcessId(0));
        t.isolate(ProcessId(0));
        assert!(t.neighbors(ProcessId(0)).is_empty());
        assert_eq!(t.edge_count(), 3);
    }

    #[test]
    fn bitmask_tracks_large_graphs() {
        // Crosses the 64-bit word boundary.
        let t = Topology::complete(130);
        assert!(t.connected(ProcessId(0), ProcessId(129)));
        assert!(t.connected(ProcessId(65), ProcessId(64)));
        assert!(!t.connected(ProcessId(65), ProcessId(65)));
    }

    #[test]
    fn neighbors_sorted_and_correct() {
        let t = Topology::from_edges(4, &[(2, 0), (2, 3), (2, 1)]).unwrap();
        assert_eq!(t.neighbors(ProcessId(2)), &[0, 1, 3]);
    }

    #[test]
    fn degree_matches_neighbor_counts() {
        let t = Topology::star(5);
        assert_eq!(t.degree(ProcessId(0)), 4, "hub");
        for leaf in 1..5 {
            assert_eq!(t.degree(ProcessId(leaf)), 1);
        }
        let mut t = Topology::complete(4);
        assert_eq!(t.degree(ProcessId(2)), 3);
        t.isolate(ProcessId(2));
        assert_eq!(t.degree(ProcessId(2)), 0);
    }

    #[test]
    fn auto_repr_follows_size_threshold() {
        assert_eq!(Topology::ring(8).repr(), AdjacencyRepr::Dense);
        let big = Topology::ring(DENSE_AUTO_THRESHOLD + 1);
        assert_eq!(big.repr(), AdjacencyRepr::Sparse);
        assert!(big.connected(ProcessId(0), ProcessId(DENSE_AUTO_THRESHOLD)));
        assert!(!big.connected(ProcessId(0), ProcessId(2)));
    }

    #[test]
    fn forced_reprs_compare_equal_and_agree_after_churn() {
        let mut dense = Topology::grid(4, 4);
        dense.set_repr(AdjacencyRepr::Dense);
        let mut sparse = dense.clone();
        sparse.set_repr(AdjacencyRepr::Sparse);
        assert_eq!(dense, sparse, "repr is invisible to equality");
        for t in [&mut dense, &mut sparse] {
            t.cut_link(ProcessId(1), ProcessId(2)).unwrap();
            t.isolate(ProcessId(5));
            t.heal_link(ProcessId(1), ProcessId(2)).unwrap();
            t.link(ProcessId(0), ProcessId(15)).unwrap();
        }
        assert_eq!(dense, sparse, "identical churn keeps them equal");
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(
                    dense.connected(ProcessId(a), ProcessId(b)),
                    sparse.connected(ProcessId(a), ProcessId(b)),
                    "({a},{b})"
                );
            }
        }
        assert_bitmask_parity(&dense);
    }

    #[test]
    fn link_without_slack_rebuilds_rows() {
        // Fresh from a constructor, rows have zero slack, so a brand-new
        // edge exercises the rebuild path.
        let mut t = Topology::ring(6);
        t.set_repr(AdjacencyRepr::Sparse);
        assert_eq!(t.link(ProcessId(0), ProcessId(3)), Ok(true));
        assert_eq!(t.neighbors(ProcessId(0)), &[1, 3, 5]);
        assert_eq!(t.neighbors(ProcessId(3)), &[0, 2, 4]);
        assert_eq!(t.edge_count(), 7);
        assert_bitmask_parity(&t);
    }

    /// The old construction path: per-vertex adjacency `Vec`s, sorted and
    /// deduped, then packed. The streaming builders must reproduce it
    /// exactly (logical rows, hence equality, plus bitmask parity).
    fn reference_from_edges(n: usize, edges: &[(usize, usize)]) -> Topology {
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        Topology::from_adj(n, adj)
    }

    #[test]
    fn family_constructors_match_the_reference_path() {
        // Each family's streaming emitter vs the same graph routed through
        // the old per-vertex-Vec reference, across shapes that cover hubs,
        // degenerate rows and both repr regimes.
        for n in [1usize, 2, 5, 64] {
            if n >= 3 {
                let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
                assert_eq!(
                    Topology::ring(n),
                    reference_from_edges(n, &edges),
                    "ring({n})"
                );
            }
            if n >= 2 {
                let spokes: Vec<(usize, usize)> = (1..n).map(|leaf| (0, leaf)).collect();
                assert_eq!(
                    Topology::star(n),
                    reference_from_edges(n, &spokes),
                    "star({n})"
                );
            }
            let mut all = Vec::new();
            for a in 0..n {
                for b in a + 1..n {
                    all.push((a, b));
                }
            }
            assert_eq!(
                Topology::complete(n),
                reference_from_edges(n, &all),
                "complete({n})"
            );
        }
        for (w, h) in [(1usize, 1usize), (1, 5), (5, 1), (4, 3), (8, 8)] {
            let n = w * h;
            let mut edges = Vec::new();
            for i in 0..n {
                let (x, y) = (i % w, i / w);
                if x + 1 < w {
                    edges.push((i, i + 1));
                }
                if y + 1 < h {
                    edges.push((i, i + w));
                }
            }
            assert_eq!(
                Topology::grid(w, h),
                reference_from_edges(n, &edges),
                "grid({w},{h})"
            );
        }
    }

    #[test]
    fn from_edges_fails_fast_before_allocating() {
        // A bad edge must be rejected even at a vertex count where the
        // old allocate-first path would have built 10⁶ Vecs to find it.
        let err = Topology::from_edges(1_000_000, &[(0, 1), (5, 1_000_000)]);
        assert!(err.is_err());
        let err = Topology::from_edges(1_000_000, &[(0, 1), (7, 7)]);
        assert!(err.is_err());
    }

    #[test]
    fn generation_counts_mutations_only() {
        let mut t = Topology::ring(6);
        assert_eq!(t.generation(), 0, "fresh builds start at zero");
        t.set_repr(AdjacencyRepr::Sparse);
        t.set_repr(AdjacencyRepr::Dense);
        assert_eq!(t.generation(), 0, "repr changes are not mutations");
        t.cut_link(ProcessId(0), ProcessId(1)).unwrap();
        assert_eq!(t.generation(), 1);
        t.cut_link(ProcessId(0), ProcessId(1)).unwrap();
        assert_eq!(t.generation(), 1, "no-op cut doesn't bump");
        t.heal_link(ProcessId(0), ProcessId(1)).unwrap();
        assert_eq!(t.generation(), 2);
        t.heal_link(ProcessId(0), ProcessId(1)).unwrap();
        assert_eq!(t.generation(), 2, "no-op link doesn't bump");
        t.link(ProcessId(0), ProcessId(3)).unwrap();
        assert_eq!(t.generation(), 3, "rebuild path bumps too");
        t.isolate(ProcessId(2));
        assert_eq!(t.generation(), 4);
        t.isolate(ProcessId(2));
        assert_eq!(
            t.generation(),
            4,
            "isolating an isolated vertex doesn't bump"
        );
    }

    mod streaming_matches_reference {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The two-pass streaming `from_edges` is indistinguishable
            /// from the old per-vertex-Vec path for arbitrary edge sets —
            /// duplicates, reversed duplicates and unsorted input included.
            #[test]
            fn from_edges_matches_from_adj(
                n in 1usize..40,
                raw in proptest::collection::vec((0usize..40, 0usize..40), 0..120),
            ) {
                let edges: Vec<(usize, usize)> = raw
                    .into_iter()
                    .map(|(a, b)| (a % n, b % n))
                    .filter(|&(a, b)| a != b)
                    .collect();
                let streamed = Topology::from_edges(n, &edges).unwrap();
                let reference = reference_from_edges(n, &edges);
                prop_assert_eq!(&streamed, &reference);
                prop_assert_eq!(streamed.edge_count(), reference.edge_count());
                prop_assert_eq!(streamed.repr(), reference.repr());
                for u in 0..n {
                    prop_assert_eq!(
                        streamed.neighbors(ProcessId(u)),
                        reference.neighbors(ProcessId(u)),
                        "row {} diverged", u
                    );
                    for v in 0..n {
                        prop_assert_eq!(
                            streamed.connected(ProcessId(u), ProcessId(v)),
                            reference.connected(ProcessId(u), ProcessId(v)),
                            "connected({}, {}) diverged", u, v
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn top_k_by_degree_selects_hubs_with_stable_ties() {
        // Star: hub 0 has degree 6, leaves degree 1 — ties break low-id.
        let star = Topology::star(7);
        assert_eq!(star.top_k_by_degree(1), vec![ProcessId(0)]);
        assert_eq!(
            star.top_k_by_degree(3),
            vec![ProcessId(0), ProcessId(1), ProcessId(2)]
        );
        // k larger than n clamps; k == 0 is empty.
        assert_eq!(star.top_k_by_degree(99).len(), 7);
        assert!(star.top_k_by_degree(0).is_empty());
        // Matches a full sort on an irregular graph.
        let t = Topology::grid(5, 4);
        for k in [1, 3, 7, 20] {
            let mut ids: Vec<usize> = (0..t.len()).collect();
            ids.sort_by_key(|&id| (std::cmp::Reverse(t.degree(ProcessId(id))), id));
            let mut expect: Vec<ProcessId> = ids[..k.min(t.len())]
                .iter()
                .map(|&id| ProcessId(id))
                .collect();
            expect.sort_unstable_by_key(|id| id.index());
            assert_eq!(t.top_k_by_degree(k), expect, "k={k}");
        }
    }
}

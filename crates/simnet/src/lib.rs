//! # ga-simnet — deterministic synchronous message-passing simulator
//!
//! The game-authority paper (§4.1) assumes the classic synchronous model:
//!
//! > "a common pulse triggers each step… the step starts sending messages to
//! > neighboring processors, receiving all messages sent by the neighbors and
//! > changing its state accordingly."
//!
//! plus up to `f` Byzantine processors and *transient faults* that leave the
//! system in an arbitrary configuration. This crate is that model, executable:
//!
//! * [`Simulation`](sim::Simulation) runs a set of [`Process`](process::Process)es
//!   in lock-step rounds over a [`Topology`](topology::Topology);
//! * [`adversary`] wraps processes in Byzantine behaviours (silence,
//!   equivocation, random noise, collusion);
//! * [`fault`] injects *transient faults*: scrambling process states and
//!   in-flight messages so self-stabilization can be exercised from genuinely
//!   arbitrary configurations;
//! * everything is seeded and deterministic — a run is a pure function of
//!   `(program, topology, seed)` — so experiments are replayable.
//!
//! ## Zero-copy message substrate
//!
//! The per-round hot path is allocation-free in steady state:
//!
//! * **Payloads are [`bytes::Bytes`].**
//!   [`Context::send`](process::Context::send) and
//!   [`Context::broadcast`](process::Context::broadcast) take
//!   `impl Into<Bytes>`; a broadcast converts its payload **once** and all
//!   recipients' [`Message`](message::Message)s share the single
//!   refcounted buffer (cloning `Bytes` is a refcount bump, and
//!   `payload.as_ptr()` is identical across recipients). Protocols that
//!   resend a received payload should clone `message.payload` instead of
//!   copying out the bytes.
//! * **Buffers are recycled, not reallocated.** Inboxes are double-buffered
//!   and swap+cleared each pulse, the per-process outbox is one scratch
//!   vector reused across all processes and rounds, and messages are routed
//!   inline per sender — there is no per-round flat staging vector.
//! * **Derivation is numeric on the hot path.** The loss-model RNG comes
//!   from [`rng::labeled_rng_u64_pair`] (integer mixing, no `format!`),
//!   keyed per `(round, sender)`, and is only constructed when
//!   [`Delivery::Lossy`](sim::Delivery) is configured;
//!   [`Simulation::disconnect`](sim::Simulation::disconnect)
//!   mutates adjacency in place via
//!   [`Topology::isolate`](topology::Topology::isolate).
//!
//! ## Sharded stepping on the persistent runtime
//!
//! [`Simulation::step`](sim::Simulation::step) splits every round into a
//! **compute phase** (each shard's process id set steps against the
//! immutable prior-round inboxes, filtering its outboxes into per-shard
//! scratch) and a **deterministic merge phase** (a k-way walk over the
//! shards' per-sender segment tables replays ascending process-id order,
//! counters summed in fixed order). With
//! [`StepExec::Sharded`](sim::StepExec) the compute phase is submitted as
//! one indexed batch to a persistent [`Runtime`](runtime::Runtime) worker
//! pool — created once, shared with the scenario sweep engine, zero
//! threads spawned per round; because every random draw is derived
//! from `(seed, id, round)` coordinates, the resulting trace is
//! byte-for-byte identical to serial stepping at any shard count and any
//! pool size (`tests/sharding.rs`, `tests/runtime.rs`). Select it with
//! [`SimulationBuilder::shards`](sim::SimulationBuilder::shards) /
//! [`Simulation::set_shards`](sim::Simulation::set_shards) and attach a
//! pool with [`SimulationBuilder::runtime`](sim::SimulationBuilder::runtime)
//! (default: the process-wide [`Runtime::global`](runtime::Runtime::global)).
//!
//! ## Sparse mode
//!
//! The substrate scales to sparse million-process systems (rings, grids,
//! random-k graphs) through three mechanisms, none of which change any
//! trace:
//!
//! * **CSR adjacency.** [`Topology`](topology::Topology) stores sorted
//!   compressed-sparse-row neighbor lists; the O(n²/8) dense bitmask plane
//!   used for O(1) `connected` checks is kept only at small n (or when
//!   forced via [`AdjacencyRepr`](topology::AdjacencyRepr) /
//!   [`Topology::set_repr`](topology::Topology::set_repr)), with binary
//!   search on the row as the sparse path. Both representations answer
//!   every query identically.
//! * **Quiescence-aware stepping.** Each round steps only the *active
//!   set*: processes whose inbox gained a message last round, processes
//!   woken by a schedule/fault intervention (scramble, corruption,
//!   program replacement), and processes claiming
//!   [`Process::always_active`](process::Process::always_active) — the
//!   default, so ordinary protocols are unaffected. A process opting out
//!   promises that an `on_pulse` call with an empty inbox would be
//!   unobservable; the scheduler re-queries the hook after every step it
//!   executes, so the answer may be state-dependent. Inboxes live in an
//!   arena ([`Vec<Message>`] slots recycled through a pool) whose
//!   touched-slot list doubles as the active-set source and makes
//!   [`pending_messages`](sim::Simulation::pending_messages) /
//!   [`quiescent_processes`](sim::Simulation::quiescent_processes)
//!   O(active). Idle processes cost zero allocations and zero scan time;
//!   a fully quiescent round still advances the clock and fires due
//!   schedule entries.
//! * **Degree-balanced sharding.** Under
//!   [`StepExec::Sharded`](sim::StepExec) the active set is assigned to
//!   shards by a deterministic greedy bin-pack over `degree + 1` weights
//!   (heaviest first, ties toward the lower id; least-loaded bin, ties
//!   toward the lower bin), so one hub can't serialize a shard. The merge
//!   phase k-way-walks the shards' per-sender segment tables to replay
//!   global ascending-id order, keeping traces and event streams
//!   byte-identical at any workers × shards × pool size.
//!
//! ### The build path
//!
//! Startup is engineered like the hot path, because at 10⁶ processes it
//! *is* the hot path of short runs:
//!
//! * **Streaming CSR construction.** Topology constructors never
//!   materialize a per-vertex `Vec<Vec<usize>>` intermediate. Family
//!   constructors (`ring`/`grid`/`star`/`complete`) know every row's
//!   exact degree and sorted order up front and emit rows straight into
//!   one pre-sized flat array — no counting pass, no sort, no dedup;
//!   [`Topology::from_edges`](topology::Topology::from_edges) validates
//!   all edges first (fail-fast, before any n-sized allocation), then
//!   counts degrees and scatters endpoints in two passes over the edge
//!   list. Either way: O(1) allocations per build.
//! * **Process slabs vs boxes.**
//!   [`SimulationBuilder::build_slab`](sim::SimulationBuilder::build_slab)
//!   stores a homogeneous population contiguously — one arena allocation
//!   for all n processes instead of n boxes. Trade-off: boxed storage
//!   ([`build`](sim::SimulationBuilder::build) /
//!   [`build_with`](sim::SimulationBuilder::build_with)) supports mixed
//!   process types from the start; a slab is promoted to boxed storage
//!   (one-time O(n)) only if
//!   [`replace_process`](sim::Simulation::replace_process) introduces
//!   heterogeneity mid-run. Traces are identical either way.
//! * **Cached shard plans.** The degree-balanced bin-pack is fingerprinted
//!   by `(topology generation, shard count, active set)` and reused while
//!   all three match — the invalidation rule: any topology mutation
//!   (cut/heal/isolate) bumps the generation, and any change to the active
//!   set misses the exact-compare confirm. Dense-activity rounds (everyone
//!   active) therefore pay the bin-pack once, not every round; the plan
//!   only decides which thread steps whom, so caching can never change a
//!   trace ([`set_plan_cache`](sim::set_plan_cache) turns it off for the
//!   byte-identity gates).
//!
//! ## Two-plane telemetry
//!
//! [`telemetry`] adds observability without touching the determinism
//! guarantees: a **deterministic event plane** (structured
//! [`Event`](telemetry::Event)s at stable `(round, process-id)` coordinates,
//! ring-buffered in an [`EventSink`](telemetry::EventSink), byte-identical
//! at any workers × shards × pool size) and a **wall-clock timing plane**
//! ([`Profiler`](telemetry::Profiler)) that never feeds back into traces or
//! any compared output. See the [`telemetry`] module docs for the rule.
//!
//! ## Quickstart
//!
//! ```
//! use ga_simnet::prelude::*;
//!
//! /// Every round, send our id to all neighbors and count what we hear.
//! struct Chatter { heard: usize }
//!
//! impl Process for Chatter {
//!     fn on_pulse(&mut self, ctx: &mut Context<'_>) {
//!         self.heard += ctx.inbox().len();
//!         ctx.broadcast(b"hi".to_vec());
//!     }
//!     fn as_any(&self) -> &dyn std::any::Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//! }
//!
//! let mut sim = Simulation::builder(Topology::complete(4))
//!     .seed(7)
//!     .build_with(|_id| Box::new(Chatter { heard: 0 }) as Box<dyn Process>);
//! sim.run(3);
//! // After round 1 each process hears 3 messages per round, for 2 rounds.
//! let p0: &Chatter = sim.process_as::<Chatter>(ProcessId(0)).unwrap();
//! assert_eq!(p0.heard, 6);
//! ```

pub mod adversary;
pub mod colluding;
pub mod fault;
pub mod ids;
pub(crate) mod inbox;
pub mod message;
pub mod process;
pub mod relay;
pub mod rng;
pub mod runtime;
pub mod schedule;
pub mod sim;
pub(crate) mod store;
pub mod telemetry;
pub mod topology;
pub mod trace;

/// Convenient glob import for simulator users.
pub mod prelude {
    pub use crate::adversary::{Adversary, ByzantineProcess};
    pub use crate::fault::{CorruptionFamily, CorruptionTargets, TransientFault};
    pub use crate::ids::{ProcessId, Round};
    pub use crate::message::Message;
    pub use crate::process::{Context, Process};
    pub use crate::runtime::Runtime;
    pub use crate::schedule::{Recurrence, Schedule, ScheduledAction};
    pub use crate::sim::{
        plan_cache_enabled, set_plan_cache, Delivery, Simulation, SimulationBuilder, StepExec,
    };
    pub use crate::telemetry::{
        DropReason, Event, EventSink, ProfileData, Profiler, TelemetryConfig,
    };
    pub use crate::topology::{AdjacencyRepr, Topology};
    pub use crate::trace::Trace;
}

use std::error::Error;
use std::fmt;

/// Errors surfaced by the simulator harness.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A process id referenced a processor that does not exist.
    UnknownProcess(ids::ProcessId),
    /// Topology constraint violated (e.g. requested connectivity impossible).
    BadTopology(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownProcess(id) => write!(f, "unknown process {id}"),
            SimError::BadTopology(why) => write!(f, "bad topology: {why}"),
        }
    }
}

impl Error for SimError {}

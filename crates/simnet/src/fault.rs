//! Transient-fault injection.
//!
//! Self-stabilization is proved "assuming an arbitrary starting state of the
//! automaton" (§1.1/§4.1). Two descriptors produce such arbitrary
//! configurations inside a running [`Simulation`](crate::sim::Simulation):
//!
//! * [`TransientFault`] — the imperative original: one sequential RNG
//!   stream scrambles process states (via `Process::scramble`) and
//!   corrupts, drops or fabricates in-flight messages. Fine for
//!   [`Simulation::inject`](crate::sim::Simulation::inject) calls between
//!   runs.
//! * [`CorruptionFamily`] — the schedulable, coordinate-keyed form used by
//!   [`ScheduledAction::Corrupt`](crate::schedule::ScheduledAction):
//!   targets are *selected* by strategy (fixed ids, random-k,
//!   worst-case-by-degree — mirroring the scenario engine's adversary
//!   placement), and every RNG draw derives from `(seed, id, round)`
//!   coordinates so a corruption firing mid-run reproduces byte-for-byte
//!   at any workers × shards × pool size.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::RngCore;

use crate::ids::{ProcessId, Round};
use crate::inbox::Inboxes;
use crate::message::Message;
#[cfg(test)]
use crate::process::Process;
use crate::rng::{labeled_rng_u64, labeled_rng_u64_pair};
use crate::store::ProcessAccess;
use crate::telemetry::{DropReason, Event, EventSink};
use crate::topology::Topology;

/// Numeric RNG domain for transient-fault injection (see
/// [`labeled_rng_u64`]).
const FAULT_DOMAIN: u64 = 0xFA17_FA17_FA17_FA17;

/// Numeric RNG domain for [`CorruptionFamily`] target selection (one draw
/// per firing, keyed by round).
const CORRUPT_SELECT_DOMAIN: u64 = 0xC022_5E1E_C022_5E1E;

/// Numeric RNG domain for per-victim state scrambling, keyed by
/// `(round, process id)` — a victim's scramble stream is independent of
/// which other processes are also targeted.
const CORRUPT_STATE_DOMAIN: u64 = 0xC022_57A7_C022_57A7;

/// Numeric RNG domain for per-inbox channel degradation, keyed by
/// `(round, inbox owner)` — an inbox's drop/corrupt pattern is independent
/// of every other inbox.
const CORRUPT_CHANNEL_DOMAIN: u64 = 0xC022_C4A9_C022_C4A9;

/// What a transient fault does to the system configuration.
#[derive(Debug, Clone)]
pub struct TransientFault {
    /// Scramble the internal state of these processes.
    pub scramble: Vec<ProcessId>,
    /// Corrupt each in-flight message with this probability.
    pub corrupt_messages_p: f64,
    /// Drop each in-flight message with this probability.
    pub drop_messages_p: f64,
    /// Inject this many random garbage messages per process inbox.
    pub garbage_messages: usize,
    /// Extra entropy so repeated injections differ.
    pub salt: u64,
}

impl Default for TransientFault {
    fn default() -> Self {
        TransientFault {
            scramble: Vec::new(),
            corrupt_messages_p: 0.0,
            drop_messages_p: 0.0,
            garbage_messages: 0,
            salt: 0,
        }
    }
}

impl TransientFault {
    /// The classic total fault: scramble *every* process state and wipe all
    /// channel contents into garbage — the adversarial "arbitrary
    /// configuration" of the self-stabilization literature.
    pub fn total(n: usize, salt: u64) -> TransientFault {
        TransientFault {
            scramble: (0..n).map(ProcessId).collect(),
            corrupt_messages_p: 1.0,
            drop_messages_p: 0.25,
            garbage_messages: 2,
            salt,
        }
    }

    /// Scramble only the given processes, leave channels alone.
    pub fn state_only(targets: impl IntoIterator<Item = usize>, salt: u64) -> TransientFault {
        TransientFault {
            scramble: targets.into_iter().map(ProcessId).collect(),
            salt,
            ..TransientFault::default()
        }
    }

    /// Applies the fault; returns the number of in-flight messages dropped
    /// (the caller accounts them in the trace). When `events` is attached,
    /// [`Scrambled`](Event::Scrambled) and fault-reason
    /// [`Dropped`](Event::Dropped) events are emitted in the same
    /// deterministic order the sequential RNG stream visits them.
    pub(crate) fn apply(
        &self,
        seed: u64,
        round: Round,
        processes: &mut impl ProcessAccess,
        inboxes: &mut Inboxes,
        mut events: Option<&mut EventSink>,
    ) -> u64 {
        let mut rng = labeled_rng_u64(seed ^ self.salt, FAULT_DOMAIN, round.value());

        for id in &self.scramble {
            if let Some(p) = processes.get_mut(id.index()) {
                p.scramble(&mut rng);
                if let Some(sink) = events.as_deref_mut() {
                    sink.push(Event::Scrambled {
                        round: round.value(),
                        id: *id,
                    });
                }
            }
        }

        let mut dropped = 0u64;
        let n = inboxes.len();
        let drop_p = self.drop_messages_p.clamp(0.0, 1.0);
        let corrupt_p = self.corrupt_messages_p.clamp(0.0, 1.0);
        // Which inboxes the sequential stream visits: garbage lands in
        // every inbox, but the drop/corrupt knobs only draw for existing
        // messages, so with no garbage the empty inboxes can be skipped —
        // draw-for-draw identical, and a channel-only fault then doesn't
        // wake every idle process of a sparse run.
        if self.garbage_messages > 0 {
            for owner in 0..n {
                let inbox = inboxes.slot_mut(owner);
                degrade_inbox(
                    inbox,
                    &mut rng,
                    owner,
                    round,
                    drop_p,
                    corrupt_p,
                    &mut dropped,
                    &mut events,
                );
                for _ in 0..self.garbage_messages {
                    let len = rng.gen_range(0..24);
                    let mut payload = vec![0u8; len];
                    rng.fill_bytes(&mut payload);
                    let from = ProcessId(rng.gen_range(0..n));
                    inbox.push(Message::new(from, round, payload));
                }
            }
        } else if drop_p > 0.0 || corrupt_p > 0.0 {
            for owner in inboxes.touched_sorted() {
                if inboxes.slot(owner).is_empty() {
                    continue;
                }
                degrade_inbox(
                    inboxes.slot_mut(owner),
                    &mut rng,
                    owner,
                    round,
                    drop_p,
                    corrupt_p,
                    &mut dropped,
                    &mut events,
                );
            }
        }
        dropped
    }
}

/// Drops then bit-flips the messages of one inbox, emitting fault-reason
/// [`Dropped`](Event::Dropped) events in visit order. Shared by both
/// injectors — only the RNG keying differs.
#[allow(clippy::too_many_arguments)]
fn degrade_inbox(
    inbox: &mut Vec<Message>,
    rng: &mut StdRng,
    owner: usize,
    round: Round,
    drop_p: f64,
    corrupt_p: f64,
    dropped: &mut u64,
    events: &mut Option<&mut EventSink>,
) {
    inbox.retain(|m| {
        if rng.gen_bool(drop_p) {
            *dropped += 1;
            if let Some(sink) = events.as_deref_mut() {
                sink.push(Event::Dropped {
                    round: round.value(),
                    from: m.from,
                    to: ProcessId(owner),
                    reason: DropReason::Fault,
                });
            }
            false
        } else {
            true
        }
    });
    for m in inbox.iter_mut() {
        if rng.gen_bool(corrupt_p) {
            let mut bytes = m.payload.to_vec();
            if bytes.is_empty() {
                bytes = vec![0u8; 4];
            }
            let idx = rng.gen_range(0..bytes.len());
            bytes[idx] ^= 1u8 << rng.gen_range(0..8u32);
            m.payload = bytes.into();
        }
    }
}

/// How a [`CorruptionFamily`] picks the processes whose state it
/// scrambles — the scheduled-corruption mirror of the scenario engine's
/// adversary placement strategies.
#[derive(Debug, Clone)]
pub enum CorruptionTargets {
    /// Exactly these processes (out-of-range ids are skipped).
    Fixed(Vec<ProcessId>),
    /// `k` processes chosen uniformly, re-drawn per `(seed, salt, round)`.
    RandomK(usize),
    /// The `k` best-connected processes (ties broken toward the lower id):
    /// the worst case, where corruption lands where it spreads fastest.
    WorstCaseByDegree(usize),
    /// Every process — the classic total transient fault.
    All,
}

/// A seed-derived corruption event, designed to live in a [`Schedule`]
/// (via [`ScheduledAction::Corrupt`](crate::schedule::ScheduledAction)) so
/// corruption is spec data like churn.
///
/// Unlike [`TransientFault`], whose draws come from one sequential stream,
/// every draw here is a pure function of `(seed ^ salt, round, id)`
/// coordinates: target selection is keyed by round, each victim's scramble
/// stream by its process id, and each inbox's channel degradation by its
/// owner id. Nothing depends on visit order, so a corruption firing inside
/// a sharded run leaves traces byte-identical at any workers × shards ×
/// pool size.
///
/// [`Schedule`]: crate::schedule::Schedule
#[derive(Debug, Clone)]
pub struct CorruptionFamily {
    /// Which process states to scramble.
    pub targets: CorruptionTargets,
    /// Corrupt each in-flight message with this probability.
    pub corrupt_messages_p: f64,
    /// Drop each in-flight message with this probability.
    pub drop_messages_p: f64,
    /// Extra entropy so repeated corruption events differ.
    pub salt: u64,
}

impl CorruptionFamily {
    /// State-only corruption of `k` uniformly chosen processes.
    pub fn random_k(k: usize, salt: u64) -> CorruptionFamily {
        CorruptionFamily {
            targets: CorruptionTargets::RandomK(k),
            corrupt_messages_p: 0.0,
            drop_messages_p: 0.0,
            salt,
        }
    }

    /// The single-knob family used by intensity sweeps: scramble `k`
    /// uniformly chosen processes and degrade every channel with
    /// per-message corrupt *and* drop probability `intensity`.
    pub fn intensity(k: usize, intensity: f64, salt: u64) -> CorruptionFamily {
        CorruptionFamily {
            targets: CorruptionTargets::RandomK(k),
            corrupt_messages_p: intensity,
            drop_messages_p: intensity,
            salt,
        }
    }

    /// Resolves the concrete target set this family scrambles when firing
    /// at `round` under `seed`, against the live `topology` (degrees and
    /// process count are read at fire time, after any earlier churn).
    /// Returns ids ascending, deduplicated.
    pub fn resolve_targets(&self, topology: &Topology, seed: u64, round: Round) -> Vec<ProcessId> {
        let n = topology.len();
        let mut ids: Vec<ProcessId> = match &self.targets {
            CorruptionTargets::Fixed(ids) => {
                ids.iter().copied().filter(|id| id.index() < n).collect()
            }
            CorruptionTargets::All => (0..n).map(ProcessId).collect(),
            CorruptionTargets::RandomK(k) => {
                let mut all: Vec<ProcessId> = (0..n).map(ProcessId).collect();
                let mut rng =
                    labeled_rng_u64(seed ^ self.salt, CORRUPT_SELECT_DOMAIN, round.value());
                all.shuffle(&mut rng);
                all.truncate((*k).min(n));
                all
            }
            CorruptionTargets::WorstCaseByDegree(k) => topology.top_k_by_degree(*k),
        };
        ids.sort_unstable_by_key(|id| id.index());
        ids.dedup_by_key(|id| id.index());
        ids
    }

    /// Applies the corruption; returns the number of in-flight messages
    /// dropped (the caller accounts them in the trace). When `events` is
    /// attached, a [`Scrambled`](Event::Scrambled) event is emitted per
    /// victim (ascending id) and a fault-reason [`Dropped`](Event::Dropped)
    /// event per destroyed message (ascending inbox owner) — coordinate
    /// order, so the stream is identical at any workers × shards × pool
    /// size.
    pub(crate) fn apply(
        &self,
        seed: u64,
        round: Round,
        topology: &Topology,
        processes: &mut impl ProcessAccess,
        inboxes: &mut Inboxes,
        mut events: Option<&mut EventSink>,
    ) -> u64 {
        for id in self.resolve_targets(topology, seed, round) {
            let mut rng = labeled_rng_u64_pair(
                seed ^ self.salt,
                CORRUPT_STATE_DOMAIN,
                round.value(),
                id.index() as u64,
            );
            if let Some(p) = processes.get_mut(id.index()) {
                p.scramble(&mut rng);
                if let Some(sink) = events.as_deref_mut() {
                    sink.push(Event::Scrambled {
                        round: round.value(),
                        id,
                    });
                }
            }
        }

        let corrupt_p = self.corrupt_messages_p.clamp(0.0, 1.0);
        let drop_p = self.drop_messages_p.clamp(0.0, 1.0);
        let mut dropped = 0u64;
        if corrupt_p > 0.0 || drop_p > 0.0 {
            // Per-owner keyed streams make skipping the untouched (empty)
            // inboxes draw-for-draw identical to visiting all n: an empty
            // inbox consumes no draws and emits no events.
            for owner in inboxes.touched_sorted() {
                if inboxes.slot(owner).is_empty() {
                    continue;
                }
                let mut rng = labeled_rng_u64_pair(
                    seed ^ self.salt,
                    CORRUPT_CHANNEL_DOMAIN,
                    round.value(),
                    owner as u64,
                );
                degrade_inbox(
                    inboxes.slot_mut(owner),
                    &mut rng,
                    owner,
                    round,
                    drop_p,
                    corrupt_p,
                    &mut dropped,
                    &mut events,
                );
            }
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Context;
    use rand::rngs::StdRng;

    struct Scrambleable {
        value: u64,
        scrambled: bool,
    }

    impl Process for Scrambleable {
        fn on_pulse(&mut self, _ctx: &mut Context<'_>) {}
        fn scramble(&mut self, rng: &mut StdRng) {
            self.value = rng.next_u64();
            self.scrambled = true;
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn fixture() -> (Vec<Box<dyn Process>>, Inboxes) {
        let processes: Vec<Box<dyn Process>> = (0..3)
            .map(|_| {
                Box::new(Scrambleable {
                    value: 7,
                    scrambled: false,
                }) as Box<dyn Process>
            })
            .collect();
        let inboxes = Inboxes::from_slots(vec![
            vec![Message::new(ProcessId(1), Round(0), vec![1, 2, 3])],
            vec![],
            vec![Message::new(ProcessId(0), Round(0), vec![4])],
        ]);
        (processes, inboxes)
    }

    #[test]
    fn state_only_scrambles_targets() {
        let (mut ps, mut inboxes) = fixture();
        TransientFault::state_only([0, 2], 1).apply(9, Round(0), &mut ps, &mut inboxes, None);
        let flags: Vec<bool> = ps
            .iter()
            .map(|p| p.as_any().downcast_ref::<Scrambleable>().unwrap().scrambled)
            .collect();
        assert_eq!(flags, vec![true, false, true]);
        // Channels untouched.
        assert_eq!(inboxes.slot(0).len(), 1);
        assert_eq!(inboxes.slot(0)[0].bytes(), &[1, 2, 3]);
    }

    #[test]
    fn total_fault_touches_everything() {
        let (mut ps, mut inboxes) = fixture();
        TransientFault::total(3, 2).apply(9, Round(0), &mut ps, &mut inboxes, None);
        assert!(ps
            .iter()
            .all(|p| p.as_any().downcast_ref::<Scrambleable>().unwrap().scrambled));
        // Garbage injected into every inbox.
        assert!((0..3).all(|i| !inboxes.slot(i).is_empty()));
    }

    #[test]
    fn corruption_changes_payload() {
        let (mut ps, mut inboxes) = fixture();
        let fault = TransientFault {
            corrupt_messages_p: 1.0,
            ..TransientFault::default()
        };
        fault.apply(9, Round(0), &mut ps, &mut inboxes, None);
        assert_ne!(inboxes.slot(0)[0].bytes(), &[1, 2, 3]);
    }

    #[test]
    fn different_salts_differ() {
        let (mut ps1, mut in1) = fixture();
        let (mut ps2, mut in2) = fixture();
        TransientFault::total(3, 1).apply(9, Round(0), &mut ps1, &mut in1, None);
        TransientFault::total(3, 2).apply(9, Round(0), &mut ps2, &mut in2, None);
        let v1 = ps1[0]
            .as_any()
            .downcast_ref::<Scrambleable>()
            .unwrap()
            .value;
        let v2 = ps2[0]
            .as_any()
            .downcast_ref::<Scrambleable>()
            .unwrap()
            .value;
        assert_ne!(v1, v2);
    }

    fn scrambled(ps: &[Box<dyn Process>]) -> Vec<bool> {
        ps.iter()
            .map(|p| p.as_any().downcast_ref::<Scrambleable>().unwrap().scrambled)
            .collect()
    }

    fn value_of(ps: &[Box<dyn Process>], i: usize) -> u64 {
        ps[i].as_any().downcast_ref::<Scrambleable>().unwrap().value
    }

    fn family(targets: CorruptionTargets) -> CorruptionFamily {
        CorruptionFamily {
            targets,
            corrupt_messages_p: 0.0,
            drop_messages_p: 0.0,
            salt: 5,
        }
    }

    #[test]
    fn fixed_targets_skip_out_of_range() {
        let topo = Topology::complete(3);
        let f = family(CorruptionTargets::Fixed(vec![
            ProcessId(2),
            ProcessId(0),
            ProcessId(9),
            ProcessId(0),
        ]));
        assert_eq!(
            f.resolve_targets(&topo, 1, Round(0)),
            vec![ProcessId(0), ProcessId(2)],
            "in-range, ascending, deduplicated"
        );
    }

    #[test]
    fn random_k_is_a_pure_function_of_seed_and_round() {
        let topo = Topology::complete(8);
        let f = family(CorruptionTargets::RandomK(3));
        let a = f.resolve_targets(&topo, 9, Round(4));
        assert_eq!(a.len(), 3);
        assert_eq!(a, f.resolve_targets(&topo, 9, Round(4)));
        assert_ne!(
            a,
            f.resolve_targets(&topo, 9, Round(5)),
            "round re-draws the selection"
        );
    }

    #[test]
    fn worst_case_targets_highest_degree_first() {
        // Star-ish graph: 0 linked to everyone, others only to 0.
        let mut topo = Topology::ring(5);
        for b in 1..5 {
            let _ = topo.heal_link(ProcessId(0), ProcessId(b));
        }
        let f = family(CorruptionTargets::WorstCaseByDegree(1));
        assert_eq!(f.resolve_targets(&topo, 1, Round(0)), vec![ProcessId(0)]);
    }

    #[test]
    fn corruption_family_scrambles_only_targets() {
        let (mut ps, mut inboxes) = fixture();
        let topo = Topology::complete(3);
        family(CorruptionTargets::Fixed(vec![ProcessId(1)])).apply(
            9,
            Round(2),
            &topo,
            &mut ps,
            &mut inboxes,
            None,
        );
        assert_eq!(scrambled(&ps), vec![false, true, false]);
        // Channels untouched at zero intensity.
        assert_eq!(inboxes.slot(0)[0].bytes(), &[1, 2, 3]);
    }

    #[test]
    fn victim_streams_are_independent_of_the_target_set() {
        // Process 2's scramble draw is keyed by its own coordinates, so
        // corrupting {0, 1, 2} or {2} alone yields the same state for 2 —
        // the visit-order independence sharded determinism relies on.
        let topo = Topology::complete(3);
        let (mut ps1, mut in1) = fixture();
        let (mut ps2, mut in2) = fixture();
        family(CorruptionTargets::All).apply(9, Round(3), &topo, &mut ps1, &mut in1, None);
        family(CorruptionTargets::Fixed(vec![ProcessId(2)])).apply(
            9,
            Round(3),
            &topo,
            &mut ps2,
            &mut in2,
            None,
        );
        assert_eq!(value_of(&ps1, 2), value_of(&ps2, 2));
        assert_ne!(
            value_of(&ps1, 0),
            value_of(&ps1, 1),
            "distinct per-victim streams"
        );
    }

    #[test]
    fn intensity_family_degrades_channels() {
        let (mut ps, mut inboxes) = fixture();
        let topo = Topology::complete(3);
        let f = CorruptionFamily {
            targets: CorruptionTargets::Fixed(Vec::new()),
            corrupt_messages_p: 1.0,
            drop_messages_p: 0.0,
            salt: 0,
        };
        f.apply(9, Round(0), &topo, &mut ps, &mut inboxes, None);
        assert_ne!(inboxes.slot(0)[0].bytes(), &[1, 2, 3]);
        assert_eq!(scrambled(&ps), vec![false, false, false]);

        let (mut ps, mut inboxes) = fixture();
        let dropped = CorruptionFamily {
            drop_messages_p: 1.0,
            ..f
        }
        .apply(9, Round(0), &topo, &mut ps, &mut inboxes, None);
        assert_eq!(dropped, 2, "both in-flight messages dropped");
        assert_eq!(inboxes.pending(), 0);
    }
}

//! Transient-fault injection.
//!
//! Self-stabilization is proved "assuming an arbitrary starting state of the
//! automaton" (§1.1/§4.1). The [`TransientFault`] descriptor produces such
//! arbitrary configurations inside a running
//! [`Simulation`](crate::sim::Simulation): scrambling process states (via
//! `Process::scramble`) and corrupting,
//! dropping or fabricating in-flight messages.

use rand::Rng;
use rand::RngCore;

use crate::ids::{ProcessId, Round};
use crate::message::Message;
use crate::process::Process;
use crate::rng::labeled_rng_u64;

/// Numeric RNG domain for transient-fault injection (see
/// [`labeled_rng_u64`]).
const FAULT_DOMAIN: u64 = 0xFA17_FA17_FA17_FA17;

/// What a transient fault does to the system configuration.
#[derive(Debug, Clone)]
pub struct TransientFault {
    /// Scramble the internal state of these processes.
    pub scramble: Vec<ProcessId>,
    /// Corrupt each in-flight message with this probability.
    pub corrupt_messages_p: f64,
    /// Drop each in-flight message with this probability.
    pub drop_messages_p: f64,
    /// Inject this many random garbage messages per process inbox.
    pub garbage_messages: usize,
    /// Extra entropy so repeated injections differ.
    pub salt: u64,
}

impl Default for TransientFault {
    fn default() -> Self {
        TransientFault {
            scramble: Vec::new(),
            corrupt_messages_p: 0.0,
            drop_messages_p: 0.0,
            garbage_messages: 0,
            salt: 0,
        }
    }
}

impl TransientFault {
    /// The classic total fault: scramble *every* process state and wipe all
    /// channel contents into garbage — the adversarial "arbitrary
    /// configuration" of the self-stabilization literature.
    pub fn total(n: usize, salt: u64) -> TransientFault {
        TransientFault {
            scramble: (0..n).map(ProcessId).collect(),
            corrupt_messages_p: 1.0,
            drop_messages_p: 0.25,
            garbage_messages: 2,
            salt,
        }
    }

    /// Scramble only the given processes, leave channels alone.
    pub fn state_only(targets: impl IntoIterator<Item = usize>, salt: u64) -> TransientFault {
        TransientFault {
            scramble: targets.into_iter().map(ProcessId).collect(),
            salt,
            ..TransientFault::default()
        }
    }

    /// Applies the fault; returns the number of in-flight messages dropped
    /// (the caller accounts them in the trace).
    pub(crate) fn apply(
        &self,
        seed: u64,
        round: Round,
        processes: &mut [Box<dyn Process>],
        inboxes: &mut [Vec<Message>],
    ) -> u64 {
        let mut rng = labeled_rng_u64(seed ^ self.salt, FAULT_DOMAIN, round.value());

        for id in &self.scramble {
            if let Some(p) = processes.get_mut(id.index()) {
                p.scramble(&mut rng);
            }
        }

        let mut dropped = 0u64;
        let n = inboxes.len();
        for (i, inbox) in inboxes.iter_mut().enumerate() {
            inbox.retain(|_| {
                if rng.gen_bool(self.drop_messages_p.clamp(0.0, 1.0)) {
                    dropped += 1;
                    false
                } else {
                    true
                }
            });
            for m in inbox.iter_mut() {
                if rng.gen_bool(self.corrupt_messages_p.clamp(0.0, 1.0)) {
                    let mut bytes = m.payload.to_vec();
                    if bytes.is_empty() {
                        bytes = vec![0u8; 4];
                    }
                    let idx = rng.gen_range(0..bytes.len());
                    bytes[idx] ^= 1u8 << rng.gen_range(0..8u32);
                    m.payload = bytes.into();
                }
            }
            for _ in 0..self.garbage_messages {
                let len = rng.gen_range(0..24);
                let mut payload = vec![0u8; len];
                rng.fill_bytes(&mut payload);
                let from = ProcessId(rng.gen_range(0..n));
                inbox.push(Message::new(from, round, payload));
            }
            let _ = i;
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Context;
    use rand::rngs::StdRng;

    struct Scrambleable {
        value: u64,
        scrambled: bool,
    }

    impl Process for Scrambleable {
        fn on_pulse(&mut self, _ctx: &mut Context<'_>) {}
        fn scramble(&mut self, rng: &mut StdRng) {
            self.value = rng.next_u64();
            self.scrambled = true;
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn fixture() -> (Vec<Box<dyn Process>>, Vec<Vec<Message>>) {
        let processes: Vec<Box<dyn Process>> = (0..3)
            .map(|_| {
                Box::new(Scrambleable {
                    value: 7,
                    scrambled: false,
                }) as Box<dyn Process>
            })
            .collect();
        let inboxes = vec![
            vec![Message::new(ProcessId(1), Round(0), vec![1, 2, 3])],
            vec![],
            vec![Message::new(ProcessId(0), Round(0), vec![4])],
        ];
        (processes, inboxes)
    }

    #[test]
    fn state_only_scrambles_targets() {
        let (mut ps, mut inboxes) = fixture();
        TransientFault::state_only([0, 2], 1).apply(9, Round(0), &mut ps, &mut inboxes);
        let flags: Vec<bool> = ps
            .iter()
            .map(|p| p.as_any().downcast_ref::<Scrambleable>().unwrap().scrambled)
            .collect();
        assert_eq!(flags, vec![true, false, true]);
        // Channels untouched.
        assert_eq!(inboxes[0].len(), 1);
        assert_eq!(inboxes[0][0].bytes(), &[1, 2, 3]);
    }

    #[test]
    fn total_fault_touches_everything() {
        let (mut ps, mut inboxes) = fixture();
        TransientFault::total(3, 2).apply(9, Round(0), &mut ps, &mut inboxes);
        assert!(ps
            .iter()
            .all(|p| p.as_any().downcast_ref::<Scrambleable>().unwrap().scrambled));
        // Garbage injected into every inbox.
        assert!(inboxes.iter().all(|i| !i.is_empty()));
    }

    #[test]
    fn corruption_changes_payload() {
        let (mut ps, mut inboxes) = fixture();
        let fault = TransientFault {
            corrupt_messages_p: 1.0,
            ..TransientFault::default()
        };
        fault.apply(9, Round(0), &mut ps, &mut inboxes);
        assert_ne!(inboxes[0][0].bytes(), &[1, 2, 3]);
    }

    #[test]
    fn different_salts_differ() {
        let (mut ps1, mut in1) = fixture();
        let (mut ps2, mut in2) = fixture();
        TransientFault::total(3, 1).apply(9, Round(0), &mut ps1, &mut in1);
        TransientFault::total(3, 2).apply(9, Round(0), &mut ps2, &mut in2);
        let v1 = ps1[0]
            .as_any()
            .downcast_ref::<Scrambleable>()
            .unwrap()
            .value;
        let v2 = ps2[0]
            .as_any()
            .downcast_ref::<Scrambleable>()
            .unwrap()
            .value;
        assert_ne!(v1, v2);
    }
}

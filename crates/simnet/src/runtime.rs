//! The persistent execution runtime: one deterministic worker pool shared
//! by sharded stepping and the scenario sweep engine.
//!
//! Before this module existed the repo had two disjoint threading layers:
//! `Simulation::step` spawned a fresh `std::thread::scope` every round for
//! its shard compute phase (~tens of µs of spawn/join per round — enough
//! to eat the sharding win at small n), and the sweep engine spawned its
//! own scoped workers per sweep. [`Runtime`] replaces both: a fixed set of
//! worker threads created **once**, to which both layers submit work as
//! *indexed batches*.
//!
//! ## The determinism order rule
//!
//! A batch is a vector of tasks, and [`Runtime::run_batch`] guarantees
//! only that every task has finished when it returns — it says nothing
//! about which thread ran what or in which order tasks completed. All
//! observable ordering therefore lives with the **caller**, exactly as PR
//! 3 established for sharded stepping: each task writes into its own
//! index-addressed slot (a shard's scratch buffer, a sweep job's reorder
//! slot) and the submitter merges the slots **in ascending index order**
//! after the batch completes. Because tasks never share mutable state and
//! every random draw inside a task is derived from `(seed, id, round)`
//! coordinates, results are byte-identical at any pool size — including
//! pool size 1, where the batch simply runs inline on the caller in index
//! order (the serial special case, no OS threads at all).
//!
//! ## The nested-submission contract
//!
//! Batches may be submitted from inside a task of another batch — a sweep
//! worker's job steps a simulation whose sharded compute phase submits its
//! own batch. This cannot deadlock, at any pool size including 1, because
//! the submitter **participates**: after queueing its tasks it pops and
//! executes its own batch's tasks from the shared queue, and only when
//! none of its tasks remain queued does it block — and then only on tasks
//! *currently executing* on other live threads. By induction over the
//! nesting depth, the innermost batch always drains through its own
//! submitter even when every pool thread is blocked in an outer wait, so
//! `--workers 1` nests sweep × shard submission without a single spawned
//! thread. The flip side of the contract: a task must never block on
//! anything *outside* the runtime that one of its sibling tasks is
//! expected to produce (sibling tasks may run strictly sequentially).
//! Coordination through the runtime itself — nested batches, or waits
//! that some *running* task is guaranteed to satisfy, like the sweep's
//! reorder-ring backpressure — is safe.
//!
//! Panics inside a task are caught on the worker, the batch is marked
//! poisoned, and the first payload is re-raised on the submitting thread
//! once the batch has fully drained — the same surface behaviour as
//! `std::thread::scope`, but the pool survives and stays usable.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::Instant;

use crate::telemetry::Profiler;

/// A task whose borrows only need to outlive the batch submission.
pub type BatchTask<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Lifetime-erased task as stored in the shared queue. Safety: the
/// submitter blocks in [`Runtime::run_batch`] until every task of its
/// batch has finished, so the erased `'env` borrows outlive all runs.
type ErasedTask = Box<dyn FnOnce() + Send + 'static>;

/// Completion state of one submitted batch.
struct Batch {
    state: Mutex<BatchState>,
    /// Signalled on every task completion of this batch.
    done: Condvar,
}

struct BatchState {
    /// Tasks not yet finished (queued or executing).
    pending: usize,
    /// First panic payload raised by a task of this batch, if any.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// One queue entry: the erased task plus its batch's completion latch.
struct QueuedTask {
    run: ErasedTask,
    batch: Arc<Batch>,
}

/// State shared by every handle and worker of one pool.
struct Shared {
    queue: Mutex<QueueState>,
    /// Signalled when tasks are queued (and on shutdown).
    task_ready: Condvar,
    /// Timing-plane hook: when attached, [`Runtime::run_batch`] records
    /// batch wall time and per-task queue-wait/busy time. Wall-clock data
    /// never flows back into task results — see [`crate::telemetry`].
    profiler: Mutex<Option<Profiler>>,
}

struct QueueState {
    tasks: VecDeque<QueuedTask>,
    shutdown: bool,
}

/// Joins the workers when the last user-held [`Runtime`] handle drops.
/// Workers themselves hold only `Arc<Shared>`, never the guard, so the
/// join can only run on a non-worker thread.
struct ShutdownGuard {
    shared: Arc<Shared>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl Drop for ShutdownGuard {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("runtime queue poisoned");
            queue.shutdown = true;
        }
        self.shared.task_ready.notify_all();
        for handle in self.workers.lock().expect("worker list poisoned").drain(..) {
            let _ = handle.join();
        }
    }
}

/// A cheaply-cloneable handle to a persistent worker pool.
///
/// See the [module docs](self) for the determinism order rule and the
/// nested-submission contract. Create one per thread budget
/// ([`Runtime::new`]) or share the process-wide default
/// ([`Runtime::global`]); every clone addresses the same pool, and the
/// pool's threads exit when the last handle drops.
#[derive(Clone)]
pub struct Runtime {
    shared: Arc<Shared>,
    /// Total thread budget: the caller plus the background workers.
    threads: usize,
    /// Present on every user handle; absent never — kept as an `Arc` so
    /// the workers are joined exactly once, when the last handle drops.
    _guard: Arc<ShutdownGuard>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl Runtime {
    /// Creates a pool with a total budget of `threads` (clamped to ≥ 1).
    ///
    /// The budget counts the *submitting* thread: `threads - 1` OS worker
    /// threads are spawned, because the caller of
    /// [`run_batch`](Runtime::run_batch) always executes tasks itself. A
    /// budget of 1 therefore spawns **no** threads and runs every batch
    /// inline, in index order — the serial special case.
    pub fn new(threads: usize) -> Runtime {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            task_ready: Condvar::new(),
            profiler: Mutex::new(None),
        });
        let workers = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("ga-runtime-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn runtime worker")
            })
            .collect();
        Runtime {
            shared: Arc::clone(&shared),
            threads,
            _guard: Arc::new(ShutdownGuard {
                shared,
                workers: Mutex::new(workers),
            }),
        }
    }

    /// A budget-1 pool: no OS threads, every batch runs inline.
    pub fn serial() -> Runtime {
        Runtime::new(1)
    }

    /// The process-wide default pool, created on first use and sized to
    /// the machine's parallelism (capped at 16, matching the scenario
    /// CLI's default worker budget). Components that are handed no
    /// explicit handle — e.g. a `Simulation` built without
    /// [`SimulationBuilder::runtime`](crate::sim::SimulationBuilder::runtime)
    /// whose step is sharded — fall back to this pool, so the process
    /// still runs **one** pool rather than per-call thread spawns.
    pub fn global() -> Runtime {
        static GLOBAL: OnceLock<Runtime> = OnceLock::new();
        GLOBAL
            .get_or_init(|| {
                let threads = thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
                    .clamp(1, 16);
                Runtime::new(threads)
            })
            .clone()
    }

    /// The pool's total thread budget (background workers + the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this handle and `other` address the same pool.
    pub fn same_pool(&self, other: &Runtime) -> bool {
        Arc::ptr_eq(&self.shared, &other.shared)
    }

    /// Attaches a wall-clock [`Profiler`] to the pool: subsequent batches
    /// record batch wall time and per-task queue-wait/busy time into it.
    /// Visible to every handle of the pool.
    pub fn attach_profiler(&self, profiler: Profiler) {
        *self
            .shared
            .profiler
            .lock()
            .expect("runtime profiler poisoned") = Some(profiler);
    }

    /// The attached profiler, if any (a clone — all clones share one set
    /// of accumulators).
    pub fn profiler(&self) -> Option<Profiler> {
        self.shared
            .profiler
            .lock()
            .expect("runtime profiler poisoned")
            .clone()
    }

    /// Executes an indexed batch of tasks, returning when **all** have
    /// finished. Tasks may borrow from the caller's stack (`'env`).
    ///
    /// Tasks run on the pool's workers *and* on the calling thread; see
    /// the [module docs](self) for why that makes nested submission
    /// deadlock-free. No completion order is guaranteed — callers own
    /// determinism by giving each task its own index-addressed output
    /// slot and merging slots in ascending index order afterwards.
    ///
    /// # Panics
    ///
    /// If a task panics, the batch still drains fully and the first
    /// panic payload is re-raised here; the pool remains usable.
    pub fn run_batch<'env>(&self, tasks: Vec<BatchTask<'env>>) {
        if tasks.is_empty() {
            return;
        }
        // Timing-plane hook: with a profiler attached, wrap each task to
        // record its queue wait (submit → execution start) and busy time,
        // and time the whole batch. The wrapper changes nothing about
        // ordering or results — wall-clock readings only ever flow into
        // the profiler's side channel.
        let profiler = self
            .shared
            .profiler
            .lock()
            .expect("runtime profiler poisoned")
            .clone();
        let (tasks, submitted) = match &profiler {
            Some(profiler) => {
                let submitted = Instant::now();
                let tasks = tasks
                    .into_iter()
                    .map(|task| {
                        let profiler = profiler.clone();
                        Box::new(move || {
                            let started = Instant::now();
                            task();
                            profiler
                                .record_task(started.duration_since(submitted), started.elapsed());
                        }) as BatchTask<'env>
                    })
                    .collect();
                (tasks, Some(submitted))
            }
            None => (tasks, None),
        };
        let record_batch = || {
            if let (Some(profiler), Some(submitted)) = (&profiler, submitted) {
                profiler.record_batch(submitted.elapsed());
            }
        };
        if self.threads == 1 {
            // Serial special case: inline, in index order, no queue round
            // trip. The batch still drains fully on a task panic — the
            // same contract as the pooled path, so panic-path state is
            // pool-size independent too.
            let mut first_panic = None;
            for task in tasks {
                if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(task)) {
                    first_panic.get_or_insert(payload);
                }
            }
            record_batch();
            if let Some(payload) = first_panic {
                panic::resume_unwind(payload);
            }
            return;
        }
        let batch = Arc::new(Batch {
            state: Mutex::new(BatchState {
                pending: tasks.len(),
                panic: None,
            }),
            done: Condvar::new(),
        });
        {
            let mut queue = self.shared.queue.lock().expect("runtime queue poisoned");
            for task in tasks {
                // SAFETY: this function does not return until `pending`
                // reaches 0, i.e. every task has finished executing, so
                // the 'env borrows captured by the task outlive its run.
                // The transmute only erases that lifetime; the fat-Box
                // layout is identical on both sides.
                let run: ErasedTask =
                    unsafe { std::mem::transmute::<BatchTask<'env>, ErasedTask>(task) };
                queue.tasks.push_back(QueuedTask {
                    run,
                    batch: Arc::clone(&batch),
                });
            }
        }
        self.shared.task_ready.notify_all();

        // Participate: drain our own batch's tasks. Restricting the help
        // to this batch bounds stack growth to the nesting depth and is
        // what makes the deadlock-freedom induction go through.
        loop {
            let task = {
                let mut queue = self.shared.queue.lock().expect("runtime queue poisoned");
                match queue
                    .tasks
                    .iter()
                    .position(|t| Arc::ptr_eq(&t.batch, &batch))
                {
                    Some(pos) => queue.tasks.remove(pos),
                    None => None,
                }
            };
            match task {
                Some(task) => execute(task),
                None => break,
            }
        }

        // Only in-flight stragglers remain; they are executing on live
        // threads right now, so this wait always terminates.
        let mut state = batch.state.lock().expect("runtime batch poisoned");
        while state.pending > 0 {
            state = batch.done.wait(state).expect("runtime batch poisoned");
        }
        let panicked = state.panic.take();
        drop(state);
        record_batch();
        if let Some(payload) = panicked {
            panic::resume_unwind(payload);
        }
    }
}

/// Runs one queued task and releases its batch latch, capturing a panic
/// payload instead of unwinding through the pool.
fn execute(task: QueuedTask) {
    let result = panic::catch_unwind(AssertUnwindSafe(task.run));
    let mut state = task.batch.state.lock().expect("runtime batch poisoned");
    if let Err(payload) = result {
        state.panic.get_or_insert(payload);
    }
    state.pending -= 1;
    drop(state);
    task.batch.done.notify_all();
}

/// The background worker: pop-and-execute until shutdown.
fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut queue = shared.queue.lock().expect("runtime queue poisoned");
            loop {
                if let Some(task) = queue.tasks.pop_front() {
                    break Some(task);
                }
                if queue.shutdown {
                    break None;
                }
                queue = shared
                    .task_ready
                    .wait(queue)
                    .expect("runtime queue poisoned");
            }
        };
        match task {
            Some(task) => execute(task),
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn indexed_squares(runtime: &Runtime, n: usize) -> Vec<usize> {
        let mut slots = vec![0usize; n];
        {
            let tasks: Vec<BatchTask<'_>> = slots
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| Box::new(move || *slot = i * i) as BatchTask<'_>)
                .collect();
            runtime.run_batch(tasks);
        }
        slots
    }

    #[test]
    fn batch_results_identical_at_every_pool_size() {
        let expected: Vec<usize> = (0..37).map(|i| i * i).collect();
        for threads in [1, 2, 4, 8] {
            let runtime = Runtime::new(threads);
            assert_eq!(indexed_squares(&runtime, 37), expected, "threads={threads}");
            // Reuse: a second batch on the same pool sees no stale state.
            assert_eq!(
                indexed_squares(&runtime, 37),
                expected,
                "threads={threads} reuse"
            );
        }
    }

    #[test]
    fn serial_pool_spawns_nothing_and_runs_in_index_order() {
        let runtime = Runtime::serial();
        assert_eq!(runtime.threads(), 1);
        let order = Mutex::new(Vec::new());
        let tasks: Vec<BatchTask<'_>> = (0..8)
            .map(|i| {
                let order = &order;
                Box::new(move || order.lock().unwrap().push(i)) as BatchTask<'_>
            })
            .collect();
        runtime.run_batch(tasks);
        assert_eq!(*order.lock().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn nested_batches_complete_at_every_pool_size() {
        for threads in [1, 2, 4] {
            let runtime = Runtime::new(threads);
            let total = AtomicUsize::new(0);
            let tasks: Vec<BatchTask<'_>> = (0..6)
                .map(|_| {
                    let (runtime, total) = (&runtime, &total);
                    Box::new(move || {
                        let inner: Vec<BatchTask<'_>> = (0..4)
                            .map(|_| {
                                Box::new(move || {
                                    total.fetch_add(1, Ordering::Relaxed);
                                }) as BatchTask<'_>
                            })
                            .collect();
                        runtime.run_batch(inner);
                    }) as BatchTask<'_>
                })
                .collect();
            runtime.run_batch(tasks);
            assert_eq!(total.load(Ordering::Relaxed), 24, "threads={threads}");
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        Runtime::new(2).run_batch(Vec::new());
        Runtime::serial().run_batch(Vec::new());
    }

    #[test]
    fn task_panic_propagates_and_pool_survives() {
        let runtime = Runtime::new(3);
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<BatchTask<'_>> = (0..8)
                .map(|i| Box::new(move || assert_ne!(i, 5, "boom")) as BatchTask<'_>)
                .collect();
            runtime.run_batch(tasks);
        }));
        assert!(outcome.is_err(), "the task panic must reach the submitter");
        // The pool is not consumed by the panic.
        assert_eq!(indexed_squares(&runtime, 5), vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn batch_drains_fully_on_panic_at_every_pool_size() {
        // The drain-then-reraise contract is pool-size independent: every
        // non-panicking task of the batch runs even when an earlier task
        // panicked — serial included.
        for threads in [1, 4] {
            let runtime = Runtime::new(threads);
            let ran = AtomicUsize::new(0);
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
                let tasks: Vec<BatchTask<'_>> = (0..8)
                    .map(|i| {
                        let ran = &ran;
                        Box::new(move || {
                            assert_ne!(i, 0, "boom");
                            ran.fetch_add(1, Ordering::Relaxed);
                        }) as BatchTask<'_>
                    })
                    .collect();
                runtime.run_batch(tasks);
            }));
            assert!(outcome.is_err(), "threads={threads}");
            assert_eq!(
                ran.load(Ordering::Relaxed),
                7,
                "threads={threads}: the rest of the batch still ran"
            );
        }
    }

    #[test]
    fn global_pool_is_one_pool() {
        let a = Runtime::global();
        let b = Runtime::global();
        assert!(a.same_pool(&b));
        assert!(!a.same_pool(&Runtime::new(2)));
        assert!(a.threads() >= 1);
    }

    #[test]
    fn attached_profiler_records_batches_without_changing_results() {
        let expected: Vec<usize> = (0..9).map(|i| i * i).collect();
        for threads in [1, 4] {
            let runtime = Runtime::new(threads);
            assert!(runtime.profiler().is_none(), "off by default");
            let profiler = Profiler::new();
            runtime.attach_profiler(profiler.clone());
            assert_eq!(indexed_squares(&runtime, 9), expected, "threads={threads}");
            let data = profiler.snapshot();
            assert_eq!(data.batches, 1, "threads={threads}");
            assert_eq!(data.tasks, 9, "threads={threads}");
            assert!(
                data.task_busy_ns <= data.batch_ns * threads as u64,
                "threads={threads}: busy time is bounded by budget × wall"
            );
        }
    }

    #[test]
    fn handles_share_the_pool() {
        let a = Runtime::new(2);
        let b = a.clone();
        assert!(a.same_pool(&b));
        assert_eq!(indexed_squares(&b, 9), indexed_squares(&a, 9));
    }
}

//! Deterministic randomness derivation.
//!
//! Every random draw in a simulation is derived from the run seed plus the
//! consumer's coordinates `(process, round)` (or a label for harness-level
//! draws). Two consequences:
//!
//! * runs are exactly reproducible from the seed, and
//! * a process's randomness is independent of scheduling order — inserting a
//!   trace or reordering iteration cannot perturb results.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::ids::{ProcessId, Round};

/// SplitMix64 finalizer — enough mixing to decorrelate seed coordinates.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the RNG a process uses during one pulse.
pub fn process_rng(seed: u64, id: ProcessId, round: Round) -> StdRng {
    let mut material = [0u8; 32];
    let a = mix(seed ^ 0xA11C_E000_0000_0001);
    let b = mix(a ^ (id.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let c = mix(b ^ round.value());
    let d = mix(c);
    material[..8].copy_from_slice(&a.to_le_bytes());
    material[8..16].copy_from_slice(&b.to_le_bytes());
    material[16..24].copy_from_slice(&c.to_le_bytes());
    material[24..].copy_from_slice(&d.to_le_bytes());
    StdRng::from_seed(material)
}

/// Derives an RNG from numeric coordinates: a `domain` separating the
/// consumer (loss model, fault injection, ...) and a per-use `index`
/// (typically the round number).
///
/// This is the hot-path sibling of [`labeled_rng`]: no string formatting or
/// hashing, just integer mixing — suitable for per-round derivation inside
/// [`Simulation::step`](crate::sim::Simulation::step).
pub fn labeled_rng_u64(seed: u64, domain: u64, index: u64) -> StdRng {
    let mut material = [0u8; 32];
    let a = mix(seed ^ mix(domain));
    let b = mix(a ^ index);
    let c = mix(b);
    let d = mix(c);
    material[..8].copy_from_slice(&a.to_le_bytes());
    material[8..16].copy_from_slice(&b.to_le_bytes());
    material[16..24].copy_from_slice(&c.to_le_bytes());
    material[24..].copy_from_slice(&d.to_le_bytes());
    StdRng::from_seed(material)
}

/// Derives an RNG from a `domain` plus **two** numeric coordinates — the
/// two-coordinate sibling of [`labeled_rng_u64`], for consumers keyed by
/// `(round, process)` rather than a single index.
///
/// The scheduler's loss model uses this to give every sender its own
/// per-round loss stream: a sender's drops depend only on its coordinates,
/// not on how many messages other senders routed first, which is what
/// keeps sharded stepping (see
/// [`StepExec`](crate::sim::StepExec)) byte-identical to serial stepping.
pub fn labeled_rng_u64_pair(seed: u64, domain: u64, a: u64, b: u64) -> StdRng {
    let mut material = [0u8; 32];
    let x = mix(seed ^ mix(domain));
    let y = mix(x ^ a);
    let z = mix(y ^ b);
    let w = mix(z);
    material[..8].copy_from_slice(&x.to_le_bytes());
    material[8..16].copy_from_slice(&y.to_le_bytes());
    material[16..24].copy_from_slice(&z.to_le_bytes());
    material[24..].copy_from_slice(&w.to_le_bytes());
    StdRng::from_seed(material)
}

/// Derives an RNG for a labelled harness purpose (fault injection, workload
/// generation) independent of any process stream.
pub fn labeled_rng(seed: u64, label: &str) -> StdRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the label
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut material = [0u8; 32];
    let a = mix(seed ^ h);
    let b = mix(a);
    let c = mix(b);
    let d = mix(c);
    material[..8].copy_from_slice(&a.to_le_bytes());
    material[8..16].copy_from_slice(&b.to_le_bytes());
    material[16..24].copy_from_slice(&c.to_le_bytes());
    material[24..].copy_from_slice(&d.to_le_bytes());
    StdRng::from_seed(material)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_coordinates_same_stream() {
        let mut a = process_rng(1, ProcessId(2), Round(3));
        let mut b = process_rng(1, ProcessId(2), Round(3));
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_process_different_stream() {
        let mut a = process_rng(1, ProcessId(2), Round(3));
        let mut b = process_rng(1, ProcessId(3), Round(3));
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_round_different_stream() {
        let mut a = process_rng(1, ProcessId(2), Round(3));
        let mut b = process_rng(1, ProcessId(2), Round(4));
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = process_rng(1, ProcessId(2), Round(3));
        let mut b = process_rng(2, ProcessId(2), Round(3));
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn numeric_domains_separate_streams() {
        let mut a = labeled_rng_u64(7, 1, 0);
        let mut b = labeled_rng_u64(7, 2, 0);
        let mut c = labeled_rng_u64(7, 1, 1);
        assert_ne!(a.next_u64(), b.next_u64(), "domains separate streams");
        assert_ne!(
            labeled_rng_u64(7, 1, 0).next_u64(),
            c.next_u64(),
            "indices separate streams"
        );
        assert_eq!(
            labeled_rng_u64(7, 1, 0).next_u64(),
            labeled_rng_u64(7, 1, 0).next_u64(),
            "derivation is deterministic"
        );
    }

    #[test]
    fn pair_coordinates_separate_streams() {
        let mut base = labeled_rng_u64_pair(7, 1, 2, 3);
        assert_eq!(
            base.next_u64(),
            labeled_rng_u64_pair(7, 1, 2, 3).next_u64(),
            "derivation is deterministic"
        );
        for (seed, domain, a, b) in [(8, 1, 2, 3), (7, 2, 2, 3), (7, 1, 9, 3), (7, 1, 2, 9)] {
            assert_ne!(
                labeled_rng_u64_pair(7, 1, 2, 3).next_u64(),
                labeled_rng_u64_pair(seed, domain, a, b).next_u64(),
                "every coordinate separates streams"
            );
        }
        // Swapping the coordinates must not collide either.
        assert_ne!(
            labeled_rng_u64_pair(7, 1, 2, 3).next_u64(),
            labeled_rng_u64_pair(7, 1, 3, 2).next_u64()
        );
    }

    #[test]
    fn labels_separate_streams() {
        let mut a = labeled_rng(7, "faults");
        let mut b = labeled_rng(7, "workload");
        assert_ne!(a.next_u64(), b.next_u64());
        let mut a2 = labeled_rng(7, "faults");
        assert_eq!(labeled_rng(7, "faults").next_u64(), a2.next_u64());
    }
}

//! Process storage: boxed heterogeneous tables and contiguous slabs.
//!
//! The simulator's process table has two shapes behind one accessor
//! surface:
//!
//! * **Boxed** — `Vec<Box<dyn Process>>`, one heap allocation per
//!   process. Fully general: any mix of process types, and programs can
//!   be swapped mid-run. This is what
//!   [`build`](crate::sim::SimulationBuilder::build) and
//!   [`build_with`](crate::sim::SimulationBuilder::build_with) produce.
//! * **Slab** — a homogeneous population stored contiguously in one
//!   `Vec<P>` arena: one allocation for all n processes instead of 10⁶
//!   separate boxes, which is what makes million-process builds fast and
//!   keeps stepping cache-friendly. Produced by
//!   [`build_slab`](crate::sim::SimulationBuilder::build_slab).
//!
//! The two are behaviorally identical — every access goes through
//! [`ProcessStore::get`]/[`ProcessStore::get_mut`], and a slab is
//! transparently promoted to boxed storage the first time heterogeneity
//! is introduced (a mid-run
//! [`replace_process`](crate::sim::Simulation::replace_process)), a
//! one-time O(n) move.

use crate::process::Process;

/// Backing storage for a simulation's process table (see module docs).
pub(crate) enum ProcessStore {
    /// One box per process; the general heterogeneous form.
    Boxed(Vec<Box<dyn Process>>),
    /// A contiguous homogeneous arena behind a type-erased accessor.
    Slab(Box<dyn Slab>),
}

impl ProcessStore {
    /// Wraps a homogeneous population in a slab store.
    pub(crate) fn slab<P: Process + 'static>(processes: Vec<P>) -> ProcessStore {
        ProcessStore::Slab(Box::new(TypedSlab(processes)))
    }

    /// Number of processes.
    pub(crate) fn len(&self) -> usize {
        match self {
            ProcessStore::Boxed(v) => v.len(),
            ProcessStore::Slab(s) => s.len(),
        }
    }

    /// Whether the store holds no processes.
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Process `i`, if in range.
    pub(crate) fn get(&self, i: usize) -> Option<&dyn Process> {
        match self {
            ProcessStore::Boxed(v) => v.get(i).map(|b| &**b),
            ProcessStore::Slab(s) => (i < s.len()).then(|| s.get(i)),
        }
    }

    /// Mutable process `i`, if in range.
    pub(crate) fn get_mut(&mut self, i: usize) -> Option<&mut dyn Process> {
        match self {
            // `as_mut_slice` pins method resolution to the slice's
            // `get_mut`, not the `ProcessAccess` impl on `Vec`.
            ProcessStore::Boxed(v) => match v.as_mut_slice().get_mut(i) {
                Some(b) => Some(&mut **b),
                None => None,
            },
            ProcessStore::Slab(s) => (i < s.len()).then(|| s.get_mut(i)),
        }
    }

    /// Raw shared accessor for the sharded compute phase — see
    /// [`SharedStore`].
    pub(crate) fn shared(&mut self) -> SharedStore {
        match self {
            ProcessStore::Boxed(v) => SharedStore {
                ptr: v.as_mut_ptr() as *mut u8,
                get: get_boxed_raw,
            },
            ProcessStore::Slab(s) => s.shared(),
        }
    }

    /// Converts a slab to boxed storage in place (no-op when already
    /// boxed) and returns the boxed table — the promotion
    /// [`replace_process`](crate::sim::Simulation::replace_process) uses
    /// to introduce heterogeneity into a slab population.
    pub(crate) fn make_boxed(&mut self) -> &mut Vec<Box<dyn Process>> {
        if matches!(self, ProcessStore::Slab(_)) {
            let ProcessStore::Slab(slab) = std::mem::replace(self, ProcessStore::Boxed(Vec::new()))
            else {
                unreachable!("just matched Slab");
            };
            *self = ProcessStore::Boxed(slab.into_boxed());
        }
        match self {
            ProcessStore::Boxed(v) => v,
            ProcessStore::Slab(_) => unreachable!("promoted above"),
        }
    }
}

/// Type-erased view of a homogeneous process arena. Implemented only by
/// [`TypedSlab`]; the indirection exists so [`ProcessStore`] need not be
/// generic over the process type.
pub(crate) trait Slab: Send {
    fn len(&self) -> usize;
    fn get(&self, i: usize) -> &dyn Process;
    fn get_mut(&mut self, i: usize) -> &mut dyn Process;
    /// Moves every process into its own box (slab → boxed promotion).
    fn into_boxed(self: Box<Self>) -> Vec<Box<dyn Process>>;
    fn shared(&mut self) -> SharedStore;
}

struct TypedSlab<P: Process + 'static>(Vec<P>);

impl<P: Process + 'static> Slab for TypedSlab<P> {
    fn len(&self) -> usize {
        self.0.len()
    }

    fn get(&self, i: usize) -> &dyn Process {
        &self.0[i]
    }

    fn get_mut(&mut self, i: usize) -> &mut dyn Process {
        &mut self.0[i]
    }

    fn into_boxed(self: Box<Self>) -> Vec<Box<dyn Process>> {
        self.0
            .into_iter()
            .map(|p| Box::new(p) as Box<dyn Process>)
            .collect()
    }

    fn shared(&mut self) -> SharedStore {
        SharedStore {
            ptr: self.0.as_mut_ptr() as *mut u8,
            get: get_slab_raw::<P>,
        }
    }
}

/// # Safety
///
/// `ptr` must be the base of a live `Vec<Box<dyn Process>>` and `i` in
/// range; the caller upholds the aliasing contract described on
/// [`SharedStore`].
unsafe fn get_boxed_raw(ptr: *mut u8, i: usize) -> *mut dyn Process {
    let boxes = ptr as *mut Box<dyn Process>;
    unsafe { &mut **boxes.add(i) as *mut dyn Process }
}

/// # Safety
///
/// `ptr` must be the base of a live `Vec<P>` and `i` in range; the caller
/// upholds the aliasing contract described on [`SharedStore`].
unsafe fn get_slab_raw<P: Process + 'static>(ptr: *mut u8, i: usize) -> *mut dyn Process {
    unsafe { (ptr as *mut P).add(i) as *mut dyn Process }
}

/// Raw shared access to the process table for the sharded compute phase:
/// a base pointer plus a monomorphized element accessor, so shard tasks
/// pay one indirect call per process instead of a store-shape match.
///
/// Each batch task dereferences only the indices of its own (disjoint)
/// shard-plan bin, and the pointer never outlives `run_batch` (which
/// joins every task before returning) — the same contract the `SAFETY`
/// comment at the use site in [`crate::sim`] spells out.
#[derive(Clone, Copy)]
pub(crate) struct SharedStore {
    ptr: *mut u8,
    get: unsafe fn(*mut u8, usize) -> *mut dyn Process,
}

// SAFETY: tasks access disjoint, in-range indices only, and the pointer
// never outlives `run_batch` (which joins every task before returning).
unsafe impl Send for SharedStore {}
unsafe impl Sync for SharedStore {}

impl SharedStore {
    /// Raw pointer to process `i`; the caller dereferences it.
    ///
    /// # Safety
    ///
    /// `i` must be in range, no two live references derived from the
    /// returned pointer may target the same index, and no derived borrow
    /// may outlive the store it was created from.
    pub(crate) unsafe fn get_ptr(&self, i: usize) -> *mut dyn Process {
        unsafe { (self.get)(self.ptr, i) }
    }
}

/// The mutable per-process access fault injectors need, implemented by
/// the simulator's store and by plain boxed vectors (the fault fixtures).
pub(crate) trait ProcessAccess {
    fn get_mut(&mut self, i: usize) -> Option<&mut dyn Process>;
}

impl ProcessAccess for ProcessStore {
    fn get_mut(&mut self, i: usize) -> Option<&mut dyn Process> {
        ProcessStore::get_mut(self, i)
    }
}

impl ProcessAccess for Vec<Box<dyn Process>> {
    fn get_mut(&mut self, i: usize) -> Option<&mut dyn Process> {
        match self.as_mut_slice().get_mut(i) {
            Some(b) => Some(&mut **b),
            None => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Context;

    struct Tag(u32);

    impl Process for Tag {
        fn on_pulse(&mut self, _ctx: &mut Context<'_>) {}
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn tag_of(p: &dyn Process) -> u32 {
        p.as_any().downcast_ref::<Tag>().unwrap().0
    }

    #[test]
    fn slab_and_boxed_answer_identically() {
        let mut slab = ProcessStore::slab((0..5u32).map(Tag).collect());
        let mut boxed = ProcessStore::Boxed(
            (0..5u32)
                .map(|i| Box::new(Tag(i)) as Box<dyn Process>)
                .collect(),
        );
        for store in [&mut slab, &mut boxed] {
            assert_eq!(store.len(), 5);
            for i in 0..5 {
                assert_eq!(tag_of(store.get(i).unwrap()), i as u32);
                assert_eq!(tag_of(store.get_mut(i).unwrap()), i as u32);
            }
            assert!(store.get(5).is_none());
            assert!(store.get_mut(5).is_none());
        }
    }

    #[test]
    fn promotion_preserves_contents() {
        let mut store = ProcessStore::slab((0..4u32).map(Tag).collect());
        {
            let boxed = store.make_boxed();
            assert_eq!(boxed.len(), 4);
            boxed[2] = Box::new(Tag(99));
        }
        assert!(matches!(store, ProcessStore::Boxed(_)));
        let tags: Vec<u32> = (0..4).map(|i| tag_of(store.get(i).unwrap())).collect();
        assert_eq!(tags, vec![0, 1, 99, 3]);
        // Idempotent on boxed stores.
        store.make_boxed();
        assert_eq!(store.len(), 4);
    }

    #[test]
    fn shared_accessor_reaches_every_element() {
        for mut store in [
            ProcessStore::slab((0..6u32).map(Tag).collect()),
            ProcessStore::Boxed(
                (0..6u32)
                    .map(|i| Box::new(Tag(i)) as Box<dyn Process>)
                    .collect(),
            ),
        ] {
            let shared = store.shared();
            for i in 0..6 {
                // SAFETY: indices are disjoint per iteration and in range;
                // the borrow dies before the next call.
                let p = unsafe { &mut *shared.get_ptr(i) };
                assert_eq!(tag_of(p), i as u32);
            }
        }
    }
}

//! Colluding Byzantine adversaries.
//!
//! Independent Byzantine processes are weaker than the model allows: the
//! classical adversary controls *all* faulty processors centrally. The
//! [`Cabal`] gives a set of [`Colluder`] processes a shared blackboard so
//! they can coordinate their lies — e.g. all echo the same fabricated
//! value each round, which is the strongest oral-messages attack shape
//! (consistent cross-processor lies survive majority filtering longer than
//! independent noise).

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use rand::RngCore;

use crate::process::{Context, Process};
use crate::rng::labeled_rng_u64;

/// Numeric RNG domain for cabal lie fabrication (see [`labeled_rng_u64`]).
const CABAL_DOMAIN: u64 = 0xCABA_1CAB_A1CA_BA1C;

/// The cabal's shared state: one agreed lie per round.
#[derive(Debug, Default)]
struct Blackboard {
    /// The round the current lie was fabricated for.
    round: u64,
    /// The lie payload for that round (shared by all members and all of
    /// their recipients — one allocation per round for the whole cabal).
    lie: Bytes,
}

/// Shared coordination handle for a set of colluders.
///
/// Construction is explicit about randomness: [`Cabal::seeded`] takes the
/// key the round lies derive from. Deriving it from the run seed (plus a
/// per-cabal discriminator when one run hosts several cabals) keeps runs
/// a pure function of their seed, cabals mutually independent, and lie
/// fabrication independent of which member — on which scheduler thread —
/// asks first. No keyless constructor exists because no hidden key source
/// can deliver all three at once.
#[derive(Debug, Clone)]
pub struct Cabal {
    board: Arc<Mutex<Blackboard>>,
    key: u64,
}

impl Cabal {
    /// Creates a cabal whose per-round lies are derived from `key`: two
    /// cabals with different keys fabricate independent lies, and equal
    /// keys reproduce equal lies (run purity).
    pub fn seeded(key: u64) -> Cabal {
        Cabal {
            board: Arc::default(),
            key,
        }
    }

    /// Spawns a member process. All members of one cabal broadcast the
    /// same per-round lie.
    pub fn member(&self) -> Colluder {
        Colluder {
            cabal: self.clone(),
        }
    }

    /// The agreed lie for `round`.
    ///
    /// The lie is a pure function of `(key, round)` — *not* of whichever
    /// member happens to ask first — so colluders split across sharded
    /// scheduler threads (see [`StepExec`](crate::sim::StepExec)) agree on
    /// it without any ordering between them. The blackboard only caches
    /// the round's allocation so the whole cabal shares one buffer.
    fn lie_for(&self, round: u64) -> Bytes {
        let mut board = self.board.lock();
        if board.round != round || board.lie.is_empty() {
            let mut rng = labeled_rng_u64(self.key, CABAL_DOMAIN, round);
            let mut lie = vec![0u8; 9];
            rng.fill_bytes(&mut lie);
            board.round = round;
            board.lie = lie.into();
        }
        board.lie.clone()
    }
}

/// A cabal member: broadcasts the cabal's coordinated per-round lie.
#[derive(Debug, Clone)]
pub struct Colluder {
    cabal: Cabal,
}

impl Process for Colluder {
    fn on_pulse(&mut self, ctx: &mut Context<'_>) {
        let lie = self.cabal.lie_for(ctx.round().value());
        ctx.broadcast(lie);
    }

    /// Deliberate no-op: a colluder carries no per-process state to
    /// corrupt. Its lie is a pure function of `(cabal key, round)` and the
    /// shared blackboard is only an allocation cache, re-derived on the
    /// next pulse — scrambling here could not change any observable
    /// behaviour.
    fn scramble(&mut self, _rng: &mut rand::rngs::StdRng) {}

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "colluder"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProcessId;
    use crate::sim::Simulation;
    use crate::topology::Topology;

    /// Records every payload received.
    struct Recorder {
        seen: Vec<Vec<u8>>,
    }

    impl Process for Recorder {
        fn on_pulse(&mut self, ctx: &mut Context<'_>) {
            for m in ctx.inbox() {
                self.seen.push(m.bytes().to_vec());
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn cabal_members_tell_identical_lies() {
        let cabal = Cabal::seeded(3);
        let mut sim = Simulation::builder(Topology::complete(4)).build_with(|id| {
            if id.index() >= 2 {
                Box::new(cabal.member()) as Box<dyn Process>
            } else {
                Box::new(Recorder { seen: Vec::new() })
            }
        });
        sim.run(3);
        let r0 = sim.process_as::<Recorder>(ProcessId(0)).unwrap();
        // Per round, the two colluders delivered the same payload.
        assert!(!r0.seen.is_empty());
        for pair in r0.seen.chunks(2) {
            if pair.len() == 2 {
                assert_eq!(pair[0], pair[1], "coordinated lie");
            }
        }
    }

    #[test]
    fn lies_change_between_rounds() {
        let cabal = Cabal::seeded(4);
        let mut sim = Simulation::builder(Topology::complete(3)).build_with(|id| {
            if id.index() == 2 {
                Box::new(cabal.member()) as Box<dyn Process>
            } else {
                Box::new(Recorder { seen: Vec::new() })
            }
        });
        sim.run(4);
        let r0 = sim.process_as::<Recorder>(ProcessId(0)).unwrap();
        assert!(r0.seen.len() >= 3);
        assert_ne!(r0.seen[0], r0.seen[1], "fresh lie per round");
    }

    #[test]
    fn equal_keys_reproduce_equal_lies() {
        let observed = || {
            let cabal = Cabal::seeded(9);
            let mut sim =
                Simulation::builder(Topology::complete(2)).build_with(|id| match id.index() {
                    0 => Box::new(Recorder { seen: Vec::new() }) as Box<dyn Process>,
                    _ => Box::new(cabal.member()),
                });
            sim.run(3);
            sim.process_as::<Recorder>(ProcessId(0))
                .unwrap()
                .seen
                .clone()
        };
        assert_eq!(observed(), observed(), "lies are a pure fn of (key, round)");
    }

    #[test]
    fn separate_cabals_do_not_share_lies() {
        let a = Cabal::seeded(1);
        let b = Cabal::seeded(2);
        let mut sim =
            Simulation::builder(Topology::complete(3)).build_with(|id| match id.index() {
                0 => Box::new(Recorder { seen: Vec::new() }) as Box<dyn Process>,
                1 => Box::new(a.member()),
                _ => Box::new(b.member()),
            });
        sim.run(2);
        let r0 = sim.process_as::<Recorder>(ProcessId(0)).unwrap();
        assert_eq!(r0.seen.len(), 2);
        assert_ne!(
            r0.seen[0], r0.seen[1],
            "independent cabals lie independently"
        );
    }
}

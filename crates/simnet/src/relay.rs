//! Fault-tolerant relay for sparse topologies.
//!
//! The paper's resilience condition (footnote 2 / §4.1) — "there are
//! 2f + 1 vertex disjoint paths between any 2 processes, in the presence
//! of at most f Byzantine processes" — is exactly what makes *reliable
//! end-to-end delivery* possible when the communication graph is not
//! complete: a value relayed over 2f+1 internally disjoint paths arrives
//! untampered along at least f+1 of them, so the true value is the one
//! received at least f+1 times.
//!
//! [`FloodRelay`] implements the classic realization: source-stamped
//! flooding with per-path first-hop tracking. A receiver accepts a value
//! once it has arrived via `f+1` *distinct first hops* (distinct first
//! hops are a sound proxy for distinct paths in flooding over a
//! 2f+1-connected graph: a Byzantine interior vertex can corrupt only the
//! paths through it, and there are at most `f` Byzantine vertices).

use std::collections::{HashMap, HashSet};

use crate::message::Message;
use crate::process::{Context, Process};

/// Wire format: `[MAGIC, origin u16, hop u16, seq u16, len u16, value…]`.
const MAGIC: u8 = 0xF1;

/// A flooded value observation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    origin: u16,
    seq: u16,
}

/// A flooding relay node: forwards everything it sees once, and delivers
/// a `(origin, seq)` value once `f+1` copies with distinct first hops
/// carried the *same* bytes.
pub struct FloodRelay {
    f: usize,
    /// Values this node wants to originate: (seq, payload).
    outbox: Vec<(u16, Vec<u8>)>,
    /// Everything already forwarded (origin, seq, first_hop) — forward a
    /// given copy lineage only once.
    forwarded: HashSet<(u16, u16, u16)>,
    /// (origin, seq) → value bytes → set of first hops that delivered it.
    observations: HashMap<Key, HashMap<Vec<u8>, HashSet<u16>>>,
    /// Accepted deliveries: (origin, seq) → value.
    delivered: HashMap<(u16, u16), Vec<u8>>,
    next_seq: u16,
}

impl std::fmt::Debug for FloodRelay {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fmt.debug_struct("FloodRelay")
            .field("f", &self.f)
            .field("delivered", &self.delivered.len())
            .finish_non_exhaustive()
    }
}

impl FloodRelay {
    /// Creates a relay node tolerating `f` Byzantine interior vertices.
    pub fn new(f: usize) -> FloodRelay {
        FloodRelay {
            f,
            outbox: Vec::new(),
            forwarded: HashSet::new(),
            observations: HashMap::new(),
            delivered: HashMap::new(),
            next_seq: 0,
        }
    }

    /// Queues `value` for origination at the next pulse; returns its
    /// sequence number.
    pub fn originate(&mut self, value: Vec<u8>) -> u16 {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.outbox.push((seq, value));
        seq
    }

    /// The value accepted from `origin` with sequence `seq`, if the
    /// disjoint-paths quorum has been reached.
    pub fn delivered(&self, origin: usize, seq: u16) -> Option<&[u8]> {
        self.delivered.get(&(origin as u16, seq)).map(Vec::as_slice)
    }

    /// Number of accepted deliveries so far.
    pub fn delivered_count(&self) -> usize {
        self.delivered.len()
    }

    fn encode(origin: u16, hop: u16, seq: u16, value: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(9 + value.len());
        out.push(MAGIC);
        out.extend_from_slice(&origin.to_be_bytes());
        out.extend_from_slice(&hop.to_be_bytes());
        out.extend_from_slice(&seq.to_be_bytes());
        out.extend_from_slice(&(value.len() as u16).to_be_bytes());
        out.extend_from_slice(value);
        out
    }

    fn decode(payload: &[u8]) -> Option<(u16, u16, u16, &[u8])> {
        if payload.len() < 9 || payload[0] != MAGIC {
            return None;
        }
        let origin = u16::from_be_bytes([payload[1], payload[2]]);
        let hop = u16::from_be_bytes([payload[3], payload[4]]);
        let seq = u16::from_be_bytes([payload[5], payload[6]]);
        let len = u16::from_be_bytes([payload[7], payload[8]]) as usize;
        let body = &payload[9..];
        (body.len() == len).then_some((origin, hop, seq, body))
    }

    fn observe(&mut self, origin: u16, first_hop: u16, seq: u16, value: &[u8], me: u16) {
        if origin == me {
            return; // own floods are not evidence
        }
        let key = Key { origin, seq };
        let hops = self
            .observations
            .entry(key.clone())
            .or_default()
            .entry(value.to_vec())
            .or_default();
        hops.insert(first_hop);
        if hops.len() > self.f {
            self.delivered
                .entry((origin, seq))
                .or_insert_with(|| value.to_vec());
        }
    }
}

impl Process for FloodRelay {
    /// A transient fault leaves the relay's RAM arbitrary: delivered
    /// values flip bytes, the dedup/quorum bookkeeping is forgotten, and
    /// the sequence counter jumps — so stabilization claims over relays
    /// face genuinely corrupted evidence, not a conveniently blank node.
    fn scramble(&mut self, rng: &mut rand::rngs::StdRng) {
        use rand::{Rng, RngCore};
        // Deterministic visit order: hash-map iteration order must never
        // decide which value consumes which RNG draw.
        let mut keys: Vec<(u16, u16)> = self.delivered.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let value = self.delivered.get_mut(&key).expect("key just listed");
            if value.is_empty() {
                *value = vec![0u8; 2];
            }
            let idx = rng.gen_range(0..value.len());
            value[idx] ^= 1u8 << rng.gen_range(0..8u32);
        }
        self.forwarded.clear();
        self.observations.clear();
        self.next_seq = (rng.next_u64() & 0xFFFF) as u16;
    }

    fn on_pulse(&mut self, ctx: &mut Context<'_>) {
        let me = ctx.id().index() as u16;

        // Collect inbound floods first (borrowck: copy what we forward).
        let inbound: Vec<(u16, u16, u16, Vec<u8>)> = ctx
            .inbox()
            .iter()
            .filter_map(|m: &Message| {
                Self::decode(m.bytes()).map(|(origin, hop, seq, value)| {
                    // The first hop is stamped by the origin's direct
                    // neighbor; afterwards it is carried unchanged.
                    let first_hop = if origin == m.from.index() as u16 {
                        me // we are the first hop for this copy
                    } else {
                        hop
                    };
                    (origin, first_hop, seq, value.to_vec())
                })
            })
            .collect();

        for (origin, first_hop, seq, value) in &inbound {
            self.observe(*origin, *first_hop, *seq, value, me);
        }

        // Forward each (origin, seq, first_hop) lineage once.
        let mut to_send: Vec<Vec<u8>> = Vec::new();
        for (origin, first_hop, seq, value) in inbound {
            if origin == me {
                continue;
            }
            if self.forwarded.insert((origin, seq, first_hop)) {
                to_send.push(Self::encode(origin, first_hop, seq, &value));
            }
        }
        // Originations: hop field unused from the origin itself (receivers
        // stamp themselves as first hop).
        for (seq, value) in self.outbox.drain(..) {
            to_send.push(Self::encode(me, u16::MAX, seq, &value));
            self.delivered.entry((me, seq)).or_insert(value);
        }
        for payload in to_send {
            ctx.broadcast(payload);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "flood-relay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{Adversary, ByzantineProcess};
    use crate::ids::ProcessId;
    use crate::sim::Simulation;
    use crate::topology::Topology;

    /// Byzantine relay: forwards floods with the value bytes corrupted.
    struct CorruptingRelay;

    impl Adversary for CorruptingRelay {
        fn act(&mut self, ctx: &mut Context<'_>) {
            let inbound: Vec<Vec<u8>> = ctx
                .inbox()
                .iter()
                .map(|m| {
                    let mut p = m.bytes().to_vec();
                    if p.len() > 9 {
                        let last = p.len() - 1;
                        p[last] ^= 0xFF;
                    }
                    p
                })
                .collect();
            for p in inbound {
                ctx.broadcast(p);
            }
        }
        fn name(&self) -> &'static str {
            "corrupting-relay"
        }
    }

    /// 3-connected 6-vertex graph (wheel-ish): tolerates f=1.
    fn three_connected_six() -> Topology {
        Topology::from_edges(
            6,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 0),
                (0, 2),
                (1, 3),
                (2, 4),
                (3, 5),
                (4, 0),
                (5, 1),
            ],
        )
        .unwrap()
    }

    #[test]
    fn fixture_meets_the_paper_condition() {
        // f = 1 needs 2f+1 = 3 disjoint paths.
        assert!(three_connected_six().vertex_connectivity_at_least(3));
    }

    #[test]
    fn flood_delivers_across_a_sparse_graph() {
        let mut sim = Simulation::builder(three_connected_six())
            .build_with(|_| Box::new(FloodRelay::new(1)) as Box<dyn Process>);
        let seq = sim
            .process_as_mut::<FloodRelay>(ProcessId(0))
            .unwrap()
            .originate(b"hello".to_vec());
        sim.run(6);
        for i in 1..6 {
            let relay = sim.process_as::<FloodRelay>(ProcessId(i)).unwrap();
            assert_eq!(
                relay.delivered(0, seq),
                Some(b"hello".as_slice()),
                "p{i} delivered"
            );
        }
    }

    #[test]
    fn corrupting_interior_vertex_cannot_forge() {
        // p3 corrupts every flood it forwards; honest nodes must still
        // accept the true value (≥ f+1 = 2 clean first-hop lineages) and
        // never accept the corrupted one.
        let mut sim = Simulation::builder(three_connected_six()).build_with(|id| {
            if id.index() == 3 {
                Box::new(ByzantineProcess::new(Box::new(CorruptingRelay))) as Box<dyn Process>
            } else {
                Box::new(FloodRelay::new(1))
            }
        });
        let seq = sim
            .process_as_mut::<FloodRelay>(ProcessId(0))
            .unwrap()
            .originate(b"genuine".to_vec());
        sim.run(8);
        for i in [1usize, 2, 4, 5] {
            let relay = sim.process_as::<FloodRelay>(ProcessId(i)).unwrap();
            assert_eq!(
                relay.delivered(0, seq),
                Some(b"genuine".as_slice()),
                "p{i} got the true value despite the corrupting relay"
            );
        }
    }

    #[test]
    fn codec_rejects_garbage() {
        assert!(FloodRelay::decode(b"").is_none());
        assert!(FloodRelay::decode(&[0xF1, 0, 0]).is_none());
        assert!(FloodRelay::decode(&[0x00; 16]).is_none());
        let good = FloodRelay::encode(2, 3, 4, b"xy");
        let (o, h, s, v) = FloodRelay::decode(&good).unwrap();
        assert_eq!((o, h, s, v), (2, 3, 4, b"xy".as_slice()));
        // Length mismatch rejected.
        let mut bad = good.clone();
        bad.truncate(bad.len() - 1);
        assert!(FloodRelay::decode(&bad).is_none());
    }

    #[test]
    fn scramble_changes_observable_state() {
        let mut relay = FloodRelay::new(1);
        let seq = relay.originate(b"truth".to_vec());
        // Origination self-delivers on pulse; install it directly here.
        relay.delivered.insert((0, seq), b"truth".to_vec());

        let mut rng = crate::rng::process_rng(3, ProcessId(0), crate::ids::Round(5));
        relay.scramble(&mut rng);
        assert_ne!(
            relay.delivered(0, seq),
            Some(b"truth".as_slice()),
            "delivered value corrupted"
        );
        assert_ne!(relay.next_seq, 1, "sequence counter jumped");

        // Same coordinates, same arbitrary state.
        let mut twin = FloodRelay::new(1);
        twin.originate(b"truth".to_vec());
        twin.delivered.insert((0, seq), b"truth".to_vec());
        let mut rng = crate::rng::process_rng(3, ProcessId(0), crate::ids::Round(5));
        twin.scramble(&mut rng);
        assert_eq!(relay.delivered(0, seq), twin.delivered(0, seq));
        assert_eq!(relay.next_seq, twin.next_seq);
    }

    #[test]
    fn multiple_originations_keep_distinct_sequence_numbers() {
        let mut relay = FloodRelay::new(1);
        let a = relay.originate(b"a".to_vec());
        let b = relay.originate(b"b".to_vec());
        assert_ne!(a, b);
    }
}

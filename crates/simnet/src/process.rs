//! The [`Process`] trait and per-pulse [`Context`].
//!
//! A process is the paper's "program of a processor": a deterministic (up to
//! its derived randomness) state machine stepped once per common pulse. The
//! step receives all messages the neighbors sent last pulse, may send
//! messages for delivery next pulse, and updates local state (§4.1).
//!
//! Payloads travel as [`Bytes`]: [`Context::send`] and
//! [`Context::broadcast`] accept `impl Into<Bytes>`, so a broadcast
//! allocates its payload **once** and every recipient shares the
//! refcounted buffer. Steady-state sends are allocation-free when callers
//! hand over an existing `Bytes` (cloning one is a refcount bump).
//!
//! How processes are *stored* is the scheduler's business, not the
//! trait's: a heterogeneous population lives in one box per process,
//! while a homogeneous one built with
//! [`SimulationBuilder::build_slab`](crate::sim::SimulationBuilder::build_slab)
//! lives contiguously in a single slab arena — same trait calls, same
//! traces, just one allocation instead of n at build time.

use bytes::Bytes;
use rand::rngs::StdRng;

use crate::ids::{ProcessId, Round};
use crate::message::Message;

/// A processor's program, stepped once per pulse.
///
/// Implementors also expose `as_any`/`as_any_mut` so harnesses can inspect
/// concrete protocol state after a run (decision values, clocks, ...).
///
/// `Send` is a supertrait because the scheduler's sharded compute phase
/// (see [`StepExec`](crate::sim::StepExec)) moves disjoint `&mut` process
/// shards onto scoped worker threads. Processes are never *shared* between
/// threads, so `Sync` is not required.
pub trait Process: Send {
    /// Executes one synchronous step.
    fn on_pulse(&mut self, ctx: &mut Context<'_>);

    /// Transient-fault hook: overwrite internal state with arbitrary values.
    ///
    /// Self-stabilization proofs quantify over *arbitrary starting
    /// configurations*; the fault injector calls this to produce them. The
    /// default is a no-op for stateless processes.
    fn scramble(&mut self, rng: &mut StdRng) {
        let _ = rng;
    }

    /// Whether this process must be stepped every pulse even when it has
    /// no pending messages (the default).
    ///
    /// Returning `false` opts in to quiescence-aware stepping: the
    /// scheduler skips the process on pulses where its inbox is empty and
    /// no fault or schedule event woke it, which is what lets sparse
    /// million-process systems run rounds in O(active) instead of O(n).
    /// The contract is that for such pulses an `on_pulse` call with an
    /// empty inbox would have been unobservable — no state change, no
    /// sends, no RNG use the protocol relies on. The scheduler re-queries
    /// this hook after every step it executes (and after scrambles and
    /// program replacement), so the answer may depend on current state —
    /// e.g. a source that is always active until it has fired.
    fn always_active(&self) -> bool {
        true
    }

    /// Concrete-type access for post-run inspection.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable concrete-type access for harness intervention.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Diagnostic label used in traces.
    fn name(&self) -> &'static str {
        "process"
    }
}

/// Everything a process can see and do during one pulse.
///
/// The outbox buffer is owned by the scheduler and recycled across pulses;
/// queueing messages in steady state costs no allocation.
#[derive(Debug)]
pub struct Context<'a> {
    pub(crate) id: ProcessId,
    pub(crate) round: Round,
    pub(crate) neighbors: &'a [usize],
    pub(crate) inbox: &'a [Message],
    pub(crate) outbox: Vec<(ProcessId, Bytes)>,
    pub(crate) rng: StdRng,
    pub(crate) n: usize,
}

impl<'a> Context<'a> {
    /// This processor's identity.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The current round (pulse) number.
    pub fn round(&self) -> Round {
        self.round
    }

    /// Total number of processors in the system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sorted neighbor indices.
    pub fn neighbors(&self) -> &[usize] {
        self.neighbors
    }

    /// Messages delivered at this pulse (sent by neighbors last pulse).
    pub fn inbox(&self) -> &[Message] {
        self.inbox
    }

    /// Queues a message for delivery to `to` at the next pulse.
    ///
    /// Messages to non-neighbors are silently dropped by the scheduler (and
    /// counted in the trace), modelling the absence of a link. Passing an
    /// existing [`Bytes`] is free of payload copies.
    pub fn send(&mut self, to: ProcessId, payload: impl Into<Bytes>) {
        self.outbox.push((to, payload.into()));
    }

    /// Queues the same payload to every neighbor.
    ///
    /// The payload is converted to [`Bytes`] once; all recipients share the
    /// single refcounted buffer — fan-out is O(degree) refcount bumps, not
    /// O(degree) allocations.
    pub fn broadcast(&mut self, payload: impl Into<Bytes>) {
        let payload = payload.into();
        for &nb in self.neighbors {
            self.outbox.push((ProcessId(nb), payload.clone()));
        }
    }

    /// This pulse's private randomness, derived from `(seed, id, round)` —
    /// reproducible and independent of other processes.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::process_rng;

    fn ctx<'a>(neigh: &'a [usize], inbox: &'a [Message]) -> Context<'a> {
        Context {
            id: ProcessId(0),
            round: Round(0),
            neighbors: neigh,
            inbox,
            outbox: Vec::new(),
            rng: process_rng(0, ProcessId(0), Round(0)),
            n: 4,
        }
    }

    #[test]
    fn broadcast_reaches_all_neighbors() {
        let neigh = [1usize, 2, 3];
        let inbox: Vec<Message> = Vec::new();
        let mut c = ctx(&neigh, &inbox);
        c.broadcast(vec![7]);
        assert_eq!(c.outbox.len(), 3);
        let targets: Vec<usize> = c.outbox.iter().map(|(t, _)| t.index()).collect();
        assert_eq!(targets, vec![1, 2, 3]);
    }

    #[test]
    fn broadcast_shares_one_buffer() {
        let neigh = [1usize, 2, 3];
        let inbox: Vec<Message> = Vec::new();
        let mut c = ctx(&neigh, &inbox);
        c.broadcast(vec![1, 2, 3, 4]);
        let first = c.outbox[0].1.as_ptr();
        assert!(
            c.outbox.iter().all(|(_, p)| p.as_ptr() == first),
            "all queued copies alias the same allocation"
        );
    }

    #[test]
    fn send_queues_single_message() {
        let neigh = [1usize];
        let inbox: Vec<Message> = Vec::new();
        let mut c = ctx(&neigh, &inbox);
        c.send(ProcessId(1), vec![1, 2]);
        assert_eq!(c.outbox.len(), 1);
        assert_eq!(c.outbox[0].0, ProcessId(1));
        assert_eq!(c.outbox[0].1, vec![1u8, 2]);
    }

    #[test]
    fn accessors_report_coordinates() {
        let neigh = [1usize];
        let inbox: Vec<Message> = Vec::new();
        let c = ctx(&neigh, &inbox);
        assert_eq!(c.id(), ProcessId(0));
        assert_eq!(c.round(), Round(0));
        assert_eq!(c.n(), 4);
        assert!(c.inbox().is_empty());
    }
}

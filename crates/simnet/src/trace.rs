//! Execution tracing: message and round accounting.
//!
//! Experiment E6 (authority overhead) reports rounds and message counts per
//! play; the [`Trace`] collects them without protocols having to
//! instrument themselves.

use crate::ids::{ProcessId, Round};

/// Counters accumulated over a simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Total messages delivered.
    pub messages_delivered: u64,
    /// Total payload bytes delivered.
    pub bytes_delivered: u64,
    /// Messages dropped because the destination was not a neighbor.
    pub messages_dropped_no_link: u64,
    /// Messages dropped by the loss model.
    pub messages_dropped_lossy: u64,
    /// In-flight messages destroyed by transient-fault injection or a
    /// scheduled corruption family.
    ///
    /// **This counter overlaps [`messages_delivered`], it does not add to
    /// it.** A fault wipes messages out of the *pending* inboxes — i.e.
    /// messages that were already routed during an earlier pulse's merge
    /// phase and counted delivered (including in the per-process
    /// [`delivered_to`](Trace::delivered_to) tallies and
    /// [`bytes_delivered`]) but that no recipient will ever read. Summing
    /// it with `messages_delivered` double-counts; subtracting it gives
    /// [`delivered_net`](Trace::delivered_net), the messages that actually
    /// reached a process step. It is likewise excluded from
    /// [`messages_offered`](Trace::messages_offered) (routing-time
    /// accounting) and from
    /// [`lossy_drop_rate`](Trace::lossy_drop_rate) (a loss-model-only
    /// rate).
    ///
    /// [`messages_delivered`]: Trace::messages_delivered
    /// [`bytes_delivered`]: Trace::bytes_delivered
    pub messages_dropped_fault: u64,
    /// Rounds executed.
    pub rounds: u64,
    /// Per-process delivered-message counts.
    per_process: Vec<u64>,
}

impl Trace {
    /// Creates counters for `n` processes.
    pub fn new(n: usize) -> Trace {
        Trace {
            per_process: vec![0; n],
            ..Trace::default()
        }
    }

    pub(crate) fn record_delivery(&mut self, to: ProcessId, bytes: usize) {
        self.messages_delivered += 1;
        self.bytes_delivered += bytes as u64;
        if let Some(c) = self.per_process.get_mut(to.index()) {
            *c += 1;
        }
    }

    pub(crate) fn record_round(&mut self, _round: Round) {
        self.rounds += 1;
    }

    /// Messages delivered to a specific process over the whole run.
    pub fn delivered_to(&self, id: ProcessId) -> u64 {
        self.per_process.get(id.index()).copied().unwrap_or(0)
    }

    /// Messages that actually reached a recipient's step: deliveries minus
    /// the in-flight messages a fault destroyed afterwards
    /// ([`messages_dropped_fault`](Trace::messages_dropped_fault) overlaps
    /// [`messages_delivered`](Trace::messages_delivered) — see its docs).
    /// Saturating, since a hand-built trace could count a fault drop
    /// without its delivery.
    pub fn delivered_net(&self) -> u64 {
        self.messages_delivered
            .saturating_sub(self.messages_dropped_fault)
    }

    /// Average messages per round (0 if no rounds ran).
    pub fn messages_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.messages_delivered as f64 / self.rounds as f64
        }
    }

    /// Messages the scheduler attempted to route: deliveries plus the
    /// routing-time drops (no link, loss model). Fault drops are *not*
    /// added — a fault destroys messages that were already routed and
    /// counted delivered (see
    /// [`messages_dropped_fault`](Trace::messages_dropped_fault)).
    pub fn messages_offered(&self) -> u64 {
        self.messages_delivered + self.messages_dropped_no_link + self.messages_dropped_lossy
    }

    /// Fraction of on-link messages the loss model dropped, in `[0, 1]`
    /// (0 if nothing was routed). Scenario run records report this as the
    /// observed drop rate under [`Delivery::Lossy`](crate::sim::Delivery).
    pub fn lossy_drop_rate(&self) -> f64 {
        let on_link = self.messages_delivered + self.messages_dropped_lossy;
        if on_link == 0 {
            0.0
        } else {
            self.messages_dropped_lossy as f64 / on_link as f64
        }
    }

    /// Resets all counters (used between experiment phases).
    pub fn reset(&mut self) {
        let n = self.per_process.len();
        *self = Trace::new(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut t = Trace::new(3);
        t.record_delivery(ProcessId(1), 10);
        t.record_delivery(ProcessId(1), 5);
        t.record_delivery(ProcessId(2), 1);
        t.record_round(Round(0));
        assert_eq!(t.messages_delivered, 3);
        assert_eq!(t.bytes_delivered, 16);
        assert_eq!(t.delivered_to(ProcessId(1)), 2);
        assert_eq!(t.delivered_to(ProcessId(0)), 0);
        assert!((t.messages_per_round() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_but_keeps_size() {
        let mut t = Trace::new(2);
        t.record_delivery(ProcessId(0), 1);
        t.reset();
        assert_eq!(t.messages_delivered, 0);
        assert_eq!(t.delivered_to(ProcessId(0)), 0);
    }

    #[test]
    fn messages_per_round_zero_when_empty() {
        assert_eq!(Trace::new(1).messages_per_round(), 0.0);
    }

    #[test]
    fn offered_sums_all_outcomes_and_drop_rate_is_lossy_share() {
        let mut t = Trace::new(2);
        t.record_delivery(ProcessId(0), 1);
        t.record_delivery(ProcessId(1), 1);
        t.record_delivery(ProcessId(1), 1);
        t.messages_dropped_lossy = 1;
        t.messages_dropped_no_link = 5;
        // Fault drops overlap `messages_delivered` (wiped *after* routing),
        // so they must not inflate the offered count.
        t.messages_dropped_fault = 2;
        assert_eq!(t.messages_offered(), 9);
        // 1 lossy drop out of 4 on-link messages; no-link and fault drops
        // do not dilute the loss-model rate.
        assert!((t.lossy_drop_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn drop_rate_zero_when_nothing_routed() {
        assert_eq!(Trace::new(1).lossy_drop_rate(), 0.0);
    }

    #[test]
    fn delivered_net_subtracts_the_fault_overlap() {
        let mut t = Trace::new(2);
        for _ in 0..5 {
            t.record_delivery(ProcessId(0), 1);
        }
        // A fault wipes 2 of the 5 routed-and-counted messages: net is 3,
        // offered stays 5 (fault drops are post-routing, not routing-time).
        t.messages_dropped_fault = 2;
        assert_eq!(t.delivered_net(), 3);
        assert_eq!(t.messages_offered(), 5);
        // Saturates rather than underflows on inconsistent hand-built data.
        t.messages_dropped_fault = 99;
        assert_eq!(t.delivered_net(), 0);
    }
}

//! The lock-step scheduler: [`Simulation`] and [`SimulationBuilder`].

use bytes::Bytes;
use rand::Rng;

use crate::fault::TransientFault;
use crate::ids::{ProcessId, Round};
use crate::message::Message;
use crate::process::{Context, Process};
use crate::rng::{labeled_rng_u64, process_rng};
use crate::schedule::{Schedule, ScheduledAction};
use crate::topology::Topology;
use crate::trace::Trace;
use crate::SimError;

/// Numeric RNG domain for the message-loss model (see
/// [`labeled_rng_u64`]).
const LOSS_DOMAIN: u64 = 0x1055_1055_1055_1055;

/// Message-loss model applied on delivery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Delivery {
    /// Every message on an existing link is delivered (the paper's model).
    Reliable,
    /// Each message is independently dropped with probability `p` —
    /// used by robustness tests to confirm protocols degrade, not corrupt.
    Lossy {
        /// Per-message drop probability in `[0, 1]`.
        p: f64,
    },
}

/// A synchronous distributed system: processes + topology + in-flight
/// messages.
///
/// Semantics per [`step`](Simulation::step) (one pulse):
/// 1. every process receives the messages sent to it last round,
/// 2. every process takes its step (in parallel, modelled by iterating over
///    an immutable snapshot of inboxes),
/// 3. outgoing messages are routed along topology edges for delivery next
///    round.
pub struct Simulation {
    topology: Topology,
    processes: Vec<Box<dyn Process>>,
    /// inbox[i] = messages to deliver to process i at the next pulse.
    inboxes: Vec<Vec<Message>>,
    /// Double buffer for `inboxes`: holds the pulse currently being
    /// consumed during [`step`](Simulation::step) and is recycled (swap +
    /// clear) every round, so steady-state stepping reallocates nothing.
    consumed: Vec<Vec<Message>>,
    /// Recycled outbox handed to each process's [`Context`] in turn.
    outbox_scratch: Vec<(ProcessId, Bytes)>,
    round: Round,
    seed: u64,
    delivery: Delivery,
    trace: Trace,
    /// Round-triggered churn/fault events, consumed as rounds pass.
    schedule: Schedule,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("n", &self.topology.len())
            .field("round", &self.round)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

/// Configures and constructs a [`Simulation`].
#[derive(Debug)]
pub struct SimulationBuilder {
    topology: Topology,
    seed: u64,
    delivery: Delivery,
    schedule: Schedule,
}

impl SimulationBuilder {
    /// Sets the run seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the delivery model (default [`Delivery::Reliable`]).
    pub fn delivery(mut self, delivery: Delivery) -> Self {
        self.delivery = delivery;
        self
    }

    /// Attaches a round-triggered event schedule (default empty) — see
    /// [`Schedule`].
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Builds the simulation, constructing each process from its id.
    pub fn build_with(self, mut make: impl FnMut(ProcessId) -> Box<dyn Process>) -> Simulation {
        let n = self.topology.len();
        let processes = (0..n).map(|i| make(ProcessId(i))).collect();
        Simulation {
            inboxes: vec![Vec::new(); n],
            consumed: vec![Vec::new(); n],
            outbox_scratch: Vec::new(),
            topology: self.topology,
            processes,
            round: Round(0),
            seed: self.seed,
            delivery: self.delivery,
            trace: Trace::new(n),
            schedule: self.schedule,
        }
    }

    /// Builds from an explicit process vector.
    ///
    /// # Panics
    ///
    /// Panics if `processes.len()` differs from the topology size.
    pub fn build(self, processes: Vec<Box<dyn Process>>) -> Simulation {
        assert_eq!(
            processes.len(),
            self.topology.len(),
            "one process per topology vertex"
        );
        let n = self.topology.len();
        Simulation {
            inboxes: vec![Vec::new(); n],
            consumed: vec![Vec::new(); n],
            outbox_scratch: Vec::new(),
            topology: self.topology,
            processes,
            round: Round(0),
            seed: self.seed,
            delivery: self.delivery,
            trace: Trace::new(n),
            schedule: self.schedule,
        }
    }
}

impl Simulation {
    /// Starts configuring a simulation over `topology`.
    pub fn builder(topology: Topology) -> SimulationBuilder {
        SimulationBuilder {
            topology,
            seed: 0,
            delivery: Delivery::Reliable,
            schedule: Schedule::new(),
        }
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// Whether the simulation has no processes (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }

    /// The current round number (the next pulse to execute).
    pub fn round(&self) -> Round {
        self.round
    }

    /// The current topology. Links change mid-run only through
    /// [`disconnect`](Simulation::disconnect) or scheduled churn events
    /// ([`ScheduledAction::Disconnect`]/[`ScheduledAction::Reconnect`]),
    /// so probes inspecting it mid-run see the post-churn graph.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Accumulated counters.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Resets trace counters (e.g. to measure only steady-state costs).
    pub fn reset_trace(&mut self) {
        self.trace.reset();
    }

    /// Executes one pulse for every process.
    ///
    /// Allocation-free in steady state: the two inbox buffer sets are
    /// swapped and cleared (retaining capacity) rather than reallocated,
    /// one outbox buffer is recycled across all processes and rounds, and
    /// payloads move as refcounted [`Bytes`] — a broadcast's single buffer
    /// is shared by every recipient's [`Message`].
    pub fn step(&mut self) {
        // Fire scheduled churn/fault events first: the round's deliveries
        // and steps see the post-event topology, delivery model and
        // (possibly scrambled) pending messages.
        while let Some(action) = self.schedule.next_due(self.round) {
            self.apply_scheduled(action);
        }
        let n = self.processes.len();
        // Swap in last pulse's deliveries for consumption; the buffers
        // consumed two pulses ago are cleared and refilled with this
        // pulse's routed messages.
        std::mem::swap(&mut self.inboxes, &mut self.consumed);
        for inbox in &mut self.inboxes {
            inbox.clear();
        }
        // The loss RNG is only derived when the loss model can use it.
        let mut loss_rng = match self.delivery {
            Delivery::Lossy { .. } => {
                Some(labeled_rng_u64(self.seed, LOSS_DOMAIN, self.round.value()))
            }
            Delivery::Reliable => None,
        };

        for i in 0..n {
            let id = ProcessId(i);
            let mut ctx = Context {
                id,
                round: self.round,
                neighbors: self.topology.neighbors(id),
                inbox: &self.consumed[i],
                outbox: std::mem::take(&mut self.outbox_scratch),
                rng: process_rng(self.seed, id, self.round),
                n,
            };
            self.processes[i].on_pulse(&mut ctx);

            // Route this sender's messages inline: only topology edges
            // carry them, and they are read no earlier than the next pulse.
            let Context { mut outbox, .. } = ctx;
            for (to, payload) in outbox.drain(..) {
                if to.index() >= n || !self.topology.connected(id, to) {
                    self.trace.messages_dropped_no_link += 1;
                    continue;
                }
                if let (Delivery::Lossy { p }, Some(rng)) = (self.delivery, loss_rng.as_mut()) {
                    if rng.gen_bool(p.clamp(0.0, 1.0)) {
                        self.trace.messages_dropped_lossy += 1;
                        continue;
                    }
                }
                self.trace.record_delivery(to, payload.len());
                self.inboxes[to.index()].push(Message::new(id, self.round, payload));
            }
            self.outbox_scratch = outbox;
        }

        self.trace.record_round(self.round);
        self.round = self.round.next();
    }

    /// Runs `rounds` pulses.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Runs until `predicate(self)` holds or `max_rounds` elapse; returns
    /// the number of rounds executed, or `None` on timeout.
    pub fn run_until(
        &mut self,
        max_rounds: u64,
        mut predicate: impl FnMut(&Simulation) -> bool,
    ) -> Option<u64> {
        for executed in 0..max_rounds {
            if predicate(self) {
                return Some(executed);
            }
            self.step();
        }
        if predicate(self) {
            Some(max_rounds)
        } else {
            None
        }
    }

    /// Immutable access to process `id` as its concrete type.
    pub fn process_as<T: 'static>(&self, id: ProcessId) -> Option<&T> {
        self.processes
            .get(id.index())
            .and_then(|p| p.as_any().downcast_ref())
    }

    /// Mutable access to process `id` as its concrete type.
    pub fn process_as_mut<T: 'static>(&mut self, id: ProcessId) -> Option<&mut T> {
        self.processes
            .get_mut(id.index())
            .and_then(|p| p.as_any_mut().downcast_mut())
    }

    /// Replaces the program of processor `id` (e.g. corrupting an honest
    /// processor into a Byzantine one mid-run).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownProcess`] for out-of-range ids.
    pub fn replace_process(
        &mut self,
        id: ProcessId,
        process: Box<dyn Process>,
    ) -> Result<(), SimError> {
        match self.processes.get_mut(id.index()) {
            Some(slot) => {
                *slot = process;
                Ok(())
            }
            None => Err(SimError::UnknownProcess(id)),
        }
    }

    /// Replaces the round-triggered event schedule. Entries scheduled for
    /// rounds that already passed fire at the start of the next pulse.
    pub fn set_schedule(&mut self, schedule: Schedule) {
        self.schedule = schedule;
    }

    /// Applies one scheduled action immediately.
    fn apply_scheduled(&mut self, action: ScheduledAction) {
        match action {
            ScheduledAction::Disconnect(id) => self.topology.isolate(id),
            ScheduledAction::Reconnect(id, peers) => {
                for peer in peers {
                    // Already-present, reflexive or out-of-range links are
                    // documented as skipped.
                    let _ = self.topology.link(id, peer);
                }
            }
            ScheduledAction::Inject(fault) => self.inject(&fault),
            ScheduledAction::SetDelivery(delivery) => self.delivery = delivery,
        }
    }

    /// Applies a transient fault (see [`fault`](crate::fault)).
    pub fn inject(&mut self, fault: &TransientFault) {
        let dropped = fault.apply(
            self.seed,
            self.round,
            &mut self.processes,
            &mut self.inboxes,
        );
        self.trace.messages_dropped_fault += dropped;
    }

    /// Punitive disconnection: removes every link of `id` (the executive
    /// service's strongest punishment, per §3.4 "disconnect Byzantine agents
    /// from the network").
    ///
    /// Mutates the adjacency structure in place — see
    /// [`Topology::isolate`] — instead of rebuilding the whole topology.
    pub fn disconnect(&mut self, id: ProcessId) {
        self.topology.isolate(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts received messages; broadcasts one message per round.
    struct Counter {
        received: usize,
    }

    impl Process for Counter {
        fn on_pulse(&mut self, ctx: &mut Context<'_>) {
            self.received += ctx.inbox().len();
            ctx.broadcast(vec![1]);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn counters(topology: Topology, seed: u64) -> Simulation {
        Simulation::builder(topology)
            .seed(seed)
            .build_with(|_| Box::new(Counter { received: 0 }))
    }

    #[test]
    fn messages_delivered_next_round() {
        let mut sim = counters(Topology::complete(3), 0);
        sim.step();
        assert_eq!(sim.process_as::<Counter>(ProcessId(0)).unwrap().received, 0);
        sim.step();
        assert_eq!(sim.process_as::<Counter>(ProcessId(0)).unwrap().received, 2);
    }

    #[test]
    fn ring_delivers_only_to_neighbors() {
        let mut sim = counters(Topology::ring(5), 0);
        sim.run(2);
        for i in 0..5 {
            assert_eq!(
                sim.process_as::<Counter>(ProcessId(i)).unwrap().received,
                2,
                "ring degree is 2"
            );
        }
    }

    #[test]
    fn trace_counts_messages() {
        let mut sim = counters(Topology::complete(4), 0);
        sim.run(3);
        // Each step routes the 4*3 broadcasts sent during that step (they
        // are *read* by recipients at the following pulse).
        assert_eq!(sim.trace().rounds, 3);
        assert_eq!(sim.trace().messages_delivered, 36);
    }

    #[test]
    fn run_until_stops_on_predicate() {
        let mut sim = counters(Topology::complete(3), 0);
        let rounds = sim
            .run_until(100, |s| {
                s.process_as::<Counter>(ProcessId(0))
                    .map(|c| c.received >= 4)
                    == Some(true)
            })
            .unwrap();
        assert!((3..=4).contains(&rounds), "rounds={rounds}");
    }

    #[test]
    fn run_until_times_out() {
        let mut sim = counters(Topology::complete(3), 0);
        assert_eq!(sim.run_until(5, |_| false), None);
    }

    #[test]
    fn determinism_same_seed_same_history() {
        let mut a = counters(Topology::complete(5), 42);
        let mut b = counters(Topology::complete(5), 42);
        a.run(10);
        b.run(10);
        assert_eq!(a.trace(), b.trace());
    }

    #[test]
    fn lossy_delivery_drops_some() {
        let mut sim = Simulation::builder(Topology::complete(4))
            .seed(3)
            .delivery(Delivery::Lossy { p: 0.5 })
            .build_with(|_| Box::new(Counter { received: 0 }) as Box<dyn Process>);
        sim.run(20);
        assert!(sim.trace().messages_dropped_lossy > 0);
        assert!(sim.trace().messages_delivered > 0);
    }

    #[test]
    fn disconnect_cuts_all_links() {
        let mut sim = counters(Topology::complete(4), 0);
        sim.disconnect(ProcessId(2));
        sim.run(3);
        assert_eq!(sim.process_as::<Counter>(ProcessId(2)).unwrap().received, 0);
        // Others still talk among the remaining 3.
        assert!(sim.process_as::<Counter>(ProcessId(0)).unwrap().received > 0);
    }

    /// Sends to a fixed non-neighbor target to exercise the link check.
    struct Stubborn;

    impl Process for Stubborn {
        fn on_pulse(&mut self, ctx: &mut Context<'_>) {
            ctx.send(ProcessId(2), vec![1]);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn sends_without_link_are_dropped_and_counted() {
        // Path 0-1, 1-2: p0 keeps sending to p2 without a direct link.
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let mut sim = Simulation::builder(topo).build_with(|id| {
            if id == ProcessId(0) {
                Box::new(Stubborn) as Box<dyn Process>
            } else {
                Box::new(Counter { received: 0 })
            }
        });
        sim.run(4);
        assert_eq!(sim.trace().messages_dropped_no_link, 4);
        // p2 only hears from p1.
        assert_eq!(sim.process_as::<Counter>(ProcessId(2)).unwrap().received, 3);
    }

    #[test]
    fn schedule_disconnects_and_reconnects_on_time() {
        // Hub star: disconnect the hub at round 2, restore it at round 5.
        let schedule = Schedule::new()
            .at(2, ScheduledAction::Disconnect(ProcessId(0)))
            .at(
                5,
                ScheduledAction::Reconnect(ProcessId(0), (1..4).map(ProcessId).collect()),
            );
        let mut sim = Simulation::builder(Topology::star(4))
            .schedule(schedule)
            .build_with(|_| Box::new(Counter { received: 0 }) as Box<dyn Process>);

        // Rounds 0-1: leaf 1 hears the hub's round-0 broadcast at round 1.
        sim.run(2);
        let at_round_2 = sim.process_as::<Counter>(ProcessId(1)).unwrap().received;
        assert_eq!(at_round_2, 1);

        // Rounds 2-4: hub isolated. Its round-1 broadcast was already
        // routed (in flight when the link died) and lands at round 2;
        // nothing else reaches the leaves.
        sim.run(3);
        assert_eq!(
            sim.process_as::<Counter>(ProcessId(1)).unwrap().received,
            at_round_2 + 1,
            "only the in-flight message arrives while the hub is down"
        );

        // Round 5 restores the spokes; round-5 broadcasts land at round 6.
        sim.run(2);
        assert!(
            sim.process_as::<Counter>(ProcessId(1)).unwrap().received > at_round_2 + 1,
            "deliveries resume after reconnection"
        );
    }

    #[test]
    fn schedule_switches_delivery_model() {
        let schedule = Schedule::new()
            .at(3, ScheduledAction::SetDelivery(Delivery::Lossy { p: 1.0 }))
            .at(6, ScheduledAction::SetDelivery(Delivery::Reliable));
        let mut sim = Simulation::builder(Topology::complete(3))
            .schedule(schedule)
            .build_with(|_| Box::new(Counter { received: 0 }) as Box<dyn Process>);
        sim.run(3);
        let delivered_before = sim.trace().messages_delivered;
        assert_eq!(delivered_before, 3 * 2 * 3);
        sim.run(3);
        assert_eq!(
            sim.trace().messages_delivered,
            delivered_before,
            "p=1.0 drops everything"
        );
        assert_eq!(sim.trace().messages_dropped_lossy, 3 * 2 * 3);
        sim.run(1);
        assert!(sim.trace().messages_delivered > delivered_before);
    }

    #[test]
    fn schedule_injects_fault_and_counts_drops() {
        let schedule = Schedule::new().at(
            2,
            ScheduledAction::Inject(TransientFault {
                drop_messages_p: 1.0,
                ..TransientFault::default()
            }),
        );
        let mut sim = Simulation::builder(Topology::complete(3))
            .schedule(schedule)
            .build_with(|_| Box::new(Counter { received: 0 }) as Box<dyn Process>);
        sim.run(3);
        // The fault fires at the start of round 2 and wipes the 6 messages
        // sent during round 1.
        assert_eq!(sim.trace().messages_dropped_fault, 6);
        assert_eq!(
            sim.process_as::<Counter>(ProcessId(0)).unwrap().received,
            2,
            "only round 0's broadcasts survived"
        );
    }

    #[test]
    fn scheduled_run_matches_manual_interventions() {
        // The schedule path and the manual API must produce identical
        // traces.
        let schedule = Schedule::new()
            .at(1, ScheduledAction::Disconnect(ProcessId(2)))
            .at(4, ScheduledAction::SetDelivery(Delivery::Lossy { p: 0.4 }));
        let mut scheduled = Simulation::builder(Topology::complete(4))
            .seed(9)
            .schedule(schedule)
            .build_with(|_| Box::new(Counter { received: 0 }) as Box<dyn Process>);
        scheduled.run(8);

        let mut manual = counters(Topology::complete(4), 9);
        manual.step();
        manual.disconnect(ProcessId(2));
        manual.run(3);
        // No public delivery setter: set_schedule mid-run covers it.
        manual.set_schedule(
            Schedule::new().at(4, ScheduledAction::SetDelivery(Delivery::Lossy { p: 0.4 })),
        );
        manual.run(4);
        assert_eq!(scheduled.trace(), manual.trace());
    }

    #[test]
    fn replace_process_swaps_program() {
        let mut sim = counters(Topology::complete(3), 0);
        sim.replace_process(
            ProcessId(1),
            Box::new(crate::adversary::ByzantineProcess::new(Box::new(
                crate::adversary::Silent,
            ))),
        )
        .unwrap();
        sim.run(3);
        // p0 now only hears from p2.
        assert_eq!(sim.process_as::<Counter>(ProcessId(0)).unwrap().received, 2);
        assert!(sim
            .replace_process(ProcessId(9), Box::new(Counter { received: 0 }))
            .is_err());
    }
}

//! The lock-step scheduler: [`Simulation`] and [`SimulationBuilder`].

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::Rng;

use crate::fault::{CorruptionFamily, TransientFault};
use crate::ids::{ProcessId, Round};
use crate::message::Message;
use crate::process::{Context, Process};
use crate::rng::{labeled_rng_u64_pair, process_rng};
use crate::runtime::{BatchTask, Runtime};
use crate::schedule::{Schedule, ScheduledAction};
use crate::topology::Topology;
use crate::trace::Trace;
use crate::SimError;

/// Numeric RNG domain for the message-loss model (see
/// [`labeled_rng_u64_pair`](crate::rng::labeled_rng_u64_pair)).
///
/// The loss stream is derived per `(round, sender)`, never shared across
/// senders, so a sender's drop pattern is independent of the order (or
/// thread) in which senders are routed — the property that lets
/// [`StepExec::Sharded`] reproduce serial traces byte-for-byte.
const LOSS_DOMAIN: u64 = 0x1055_1055_1055_1055;

/// How [`Simulation::step`] executes its compute phase.
///
/// Either way the observable round semantics are identical — sharded
/// stepping is a pure throughput knob, verified byte-for-byte against
/// serial stepping (`tests/sharding.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepExec {
    /// One thread steps every process in id order.
    Serial,
    /// The persistent [`Runtime`] pool's workers step contiguous process
    /// shards in parallel; a serial merge then routes shard outboxes in
    /// ascending process-id order.
    Sharded {
        /// Number of shards (clamped to `[1, n]`; 1 behaves like
        /// [`StepExec::Serial`]).
        shards: usize,
    },
}

impl StepExec {
    /// Canonicalizes a shard-count knob: `0` and `1` mean serial.
    pub fn from_shards(shards: usize) -> StepExec {
        if shards <= 1 {
            StepExec::Serial
        } else {
            StepExec::Sharded { shards }
        }
    }

    /// The effective shard count for a system of `n` processes.
    pub fn shard_count(self, n: usize) -> usize {
        match self {
            StepExec::Serial => 1,
            StepExec::Sharded { shards } => shards.clamp(1, n.max(1)),
        }
    }
}

/// Per-shard scratch buffers, persisted across rounds so steady-state
/// sharded stepping allocates nothing: the outbox is recycled through each
/// process of the shard in turn, and `routed` carries the shard's
/// loss-filtered messages (plus drop tallies) to the merge phase.
#[derive(Debug, Default)]
struct ShardScratch {
    /// Outbox handed to each of the shard's processes in turn.
    outbox: Vec<(ProcessId, Bytes)>,
    /// Messages that survived link and loss filtering, in sender order.
    routed: Vec<(ProcessId, Message)>,
    /// Messages dropped because the destination was not a neighbor.
    dropped_no_link: u64,
    /// Messages dropped by the loss model.
    dropped_lossy: u64,
}

/// Message-loss model applied on delivery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Delivery {
    /// Every message on an existing link is delivered (the paper's model).
    Reliable,
    /// Each message is independently dropped with probability `p` —
    /// used by robustness tests to confirm protocols degrade, not corrupt.
    Lossy {
        /// Per-message drop probability in `[0, 1]`.
        p: f64,
    },
}

/// A synchronous distributed system: processes + topology + in-flight
/// messages.
///
/// Semantics per [`step`](Simulation::step) (one pulse):
/// 1. every process receives the messages sent to it last round,
/// 2. every process takes its step (in parallel, modelled by iterating over
///    an immutable snapshot of inboxes),
/// 3. outgoing messages are routed along topology edges for delivery next
///    round.
pub struct Simulation {
    topology: Topology,
    processes: Vec<Box<dyn Process>>,
    /// inbox[i] = messages to deliver to process i at the next pulse.
    inboxes: Vec<Vec<Message>>,
    /// Double buffer for `inboxes`: holds the pulse currently being
    /// consumed during [`step`](Simulation::step) and is recycled (swap +
    /// clear) every round, so steady-state stepping reallocates nothing.
    consumed: Vec<Vec<Message>>,
    /// Per-shard compute buffers, recycled across rounds (one entry when
    /// stepping serially).
    shard_scratch: Vec<ShardScratch>,
    /// Compute-phase execution strategy.
    exec: StepExec,
    /// The persistent worker pool the sharded compute phase submits to.
    /// `None` until first needed; a sharded step without an explicit
    /// handle adopts [`Runtime::global`] — serial sims never touch a pool.
    runtime: Option<Runtime>,
    round: Round,
    seed: u64,
    delivery: Delivery,
    trace: Trace,
    /// Round-triggered churn/fault events, consumed as rounds pass.
    schedule: Schedule,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("n", &self.topology.len())
            .field("round", &self.round)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

/// Configures and constructs a [`Simulation`].
#[derive(Debug)]
pub struct SimulationBuilder {
    topology: Topology,
    seed: u64,
    delivery: Delivery,
    schedule: Schedule,
    exec: StepExec,
    runtime: Option<Runtime>,
}

impl SimulationBuilder {
    /// Sets the run seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the delivery model (default [`Delivery::Reliable`]).
    pub fn delivery(mut self, delivery: Delivery) -> Self {
        self.delivery = delivery;
        self
    }

    /// Attaches a round-triggered event schedule (default empty) — see
    /// [`Schedule`].
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Shards the compute phase of every [`step`](Simulation::step) across
    /// this many threads (default 1 = serial). Traces are byte-identical
    /// at any shard count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.exec = StepExec::from_shards(shards);
        self
    }

    /// Sets the compute-phase execution strategy directly.
    pub fn exec(mut self, exec: StepExec) -> Self {
        self.exec = exec;
        self
    }

    /// Hands the simulation a persistent [`Runtime`] pool for its sharded
    /// compute phase (default: the process-wide [`Runtime::global`] pool,
    /// adopted lazily on the first sharded step). Sharing one handle
    /// across simulations — and with the sweep engine — keeps the whole
    /// process on one thread budget. The pool size never changes a trace.
    pub fn runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = Some(runtime);
        self
    }

    /// Builds the simulation, constructing each process from its id.
    pub fn build_with(self, mut make: impl FnMut(ProcessId) -> Box<dyn Process>) -> Simulation {
        let n = self.topology.len();
        let processes = (0..n).map(|i| make(ProcessId(i))).collect();
        self.build(processes)
    }

    /// Builds from an explicit process vector.
    ///
    /// # Panics
    ///
    /// Panics if `processes.len()` differs from the topology size.
    pub fn build(self, processes: Vec<Box<dyn Process>>) -> Simulation {
        assert_eq!(
            processes.len(),
            self.topology.len(),
            "one process per topology vertex"
        );
        let n = self.topology.len();
        Simulation {
            inboxes: vec![Vec::new(); n],
            consumed: vec![Vec::new(); n],
            shard_scratch: Vec::new(),
            exec: self.exec,
            runtime: self.runtime,
            topology: self.topology,
            processes,
            round: Round(0),
            seed: self.seed,
            delivery: self.delivery,
            trace: Trace::new(n),
            schedule: self.schedule,
        }
    }
}

impl Simulation {
    /// Starts configuring a simulation over `topology`.
    pub fn builder(topology: Topology) -> SimulationBuilder {
        SimulationBuilder {
            topology,
            seed: 0,
            delivery: Delivery::Reliable,
            schedule: Schedule::new(),
            exec: StepExec::Serial,
            runtime: None,
        }
    }

    /// Re-shards the compute phase mid-run (`0`/`1` mean serial). Changing
    /// the shard count never changes the trace.
    pub fn set_shards(&mut self, shards: usize) {
        self.exec = StepExec::from_shards(shards);
    }

    /// Re-targets the sharded compute phase at `runtime` (the pool size
    /// never changes the trace) — see [`SimulationBuilder::runtime`].
    pub fn set_runtime(&mut self, runtime: Runtime) {
        self.runtime = Some(runtime);
    }

    /// The current compute-phase execution strategy.
    pub fn exec(&self) -> StepExec {
        self.exec
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// Whether the simulation has no processes (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }

    /// The current round number (the next pulse to execute).
    pub fn round(&self) -> Round {
        self.round
    }

    /// The current topology. Links change mid-run only through
    /// [`disconnect`](Simulation::disconnect) or scheduled churn events
    /// ([`ScheduledAction::Disconnect`]/[`ScheduledAction::Reconnect`]),
    /// so probes inspecting it mid-run see the post-churn graph.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Accumulated counters.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Resets trace counters (e.g. to measure only steady-state costs).
    pub fn reset_trace(&mut self) {
        self.trace.reset();
    }

    /// Executes one pulse for every process.
    ///
    /// The round is split into two phases:
    ///
    /// 1. **Compute** — every process steps against the immutable snapshot
    ///    of last pulse's deliveries; its messages are link- and
    ///    loss-filtered into per-shard `routed` buffers. Under
    ///    [`StepExec::Sharded`] contiguous process shards run as one
    ///    indexed batch on the persistent [`Runtime`] pool — no threads
    ///    are spawned per round; every random draw is derived from
    ///    `(seed, id, round)` coordinates, so nothing depends on shard
    ///    boundaries or thread interleaving.
    /// 2. **Merge** — shards are drained in ascending process-id order:
    ///    drop counters are summed in shard order and surviving messages
    ///    are appended to next-round inboxes sender-by-sender, exactly the
    ///    order serial stepping produces. Traces are therefore
    ///    byte-identical at any shard count.
    ///
    /// Scheduled churn/fault events fire once, before the compute phase,
    /// so the whole round sees the post-event topology and delivery model.
    ///
    /// Allocation-free in steady state on the serial path: the two inbox
    /// buffer sets are swapped and cleared (retaining capacity) rather
    /// than reallocated, each shard recycles one outbox and one routed
    /// buffer across all its processes and rounds, and payloads move as
    /// refcounted [`Bytes`] — a broadcast's single buffer is shared by
    /// every recipient's [`Message`]. The sharded path additionally boxes
    /// one task header per shard per round (a few ns each — the point of
    /// the persistent pool is eliminating the ~tens of µs of per-round
    /// thread spawn/join the old `thread::scope` compute phase paid).
    pub fn step(&mut self) {
        // Fire scheduled churn/fault events first: the round's deliveries
        // and steps see the post-event topology, delivery model and
        // (possibly scrambled) pending messages.
        while let Some(action) = self.schedule.next_due(self.round) {
            self.apply_scheduled(action);
        }
        let n = self.processes.len();
        // Swap in last pulse's deliveries for consumption; the buffers
        // consumed two pulses ago are cleared and refilled with this
        // pulse's routed messages.
        std::mem::swap(&mut self.inboxes, &mut self.consumed);
        for inbox in &mut self.inboxes {
            inbox.clear();
        }

        let shards = self.exec.shard_count(n);
        if self.shard_scratch.len() < shards {
            self.shard_scratch
                .resize_with(shards, ShardScratch::default);
        }
        let chunk = n.div_ceil(shards).max(1);

        // Compute phase: disjoint &mut process shards against shared
        // immutable round state.
        let topology = &self.topology;
        let consumed = &self.consumed;
        let (seed, round, delivery) = (self.seed, self.round, self.delivery);
        if shards == 1 {
            compute_shard(
                &mut self.processes,
                0,
                &mut self.shard_scratch[0],
                consumed,
                topology,
                seed,
                round,
                delivery,
            );
        } else {
            // Submit the shards as one indexed batch to the persistent
            // pool (adopting the process-wide pool if none was attached).
            // Each task owns its shard's scratch slot; the merge below
            // drains slots in ascending shard order, so results are
            // byte-identical at any pool size.
            let runtime = &*self.runtime.get_or_insert_with(Runtime::global);
            let tasks: Vec<BatchTask<'_>> = self
                .processes
                .chunks_mut(chunk)
                .enumerate()
                .zip(self.shard_scratch.iter_mut())
                .map(|((si, processes), scratch)| {
                    Box::new(move || {
                        compute_shard(
                            processes,
                            si * chunk,
                            scratch,
                            consumed,
                            topology,
                            seed,
                            round,
                            delivery,
                        );
                    }) as BatchTask<'_>
                })
                .collect();
            runtime.run_batch(tasks);
        }

        // Merge phase: shards hold contiguous ascending sender ranges, so
        // draining them in shard order appends every inbox's messages in
        // ascending sender order — the serial order. Counters are summed
        // in the same fixed order.
        for scratch in &mut self.shard_scratch {
            self.trace.messages_dropped_no_link += scratch.dropped_no_link;
            self.trace.messages_dropped_lossy += scratch.dropped_lossy;
            scratch.dropped_no_link = 0;
            scratch.dropped_lossy = 0;
            for (to, message) in scratch.routed.drain(..) {
                self.trace.record_delivery(to, message.payload.len());
                self.inboxes[to.index()].push(message);
            }
        }

        self.trace.record_round(self.round);
        self.round = self.round.next();
    }

    /// Runs `rounds` pulses.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Runs until `predicate(self)` holds or `max_rounds` elapse; returns
    /// the number of rounds executed, or `None` on timeout.
    pub fn run_until(
        &mut self,
        max_rounds: u64,
        mut predicate: impl FnMut(&Simulation) -> bool,
    ) -> Option<u64> {
        for executed in 0..max_rounds {
            if predicate(self) {
                return Some(executed);
            }
            self.step();
        }
        if predicate(self) {
            Some(max_rounds)
        } else {
            None
        }
    }

    /// Immutable access to process `id` as its concrete type.
    pub fn process_as<T: 'static>(&self, id: ProcessId) -> Option<&T> {
        self.processes
            .get(id.index())
            .and_then(|p| p.as_any().downcast_ref())
    }

    /// Mutable access to process `id` as its concrete type.
    pub fn process_as_mut<T: 'static>(&mut self, id: ProcessId) -> Option<&mut T> {
        self.processes
            .get_mut(id.index())
            .and_then(|p| p.as_any_mut().downcast_mut())
    }

    /// Replaces the program of processor `id` (e.g. corrupting an honest
    /// processor into a Byzantine one mid-run).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownProcess`] for out-of-range ids.
    pub fn replace_process(
        &mut self,
        id: ProcessId,
        process: Box<dyn Process>,
    ) -> Result<(), SimError> {
        match self.processes.get_mut(id.index()) {
            Some(slot) => {
                *slot = process;
                Ok(())
            }
            None => Err(SimError::UnknownProcess(id)),
        }
    }

    /// Replaces the round-triggered event schedule. Entries scheduled for
    /// rounds that already passed fire at the start of the next pulse.
    pub fn set_schedule(&mut self, schedule: Schedule) {
        self.schedule = schedule;
    }

    /// Applies one scheduled action immediately.
    fn apply_scheduled(&mut self, action: ScheduledAction) {
        match action {
            ScheduledAction::Disconnect(id) => self.topology.isolate(id),
            ScheduledAction::Reconnect(id, peers) => {
                for peer in peers {
                    // Already-present, reflexive or out-of-range links are
                    // documented as skipped.
                    let _ = self.topology.link(id, peer);
                }
            }
            // Absent/invalid edges are documented as skipped, mirroring
            // Reconnect — partition schedules may race earlier churn.
            ScheduledAction::CutLink { a, b } => {
                let _ = self.topology.cut_link(a, b);
            }
            ScheduledAction::HealLink { a, b } => {
                let _ = self.topology.heal_link(a, b);
            }
            ScheduledAction::Inject(fault) => self.inject(&fault),
            ScheduledAction::Corrupt(family) => self.corrupt(&family),
            ScheduledAction::SetDelivery(delivery) => self.delivery = delivery,
        }
    }

    /// Applies a transient fault (see [`fault`](crate::fault)).
    pub fn inject(&mut self, fault: &TransientFault) {
        let dropped = fault.apply(
            self.seed,
            self.round,
            &mut self.processes,
            &mut self.inboxes,
        );
        self.trace.messages_dropped_fault += dropped;
    }

    /// Applies a [`CorruptionFamily`]: scrambles the strategy-selected
    /// process states and degrades pending in-flight messages, with every
    /// draw keyed by `(seed, id, round)` coordinates (see
    /// [`fault`](crate::fault)). Dropped messages are accounted to
    /// [`Trace::messages_dropped_fault`]. Usually reached through
    /// [`ScheduledAction::Corrupt`], which fires at the start of its round
    /// so the round's deliveries already reflect the corrupted channels.
    pub fn corrupt(&mut self, family: &CorruptionFamily) {
        let dropped = family.apply(
            self.seed,
            self.round,
            &self.topology,
            &mut self.processes,
            &mut self.inboxes,
        );
        self.trace.messages_dropped_fault += dropped;
    }

    /// Punitive disconnection: removes every link of `id` (the executive
    /// service's strongest punishment, per §3.4 "disconnect Byzantine agents
    /// from the network").
    ///
    /// Mutates the adjacency structure in place — see
    /// [`Topology::isolate`] — instead of rebuilding the whole topology.
    pub fn disconnect(&mut self, id: ProcessId) {
        self.topology.isolate(id);
    }
}

/// Steps one contiguous shard of processes (`base..base + processes.len()`)
/// against the immutable prior-round inboxes, link- and loss-filtering
/// each sender's outbox into the shard's `routed` buffer.
///
/// Shard-boundary independence: every draw a sender makes — its process
/// RNG and its loss stream — is derived from `(seed, id, round)` alone, so
/// the routed output for a sender is the same whichever shard (or thread)
/// executes it.
#[allow(clippy::too_many_arguments)]
fn compute_shard(
    processes: &mut [Box<dyn Process>],
    base: usize,
    scratch: &mut ShardScratch,
    consumed: &[Vec<Message>],
    topology: &Topology,
    seed: u64,
    round: Round,
    delivery: Delivery,
) {
    let n = consumed.len();
    for (offset, process) in processes.iter_mut().enumerate() {
        let id = ProcessId(base + offset);
        let mut ctx = Context {
            id,
            round,
            neighbors: topology.neighbors(id),
            inbox: &consumed[id.index()],
            outbox: std::mem::take(&mut scratch.outbox),
            rng: process_rng(seed, id, round),
            n,
        };
        process.on_pulse(&mut ctx);

        // Route this sender's messages: only topology edges carry them,
        // and they are read no earlier than the next pulse. The loss RNG
        // is per-sender (derived lazily, only under a lossy model and only
        // for senders that actually send).
        let Context { mut outbox, .. } = ctx;
        let mut loss_rng: Option<StdRng> = None;
        for (to, payload) in outbox.drain(..) {
            if to.index() >= n || !topology.connected(id, to) {
                scratch.dropped_no_link += 1;
                continue;
            }
            if let Delivery::Lossy { p } = delivery {
                let rng = loss_rng.get_or_insert_with(|| {
                    labeled_rng_u64_pair(seed, LOSS_DOMAIN, round.value(), id.index() as u64)
                });
                if rng.gen_bool(p.clamp(0.0, 1.0)) {
                    scratch.dropped_lossy += 1;
                    continue;
                }
            }
            scratch.routed.push((to, Message::new(id, round, payload)));
        }
        scratch.outbox = outbox;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts received messages; broadcasts one message per round.
    struct Counter {
        received: usize,
    }

    impl Process for Counter {
        fn on_pulse(&mut self, ctx: &mut Context<'_>) {
            self.received += ctx.inbox().len();
            ctx.broadcast(vec![1]);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn counters(topology: Topology, seed: u64) -> Simulation {
        Simulation::builder(topology)
            .seed(seed)
            .build_with(|_| Box::new(Counter { received: 0 }))
    }

    #[test]
    fn messages_delivered_next_round() {
        let mut sim = counters(Topology::complete(3), 0);
        sim.step();
        assert_eq!(sim.process_as::<Counter>(ProcessId(0)).unwrap().received, 0);
        sim.step();
        assert_eq!(sim.process_as::<Counter>(ProcessId(0)).unwrap().received, 2);
    }

    #[test]
    fn ring_delivers_only_to_neighbors() {
        let mut sim = counters(Topology::ring(5), 0);
        sim.run(2);
        for i in 0..5 {
            assert_eq!(
                sim.process_as::<Counter>(ProcessId(i)).unwrap().received,
                2,
                "ring degree is 2"
            );
        }
    }

    #[test]
    fn trace_counts_messages() {
        let mut sim = counters(Topology::complete(4), 0);
        sim.run(3);
        // Each step routes the 4*3 broadcasts sent during that step (they
        // are *read* by recipients at the following pulse).
        assert_eq!(sim.trace().rounds, 3);
        assert_eq!(sim.trace().messages_delivered, 36);
    }

    #[test]
    fn run_until_stops_on_predicate() {
        let mut sim = counters(Topology::complete(3), 0);
        let rounds = sim
            .run_until(100, |s| {
                s.process_as::<Counter>(ProcessId(0))
                    .map(|c| c.received >= 4)
                    == Some(true)
            })
            .unwrap();
        assert!((3..=4).contains(&rounds), "rounds={rounds}");
    }

    #[test]
    fn run_until_times_out() {
        let mut sim = counters(Topology::complete(3), 0);
        assert_eq!(sim.run_until(5, |_| false), None);
    }

    #[test]
    fn determinism_same_seed_same_history() {
        let mut a = counters(Topology::complete(5), 42);
        let mut b = counters(Topology::complete(5), 42);
        a.run(10);
        b.run(10);
        assert_eq!(a.trace(), b.trace());
    }

    #[test]
    fn step_exec_canonicalizes_and_clamps() {
        assert_eq!(StepExec::from_shards(0), StepExec::Serial);
        assert_eq!(StepExec::from_shards(1), StepExec::Serial);
        assert_eq!(StepExec::from_shards(3), StepExec::Sharded { shards: 3 });
        assert_eq!(StepExec::Serial.shard_count(8), 1);
        assert_eq!(StepExec::Sharded { shards: 3 }.shard_count(8), 3);
        assert_eq!(
            StepExec::Sharded { shards: 64 }.shard_count(8),
            8,
            "never more shards than processes"
        );
    }

    #[test]
    fn sharded_step_matches_serial_trace() {
        for shards in [2, 3, 8, 64] {
            let mut serial = counters(Topology::complete(9), 42);
            let mut sharded = Simulation::builder(Topology::complete(9))
                .seed(42)
                .shards(shards)
                .build_with(|_| Box::new(Counter { received: 0 }) as Box<dyn Process>);
            serial.run(10);
            sharded.run(10);
            assert_eq!(serial.trace(), sharded.trace(), "shards={shards}");
        }
    }

    #[test]
    fn resharding_mid_run_preserves_the_trace() {
        let mut reference = counters(Topology::complete(6), 7);
        reference.run(9);

        let mut resharded = counters(Topology::complete(6), 7);
        resharded.run(3);
        resharded.set_shards(4);
        assert_eq!(resharded.exec(), StepExec::Sharded { shards: 4 });
        resharded.run(3);
        resharded.set_shards(1);
        assert_eq!(resharded.exec(), StepExec::Serial);
        resharded.run(3);
        assert_eq!(reference.trace(), resharded.trace());
    }

    #[test]
    fn lossy_delivery_drops_some() {
        let mut sim = Simulation::builder(Topology::complete(4))
            .seed(3)
            .delivery(Delivery::Lossy { p: 0.5 })
            .build_with(|_| Box::new(Counter { received: 0 }) as Box<dyn Process>);
        sim.run(20);
        assert!(sim.trace().messages_dropped_lossy > 0);
        assert!(sim.trace().messages_delivered > 0);
    }

    #[test]
    fn disconnect_cuts_all_links() {
        let mut sim = counters(Topology::complete(4), 0);
        sim.disconnect(ProcessId(2));
        sim.run(3);
        assert_eq!(sim.process_as::<Counter>(ProcessId(2)).unwrap().received, 0);
        // Others still talk among the remaining 3.
        assert!(sim.process_as::<Counter>(ProcessId(0)).unwrap().received > 0);
    }

    /// Sends to a fixed non-neighbor target to exercise the link check.
    struct Stubborn;

    impl Process for Stubborn {
        fn on_pulse(&mut self, ctx: &mut Context<'_>) {
            ctx.send(ProcessId(2), vec![1]);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn sends_without_link_are_dropped_and_counted() {
        // Path 0-1, 1-2: p0 keeps sending to p2 without a direct link.
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let mut sim = Simulation::builder(topo).build_with(|id| {
            if id == ProcessId(0) {
                Box::new(Stubborn) as Box<dyn Process>
            } else {
                Box::new(Counter { received: 0 })
            }
        });
        sim.run(4);
        assert_eq!(sim.trace().messages_dropped_no_link, 4);
        // p2 only hears from p1.
        assert_eq!(sim.process_as::<Counter>(ProcessId(2)).unwrap().received, 3);
    }

    #[test]
    fn schedule_disconnects_and_reconnects_on_time() {
        // Hub star: disconnect the hub at round 2, restore it at round 5.
        let schedule = Schedule::new()
            .at(2, ScheduledAction::Disconnect(ProcessId(0)))
            .at(
                5,
                ScheduledAction::Reconnect(ProcessId(0), (1..4).map(ProcessId).collect()),
            );
        let mut sim = Simulation::builder(Topology::star(4))
            .schedule(schedule)
            .build_with(|_| Box::new(Counter { received: 0 }) as Box<dyn Process>);

        // Rounds 0-1: leaf 1 hears the hub's round-0 broadcast at round 1.
        sim.run(2);
        let at_round_2 = sim.process_as::<Counter>(ProcessId(1)).unwrap().received;
        assert_eq!(at_round_2, 1);

        // Rounds 2-4: hub isolated. Its round-1 broadcast was already
        // routed (in flight when the link died) and lands at round 2;
        // nothing else reaches the leaves.
        sim.run(3);
        assert_eq!(
            sim.process_as::<Counter>(ProcessId(1)).unwrap().received,
            at_round_2 + 1,
            "only the in-flight message arrives while the hub is down"
        );

        // Round 5 restores the spokes; round-5 broadcasts land at round 6.
        sim.run(2);
        assert!(
            sim.process_as::<Counter>(ProcessId(1)).unwrap().received > at_round_2 + 1,
            "deliveries resume after reconnection"
        );
    }

    #[test]
    fn scheduled_bisection_partitions_and_heals() {
        // Complete(4) bisected into {0,1} | {2,3} at round 1, healed at
        // round 4: while cut, each process hears only its half-mate.
        let topo = Topology::complete(4);
        let schedule = Schedule::new().bisect(&topo, 1, 4);
        let mut sim = Simulation::builder(Topology::complete(4))
            .schedule(schedule)
            .build_with(|_| Box::new(Counter { received: 0 }) as Box<dyn Process>);
        // Round 0 (pre-cut): 3 broadcasts each, land at round 1.
        // Rounds 1-3 (cut): 1 broadcast each (the half-mate), landing at
        // rounds 2-4 — the round-1 sends were already filtered post-cut.
        sim.run(4);
        let heard = sim.process_as::<Counter>(ProcessId(0)).unwrap().received;
        assert_eq!(heard, 3 + 1 + 1, "3 pre-cut, then one per cut round");
        // Round 4 heals: its broadcasts land everywhere at round 5.
        sim.run(2);
        let after = sim.process_as::<Counter>(ProcessId(0)).unwrap().received;
        assert_eq!(after, heard + 1 + 3, "full fan-in resumes post-heal");
    }

    #[test]
    fn schedule_switches_delivery_model() {
        let schedule = Schedule::new()
            .at(3, ScheduledAction::SetDelivery(Delivery::Lossy { p: 1.0 }))
            .at(6, ScheduledAction::SetDelivery(Delivery::Reliable));
        let mut sim = Simulation::builder(Topology::complete(3))
            .schedule(schedule)
            .build_with(|_| Box::new(Counter { received: 0 }) as Box<dyn Process>);
        sim.run(3);
        let delivered_before = sim.trace().messages_delivered;
        assert_eq!(delivered_before, 3 * 2 * 3);
        sim.run(3);
        assert_eq!(
            sim.trace().messages_delivered,
            delivered_before,
            "p=1.0 drops everything"
        );
        assert_eq!(sim.trace().messages_dropped_lossy, 3 * 2 * 3);
        sim.run(1);
        assert!(sim.trace().messages_delivered > delivered_before);
    }

    #[test]
    fn schedule_injects_fault_and_counts_drops() {
        let schedule = Schedule::new().at(
            2,
            ScheduledAction::Inject(TransientFault {
                drop_messages_p: 1.0,
                ..TransientFault::default()
            }),
        );
        let mut sim = Simulation::builder(Topology::complete(3))
            .schedule(schedule)
            .build_with(|_| Box::new(Counter { received: 0 }) as Box<dyn Process>);
        sim.run(3);
        // The fault fires at the start of round 2 and wipes the 6 messages
        // sent during round 1.
        assert_eq!(sim.trace().messages_dropped_fault, 6);
        assert_eq!(
            sim.process_as::<Counter>(ProcessId(0)).unwrap().received,
            2,
            "only round 0's broadcasts survived"
        );
    }

    #[test]
    fn scheduled_corruption_counts_drops_and_is_shard_invariant() {
        use crate::fault::CorruptionTargets;
        let family = CorruptionFamily {
            targets: CorruptionTargets::RandomK(2),
            corrupt_messages_p: 0.5,
            drop_messages_p: 1.0,
            salt: 3,
        };
        let build = |shards: usize| {
            Simulation::builder(Topology::complete(6))
                .seed(11)
                .shards(shards)
                .schedule(Schedule::new().at(2, ScheduledAction::Corrupt(family.clone())))
                .build_with(|_| Box::new(Counter { received: 0 }) as Box<dyn Process>)
        };
        let mut serial = build(1);
        serial.run(5);
        // The corruption fires at the start of round 2 and drops all 30
        // messages sent during round 1.
        assert_eq!(serial.trace().messages_dropped_fault, 30);

        for shards in [2, 3, 6] {
            let mut sharded = build(shards);
            sharded.run(5);
            assert_eq!(serial.trace(), sharded.trace(), "shards={shards}");
        }
    }

    #[test]
    fn scheduled_run_matches_manual_interventions() {
        // The schedule path and the manual API must produce identical
        // traces.
        let schedule = Schedule::new()
            .at(1, ScheduledAction::Disconnect(ProcessId(2)))
            .at(4, ScheduledAction::SetDelivery(Delivery::Lossy { p: 0.4 }));
        let mut scheduled = Simulation::builder(Topology::complete(4))
            .seed(9)
            .schedule(schedule)
            .build_with(|_| Box::new(Counter { received: 0 }) as Box<dyn Process>);
        scheduled.run(8);

        let mut manual = counters(Topology::complete(4), 9);
        manual.step();
        manual.disconnect(ProcessId(2));
        manual.run(3);
        // No public delivery setter: set_schedule mid-run covers it.
        manual.set_schedule(
            Schedule::new().at(4, ScheduledAction::SetDelivery(Delivery::Lossy { p: 0.4 })),
        );
        manual.run(4);
        assert_eq!(scheduled.trace(), manual.trace());
    }

    #[test]
    fn replace_process_swaps_program() {
        let mut sim = counters(Topology::complete(3), 0);
        sim.replace_process(
            ProcessId(1),
            Box::new(crate::adversary::ByzantineProcess::new(Box::new(
                crate::adversary::Silent,
            ))),
        )
        .unwrap();
        sim.run(3);
        // p0 now only hears from p2.
        assert_eq!(sim.process_as::<Counter>(ProcessId(0)).unwrap().received, 2);
        assert!(sim
            .replace_process(ProcessId(9), Box::new(Counter { received: 0 }))
            .is_err());
    }
}

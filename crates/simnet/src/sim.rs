//! The lock-step scheduler: [`Simulation`] and [`SimulationBuilder`].

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::Rng;

use crate::fault::{CorruptionFamily, TransientFault};
use crate::ids::{ProcessId, Round};
use crate::inbox::Inboxes;
use crate::message::Message;
use crate::process::{Context, Process};
use crate::rng::{labeled_rng_u64_pair, process_rng};
use crate::runtime::{BatchTask, Runtime};
use crate::schedule::{Schedule, ScheduledAction};
use crate::store::ProcessStore;
use crate::telemetry::{DropReason, Event, EventSink, Profiler, TelemetryConfig};
use crate::topology::Topology;
use crate::trace::Trace;
use crate::SimError;

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Numeric RNG domain for the message-loss model (see
/// [`labeled_rng_u64_pair`](crate::rng::labeled_rng_u64_pair)).
///
/// The loss stream is derived per `(round, sender)`, never shared across
/// senders, so a sender's drop pattern is independent of the order (or
/// thread) in which senders are routed — the property that lets
/// [`StepExec::Sharded`] reproduce serial traces byte-for-byte.
const LOSS_DOMAIN: u64 = 0x1055_1055_1055_1055;

/// Process-wide default for the shard-plan cache (see
/// [`set_plan_cache`]). On by default; simulations snapshot it at build
/// time, and [`SimulationBuilder::plan_cache`] overrides it per run.
static PLAN_CACHE: AtomicBool = AtomicBool::new(true);

/// Sets the process-wide shard-plan cache default. The cache only skips
/// re-running the deterministic bin-pack when the active set and topology
/// are unchanged — it can never change a trace — so the off switch exists
/// purely so byte-identity gates can compare cached vs uncached runs.
pub fn set_plan_cache(enabled: bool) {
    PLAN_CACHE.store(enabled, Ordering::Relaxed);
}

/// The current process-wide shard-plan cache default.
pub fn plan_cache_enabled() -> bool {
    PLAN_CACHE.load(Ordering::Relaxed)
}

/// Fingerprint of the inputs the shard plan depends on: the topology
/// generation (degrees), the shard count, and the active id set
/// (length + endpoints + an FNV-1a rolling hash). A key match is only a
/// *candidate* hit — the cached plan's exact active slice is compared
/// before reuse, so a hash collision can never produce a stale plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PlanKey {
    generation: u64,
    shards: usize,
    len: usize,
    first: usize,
    last: usize,
    hash: u64,
}

impl PlanKey {
    fn new(generation: u64, shards: usize, active: &[usize]) -> PlanKey {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &i in active {
            hash ^= i as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        PlanKey {
            generation,
            shards,
            len: active.len(),
            first: active.first().copied().unwrap_or(usize::MAX),
            last: active.last().copied().unwrap_or(usize::MAX),
            hash,
        }
    }
}

/// How [`Simulation::step`] executes its compute phase.
///
/// Either way the observable round semantics are identical — sharded
/// stepping is a pure throughput knob, verified byte-for-byte against
/// serial stepping (`tests/sharding.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepExec {
    /// One thread steps every active process in id order.
    Serial,
    /// The persistent [`Runtime`] pool's workers step degree-balanced
    /// process index sets in parallel (a deterministic greedy bin-pack
    /// over degrees, so one hub can't serialize a shard); a serial merge
    /// then routes shard outboxes in ascending process-id order.
    Sharded {
        /// Number of shards (clamped to `[1, n]`; 1 behaves like
        /// [`StepExec::Serial`]).
        shards: usize,
    },
}

impl StepExec {
    /// Canonicalizes a shard-count knob: `0` and `1` mean serial.
    pub fn from_shards(shards: usize) -> StepExec {
        if shards <= 1 {
            StepExec::Serial
        } else {
            StepExec::Sharded { shards }
        }
    }

    /// The effective shard count for a system of `n` processes.
    pub fn shard_count(self, n: usize) -> usize {
        match self {
            StepExec::Serial => 1,
            StepExec::Sharded { shards } => shards.clamp(1, n.max(1)),
        }
    }
}

/// Per-shard scratch buffers, persisted across rounds so steady-state
/// sharded stepping allocates nothing: the outbox is recycled through each
/// process of the shard in turn, and `routed` carries the shard's
/// loss-filtered messages (plus drop tallies) to the merge phase.
#[derive(Debug, Default)]
struct ShardScratch {
    /// Outbox handed to each of the shard's processes in turn.
    outbox: Vec<(ProcessId, Bytes)>,
    /// Messages that survived link and loss filtering, in sender order.
    routed: Vec<(ProcessId, Message)>,
    /// Messages dropped because the destination was not a neighbor.
    dropped_no_link: u64,
    /// Messages dropped by the loss model.
    dropped_lossy: u64,
    /// Telemetry events generated by this shard's compute phase, in
    /// per-sender order; drained into the run's [`EventSink`] by the merge
    /// phase in ascending sender order (empty unless the event plane is on).
    events: Vec<Event>,
    /// Per-sender segment table: one `(sender, routed end, events end)`
    /// entry per stepped process (even quiet ones), recording cumulative
    /// lengths of `routed`/`events` after that sender. Shard id sets are
    /// no longer contiguous, so the merge k-way-walks these tables to
    /// recover global ascending-sender order.
    segs: Vec<(ProcessId, usize, usize)>,
}

/// Message-loss model applied on delivery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Delivery {
    /// Every message on an existing link is delivered (the paper's model).
    Reliable,
    /// Each message is independently dropped with probability `p` —
    /// used by robustness tests to confirm protocols degrade, not corrupt.
    Lossy {
        /// Per-message drop probability in `[0, 1]`.
        p: f64,
    },
}

/// A synchronous distributed system: processes + topology + in-flight
/// messages.
///
/// Semantics per [`step`](Simulation::step) (one pulse):
/// 1. every process receives the messages sent to it last round,
/// 2. every process takes its step (in parallel, modelled by iterating over
///    an immutable snapshot of inboxes),
/// 3. outgoing messages are routed along topology edges for delivery next
///    round.
pub struct Simulation {
    topology: Topology,
    /// The process table: boxed (heterogeneous) or a contiguous slab
    /// (homogeneous populations via
    /// [`build_slab`](SimulationBuilder::build_slab)) — behaviorally
    /// identical, see [`crate::store`].
    processes: ProcessStore,
    /// Slot i = messages to deliver to process i at the next pulse
    /// (arena-backed; tracks which slots were touched).
    inboxes: Inboxes,
    /// Double buffer for `inboxes`: holds the pulse currently being
    /// consumed during [`step`](Simulation::step) and is recycled (swap +
    /// clear through the arena pool) every round, so steady-state stepping
    /// reallocates nothing and clearing costs O(previously active).
    consumed: Inboxes,
    /// Processes currently claiming [`Process::always_active`], ascending.
    /// Rebuilt each round from the stepped set — a process's answer can
    /// only change when it runs (or is scrambled/replaced, which wakes it).
    persistent: Vec<usize>,
    /// Processes woken by interventions since the last pulse (scrambles,
    /// corruption victims, program replacement); drained into the next
    /// round's active set.
    woken: Vec<usize>,
    /// Scratch for the round's active id list (ascending, deduplicated).
    active: Vec<usize>,
    /// Recycled degree-balanced shard plan: `shard_plan[s]` = the ids shard
    /// `s` steps this round, ascending.
    shard_plan: Vec<Vec<usize>>,
    /// Bin-pack scratch: `(weight, id)` pairs and per-bin load tallies.
    plan_weights: Vec<(usize, usize)>,
    plan_loads: Vec<usize>,
    /// Fingerprint of the inputs `shard_plan` was computed from; `None`
    /// until the first sharded round (or when caching is off).
    plan_key: Option<PlanKey>,
    /// The exact active set `shard_plan` was computed from — compared in
    /// full on a key hit so fingerprint collisions are harmless.
    plan_active: Vec<usize>,
    /// Whether to reuse `shard_plan` across rounds when its inputs are
    /// unchanged (never affects any trace; see [`set_plan_cache`]).
    plan_cache: bool,
    /// Per-shard compute buffers, recycled across rounds (one entry when
    /// stepping serially).
    shard_scratch: Vec<ShardScratch>,
    /// Compute-phase execution strategy.
    exec: StepExec,
    /// The persistent worker pool the sharded compute phase submits to.
    /// `None` until first needed; a sharded step without an explicit
    /// handle adopts [`Runtime::global`] — serial sims never touch a pool.
    runtime: Option<Runtime>,
    round: Round,
    seed: u64,
    delivery: Delivery,
    trace: Trace,
    /// Round-triggered churn/fault events, consumed as rounds pass.
    schedule: Schedule,
    /// Deterministic event plane: `None` keeps the hot path event-free.
    telemetry: Option<EventSink>,
    /// Wall-clock timing plane — never folded into `trace` or any other
    /// compared output (see [`crate::telemetry`]).
    profiler: Option<Profiler>,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("n", &self.topology.len())
            .field("round", &self.round)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

/// Configures and constructs a [`Simulation`].
#[derive(Debug)]
pub struct SimulationBuilder {
    topology: Topology,
    seed: u64,
    delivery: Delivery,
    schedule: Schedule,
    exec: StepExec,
    runtime: Option<Runtime>,
    telemetry: Option<TelemetryConfig>,
    profiler: Option<Profiler>,
    /// `None` = adopt the process-wide default at build time.
    plan_cache: Option<bool>,
}

impl SimulationBuilder {
    /// Sets the run seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the delivery model (default [`Delivery::Reliable`]).
    pub fn delivery(mut self, delivery: Delivery) -> Self {
        self.delivery = delivery;
        self
    }

    /// Attaches a round-triggered event schedule (default empty) — see
    /// [`Schedule`].
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Shards the compute phase of every [`step`](Simulation::step) across
    /// this many threads (default 1 = serial). Traces are byte-identical
    /// at any shard count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.exec = StepExec::from_shards(shards);
        self
    }

    /// Sets the compute-phase execution strategy directly.
    pub fn exec(mut self, exec: StepExec) -> Self {
        self.exec = exec;
        self
    }

    /// Hands the simulation a persistent [`Runtime`] pool for its sharded
    /// compute phase (default: the process-wide [`Runtime::global`] pool,
    /// adopted lazily on the first sharded step). Sharing one handle
    /// across simulations — and with the sweep engine — keeps the whole
    /// process on one thread budget. The pool size never changes a trace.
    pub fn runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = Some(runtime);
        self
    }

    /// Enables the deterministic event plane: the simulation records
    /// structured [`Event`]s into a ring-buffered [`EventSink`] of the
    /// configured capacity (default off — no events are buffered or
    /// formatted). The event stream is byte-identical at any workers ×
    /// shards × pool size; see [`crate::telemetry`].
    pub fn telemetry(mut self, config: TelemetryConfig) -> Self {
        self.telemetry = Some(config);
        self
    }

    /// Attaches a wall-clock [`Profiler`] recording per-step latency and
    /// merge time (default off — the clock is never read). Timing-plane
    /// data never enters traces or any compared output; see
    /// [`crate::telemetry`].
    pub fn profiler(mut self, profiler: Profiler) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// Overrides the shard-plan cache for this simulation (default: the
    /// process-wide [`plan_cache_enabled`] setting). Caching only skips
    /// re-running the deterministic bin-pack when its inputs are
    /// unchanged, so it never changes a trace.
    pub fn plan_cache(mut self, enabled: bool) -> Self {
        self.plan_cache = Some(enabled);
        self
    }

    /// Builds the simulation, constructing each process from its id.
    pub fn build_with(self, mut make: impl FnMut(ProcessId) -> Box<dyn Process>) -> Simulation {
        let n = self.topology.len();
        let processes = (0..n).map(|i| make(ProcessId(i))).collect();
        self.build(processes)
    }

    /// Builds from an explicit process vector.
    ///
    /// # Panics
    ///
    /// Panics if `processes.len()` differs from the topology size.
    pub fn build(self, processes: Vec<Box<dyn Process>>) -> Simulation {
        self.build_store(ProcessStore::Boxed(processes))
    }

    /// Builds a homogeneous population stored contiguously in one slab
    /// arena — one allocation for all n processes instead of n boxes,
    /// which is what makes million-process builds fast. Behaviorally
    /// identical to [`build_with`](SimulationBuilder::build_with); a
    /// mid-run [`replace_process`](Simulation::replace_process) promotes
    /// the slab to boxed storage transparently (one-time O(n)).
    pub fn build_slab<P: Process + 'static>(
        self,
        mut make: impl FnMut(ProcessId) -> P,
    ) -> Simulation {
        let n = self.topology.len();
        let mut slab = Vec::with_capacity(n);
        slab.extend((0..n).map(|i| make(ProcessId(i))));
        self.build_store(ProcessStore::slab(slab))
    }

    fn build_store(self, processes: ProcessStore) -> Simulation {
        assert_eq!(
            processes.len(),
            self.topology.len(),
            "one process per topology vertex"
        );
        let n = self.topology.len();
        let mut persistent = Vec::with_capacity(n);
        for i in 0..n {
            if processes.get(i).is_some_and(|p| p.always_active()) {
                persistent.push(i);
            }
        }
        Simulation {
            inboxes: Inboxes::new(n),
            consumed: Inboxes::new(n),
            persistent,
            woken: Vec::new(),
            active: Vec::with_capacity(n),
            shard_plan: Vec::new(),
            plan_weights: Vec::new(),
            plan_loads: Vec::new(),
            plan_key: None,
            plan_active: Vec::new(),
            plan_cache: self.plan_cache.unwrap_or_else(plan_cache_enabled),
            shard_scratch: Vec::new(),
            exec: self.exec,
            runtime: self.runtime,
            topology: self.topology,
            processes,
            round: Round(0),
            seed: self.seed,
            delivery: self.delivery,
            trace: Trace::new(n),
            schedule: self.schedule,
            telemetry: self
                .telemetry
                .map(|cfg| EventSink::with_capacity(cfg.events_capacity)),
            profiler: self.profiler,
        }
    }
}

impl Simulation {
    /// Starts configuring a simulation over `topology`.
    pub fn builder(topology: Topology) -> SimulationBuilder {
        SimulationBuilder {
            topology,
            seed: 0,
            delivery: Delivery::Reliable,
            schedule: Schedule::new(),
            exec: StepExec::Serial,
            runtime: None,
            telemetry: None,
            profiler: None,
            plan_cache: None,
        }
    }

    /// Re-shards the compute phase mid-run (`0`/`1` mean serial). Changing
    /// the shard count never changes the trace.
    pub fn set_shards(&mut self, shards: usize) {
        self.exec = StepExec::from_shards(shards);
    }

    /// Re-targets the sharded compute phase at `runtime` (the pool size
    /// never changes the trace) — see [`SimulationBuilder::runtime`].
    pub fn set_runtime(&mut self, runtime: Runtime) {
        self.runtime = Some(runtime);
    }

    /// The current compute-phase execution strategy.
    pub fn exec(&self) -> StepExec {
        self.exec
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// Whether the simulation has no processes (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }

    /// The current round number (the next pulse to execute).
    pub fn round(&self) -> Round {
        self.round
    }

    /// The current topology. Links change mid-run only through
    /// [`disconnect`](Simulation::disconnect) or scheduled churn events
    /// ([`ScheduledAction::Disconnect`]/[`ScheduledAction::Reconnect`]),
    /// so probes inspecting it mid-run see the post-churn graph.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Accumulated counters.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Whether the deterministic event plane is enabled.
    pub fn events_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// Mutable access to the attached [`EventSink`] (e.g. for the scenario
    /// layer to push probe-level events such as
    /// [`Event::LegalityFlip`]); `None` when the event plane is disabled.
    pub fn events_mut(&mut self) -> Option<&mut EventSink> {
        self.telemetry.as_mut()
    }

    /// Drains and returns the retained telemetry events, oldest first
    /// (empty when the event plane is disabled).
    pub fn take_events(&mut self) -> Vec<Event> {
        self.telemetry
            .as_mut()
            .map(EventSink::drain)
            .unwrap_or_default()
    }

    /// Attaches a wall-clock [`Profiler`] mid-run — see
    /// [`SimulationBuilder::profiler`].
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = Some(profiler);
    }

    /// Messages pending delivery at the next pulse (total inbox depth).
    /// A pure function of the run state, so safe in deterministic outputs.
    /// O(active) — derived from the arena's touched-slot bookkeeping, so
    /// per-round telemetry sampling never scans all n inboxes.
    pub fn pending_messages(&self) -> u64 {
        self.inboxes.pending()
    }

    /// Processes whose next-pulse inbox is empty — the quiescence measure
    /// the sparse step loop runs on: a quiescent process is skipped at the
    /// next pulse unless it is always-active or explicitly woken. A pure
    /// function of the run state, O(active) like
    /// [`pending_messages`](Simulation::pending_messages).
    pub fn quiescent_processes(&self) -> usize {
        self.inboxes.quiescent()
    }

    /// Resets trace counters (e.g. to measure only steady-state costs).
    pub fn reset_trace(&mut self) {
        self.trace.reset();
    }

    /// Executes one pulse.
    ///
    /// The round is split into two phases over the round's **active set**
    /// — always-active processes (see [`Process::always_active`]), every
    /// process with pending deliveries, and any process woken by an
    /// intervention. Quiescent processes are skipped entirely (their
    /// `on_pulse` is contractually unobservable), so sparse systems pay
    /// O(active), not O(n), per round; a fully quiescent round still
    /// advances the round counter, fires due schedule entries and emits
    /// its `RoundStart`/`RoundEnd` events.
    ///
    /// 1. **Compute** — every active process steps against the immutable
    ///    snapshot of last pulse's deliveries; its messages are link- and
    ///    loss-filtered into per-shard `routed` buffers. Under
    ///    [`StepExec::Sharded`] the active set is bin-packed into
    ///    degree-balanced index sets run as one indexed batch on the
    ///    persistent [`Runtime`] pool — no threads are spawned per round;
    ///    every random draw is derived from `(seed, id, round)`
    ///    coordinates, so nothing depends on the shard plan or thread
    ///    interleaving.
    /// 2. **Merge** — a k-way walk over the shards' per-sender segment
    ///    tables replays global ascending process-id order: drop counters
    ///    are summed and surviving messages are appended to next-round
    ///    inboxes sender-by-sender, exactly the order serial stepping
    ///    produces. Traces (and the event stream) are therefore
    ///    byte-identical at any shard count.
    ///
    /// Scheduled churn/fault events fire once, before the compute phase,
    /// so the whole round sees the post-event topology and delivery model.
    ///
    /// Allocation-free in steady state on the serial path: inbox slots are
    /// recycled through the arena pool (idle processes' slots are never
    /// visited), each shard recycles one outbox and one routed buffer
    /// across all its processes and rounds, and payloads move as
    /// refcounted [`Bytes`] — a broadcast's single buffer is shared by
    /// every recipient's [`Message`]. The sharded path additionally boxes
    /// one task header per shard per round (a few ns each — the point of
    /// the persistent pool is eliminating the ~tens of µs of per-round
    /// thread spawn/join the old `thread::scope` compute phase paid).
    pub fn step(&mut self) {
        let step_start = self.profiler.as_ref().map(|_| Instant::now());
        if let Some(sink) = &mut self.telemetry {
            sink.push(Event::RoundStart {
                round: self.round.value(),
            });
        }
        // Fire scheduled churn/fault events first: the round's deliveries
        // and steps see the post-event topology, delivery model and
        // (possibly scrambled) pending messages.
        while let Some(action) = self.schedule.next_due(self.round) {
            self.apply_scheduled(action);
        }
        let n = self.processes.len();
        // Swap in last pulse's deliveries for consumption; the slots
        // consumed two pulses ago are recycled through the arena pool.
        std::mem::swap(&mut self.inboxes, &mut self.consumed);
        self.inboxes.clear();

        // The round's active set, ascending and deduplicated — the serial
        // step order.
        self.active.clear();
        if self.persistent.len() == n {
            // Everyone is always-active (the default): skip the sort/dedup
            // and step all processes, exactly the dense step loop.
            self.active.extend(0..n);
            self.woken.clear();
        } else {
            self.active.extend_from_slice(&self.persistent);
            self.active.extend(self.consumed.touched().iter().copied());
            self.active.append(&mut self.woken);
            self.active.sort_unstable();
            self.active.dedup();
        }

        let shards = self.exec.shard_count(n);
        if self.shard_scratch.len() < shards {
            self.shard_scratch
                .resize_with(shards, ShardScratch::default);
        }

        // Compute phase: disjoint &mut process sets against shared
        // immutable round state.
        let topology = &self.topology;
        let consumed = &self.consumed;
        let (seed, round, delivery) = (self.seed, self.round, self.delivery);
        let events_on = self.telemetry.is_some();
        if shards == 1 {
            let scratch = &mut self.shard_scratch[0];
            for &i in &self.active {
                step_one(
                    self.processes.get_mut(i).expect("active ids are in range"),
                    ProcessId(i),
                    scratch,
                    consumed,
                    topology,
                    seed,
                    round,
                    delivery,
                    events_on,
                );
            }
        } else {
            // Bin-pack the active set into degree-balanced id sets and
            // submit them as one indexed batch to the persistent pool
            // (adopting the process-wide pool if none was attached). The
            // merge below replays ascending sender order whatever the
            // plan, so results are byte-identical at any pool size.
            //
            // The plan is a pure function of (degrees, shard count,
            // active ids); when caching is on and all three are unchanged
            // since the plan was built — degrees fingerprinted by the
            // topology's mutation generation, the active set confirmed by
            // an exact slice compare after the hash — the previous plan is
            // reused. Dense-activity rounds (everyone active, no churn)
            // therefore pay the bin-pack once, not every round.
            let key = PlanKey::new(topology.generation(), shards, &self.active);
            let hit =
                self.plan_cache && self.plan_key == Some(key) && self.plan_active == self.active;
            if !hit {
                plan_shards(
                    &self.active,
                    topology,
                    shards,
                    &mut self.shard_plan,
                    &mut self.plan_weights,
                    &mut self.plan_loads,
                );
                self.plan_active.clear();
                self.plan_active.extend_from_slice(&self.active);
                self.plan_key = Some(key);
            }
            let shared = self.processes.shared();
            let runtime = &*self.runtime.get_or_insert_with(Runtime::global);
            let tasks: Vec<BatchTask<'_>> = self
                .shard_plan
                .iter()
                .zip(self.shard_scratch.iter_mut())
                .filter(|(ids, _)| !ids.is_empty())
                .map(|(ids, scratch)| {
                    let shared = &shared;
                    Box::new(move || {
                        for &i in ids {
                            // SAFETY: the bins partition the active set
                            // (each id lands in exactly one), all ids are
                            // in range, and `run_batch` returns only after
                            // every task completes — so no two tasks alias
                            // a process and no reference outlives the
                            // batch.
                            let process = unsafe { &mut *shared.get_ptr(i) };
                            step_one(
                                process,
                                ProcessId(i),
                                scratch,
                                consumed,
                                topology,
                                seed,
                                round,
                                delivery,
                                events_on,
                            );
                        }
                    }) as BatchTask<'_>
                })
                .collect();
            runtime.run_batch(tasks);
        }

        // Re-query the quiescence opt-out for exactly the processes that
        // stepped — the only ones whose answer can have changed (scrambled
        // or replaced processes are woken, so they step before requery).
        // `persistent ⊆ active`, so unstepped processes were already out.
        self.persistent.clear();
        for &i in &self.active {
            if self.processes.get(i).is_some_and(|p| p.always_active()) {
                self.persistent.push(i);
            }
        }

        // Merge phase: k-way walk of the shards' per-sender segment tables
        // in ascending sender order — the serial order. Counters (and
        // buffered telemetry events) are consumed in the same fixed order,
        // which is what keeps the event stream byte-identical at any shard
        // count.
        let merge_start = self.profiler.as_ref().map(|_| Instant::now());
        let mut delivered_this_round = 0u64;
        for scratch in &mut self.shard_scratch[..shards] {
            self.trace.messages_dropped_no_link += scratch.dropped_no_link;
            self.trace.messages_dropped_lossy += scratch.dropped_lossy;
            scratch.dropped_no_link = 0;
            scratch.dropped_lossy = 0;
        }
        {
            struct Cursor<'a> {
                segs: std::slice::Iter<'a, (ProcessId, usize, usize)>,
                next: Option<(ProcessId, usize, usize)>,
                routed: std::vec::Drain<'a, (ProcessId, Message)>,
                events: std::vec::Drain<'a, Event>,
                routed_taken: usize,
                events_taken: usize,
            }
            let mut cursors: Vec<Cursor<'_>> = self.shard_scratch[..shards]
                .iter_mut()
                .map(|scratch| {
                    let ShardScratch {
                        segs,
                        routed,
                        events,
                        ..
                    } = scratch;
                    let mut segs = segs.iter();
                    let next = segs.next().copied();
                    Cursor {
                        segs,
                        next,
                        routed: routed.drain(..),
                        events: events.drain(..),
                        routed_taken: 0,
                        events_taken: 0,
                    }
                })
                .collect();
            loop {
                // Pick the shard holding the smallest unmerged sender (the
                // linear scan is over ≤ shard-count cursors, not senders).
                let mut best: Option<(ProcessId, usize)> = None;
                for (si, cursor) in cursors.iter().enumerate() {
                    if let Some((sender, _, _)) = cursor.next {
                        if best.is_none_or(|(s, _)| sender.index() < s.index()) {
                            best = Some((sender, si));
                        }
                    }
                }
                let Some((_, si)) = best else { break };
                let cursor = &mut cursors[si];
                let (_, routed_end, events_end) = cursor.next.take().unwrap();
                cursor.next = cursor.segs.next().copied();
                if events_end > cursor.events_taken {
                    for event in cursor
                        .events
                        .by_ref()
                        .take(events_end - cursor.events_taken)
                    {
                        if let Some(sink) = &mut self.telemetry {
                            sink.push(event);
                        }
                    }
                    cursor.events_taken = events_end;
                }
                for (to, message) in cursor
                    .routed
                    .by_ref()
                    .take(routed_end - cursor.routed_taken)
                {
                    delivered_this_round += 1;
                    self.trace.record_delivery(to, message.payload.len());
                    self.inboxes.push(to.index(), message);
                }
                cursor.routed_taken = routed_end;
            }
        }
        for scratch in &mut self.shard_scratch[..shards] {
            scratch.segs.clear();
        }
        if let Some(sink) = &mut self.telemetry {
            sink.push(Event::RoundEnd {
                round: self.round.value(),
                delivered: delivered_this_round,
            });
        }

        self.trace.record_round(self.round);
        self.round = self.round.next();
        if let Some(profiler) = &self.profiler {
            if let Some(start) = merge_start {
                profiler.record_merge(start.elapsed());
            }
            if let Some(start) = step_start {
                profiler.record_step(start.elapsed());
            }
        }
    }

    /// Runs `rounds` pulses.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Runs until `predicate(self)` holds or `max_rounds` elapse; returns
    /// the number of rounds executed, or `None` on timeout.
    pub fn run_until(
        &mut self,
        max_rounds: u64,
        mut predicate: impl FnMut(&Simulation) -> bool,
    ) -> Option<u64> {
        for executed in 0..max_rounds {
            if predicate(self) {
                return Some(executed);
            }
            self.step();
        }
        if predicate(self) {
            Some(max_rounds)
        } else {
            None
        }
    }

    /// Immutable access to process `id` as its concrete type.
    pub fn process_as<T: 'static>(&self, id: ProcessId) -> Option<&T> {
        self.processes
            .get(id.index())
            .and_then(|p| p.as_any().downcast_ref())
    }

    /// Mutable access to process `id` as its concrete type.
    pub fn process_as_mut<T: 'static>(&mut self, id: ProcessId) -> Option<&mut T> {
        self.processes
            .get_mut(id.index())
            .and_then(|p| p.as_any_mut().downcast_mut())
    }

    /// Replaces the program of processor `id` (e.g. corrupting an honest
    /// processor into a Byzantine one mid-run). On a slab-built simulation
    /// this promotes the whole table to boxed storage first (a one-time
    /// O(n) move), since the table is no longer homogeneous.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownProcess`] for out-of-range ids.
    pub fn replace_process(
        &mut self,
        id: ProcessId,
        process: Box<dyn Process>,
    ) -> Result<(), SimError> {
        if id.index() >= self.processes.len() {
            return Err(SimError::UnknownProcess(id));
        }
        self.processes.make_boxed()[id.index()] = process;
        // The new program runs (and its quiescence opt-out is re-queried)
        // at the next pulse.
        self.woken.push(id.index());
        Ok(())
    }

    /// Replaces the round-triggered event schedule. Entries scheduled for
    /// rounds that already passed fire at the start of the next pulse.
    pub fn set_schedule(&mut self, schedule: Schedule) {
        self.schedule = schedule;
    }

    /// Applies one scheduled action immediately.
    fn apply_scheduled(&mut self, action: ScheduledAction) {
        if let Some(sink) = &mut self.telemetry {
            sink.push(Event::ScheduleFired {
                round: self.round.value(),
                action: action.kind(),
            });
        }
        match action {
            ScheduledAction::Disconnect(id) => self.topology.isolate(id),
            ScheduledAction::Reconnect(id, peers) => {
                for peer in peers {
                    // Already-present, reflexive or out-of-range links are
                    // documented as skipped.
                    let _ = self.topology.link(id, peer);
                }
            }
            // Absent/invalid edges are documented as skipped, mirroring
            // Reconnect — partition schedules may race earlier churn.
            ScheduledAction::CutLink { a, b } => {
                let _ = self.topology.cut_link(a, b);
            }
            ScheduledAction::HealLink { a, b } => {
                let _ = self.topology.heal_link(a, b);
            }
            ScheduledAction::Inject(fault) => self.inject(&fault),
            // Recurrence is the schedule's concern: by the time the entry
            // pops out of `next_due` the re-fire (if any) is already armed.
            ScheduledAction::Corrupt(family, _) => self.corrupt(&family),
            ScheduledAction::SetDelivery(delivery) => self.delivery = delivery,
        }
    }

    /// Applies a transient fault (see [`fault`](crate::fault)).
    pub fn inject(&mut self, fault: &TransientFault) {
        let dropped = fault.apply(
            self.seed,
            self.round,
            &mut self.processes,
            &mut self.inboxes,
            self.telemetry.as_mut(),
        );
        self.trace.messages_dropped_fault += dropped;
        // Scrambled states must be re-examined at the next pulse even if
        // their inboxes stay empty (touched inboxes wake themselves).
        let n = self.processes.len();
        self.woken.extend(
            fault
                .scramble
                .iter()
                .map(|id| id.index())
                .filter(|&i| i < n),
        );
    }

    /// Applies a [`CorruptionFamily`]: scrambles the strategy-selected
    /// process states and degrades pending in-flight messages, with every
    /// draw keyed by `(seed, id, round)` coordinates (see
    /// [`fault`](crate::fault)). Dropped messages are accounted to
    /// [`Trace::messages_dropped_fault`]. Usually reached through
    /// [`ScheduledAction::Corrupt`], which fires at the start of its round
    /// so the round's deliveries already reflect the corrupted channels.
    pub fn corrupt(&mut self, family: &CorruptionFamily) {
        let dropped = family.apply(
            self.seed,
            self.round,
            &self.topology,
            &mut self.processes,
            &mut self.inboxes,
            self.telemetry.as_mut(),
        );
        // resolve_targets is a pure function of (seed ^ salt, round), so
        // re-resolving after `apply` replays the same selection; the
        // scrambled victims must be re-examined at the next pulse even if
        // their inboxes stay empty.
        let targets = family.resolve_targets(&self.topology, self.seed, self.round);
        self.woken.extend(targets.iter().map(|id| id.index()));
        if let Some(sink) = &mut self.telemetry {
            sink.push(Event::CorruptionApplied {
                round: self.round.value(),
                targets: targets.len(),
                dropped,
            });
        }
        self.trace.messages_dropped_fault += dropped;
    }

    /// Punitive disconnection: removes every link of `id` (the executive
    /// service's strongest punishment, per §3.4 "disconnect Byzantine agents
    /// from the network").
    ///
    /// Mutates the adjacency structure in place — see
    /// [`Topology::isolate`] — instead of rebuilding the whole topology.
    pub fn disconnect(&mut self, id: ProcessId) {
        self.topology.isolate(id);
    }
}

/// Assigns the round's active ids to `shards` bins by a deterministic
/// greedy bin-pack over `degree + 1` weights: heaviest first (ties toward
/// the lower id), each to the currently least-loaded bin (ties toward the
/// lower bin index), so a star hub can't serialize one shard. Bins come
/// out sorted ascending. The plan only decides which thread steps whom —
/// merge order and every RNG draw are id-keyed, so any plan produces the
/// same trace.
fn plan_shards(
    active: &[usize],
    topology: &Topology,
    shards: usize,
    plan: &mut Vec<Vec<usize>>,
    weights: &mut Vec<(usize, usize)>,
    loads: &mut Vec<usize>,
) {
    if plan.len() != shards {
        plan.resize_with(shards, Vec::new);
    }
    for bin in plan.iter_mut() {
        bin.clear();
    }
    weights.clear();
    weights.extend(
        active
            .iter()
            .map(|&i| (topology.neighbors(ProcessId(i)).len() + 1, i)),
    );
    weights.sort_unstable_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    loads.clear();
    loads.resize(shards, 0);
    for &(weight, i) in weights.iter() {
        let mut bin = 0;
        for s in 1..shards {
            if loads[s] < loads[bin] {
                bin = s;
            }
        }
        plan[bin].push(i);
        loads[bin] += weight;
    }
    for bin in plan.iter_mut() {
        bin.sort_unstable();
    }
}

/// Steps one process against the immutable prior-round inboxes, link- and
/// loss-filtering its outbox into the owning shard's `routed` buffer and
/// closing the shard's per-sender segment-table entry.
///
/// Shard-plan independence: every draw a sender makes — its process RNG
/// and its loss stream — is derived from `(seed, id, round)` alone, so the
/// routed output for a sender is the same whichever shard (or thread)
/// executes it. With `events_on`, per-message telemetry events are pushed
/// into the shard's buffer in the same per-sender order, inheriting the
/// same independence.
#[allow(clippy::too_many_arguments)]
fn step_one(
    process: &mut dyn Process,
    id: ProcessId,
    scratch: &mut ShardScratch,
    consumed: &Inboxes,
    topology: &Topology,
    seed: u64,
    round: Round,
    delivery: Delivery,
    events_on: bool,
) {
    let n = consumed.len();
    let mut ctx = Context {
        id,
        round,
        neighbors: topology.neighbors(id),
        inbox: consumed.slot(id.index()),
        outbox: std::mem::take(&mut scratch.outbox),
        rng: process_rng(seed, id, round),
        n,
    };
    process.on_pulse(&mut ctx);

    // Route this sender's messages: only topology edges carry them,
    // and they are read no earlier than the next pulse. The loss RNG
    // is per-sender (derived lazily, only under a lossy model and only
    // for senders that actually send).
    let Context { mut outbox, .. } = ctx;
    let mut loss_rng: Option<StdRng> = None;
    for (to, payload) in outbox.drain(..) {
        if to.index() >= n || !topology.connected(id, to) {
            scratch.dropped_no_link += 1;
            if events_on {
                scratch.events.push(Event::Dropped {
                    round: round.value(),
                    from: id,
                    to,
                    reason: DropReason::NoLink,
                });
            }
            continue;
        }
        if let Delivery::Lossy { p } = delivery {
            let rng = loss_rng.get_or_insert_with(|| {
                labeled_rng_u64_pair(seed, LOSS_DOMAIN, round.value(), id.index() as u64)
            });
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                scratch.dropped_lossy += 1;
                if events_on {
                    scratch.events.push(Event::Dropped {
                        round: round.value(),
                        from: id,
                        to,
                        reason: DropReason::Lossy,
                    });
                }
                continue;
            }
        }
        if events_on {
            scratch.events.push(Event::Delivered {
                round: round.value(),
                from: id,
                to,
                bytes: payload.len(),
            });
        }
        scratch.routed.push((to, Message::new(id, round, payload)));
    }
    scratch.outbox = outbox;
    scratch
        .segs
        .push((id, scratch.routed.len(), scratch.events.len()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Recurrence;

    /// Counts received messages; broadcasts one message per round.
    struct Counter {
        received: usize,
    }

    impl Process for Counter {
        fn on_pulse(&mut self, ctx: &mut Context<'_>) {
            self.received += ctx.inbox().len();
            ctx.broadcast(vec![1]);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn counters(topology: Topology, seed: u64) -> Simulation {
        Simulation::builder(topology)
            .seed(seed)
            .build_with(|_| Box::new(Counter { received: 0 }))
    }

    #[test]
    fn messages_delivered_next_round() {
        let mut sim = counters(Topology::complete(3), 0);
        sim.step();
        assert_eq!(sim.process_as::<Counter>(ProcessId(0)).unwrap().received, 0);
        sim.step();
        assert_eq!(sim.process_as::<Counter>(ProcessId(0)).unwrap().received, 2);
    }

    #[test]
    fn ring_delivers_only_to_neighbors() {
        let mut sim = counters(Topology::ring(5), 0);
        sim.run(2);
        for i in 0..5 {
            assert_eq!(
                sim.process_as::<Counter>(ProcessId(i)).unwrap().received,
                2,
                "ring degree is 2"
            );
        }
    }

    #[test]
    fn trace_counts_messages() {
        let mut sim = counters(Topology::complete(4), 0);
        sim.run(3);
        // Each step routes the 4*3 broadcasts sent during that step (they
        // are *read* by recipients at the following pulse).
        assert_eq!(sim.trace().rounds, 3);
        assert_eq!(sim.trace().messages_delivered, 36);
    }

    #[test]
    fn run_until_stops_on_predicate() {
        let mut sim = counters(Topology::complete(3), 0);
        let rounds = sim
            .run_until(100, |s| {
                s.process_as::<Counter>(ProcessId(0))
                    .map(|c| c.received >= 4)
                    == Some(true)
            })
            .unwrap();
        assert!((3..=4).contains(&rounds), "rounds={rounds}");
    }

    #[test]
    fn run_until_times_out() {
        let mut sim = counters(Topology::complete(3), 0);
        assert_eq!(sim.run_until(5, |_| false), None);
    }

    #[test]
    fn determinism_same_seed_same_history() {
        let mut a = counters(Topology::complete(5), 42);
        let mut b = counters(Topology::complete(5), 42);
        a.run(10);
        b.run(10);
        assert_eq!(a.trace(), b.trace());
    }

    #[test]
    fn step_exec_canonicalizes_and_clamps() {
        assert_eq!(StepExec::from_shards(0), StepExec::Serial);
        assert_eq!(StepExec::from_shards(1), StepExec::Serial);
        assert_eq!(StepExec::from_shards(3), StepExec::Sharded { shards: 3 });
        assert_eq!(StepExec::Serial.shard_count(8), 1);
        assert_eq!(StepExec::Sharded { shards: 3 }.shard_count(8), 3);
        assert_eq!(
            StepExec::Sharded { shards: 64 }.shard_count(8),
            8,
            "never more shards than processes"
        );
    }

    #[test]
    fn sharded_step_matches_serial_trace() {
        for shards in [2, 3, 8, 64] {
            let mut serial = counters(Topology::complete(9), 42);
            let mut sharded = Simulation::builder(Topology::complete(9))
                .seed(42)
                .shards(shards)
                .build_with(|_| Box::new(Counter { received: 0 }) as Box<dyn Process>);
            serial.run(10);
            sharded.run(10);
            assert_eq!(serial.trace(), sharded.trace(), "shards={shards}");
        }
    }

    #[test]
    fn resharding_mid_run_preserves_the_trace() {
        let mut reference = counters(Topology::complete(6), 7);
        reference.run(9);

        let mut resharded = counters(Topology::complete(6), 7);
        resharded.run(3);
        resharded.set_shards(4);
        assert_eq!(resharded.exec(), StepExec::Sharded { shards: 4 });
        resharded.run(3);
        resharded.set_shards(1);
        assert_eq!(resharded.exec(), StepExec::Serial);
        resharded.run(3);
        assert_eq!(reference.trace(), resharded.trace());
    }

    #[test]
    fn lossy_delivery_drops_some() {
        let mut sim = Simulation::builder(Topology::complete(4))
            .seed(3)
            .delivery(Delivery::Lossy { p: 0.5 })
            .build_with(|_| Box::new(Counter { received: 0 }) as Box<dyn Process>);
        sim.run(20);
        assert!(sim.trace().messages_dropped_lossy > 0);
        assert!(sim.trace().messages_delivered > 0);
    }

    #[test]
    fn disconnect_cuts_all_links() {
        let mut sim = counters(Topology::complete(4), 0);
        sim.disconnect(ProcessId(2));
        sim.run(3);
        assert_eq!(sim.process_as::<Counter>(ProcessId(2)).unwrap().received, 0);
        // Others still talk among the remaining 3.
        assert!(sim.process_as::<Counter>(ProcessId(0)).unwrap().received > 0);
    }

    /// Sends to a fixed non-neighbor target to exercise the link check.
    struct Stubborn;

    impl Process for Stubborn {
        fn on_pulse(&mut self, ctx: &mut Context<'_>) {
            ctx.send(ProcessId(2), vec![1]);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn sends_without_link_are_dropped_and_counted() {
        // Path 0-1, 1-2: p0 keeps sending to p2 without a direct link.
        let topo = Topology::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let mut sim = Simulation::builder(topo).build_with(|id| {
            if id == ProcessId(0) {
                Box::new(Stubborn) as Box<dyn Process>
            } else {
                Box::new(Counter { received: 0 })
            }
        });
        sim.run(4);
        assert_eq!(sim.trace().messages_dropped_no_link, 4);
        // p2 only hears from p1.
        assert_eq!(sim.process_as::<Counter>(ProcessId(2)).unwrap().received, 3);
    }

    #[test]
    fn schedule_disconnects_and_reconnects_on_time() {
        // Hub star: disconnect the hub at round 2, restore it at round 5.
        let schedule = Schedule::new()
            .at(2, ScheduledAction::Disconnect(ProcessId(0)))
            .at(
                5,
                ScheduledAction::Reconnect(ProcessId(0), (1..4).map(ProcessId).collect()),
            );
        let mut sim = Simulation::builder(Topology::star(4))
            .schedule(schedule)
            .build_with(|_| Box::new(Counter { received: 0 }) as Box<dyn Process>);

        // Rounds 0-1: leaf 1 hears the hub's round-0 broadcast at round 1.
        sim.run(2);
        let at_round_2 = sim.process_as::<Counter>(ProcessId(1)).unwrap().received;
        assert_eq!(at_round_2, 1);

        // Rounds 2-4: hub isolated. Its round-1 broadcast was already
        // routed (in flight when the link died) and lands at round 2;
        // nothing else reaches the leaves.
        sim.run(3);
        assert_eq!(
            sim.process_as::<Counter>(ProcessId(1)).unwrap().received,
            at_round_2 + 1,
            "only the in-flight message arrives while the hub is down"
        );

        // Round 5 restores the spokes; round-5 broadcasts land at round 6.
        sim.run(2);
        assert!(
            sim.process_as::<Counter>(ProcessId(1)).unwrap().received > at_round_2 + 1,
            "deliveries resume after reconnection"
        );
    }

    #[test]
    fn scheduled_bisection_partitions_and_heals() {
        // Complete(4) bisected into {0,1} | {2,3} at round 1, healed at
        // round 4: while cut, each process hears only its half-mate.
        let topo = Topology::complete(4);
        let schedule = Schedule::new().bisect(&topo, 1, 4);
        let mut sim = Simulation::builder(Topology::complete(4))
            .schedule(schedule)
            .build_with(|_| Box::new(Counter { received: 0 }) as Box<dyn Process>);
        // Round 0 (pre-cut): 3 broadcasts each, land at round 1.
        // Rounds 1-3 (cut): 1 broadcast each (the half-mate), landing at
        // rounds 2-4 — the round-1 sends were already filtered post-cut.
        sim.run(4);
        let heard = sim.process_as::<Counter>(ProcessId(0)).unwrap().received;
        assert_eq!(heard, 3 + 1 + 1, "3 pre-cut, then one per cut round");
        // Round 4 heals: its broadcasts land everywhere at round 5.
        sim.run(2);
        let after = sim.process_as::<Counter>(ProcessId(0)).unwrap().received;
        assert_eq!(after, heard + 1 + 3, "full fan-in resumes post-heal");
    }

    #[test]
    fn schedule_switches_delivery_model() {
        let schedule = Schedule::new()
            .at(3, ScheduledAction::SetDelivery(Delivery::Lossy { p: 1.0 }))
            .at(6, ScheduledAction::SetDelivery(Delivery::Reliable));
        let mut sim = Simulation::builder(Topology::complete(3))
            .schedule(schedule)
            .build_with(|_| Box::new(Counter { received: 0 }) as Box<dyn Process>);
        sim.run(3);
        let delivered_before = sim.trace().messages_delivered;
        assert_eq!(delivered_before, 3 * 2 * 3);
        sim.run(3);
        assert_eq!(
            sim.trace().messages_delivered,
            delivered_before,
            "p=1.0 drops everything"
        );
        assert_eq!(sim.trace().messages_dropped_lossy, 3 * 2 * 3);
        sim.run(1);
        assert!(sim.trace().messages_delivered > delivered_before);
    }

    #[test]
    fn schedule_injects_fault_and_counts_drops() {
        let schedule = Schedule::new().at(
            2,
            ScheduledAction::Inject(TransientFault {
                drop_messages_p: 1.0,
                ..TransientFault::default()
            }),
        );
        let mut sim = Simulation::builder(Topology::complete(3))
            .schedule(schedule)
            .build_with(|_| Box::new(Counter { received: 0 }) as Box<dyn Process>);
        sim.run(3);
        // The fault fires at the start of round 2 and wipes the 6 messages
        // sent during round 1.
        assert_eq!(sim.trace().messages_dropped_fault, 6);
        assert_eq!(
            sim.process_as::<Counter>(ProcessId(0)).unwrap().received,
            2,
            "only round 0's broadcasts survived"
        );
    }

    #[test]
    fn scheduled_corruption_counts_drops_and_is_shard_invariant() {
        use crate::fault::CorruptionTargets;
        let family = CorruptionFamily {
            targets: CorruptionTargets::RandomK(2),
            corrupt_messages_p: 0.5,
            drop_messages_p: 1.0,
            salt: 3,
        };
        let build = |shards: usize| {
            Simulation::builder(Topology::complete(6))
                .seed(11)
                .shards(shards)
                .schedule(Schedule::new().at(
                    2,
                    ScheduledAction::Corrupt(family.clone(), Recurrence::Once),
                ))
                .build_with(|_| Box::new(Counter { received: 0 }) as Box<dyn Process>)
        };
        let mut serial = build(1);
        serial.run(5);
        // The corruption fires at the start of round 2 and drops all 30
        // messages sent during round 1.
        assert_eq!(serial.trace().messages_dropped_fault, 30);

        for shards in [2, 3, 6] {
            let mut sharded = build(shards);
            sharded.run(5);
            assert_eq!(serial.trace(), sharded.trace(), "shards={shards}");
        }
    }

    #[test]
    fn recurring_corruption_refires_and_stays_shard_invariant() {
        use crate::fault::CorruptionTargets;
        use crate::telemetry::TelemetryConfig;
        let family = CorruptionFamily {
            targets: CorruptionTargets::RandomK(2),
            corrupt_messages_p: 0.0,
            drop_messages_p: 1.0,
            salt: 3,
        };
        let build = |shards: usize| {
            Simulation::builder(Topology::complete(6))
                .seed(11)
                .shards(shards)
                .telemetry(TelemetryConfig::default())
                .schedule(Schedule::new().at(
                    2,
                    ScheduledAction::Corrupt(
                        family.clone(),
                        Recurrence::Every {
                            period: 3,
                            until: 8,
                        },
                    ),
                ))
                .build_with(|_| Box::new(Counter { received: 0 }) as Box<dyn Process>)
        };
        let mut serial = build(1);
        serial.run(10);
        // Bursts at rounds 2, 5 and 8 each wipe the 30 messages sent the
        // round before.
        assert_eq!(serial.trace().messages_dropped_fault, 90);
        let reference = serial.take_events();
        let corruption_rounds: Vec<u64> = reference
            .iter()
            .filter(|e| e.kind() == "corruption_applied")
            .map(|e| e.round())
            .collect();
        assert_eq!(corruption_rounds, vec![2, 5, 8]);

        for shards in [2, 3, 6] {
            let mut sharded = build(shards);
            sharded.run(10);
            assert_eq!(serial.trace(), sharded.trace(), "shards={shards}");
            assert_eq!(reference, sharded.take_events(), "shards={shards}");
        }
    }

    #[test]
    fn event_stream_is_identical_at_any_shard_count() {
        use crate::fault::CorruptionTargets;
        use crate::telemetry::TelemetryConfig;
        // Corruption, churn and loss all firing mid-window, with the event
        // plane on: the retained stream must be byte-identical serial vs
        // sharded (merge drains shard event buffers in ascending id order).
        let family = CorruptionFamily {
            targets: CorruptionTargets::RandomK(2),
            corrupt_messages_p: 0.5,
            drop_messages_p: 0.7,
            salt: 3,
        };
        let build = |shards: usize| {
            Simulation::builder(Topology::complete(6))
                .seed(11)
                .shards(shards)
                .delivery(Delivery::Lossy { p: 0.2 })
                .telemetry(TelemetryConfig::default())
                .schedule(
                    Schedule::new()
                        .at(
                            2,
                            ScheduledAction::Corrupt(family.clone(), Recurrence::Once),
                        )
                        .at(3, ScheduledAction::Disconnect(ProcessId(4))),
                )
                .build_with(|_| Box::new(Counter { received: 0 }) as Box<dyn Process>)
        };
        let mut serial = build(1);
        serial.run(6);
        let reference = serial.take_events();
        assert!(
            reference.iter().any(|e| e.kind() == "corruption_applied"),
            "corruption fired inside the window"
        );
        assert!(reference.iter().any(|e| e.kind() == "scrambled"));
        assert!(reference.iter().any(|e| e.kind() == "schedule_fired"));
        assert!(reference.iter().any(|e| matches!(
            e,
            Event::Dropped {
                reason: DropReason::Fault,
                ..
            }
        )));
        assert!(reference.iter().any(|e| matches!(
            e,
            Event::Dropped {
                reason: DropReason::Lossy,
                ..
            }
        )));

        for shards in [2, 3, 6] {
            let mut sharded = build(shards);
            sharded.run(6);
            assert_eq!(reference, sharded.take_events(), "shards={shards}");
        }
    }

    #[test]
    fn events_disabled_records_nothing() {
        let mut sim = counters(Topology::complete(3), 0);
        sim.run(3);
        assert!(!sim.events_enabled());
        assert!(sim.take_events().is_empty());
    }

    #[test]
    fn pending_and_quiescence_track_inbox_state() {
        let mut sim = counters(Topology::complete(4), 0);
        assert_eq!(sim.pending_messages(), 0);
        assert_eq!(sim.quiescent_processes(), 4, "nothing in flight yet");
        sim.step();
        assert_eq!(sim.pending_messages(), 12, "4 broadcasts to 3 peers");
        assert_eq!(sim.quiescent_processes(), 0);
    }

    #[test]
    fn scheduled_run_matches_manual_interventions() {
        // The schedule path and the manual API must produce identical
        // traces.
        let schedule = Schedule::new()
            .at(1, ScheduledAction::Disconnect(ProcessId(2)))
            .at(4, ScheduledAction::SetDelivery(Delivery::Lossy { p: 0.4 }));
        let mut scheduled = Simulation::builder(Topology::complete(4))
            .seed(9)
            .schedule(schedule)
            .build_with(|_| Box::new(Counter { received: 0 }) as Box<dyn Process>);
        scheduled.run(8);

        let mut manual = counters(Topology::complete(4), 9);
        manual.step();
        manual.disconnect(ProcessId(2));
        manual.run(3);
        // No public delivery setter: set_schedule mid-run covers it.
        manual.set_schedule(
            Schedule::new().at(4, ScheduledAction::SetDelivery(Delivery::Lossy { p: 0.4 })),
        );
        manual.run(4);
        assert_eq!(scheduled.trace(), manual.trace());
    }

    #[test]
    fn slab_build_matches_boxed_build() {
        use crate::telemetry::TelemetryConfig;
        // A slab-stored population must be indistinguishable from a boxed
        // one: identical traces and event streams, serial and sharded.
        for shards in [1, 4] {
            let build_boxed = || {
                Simulation::builder(Topology::complete(6))
                    .seed(5)
                    .shards(shards)
                    .telemetry(TelemetryConfig::default())
                    .build_with(|_| Box::new(Counter { received: 0 }) as Box<dyn Process>)
            };
            let build_slab = || {
                Simulation::builder(Topology::complete(6))
                    .seed(5)
                    .shards(shards)
                    .telemetry(TelemetryConfig::default())
                    .build_slab(|_| Counter { received: 0 })
            };
            let mut boxed = build_boxed();
            let mut slab = build_slab();
            boxed.run(6);
            slab.run(6);
            assert_eq!(boxed.trace(), slab.trace(), "shards={shards}");
            assert_eq!(boxed.take_events(), slab.take_events(), "shards={shards}");
            assert_eq!(
                slab.process_as::<Counter>(ProcessId(0)).unwrap().received,
                boxed.process_as::<Counter>(ProcessId(0)).unwrap().received,
            );
        }
    }

    #[test]
    fn plan_cache_never_changes_the_trace() {
        use crate::telemetry::TelemetryConfig;
        // Dense activity with churn firing mid-window: the cut/heal bumps
        // the topology generation, so a stale plan would misassign (or
        // worse, mis-weight) ids if invalidation were broken. Cached and
        // uncached runs must agree byte-for-byte at every shard count.
        let build = |shards: usize, cache: bool| {
            Simulation::builder(Topology::complete(8))
                .seed(13)
                .shards(shards)
                .plan_cache(cache)
                .telemetry(TelemetryConfig::default())
                .schedule(
                    Schedule::new()
                        .at(
                            3,
                            ScheduledAction::CutLink {
                                a: ProcessId(1),
                                b: ProcessId(2),
                            },
                        )
                        .at(
                            5,
                            ScheduledAction::HealLink {
                                a: ProcessId(1),
                                b: ProcessId(2),
                            },
                        )
                        .at(6, ScheduledAction::Disconnect(ProcessId(7))),
                )
                .build_with(|_| Box::new(Counter { received: 0 }) as Box<dyn Process>)
        };
        let mut reference = build(1, false);
        reference.run(9);
        let reference_events = reference.take_events();
        for shards in [2, 4, 8] {
            for cache in [false, true] {
                let mut sim = build(shards, cache);
                sim.run(9);
                assert_eq!(
                    reference.trace(),
                    sim.trace(),
                    "shards={shards} cache={cache}"
                );
                assert_eq!(
                    reference_events,
                    sim.take_events(),
                    "shards={shards} cache={cache}"
                );
            }
        }
    }

    #[test]
    fn plan_cache_reuses_and_invalidates() {
        // White-box: dense activity on a static topology converges to one
        // plan; churn invalidates it.
        let mut sim = Simulation::builder(Topology::complete(6))
            .seed(3)
            .shards(3)
            .plan_cache(true)
            .build_with(|_| Box::new(Counter { received: 0 }) as Box<dyn Process>);
        sim.run(2);
        let key = sim.plan_key.expect("sharded rounds fingerprint the plan");
        sim.run(3);
        assert_eq!(
            sim.plan_key,
            Some(key),
            "static dense rounds reuse the plan"
        );
        sim.disconnect(ProcessId(4));
        sim.run(1);
        let after = sim.plan_key.expect("replanned after churn");
        assert_ne!(key, after, "isolation bumps the generation");
    }

    #[test]
    fn plan_key_distinguishes_distinct_active_sets() {
        // Same length, same endpoints, different interiors: the rolling
        // hash (plus the exact compare in step()) must not treat these as
        // one plan.
        let a = PlanKey::new(0, 4, &[0, 2, 5, 9]);
        let b = PlanKey::new(0, 4, &[0, 3, 5, 9]);
        assert_ne!(a, b);
        assert_ne!(
            PlanKey::new(0, 4, &[0, 2, 5, 9]),
            PlanKey::new(1, 4, &[0, 2, 5, 9])
        );
        assert_ne!(
            PlanKey::new(0, 4, &[0, 2, 5, 9]),
            PlanKey::new(0, 2, &[0, 2, 5, 9])
        );
        assert_eq!(a, PlanKey::new(0, 4, &[0, 2, 5, 9]));
    }

    #[test]
    fn replace_process_promotes_a_slab() {
        // Swapping one program into a slab-built population promotes the
        // store to boxed form without disturbing anyone's state.
        let mut sim = Simulation::builder(Topology::complete(3))
            .seed(0)
            .build_slab(|_| Counter { received: 0 });
        sim.run(2);
        let heard = sim.process_as::<Counter>(ProcessId(0)).unwrap().received;
        assert_eq!(heard, 2);
        sim.replace_process(
            ProcessId(1),
            Box::new(crate::adversary::ByzantineProcess::new(Box::new(
                crate::adversary::Silent,
            ))),
        )
        .unwrap();
        sim.run(2);
        // p0 keeps its pre-promotion count and now only hears from p2.
        assert_eq!(
            sim.process_as::<Counter>(ProcessId(0)).unwrap().received,
            heard + 2 + 1,
            "one round of both peers still in flight, then p2 alone"
        );
    }

    #[test]
    fn replace_process_swaps_program() {
        let mut sim = counters(Topology::complete(3), 0);
        sim.replace_process(
            ProcessId(1),
            Box::new(crate::adversary::ByzantineProcess::new(Box::new(
                crate::adversary::Silent,
            ))),
        )
        .unwrap();
        sim.run(3);
        // p0 now only hears from p2.
        assert_eq!(sim.process_as::<Counter>(ProcessId(0)).unwrap().received, 2);
        assert!(sim
            .replace_process(ProcessId(9), Box::new(Counter { received: 0 }))
            .is_err());
    }
}

//! Identifier newtypes: [`ProcessId`] and [`Round`].
//!
//! Newtypes keep processor indices, round numbers and other `usize`/`u64`
//! quantities from being confused at call sites (C-NEWTYPE).

use std::fmt;

/// Unique identifier of a processor, `0..n`.
///
/// The paper assumes "every processor has a unique identifier" (§4.1); the
/// simulator uses dense indices so identifiers double as vector offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(i: usize) -> Self {
        ProcessId(i)
    }
}

/// A pulse/round number in the synchronous execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Round(pub u64);

impl Round {
    /// The raw counter value.
    pub fn value(self) -> u64 {
        self.0
    }

    /// The next round.
    #[must_use]
    pub fn next(self) -> Round {
        Round(self.0 + 1)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u64> for Round {
    fn from(v: u64) -> Self {
        Round(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(ProcessId(3).to_string(), "p3");
        assert_eq!(Round(17).to_string(), "r17");
    }

    #[test]
    fn round_next_increments() {
        assert_eq!(Round(0).next(), Round(1));
        assert_eq!(Round(41).next().value(), 42);
    }

    #[test]
    fn ordering_matches_indices() {
        assert!(ProcessId(1) < ProcessId(2));
        assert!(Round(5) < Round(6));
    }

    #[test]
    fn conversions() {
        assert_eq!(ProcessId::from(7).index(), 7);
        assert_eq!(Round::from(9).value(), 9);
    }
}

//! Byzantine adversaries.
//!
//! "A processor is Byzantine if it does not follow its program" (§4.1). We
//! model this by *replacing* a processor's program with an [`Adversary`]
//! strategy wrapped in [`ByzantineProcess`]. The adversary sees everything a
//! normal process sees (its inbox, the round, its neighborhood) and may send
//! arbitrary — including *equivocating*, per-neighbor-different — messages.
//!
//! The included strategies cover the standard attack repertoire used by the
//! test-suite and the experiments:
//!
//! * [`Silent`] — crash/omission: never sends anything.
//! * [`RandomNoise`] — fuzzes the protocol with random byte strings.
//! * [`Equivocator`] — sends different payloads to different neighbors,
//!   the canonical Byzantine-agreement attack.
//! * [`Replayer`] — re-sends previously observed messages (stale state).
//! * [`FlipFlopper`] — alternates between two fixed payloads per round.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::Rng;
use rand::RngCore;

use crate::ids::ProcessId;
use crate::process::{Context, Process};

/// A Byzantine strategy: given the pulse context, produce arbitrary
/// messages.
pub trait Adversary: Send {
    /// Emits this round's (possibly equivocating) messages via `ctx`.
    fn act(&mut self, ctx: &mut Context<'_>);

    /// Perturbs any internal state under a transient fault (mirroring
    /// [`Process::scramble`]); default no-op, correct for the stateless
    /// strategies whose behaviour is a pure function of the pulse context.
    fn scramble(&mut self, rng: &mut StdRng) {
        let _ = rng;
    }

    /// Diagnostic label.
    fn name(&self) -> &'static str {
        "byzantine"
    }
}

/// Wraps an [`Adversary`] as a [`Process`] so it can live in a simulation
/// alongside honest processes.
pub struct ByzantineProcess {
    strategy: Box<dyn Adversary>,
}

impl std::fmt::Debug for ByzantineProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ByzantineProcess")
            .field("strategy", &self.strategy.name())
            .finish()
    }
}

impl ByzantineProcess {
    /// Creates a Byzantine process driven by `strategy`.
    pub fn new(strategy: Box<dyn Adversary>) -> ByzantineProcess {
        ByzantineProcess { strategy }
    }
}

impl Process for ByzantineProcess {
    fn on_pulse(&mut self, ctx: &mut Context<'_>) {
        self.strategy.act(ctx);
    }

    fn scramble(&mut self, rng: &mut StdRng) {
        self.strategy.scramble(rng);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        self.strategy.name()
    }
}

/// Crash-faulty: sends nothing, ever.
#[derive(Debug, Clone, Copy, Default)]
pub struct Silent;

impl Adversary for Silent {
    fn act(&mut self, _ctx: &mut Context<'_>) {}

    fn name(&self) -> &'static str {
        "silent"
    }
}

/// Sends random byte strings of random lengths to every neighbor.
#[derive(Debug, Clone, Copy)]
pub struct RandomNoise {
    /// Maximum payload length (exclusive).
    pub max_len: usize,
}

impl Default for RandomNoise {
    fn default() -> Self {
        RandomNoise { max_len: 32 }
    }
}

impl Adversary for RandomNoise {
    fn act(&mut self, ctx: &mut Context<'_>) {
        let neighbors: Vec<usize> = ctx.neighbors().to_vec();
        for nb in neighbors {
            let len = ctx.rng().gen_range(0..self.max_len.max(1));
            let mut payload = vec![0u8; len];
            ctx.rng().fill_bytes(&mut payload);
            ctx.send(ProcessId(nb), payload);
        }
    }

    fn name(&self) -> &'static str {
        "random-noise"
    }
}

/// The canonical Byzantine attack: tell different neighbors different
/// things. Each neighbor with even index receives `payload_a`, odd receives
/// `payload_b`.
#[derive(Debug, Clone)]
pub struct Equivocator {
    /// Payload for even-indexed neighbors.
    pub payload_a: Bytes,
    /// Payload for odd-indexed neighbors.
    pub payload_b: Bytes,
}

impl Adversary for Equivocator {
    fn act(&mut self, ctx: &mut Context<'_>) {
        let neighbors: Vec<usize> = ctx.neighbors().to_vec();
        for nb in neighbors {
            let payload = if nb % 2 == 0 {
                self.payload_a.clone()
            } else {
                self.payload_b.clone()
            };
            ctx.send(ProcessId(nb), payload);
        }
    }

    fn name(&self) -> &'static str {
        "equivocator"
    }
}

/// Replays the newest message it has seen back at everyone (stale state /
/// duplication attack).
#[derive(Debug, Clone, Default)]
pub struct Replayer {
    stash: Option<Bytes>,
}

impl Adversary for Replayer {
    fn act(&mut self, ctx: &mut Context<'_>) {
        if let Some(m) = ctx.inbox().last() {
            // Refcount bump — the replayed payload is never re-copied.
            self.stash = Some(m.payload.clone());
        }
        if let Some(p) = &self.stash {
            ctx.broadcast(p.clone());
        }
    }

    /// The stash is real state: a transient fault may hand the replayer an
    /// arbitrary payload it never observed.
    fn scramble(&mut self, rng: &mut StdRng) {
        let len = rng.gen_range(1..16);
        let mut payload = vec![0u8; len];
        rng.fill_bytes(&mut payload);
        self.stash = Some(payload.into());
    }

    fn name(&self) -> &'static str {
        "replayer"
    }
}

/// Alternates between two payloads on successive rounds — a cheap way to
/// keep a protocol from ever seeing a *stable* lie.
#[derive(Debug, Clone)]
pub struct FlipFlopper {
    /// Payload on even rounds.
    pub even: Bytes,
    /// Payload on odd rounds.
    pub odd: Bytes,
}

impl Adversary for FlipFlopper {
    fn act(&mut self, ctx: &mut Context<'_>) {
        let p = if ctx.round().value().is_multiple_of(2) {
            self.even.clone()
        } else {
            self.odd.clone()
        };
        ctx.broadcast(p);
    }

    fn name(&self) -> &'static str {
        "flip-flopper"
    }
}

/// Observes the inbox like an honest process would, then sends `lie` to all
/// neighbors — a targeted-value attack parameterized by the protocol under
/// test.
#[derive(Debug, Clone)]
pub struct ConstantLiar {
    /// The fixed payload to broadcast every round.
    pub lie: Bytes,
}

impl Adversary for ConstantLiar {
    fn act(&mut self, ctx: &mut Context<'_>) {
        ctx.broadcast(self.lie.clone());
    }

    fn name(&self) -> &'static str {
        "constant-liar"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Round;
    use crate::message::Message;
    use crate::rng::process_rng;

    fn run_one(adv: &mut dyn Adversary, round: u64, inbox: &[Message]) -> Vec<(ProcessId, Bytes)> {
        let neigh = [0usize, 1, 2, 3];
        let mut ctx = Context {
            id: ProcessId(4),
            round: Round(round),
            neighbors: &neigh,
            inbox,
            outbox: Vec::new(),
            rng: process_rng(1, ProcessId(4), Round(round)),
            n: 5,
        };
        adv.act(&mut ctx);
        ctx.outbox
    }

    #[test]
    fn silent_sends_nothing() {
        assert!(run_one(&mut Silent, 0, &[]).is_empty());
    }

    #[test]
    fn random_noise_sends_to_every_neighbor() {
        let out = run_one(&mut RandomNoise::default(), 0, &[]);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn equivocator_partitions_neighbors() {
        let mut adv = Equivocator {
            payload_a: vec![0xA].into(),
            payload_b: vec![0xB].into(),
        };
        let out = run_one(&mut adv, 0, &[]);
        for (to, payload) in out {
            let expect = if to.index() % 2 == 0 {
                vec![0xAu8]
            } else {
                vec![0xB]
            };
            assert_eq!(payload, expect);
        }
    }

    #[test]
    fn replayer_echoes_observed_message() {
        let mut adv = Replayer::default();
        assert!(run_one(&mut adv, 0, &[]).is_empty(), "nothing seen yet");
        let seen = [Message::new(ProcessId(0), Round(0), vec![9, 9])];
        let out = run_one(&mut adv, 1, &seen);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|(_, p)| *p == vec![9u8, 9]));
        let first = out[0].1.as_ptr();
        assert!(
            out.iter().all(|(_, p)| p.as_ptr() == first),
            "replayed broadcast shares one buffer"
        );
    }

    #[test]
    fn flip_flopper_alternates() {
        let mut adv = FlipFlopper {
            even: vec![0].into(),
            odd: vec![1].into(),
        };
        assert!(run_one(&mut adv, 0, &[])
            .iter()
            .all(|(_, p)| *p == vec![0u8]));
        assert!(run_one(&mut adv, 1, &[])
            .iter()
            .all(|(_, p)| *p == vec![1u8]));
    }

    #[test]
    fn constant_liar_repeats_lie() {
        let mut adv = ConstantLiar {
            lie: vec![7, 7].into(),
        };
        for round in 0..3 {
            assert!(run_one(&mut adv, round, &[])
                .iter()
                .all(|(_, p)| *p == vec![7u8, 7]));
        }
    }

    #[test]
    fn replayer_scramble_fabricates_a_stash() {
        let mut adv = Replayer::default();
        assert!(run_one(&mut adv, 0, &[]).is_empty(), "nothing seen yet");
        let mut rng = process_rng(7, ProcessId(4), Round(0));
        Adversary::scramble(&mut adv, &mut rng);
        let out = run_one(&mut adv, 1, &[]);
        assert_eq!(out.len(), 4, "replays a payload it never observed");
    }

    #[test]
    fn byzantine_process_scramble_reaches_the_strategy() {
        let mut p = ByzantineProcess::new(Box::<Replayer>::default());
        let mut rng = process_rng(7, ProcessId(4), Round(0));
        Process::scramble(&mut p, &mut rng);
        let neigh = [0usize, 1];
        let inbox: Vec<Message> = Vec::new();
        let mut ctx = Context {
            id: ProcessId(2),
            round: Round(0),
            neighbors: &neigh,
            inbox: &inbox,
            outbox: Vec::new(),
            rng: process_rng(0, ProcessId(2), Round(0)),
            n: 3,
        };
        p.on_pulse(&mut ctx);
        assert_eq!(ctx.outbox.len(), 2, "scrambled stash is broadcast");
    }

    #[test]
    fn byzantine_process_delegates() {
        let mut p = ByzantineProcess::new(Box::new(Silent));
        assert_eq!(p.name(), "silent");
        let neigh = [0usize];
        let inbox: Vec<Message> = Vec::new();
        let mut ctx = Context {
            id: ProcessId(1),
            round: Round(0),
            neighbors: &neigh,
            inbox: &inbox,
            outbox: Vec::new(),
            rng: process_rng(0, ProcessId(1), Round(0)),
            n: 2,
        };
        p.on_pulse(&mut ctx);
        assert!(ctx.outbox.is_empty());
    }
}

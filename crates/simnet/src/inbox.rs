//! Arena-backed inbox storage with active-set bookkeeping.
//!
//! [`Inboxes`] replaces the scheduler's old `Vec<Vec<Message>>` double
//! buffers. Each process still owns a contiguous `Vec<Message>` slot (so
//! [`Context::inbox`](crate::process::Context::inbox) stays a plain
//! slice), but two things make idle processes free at large n:
//!
//! * **Touched-slot tracking.** Every slot that gains a message (or is
//!   visited by a fault injector) is recorded in a *touched* list. The
//!   per-round clear only visits touched slots, and the quiescence
//!   scheduler derives the round's active set from the touched list —
//!   idle processes cost zero scan time.
//! * **A recycled buffer pool.** Cleared slots hand their allocation back
//!   to a shared pool; newly touched slots take one from it. Steady-state
//!   message traffic therefore allocates nothing even when the set of
//!   active processes drifts across the system, and memory is bounded by
//!   the high-water *active* count, not by n.
//!
//! [`pending`](Inboxes::pending) and [`quiescent`](Inboxes::quiescent)
//! run off the same bookkeeping in O(touched) — the telemetry sampler's
//! per-round cost tracks the active set, not the process count.

use crate::message::Message;

/// One pulse's worth of per-process inboxes (see the module docs).
#[derive(Debug, Default)]
pub(crate) struct Inboxes {
    /// `slots[i]` = messages pending for process `i`. Untouched slots are
    /// empty `Vec`s with no allocation.
    slots: Vec<Vec<Message>>,
    /// Indices touched since the last [`clear`](Inboxes::clear), in first-
    /// touch order (unsorted).
    touched: Vec<usize>,
    /// `flagged[i]` ⇔ `i` is in `touched`. Invariant: every non-empty
    /// slot is flagged.
    flagged: Vec<bool>,
    /// Cleared slot buffers awaiting reuse.
    pool: Vec<Vec<Message>>,
}

impl Inboxes {
    /// `n` empty inboxes; no per-slot allocations. Each side table is one
    /// up-front reservation: `touched` can hold every slot index without
    /// regrowing, so a dense round (all n inboxes touched) never pays
    /// incremental realloc-and-copy cycles on the hot push path.
    pub(crate) fn new(n: usize) -> Inboxes {
        Inboxes {
            slots: vec![Vec::new(); n],
            touched: Vec::with_capacity(n),
            flagged: vec![false; n],
            pool: Vec::new(),
        }
    }

    /// Number of slots (= processes).
    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// Marks slot `i` touched, wiring it a pooled buffer if it has none.
    fn touch(&mut self, i: usize) {
        if !self.flagged[i] {
            self.flagged[i] = true;
            self.touched.push(i);
            if self.slots[i].capacity() == 0 {
                if let Some(buf) = self.pool.pop() {
                    self.slots[i] = buf;
                }
            }
        }
    }

    /// Appends a message to slot `to`.
    pub(crate) fn push(&mut self, to: usize, message: Message) {
        self.touch(to);
        self.slots[to].push(message);
    }

    /// Read access to slot `i`'s pending messages.
    pub(crate) fn slot(&self, i: usize) -> &[Message] {
        &self.slots[i]
    }

    /// Mutable access to slot `i` for fault injectors; marks it touched
    /// (a scrambled or garbage-fed inbox must re-enter the active set).
    pub(crate) fn slot_mut(&mut self, i: usize) -> &mut Vec<Message> {
        self.touch(i);
        &mut self.slots[i]
    }

    /// The touched slot indices since the last clear, in first-touch order.
    pub(crate) fn touched(&self) -> &[usize] {
        &self.touched
    }

    /// Touched slot indices in ascending order — the deterministic visit
    /// order fault injectors use so their event streams stay coordinate-
    /// ordered.
    pub(crate) fn touched_sorted(&self) -> Vec<usize> {
        let mut ids = self.touched.clone();
        ids.sort_unstable();
        ids
    }

    /// Empties every touched slot, recycling buffers through the pool.
    /// O(touched) — untouched slots are never visited.
    pub(crate) fn clear(&mut self) {
        let mut touched = std::mem::take(&mut self.touched);
        for &i in &touched {
            self.flagged[i] = false;
            let mut buf = std::mem::take(&mut self.slots[i]);
            if buf.capacity() > 0 {
                buf.clear();
                self.pool.push(buf);
            }
        }
        touched.clear();
        self.touched = touched;
    }

    /// Total messages pending across all slots. O(touched).
    pub(crate) fn pending(&self) -> u64 {
        self.touched
            .iter()
            .map(|&i| self.slots[i].len() as u64)
            .sum()
    }

    /// Number of slots with no pending messages. O(touched).
    pub(crate) fn quiescent(&self) -> usize {
        let nonempty = self
            .touched
            .iter()
            .filter(|&&i| !self.slots[i].is_empty())
            .count();
        self.slots.len() - nonempty
    }

    /// Builds from explicit slot contents (test fixtures).
    #[cfg(test)]
    pub(crate) fn from_slots(slots: Vec<Vec<Message>>) -> Inboxes {
        let mut inboxes = Inboxes::new(slots.len());
        for (i, slot) in slots.into_iter().enumerate() {
            if !slot.is_empty() {
                inboxes.touch(i);
                inboxes.slots[i] = slot;
            }
        }
        inboxes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ProcessId, Round};

    fn msg(from: usize) -> Message {
        Message::new(ProcessId(from), Round(0), vec![1, 2])
    }

    #[test]
    fn push_tracks_touched_and_pending() {
        let mut inboxes = Inboxes::new(8);
        assert_eq!(inboxes.pending(), 0);
        assert_eq!(inboxes.quiescent(), 8);
        inboxes.push(3, msg(0));
        inboxes.push(3, msg(1));
        inboxes.push(5, msg(0));
        assert_eq!(inboxes.touched_sorted(), vec![3, 5]);
        assert_eq!(inboxes.pending(), 3);
        assert_eq!(inboxes.quiescent(), 6);
        assert_eq!(inboxes.slot(3).len(), 2);
        assert_eq!(inboxes.slot(0).len(), 0);
    }

    #[test]
    fn clear_recycles_buffers_through_the_pool() {
        let mut inboxes = Inboxes::new(8);
        inboxes.push(2, msg(0));
        let cap_before = inboxes.slots[2].capacity();
        assert!(cap_before > 0);
        inboxes.clear();
        assert_eq!(inboxes.pending(), 0);
        assert_eq!(inboxes.quiescent(), 8);
        assert!(inboxes.touched().is_empty());
        // A different slot touched next round adopts the recycled buffer.
        inboxes.push(6, msg(0));
        assert!(inboxes.slots[6].capacity() >= cap_before);
        assert_eq!(inboxes.slots[2].capacity(), 0, "slot 2 gave its buffer up");
    }

    #[test]
    fn slot_mut_touches_even_when_left_empty() {
        let mut inboxes = Inboxes::new(4);
        inboxes.slot_mut(1);
        assert_eq!(inboxes.touched_sorted(), vec![1]);
        assert_eq!(inboxes.pending(), 0);
        assert_eq!(inboxes.quiescent(), 4, "touched but empty is quiescent");
    }

    #[test]
    fn emptied_slot_counts_as_quiescent_but_stays_touched() {
        let mut inboxes = Inboxes::new(4);
        inboxes.push(0, msg(1));
        inboxes.slot_mut(0).clear();
        assert_eq!(inboxes.touched_sorted(), vec![0]);
        assert_eq!(inboxes.pending(), 0);
        assert_eq!(inboxes.quiescent(), 4);
    }

    #[test]
    fn from_slots_flags_nonempty() {
        let inboxes = Inboxes::from_slots(vec![vec![msg(1)], vec![], vec![msg(0)]]);
        assert_eq!(inboxes.touched_sorted(), vec![0, 2]);
        assert_eq!(inboxes.pending(), 2);
    }
}

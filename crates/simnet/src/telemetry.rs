//! Two-plane observability: a deterministic event stream and a wall-clock
//! profiling side-channel.
//!
//! The repo's standing invariant is that every run artifact compared by the
//! determinism gates — traces, run records, summary JSON — is **byte-identical
//! at any workers × shards × pool size**. Telemetry must not erode that, so
//! this module keeps two strictly separated planes:
//!
//! * **Deterministic event plane** ([`Event`], [`EventSink`]). Structured
//!   events recorded at stable `(round, process-id)` coordinates: round
//!   start/end, message delivered / dropped-with-reason, schedule actions
//!   firing, corruption families applying, processes being scrambled, and
//!   legality flips from the stabilization probe. Events generated inside the
//!   sharded compute phase are buffered per shard and drained by the merge
//!   phase in ascending process-id order — the same rule the message merge
//!   follows — so the event stream itself is byte-identical at any shard
//!   count, worker count, or pool size. Event-plane data **may** enter
//!   deterministic outputs (the `--events` JSONL, byte-identity `cmp` gates).
//!
//! * **Timing plane** ([`Profiler`], [`ProfileData`]). Wall-clock
//!   measurements — per-round step latency (with a log₂ histogram), merge
//!   time, batch wall time, per-task queue wait and busy time from the
//!   [`Runtime`](crate::runtime::Runtime) pool. Wall-clock readings differ
//!   run to run by nature, so timing-plane data **must never** be folded
//!   into [`Trace`](crate::trace::Trace) counters, run records, or summary
//!   JSON. It is surfaced only through explicitly non-deterministic channels
//!   (the `scenario run --profile` report), which the determinism gates never
//!   compare.
//!
//! The two-plane rule in one line: *if it came from a clock, it stays out of
//! anything `cmp`'d; if it is compared, it must derive from
//! `(seed, id, round)` alone.*
//!
//! Both planes are opt-in and cost one branch when disabled: a simulation
//! without an attached sink never formats or buffers an event, and a runtime
//! without an attached profiler never reads the clock.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::ids::ProcessId;

/// Default [`EventSink`] ring capacity: enough to hold the full event volume
/// of small-n runs while bounding large sweeps to a deterministic suffix.
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// Why a message never reached its destination inbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The destination was out of range or not a topology neighbor.
    NoLink,
    /// The lossy delivery model dropped it.
    Lossy,
    /// A transient fault or corruption family destroyed it in flight.
    Fault,
}

impl DropReason {
    /// Stable lowercase label used in rendered event streams.
    pub fn label(self) -> &'static str {
        match self {
            DropReason::NoLink => "no_link",
            DropReason::Lossy => "lossy",
            DropReason::Fault => "fault",
        }
    }
}

/// One deterministic observable event, anchored at stable
/// `(round, process-id)` coordinates.
///
/// `round` is the round in which the event occurred: for
/// [`Delivered`](Event::Delivered) and [`Dropped`](Event::Dropped) that is
/// the *sending* round (delivery to the recipient's step happens at the next
/// pulse, per the synchronous model).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A pulse began (before scheduled actions fire).
    RoundStart {
        /// The round about to execute.
        round: u64,
    },
    /// A pulse finished; `delivered` counts the messages routed this round.
    RoundEnd {
        /// The round that just executed.
        round: u64,
        /// Messages that survived link/loss filtering this round.
        delivered: u64,
    },
    /// A message was routed into `to`'s next-round inbox.
    Delivered {
        /// Sending round.
        round: u64,
        /// Sender.
        from: ProcessId,
        /// Recipient.
        to: ProcessId,
        /// Payload length in bytes.
        bytes: usize,
    },
    /// A message was destroyed, with the reason.
    Dropped {
        /// Round of the drop (sending round for link/loss drops; the round
        /// whose start fired the fault for [`DropReason::Fault`]).
        round: u64,
        /// Original sender.
        from: ProcessId,
        /// Intended recipient.
        to: ProcessId,
        /// Why it was dropped.
        reason: DropReason,
    },
    /// A [`ScheduledAction`](crate::schedule::ScheduledAction) fired at the
    /// start of the round.
    ScheduleFired {
        /// Firing round.
        round: u64,
        /// The action's stable kind label
        /// ([`ScheduledAction::kind`](crate::schedule::ScheduledAction::kind)).
        action: &'static str,
    },
    /// A [`CorruptionFamily`](crate::fault::CorruptionFamily) was applied.
    /// A recurring entry ([`Recurrence::Every`](crate::schedule::Recurrence))
    /// emits one of these per burst, so in `scenario trace` the episodes of a
    /// multi-burst run read as [`Event::LegalityFlip`] runs between
    /// `corruption_applied` marks.
    CorruptionApplied {
        /// Firing round.
        round: u64,
        /// Number of strategy-selected victim processes.
        targets: usize,
        /// In-flight messages the family destroyed.
        dropped: u64,
    },
    /// A process state was scrambled (transient fault or corruption family).
    Scrambled {
        /// Firing round.
        round: u64,
        /// The scrambled process.
        id: ProcessId,
    },
    /// The stabilization probe's legality predicate changed value after the
    /// round executed.
    LegalityFlip {
        /// The round after which legality was evaluated.
        round: u64,
        /// The new legality value.
        legal: bool,
    },
}

impl Event {
    /// Stable lowercase kind label used in rendered event streams.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RoundStart { .. } => "round_start",
            Event::RoundEnd { .. } => "round_end",
            Event::Delivered { .. } => "delivered",
            Event::Dropped { .. } => "dropped",
            Event::ScheduleFired { .. } => "schedule_fired",
            Event::CorruptionApplied { .. } => "corruption_applied",
            Event::Scrambled { .. } => "scrambled",
            Event::LegalityFlip { .. } => "legality_flip",
        }
    }

    /// The round coordinate of the event.
    pub fn round(&self) -> u64 {
        match self {
            Event::RoundStart { round }
            | Event::RoundEnd { round, .. }
            | Event::Delivered { round, .. }
            | Event::Dropped { round, .. }
            | Event::ScheduleFired { round, .. }
            | Event::CorruptionApplied { round, .. }
            | Event::Scrambled { round, .. }
            | Event::LegalityFlip { round, .. } => *round,
        }
    }

    /// The process-id coordinate, when the event is process-anchored (the
    /// sender for message events).
    pub fn process(&self) -> Option<ProcessId> {
        match self {
            Event::Delivered { from, .. } | Event::Dropped { from, .. } => Some(*from),
            Event::Scrambled { id, .. } => Some(*id),
            _ => None,
        }
    }
}

/// A bounded ring buffer of [`Event`]s: the deterministic event plane's
/// retention policy.
///
/// The ring keeps the **most recent** `capacity` events; older events are
/// overwritten (and counted in [`overwritten`](EventSink::overwritten)).
/// Because the capacity is part of the configuration — not derived from
/// timing or thread interleaving — the retained suffix is itself a pure
/// function of `(spec, seed, capacity)`, so ring truncation never breaks
/// byte-identity across worker/shard/pool settings.
#[derive(Debug, Clone)]
pub struct EventSink {
    /// Ring storage: grows to `cap`, then wraps.
    buf: Vec<Event>,
    /// Next write position once the ring is full (also the oldest entry).
    head: usize,
    /// Ring capacity (≥ 1).
    cap: usize,
    /// Events overwritten since the last [`drain`](EventSink::drain).
    overwritten: u64,
}

impl EventSink {
    /// A sink retaining the most recent `capacity` events (clamped to ≥ 1).
    pub fn with_capacity(capacity: usize) -> EventSink {
        EventSink {
            buf: Vec::new(),
            head: 0,
            cap: capacity.max(1),
            overwritten: 0,
        }
    }

    /// Records one event, overwriting the oldest when full.
    pub fn push(&mut self, event: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.cap;
            self.overwritten += 1;
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events overwritten (lost to ring truncation) since the last drain.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Removes and returns the retained events, oldest first, resetting the
    /// sink for reuse.
    pub fn drain(&mut self) -> Vec<Event> {
        self.buf.rotate_left(self.head);
        self.head = 0;
        self.overwritten = 0;
        std::mem::take(&mut self.buf)
    }
}

/// Event-plane configuration handed to
/// [`SimulationBuilder::telemetry`](crate::sim::SimulationBuilder::telemetry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// [`EventSink`] ring capacity per run.
    pub events_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            events_capacity: DEFAULT_EVENT_CAPACITY,
        }
    }
}

/// Number of log₂ latency buckets in [`ProfileData::step_hist`].
pub const STEP_HIST_BUCKETS: usize = 32;

/// Timing-plane accumulators. **Never** fold any of these into traces,
/// records, or summaries — see the module docs' two-plane rule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileData {
    /// Pulses measured.
    pub steps: u64,
    /// Total wall time inside [`Simulation::step`](crate::sim::Simulation::step), ns.
    pub step_ns: u64,
    /// Log₂ step-latency histogram: bucket `i` counts steps whose latency
    /// was in `[2^i, 2^(i+1))` ns.
    pub step_hist: [u64; STEP_HIST_BUCKETS],
    /// Total wall time in the serial merge phase, ns.
    pub merge_ns: u64,
    /// Batches submitted to the [`Runtime`](crate::runtime::Runtime) pool.
    pub batches: u64,
    /// Total batch wall time (submit to completion), ns.
    pub batch_ns: u64,
    /// Tasks (shards) executed across all batches.
    pub tasks: u64,
    /// Total per-task queue wait (submit to execution start), ns.
    pub task_queue_ns: u64,
    /// Total per-task busy time (execution start to finish), ns.
    pub task_busy_ns: u64,
}

fn as_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl ProfileData {
    fn record_step(&mut self, d: Duration) {
        let ns = as_ns(d);
        self.steps += 1;
        self.step_ns += ns;
        let bucket = (63 - ns.max(1).leading_zeros() as usize).min(STEP_HIST_BUCKETS - 1);
        self.step_hist[bucket] += 1;
    }
}

/// A cloneable handle to shared timing-plane accumulators.
///
/// Attach one to a [`Runtime`](crate::runtime::Runtime) (batch/task timing)
/// and/or a [`Simulation`](crate::sim::Simulation) (step/merge timing); all
/// holders feed the same [`ProfileData`]. Recording takes a mutex per
/// *round* or *batch*, not per message, so the hooks stay off the per-message
/// hot path.
#[derive(Debug, Clone, Default)]
pub struct Profiler(Arc<Mutex<ProfileData>>);

impl Profiler {
    /// A fresh profiler with zeroed accumulators.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// Records one pulse's wall time (also feeds the latency histogram).
    pub fn record_step(&self, d: Duration) {
        self.0.lock().unwrap().record_step(d);
    }

    /// Records one merge phase's wall time.
    pub fn record_merge(&self, d: Duration) {
        self.0.lock().unwrap().merge_ns += as_ns(d);
    }

    /// Records one pool batch's wall time (submit to completion).
    pub fn record_batch(&self, d: Duration) {
        let mut data = self.0.lock().unwrap();
        data.batches += 1;
        data.batch_ns += as_ns(d);
    }

    /// Records one task's queue wait and busy time.
    pub fn record_task(&self, queue: Duration, busy: Duration) {
        let mut data = self.0.lock().unwrap();
        data.tasks += 1;
        data.task_queue_ns += as_ns(queue);
        data.task_busy_ns += as_ns(busy);
    }

    /// A copy of the accumulators so far.
    pub fn snapshot(&self) -> ProfileData {
        self.0.lock().unwrap().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(round: u64) -> Event {
        Event::RoundStart { round }
    }

    #[test]
    fn sink_retains_everything_under_capacity() {
        let mut sink = EventSink::with_capacity(8);
        for r in 0..5 {
            sink.push(ev(r));
        }
        assert_eq!(sink.len(), 5);
        assert_eq!(sink.overwritten(), 0);
        let drained = sink.drain();
        assert_eq!(
            drained.iter().map(Event::round).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert!(sink.is_empty());
    }

    #[test]
    fn sink_overwrites_oldest_when_full() {
        let mut sink = EventSink::with_capacity(4);
        for r in 0..10 {
            sink.push(ev(r));
        }
        assert_eq!(sink.len(), 4);
        assert_eq!(sink.overwritten(), 6);
        let drained = sink.drain();
        assert_eq!(
            drained.iter().map(Event::round).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "most recent events survive, oldest first"
        );
        assert_eq!(sink.overwritten(), 0, "drain resets the loss counter");
    }

    #[test]
    fn sink_capacity_is_clamped_to_one() {
        let mut sink = EventSink::with_capacity(0);
        assert_eq!(sink.capacity(), 1);
        sink.push(ev(1));
        sink.push(ev(2));
        assert_eq!(
            sink.drain().iter().map(Event::round).collect::<Vec<_>>(),
            [2]
        );
    }

    #[test]
    fn drained_sink_is_reusable() {
        let mut sink = EventSink::with_capacity(3);
        for r in 0..5 {
            sink.push(ev(r));
        }
        sink.drain();
        sink.push(ev(9));
        assert_eq!(
            sink.drain().iter().map(Event::round).collect::<Vec<_>>(),
            [9]
        );
    }

    #[test]
    fn event_coordinates_are_stable() {
        let e = Event::Dropped {
            round: 7,
            from: ProcessId(2),
            to: ProcessId(3),
            reason: DropReason::Lossy,
        };
        assert_eq!(e.kind(), "dropped");
        assert_eq!(e.round(), 7);
        assert_eq!(e.process(), Some(ProcessId(2)));
        assert_eq!(DropReason::Lossy.label(), "lossy");
        assert_eq!(Event::RoundStart { round: 1 }.process(), None);
    }

    #[test]
    fn profiler_accumulates_both_planes_of_timing() {
        let p = Profiler::new();
        p.record_step(Duration::from_nanos(900));
        p.record_step(Duration::from_micros(3));
        p.record_merge(Duration::from_nanos(100));
        p.record_batch(Duration::from_micros(5));
        p.record_task(Duration::from_nanos(50), Duration::from_nanos(400));
        let data = p.snapshot();
        assert_eq!(data.steps, 2);
        assert_eq!(data.step_ns, 3900);
        assert_eq!(data.step_hist.iter().sum::<u64>(), 2);
        assert_eq!(data.step_hist[9], 1, "900ns lands in [512, 1024)");
        assert_eq!(data.step_hist[11], 1, "3µs lands in [2048, 4096)");
        assert_eq!(data.merge_ns, 100);
        assert_eq!((data.batches, data.batch_ns), (1, 5000));
        assert_eq!(
            (data.tasks, data.task_queue_ns, data.task_busy_ns),
            (1, 50, 400)
        );
    }

    #[test]
    fn default_config_uses_default_capacity() {
        assert_eq!(
            TelemetryConfig::default().events_capacity,
            DEFAULT_EVENT_CAPACITY
        );
    }
}

//! Message envelopes exchanged between processors.

use crate::ids::{ProcessId, Round};
use bytes::Bytes;

/// A message delivered to a processor at the start of a pulse.
///
/// Payloads are opaque bytes; protocol crates define their own encodings.
/// `Bytes` keeps broadcast fan-out cheap (one allocation, shared by all
/// recipients).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// The sender. In the synchronous point-to-point model the receiver
    /// always knows which link a message arrived on, so sender identity is
    /// *not* forgeable — this matches the paper's oral-message assumptions.
    pub from: ProcessId,
    /// The round in which the message was sent (delivered the round after).
    pub sent_in: Round,
    /// Opaque protocol payload.
    pub payload: Bytes,
}

impl Message {
    /// Creates a message envelope.
    pub fn new(from: ProcessId, sent_in: Round, payload: impl Into<Bytes>) -> Message {
        Message {
            from,
            sent_in,
            payload: payload.into(),
        }
    }

    /// Payload as a byte slice.
    pub fn bytes(&self) -> &[u8] {
        &self.payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Message::new(ProcessId(2), Round(5), vec![1, 2, 3]);
        assert_eq!(m.from, ProcessId(2));
        assert_eq!(m.sent_in, Round(5));
        assert_eq!(m.bytes(), &[1, 2, 3]);
    }

    #[test]
    fn clone_shares_payload_cheaply() {
        let m = Message::new(ProcessId(0), Round(0), vec![9u8; 1024]);
        let m2 = m.clone();
        assert_eq!(m.payload, m2.payload);
    }
}

//! Round-triggered event schedules: churn and fault injection as data.
//!
//! The scenario engine describes *when* a run's environment changes —
//! a processor is punitively disconnected, a partition heals, a transient
//! fault scrambles the configuration, the loss model degrades — as a
//! [`Schedule`] attached to the [`Simulation`](crate::sim::Simulation).
//! Each entry fires at the *start* of its round, before any process takes
//! its step, so the round's deliveries already reflect the new topology
//! and delivery model. Schedules are plain data (no closures), which keeps
//! specs `Clone + Send + Sync` and lets sweep workers share one spec
//! across threads.

use crate::fault::TransientFault;
use crate::ids::{ProcessId, Round};
use crate::sim::Delivery;

/// One environment change, applied at the start of a scheduled round.
#[derive(Debug, Clone)]
pub enum ScheduledAction {
    /// Remove every link of the processor (churn: departure, or the
    /// executive's punitive disconnection).
    Disconnect(ProcessId),
    /// Re-add links from the processor to each listed peer (churn:
    /// recovery). Peers that are already linked, out of range, or equal to
    /// the processor itself are skipped.
    Reconnect(ProcessId, Vec<ProcessId>),
    /// Inject a transient fault (arbitrary-configuration scrambling).
    Inject(TransientFault),
    /// Switch the delivery model (e.g. a lossy interval mid-run).
    SetDelivery(Delivery),
}

/// An ordered list of `(round, action)` entries.
///
/// Entries may be added in any order; they are kept sorted by round, with
/// insertion order preserved within a round. The simulation consumes the
/// schedule with a monotone cursor, so the per-round cost of an attached
/// schedule is O(1) when nothing fires.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    /// Sorted by round (stable w.r.t. insertion).
    entries: Vec<(u64, ScheduledAction)>,
    /// Index of the first entry not yet fired.
    cursor: usize,
}

impl Schedule {
    /// An empty schedule (fires nothing).
    pub fn new() -> Schedule {
        Schedule::default()
    }

    /// Adds `action` to fire at the start of `round` (builder-style).
    #[must_use]
    pub fn at(mut self, round: u64, action: ScheduledAction) -> Schedule {
        self.push(round, action);
        self
    }

    /// Adds `action` to fire at the start of `round`.
    pub fn push(&mut self, round: u64, action: ScheduledAction) {
        // Insert after every entry with round <= `round`: stable by
        // construction, no sort needed later.
        let pos = self.entries.partition_point(|(r, _)| *r <= round);
        self.entries.insert(pos, (round, action));
        debug_assert!(self.cursor == 0, "schedules are built before running");
    }

    /// Number of entries (fired and pending).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the schedule has no entries at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries that have not fired yet.
    pub fn pending(&self) -> usize {
        self.entries.len() - self.cursor
    }

    /// Pops the next action due at `round`, advancing the cursor.
    /// Entries scheduled for earlier rounds that were never reached (e.g.
    /// the schedule was attached mid-run) fire immediately.
    pub(crate) fn next_due(&mut self, round: Round) -> Option<ScheduledAction> {
        let (due, action) = self.entries.get(self.cursor)?;
        if *due <= round.value() {
            self.cursor += 1;
            Some(action.clone())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rounds_of(s: &Schedule) -> Vec<u64> {
        s.entries.iter().map(|(r, _)| *r).collect()
    }

    #[test]
    fn entries_sorted_by_round_insertion_stable() {
        let s = Schedule::new()
            .at(5, ScheduledAction::Disconnect(ProcessId(1)))
            .at(2, ScheduledAction::Disconnect(ProcessId(2)))
            .at(5, ScheduledAction::Disconnect(ProcessId(3)))
            .at(9, ScheduledAction::SetDelivery(Delivery::Reliable));
        assert_eq!(rounds_of(&s), vec![2, 5, 5, 9]);
        // Same-round entries keep insertion order.
        let ids: Vec<usize> = s
            .entries
            .iter()
            .filter_map(|(_, a)| match a {
                ScheduledAction::Disconnect(id) => Some(id.index()),
                _ => None,
            })
            .collect();
        assert_eq!(ids, vec![2, 1, 3]);
    }

    #[test]
    fn cursor_drains_in_round_order() {
        let mut s = Schedule::new()
            .at(1, ScheduledAction::Disconnect(ProcessId(0)))
            .at(1, ScheduledAction::Disconnect(ProcessId(1)))
            .at(3, ScheduledAction::Disconnect(ProcessId(2)));
        assert!(s.next_due(Round(0)).is_none());
        assert!(matches!(
            s.next_due(Round(1)),
            Some(ScheduledAction::Disconnect(ProcessId(0)))
        ));
        assert!(matches!(
            s.next_due(Round(1)),
            Some(ScheduledAction::Disconnect(ProcessId(1)))
        ));
        assert!(s.next_due(Round(1)).is_none());
        assert_eq!(s.pending(), 1);
        // A skipped round still fires later entries when reached.
        assert!(matches!(
            s.next_due(Round(7)),
            Some(ScheduledAction::Disconnect(ProcessId(2)))
        ));
        assert!(s.next_due(Round(7)).is_none());
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn empty_schedule_reports_empty() {
        let mut s = Schedule::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.next_due(Round(0)).is_none());
    }
}

//! Round-triggered event schedules: churn and fault injection as data.
//!
//! The scenario engine describes *when* a run's environment changes —
//! a processor is punitively disconnected, a partition heals, a transient
//! fault scrambles the configuration, the loss model degrades — as a
//! [`Schedule`] attached to the [`Simulation`](crate::sim::Simulation).
//! Each entry fires at the *start* of its round, before any process takes
//! its step, so the round's deliveries already reflect the new topology
//! and delivery model. Schedules are plain data (no closures), which keeps
//! specs `Clone + Send + Sync` and lets sweep workers share one spec
//! across threads.

use crate::fault::{CorruptionFamily, TransientFault};
use crate::ids::{ProcessId, Round};
use crate::sim::Delivery;
use crate::topology::Topology;

/// One environment change, applied at the start of a scheduled round.
#[derive(Debug, Clone)]
pub enum ScheduledAction {
    /// Remove every link of the processor (churn: departure, or the
    /// executive's punitive disconnection).
    Disconnect(ProcessId),
    /// Re-add links from the processor to each listed peer (churn:
    /// recovery). Peers that are already linked, out of range, or equal to
    /// the processor itself are skipped.
    Reconnect(ProcessId, Vec<ProcessId>),
    /// Remove the single edge `(a, b)` (partition churn at edge
    /// granularity — [`Topology::cut_link`]). Absent, reflexive or
    /// out-of-range edges are skipped.
    CutLink {
        /// One endpoint of the edge.
        a: ProcessId,
        /// The other endpoint.
        b: ProcessId,
    },
    /// Re-add the single edge `(a, b)` (a partition healing —
    /// [`Topology::heal_link`]). Already-present, reflexive or
    /// out-of-range edges are skipped.
    HealLink {
        /// One endpoint of the edge.
        a: ProcessId,
        /// The other endpoint.
        b: ProcessId,
    },
    /// Inject a transient fault (arbitrary-configuration scrambling).
    Inject(TransientFault),
    /// Apply a seed-derived corruption family: scramble a strategy-chosen
    /// set of process states and degrade in-flight messages, with every
    /// RNG draw keyed by `(seed, id, round)` coordinates — see
    /// [`CorruptionFamily`].
    ///
    /// The [`Recurrence`] makes sustained adversity (the "unsupportive
    /// environment" of Dolev & Herman) schedulable without materializing
    /// one entry per burst: a recurring corruption re-arms itself lazily
    /// at fire time, and because every family draw is keyed by the firing
    /// round, each re-fire gets fresh deterministic randomness.
    Corrupt(CorruptionFamily, Recurrence),
    /// Switch the delivery model (e.g. a lossy interval mid-run).
    SetDelivery(Delivery),
}

/// How often a [`ScheduledAction::Corrupt`] entry fires.
///
/// Recurrence is applied *lazily*: the schedule holds at most one pending
/// entry per recurring corruption, and popping it re-arms the next firing
/// (no entry explosion when sweeping long windows). The next firing is
/// anchored at the round the entry actually fired — for a schedule
/// attached mid-run past its start round, the burst train continues from
/// "now" instead of replaying a catch-up burst per missed period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recurrence {
    /// Fire exactly once at the scheduled round.
    Once,
    /// After each firing, fire again `period` rounds later, as long as
    /// that next firing round is `<= until`. A zero `period` degenerates
    /// to [`Once`](Recurrence::Once).
    Every {
        /// Rounds between consecutive firings.
        period: u64,
        /// Last round (inclusive) at which a re-fire may be scheduled.
        until: u64,
    },
}

impl Recurrence {
    /// The rounds an entry scheduled at `start` fires at under this
    /// recurrence, assuming every round from `start` on is executed (the
    /// normal case: schedule attached before the run). Scenario probes use
    /// this to turn one recurring entry into its burst-round list.
    pub fn firing_rounds(&self, start: u64) -> Vec<u64> {
        match *self {
            Recurrence::Once => vec![start],
            Recurrence::Every { period, until } => {
                let mut rounds = vec![start];
                if period > 0 {
                    let mut next = start.saturating_add(period);
                    while next <= until {
                        rounds.push(next);
                        next = next.saturating_add(period);
                    }
                }
                rounds
            }
        }
    }
}

impl ScheduledAction {
    /// Stable lowercase kind label, used by the telemetry event plane
    /// ([`Event::ScheduleFired`](crate::telemetry::Event::ScheduleFired)).
    pub fn kind(&self) -> &'static str {
        match self {
            ScheduledAction::Disconnect(_) => "disconnect",
            ScheduledAction::Reconnect(..) => "reconnect",
            ScheduledAction::CutLink { .. } => "cut_link",
            ScheduledAction::HealLink { .. } => "heal_link",
            ScheduledAction::Inject(_) => "inject",
            ScheduledAction::Corrupt(..) => "corrupt",
            ScheduledAction::SetDelivery(_) => "set_delivery",
        }
    }
}

/// An ordered list of `(round, action)` entries.
///
/// Entries may be added in any order; they are kept sorted by round, with
/// insertion order preserved within a round. The simulation consumes the
/// schedule with a monotone cursor, so the per-round cost of an attached
/// schedule is O(1) when nothing fires.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    /// Sorted by round (stable w.r.t. insertion) whenever `dirty` is
    /// false; an unsorted tail may exist while `dirty` is true.
    entries: Vec<(u64, ScheduledAction)>,
    /// Index of the first entry not yet fired.
    cursor: usize,
    /// Whether the pending suffix `entries[cursor..]` may be out of round
    /// order. Set by an out-of-order [`push`](Schedule::push), cleared by
    /// the deferred stable sort in [`ensure_sorted`](Schedule::ensure_sorted).
    dirty: bool,
}

impl Schedule {
    /// An empty schedule (fires nothing).
    pub fn new() -> Schedule {
        Schedule::default()
    }

    /// Adds `action` to fire at the start of `round` (builder-style).
    #[must_use]
    pub fn at(mut self, round: u64, action: ScheduledAction) -> Schedule {
        self.push(round, action);
        self
    }

    /// Schedules a healable bisection of `topology` (builder-style): every
    /// edge crossing the lower-half/upper-half id split (`0..n/2` vs
    /// `n/2..n`) is [cut](ScheduledAction::CutLink) at the start of
    /// `round` and [healed](ScheduledAction::HealLink) at the start of
    /// `heal_round` — the canonical partition-tolerance event: the network
    /// splits into two silent halves, then rejoins.
    ///
    /// The crossing edges are computed against `topology` as passed;
    /// edges cut or added by *earlier* scheduled events are not tracked
    /// (the cut/heal entries are plain data, so absent edges are skipped
    /// at fire time like every other churn action).
    #[must_use]
    pub fn bisect(mut self, topology: &Topology, round: u64, heal_round: u64) -> Schedule {
        let half = topology.len() / 2;
        let crossing: Vec<(ProcessId, ProcessId)> = (0..half)
            .flat_map(|a| {
                topology
                    .neighbors(ProcessId(a))
                    .iter()
                    .filter(move |&&b| b >= half)
                    .map(move |&b| (ProcessId(a), ProcessId(b)))
            })
            .collect();
        // Push all entries of the earlier round first so the appends stay
        // in round order and the deferred sort in ensure_sorted has
        // nothing to do. (Pushes are O(1) appends either way.)
        let mut batch = |r: u64, heal: bool| {
            for &(a, b) in &crossing {
                let action = if heal {
                    ScheduledAction::HealLink { a, b }
                } else {
                    ScheduledAction::CutLink { a, b }
                };
                self.push(r, action);
            }
        };
        if round <= heal_round {
            batch(round, false);
            batch(heal_round, true);
        } else {
            batch(heal_round, true);
            batch(round, false);
        }
        self
    }

    /// Adds `action` to fire at the start of `round`.
    ///
    /// Safe to call on a partially consumed schedule (e.g. one re-attached
    /// mid-run via
    /// [`Simulation::set_schedule`](crate::sim::Simulation::set_schedule)):
    /// the entry is inserted at or after the consumption cursor, so
    /// already-fired entries are never displaced into firing again, and an
    /// entry pushed for a round that has already passed fires exactly once,
    /// at the start of the next pulse — the same late-entry rule the
    /// simulation applies to skipped rounds when consuming the schedule.
    pub fn push(&mut self, round: u64, action: ScheduledAction) {
        // Append in O(1) and defer ordering: a stable sort of the pending
        // suffix runs before the next read (ensure_sorted), so in-order
        // pushes — the common case for builders, bisections and recurring
        // re-arms — never pay the O(E) memmove a sorted insert would, and
        // schedule construction is O(E) instead of O(E²) overall. The
        // consumed prefix is never re-sorted, so already-fired entries are
        // never displaced into firing again; a past-round entry sorts to
        // the front of the pending suffix and fires at the next pulse.
        if let Some(&(last, _)) = self.entries.last() {
            if round < last {
                self.dirty = true;
            }
        }
        self.entries.push((round, action));
    }

    /// Restores the pending-suffix round order after out-of-order pushes.
    /// The sort is stable, so same-round entries keep insertion order.
    fn ensure_sorted(&mut self) {
        if self.dirty {
            self.entries[self.cursor..].sort_by_key(|(r, _)| *r);
            self.dirty = false;
        }
    }

    /// Number of entries (fired and pending).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the schedule has no entries at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries that have not fired yet.
    pub fn pending(&self) -> usize {
        self.entries.len() - self.cursor
    }

    /// Pops the next action due at `round`, advancing the cursor.
    /// Entries scheduled for earlier rounds that were never reached (e.g.
    /// the schedule was attached mid-run) fire immediately.
    ///
    /// Popping a recurring [`Corrupt`](ScheduledAction::Corrupt) entry
    /// re-arms its next firing (see [`Recurrence`]): the follow-up is
    /// anchored at the round that actually fired, `period` rounds out, and
    /// only while that lands at or before `until`. The re-armed entry is
    /// always in the future, so a single `next_due` drain loop never spins.
    pub(crate) fn next_due(&mut self, round: Round) -> Option<ScheduledAction> {
        self.ensure_sorted();
        let (due, action) = self.entries.get(self.cursor)?;
        if *due > round.value() {
            return None;
        }
        let due = *due;
        self.cursor += 1;
        let action = action.clone();
        if let ScheduledAction::Corrupt(family, Recurrence::Every { period, until }) = &action {
            let next = round.value().max(due).saturating_add(*period);
            if *period > 0 && next <= *until {
                self.push(
                    next,
                    ScheduledAction::Corrupt(
                        family.clone(),
                        Recurrence::Every {
                            period: *period,
                            until: *until,
                        },
                    ),
                );
            }
        }
        Some(action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rounds_of(s: &mut Schedule) -> Vec<u64> {
        s.ensure_sorted();
        s.entries.iter().map(|(r, _)| *r).collect()
    }

    #[test]
    fn entries_sorted_by_round_insertion_stable() {
        let mut s = Schedule::new()
            .at(5, ScheduledAction::Disconnect(ProcessId(1)))
            .at(2, ScheduledAction::Disconnect(ProcessId(2)))
            .at(5, ScheduledAction::Disconnect(ProcessId(3)))
            .at(9, ScheduledAction::SetDelivery(Delivery::Reliable));
        assert_eq!(rounds_of(&mut s), vec![2, 5, 5, 9]);
        // Same-round entries keep insertion order.
        let ids: Vec<usize> = s
            .entries
            .iter()
            .filter_map(|(_, a)| match a {
                ScheduledAction::Disconnect(id) => Some(id.index()),
                _ => None,
            })
            .collect();
        assert_eq!(ids, vec![2, 1, 3]);
    }

    #[test]
    fn cursor_drains_in_round_order() {
        let mut s = Schedule::new()
            .at(1, ScheduledAction::Disconnect(ProcessId(0)))
            .at(1, ScheduledAction::Disconnect(ProcessId(1)))
            .at(3, ScheduledAction::Disconnect(ProcessId(2)));
        assert!(s.next_due(Round(0)).is_none());
        assert!(matches!(
            s.next_due(Round(1)),
            Some(ScheduledAction::Disconnect(ProcessId(0)))
        ));
        assert!(matches!(
            s.next_due(Round(1)),
            Some(ScheduledAction::Disconnect(ProcessId(1)))
        ));
        assert!(s.next_due(Round(1)).is_none());
        assert_eq!(s.pending(), 1);
        // A skipped round still fires later entries when reached.
        assert!(matches!(
            s.next_due(Round(7)),
            Some(ScheduledAction::Disconnect(ProcessId(2)))
        ));
        assert!(s.next_due(Round(7)).is_none());
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn bisect_cuts_and_heals_every_crossing_edge() {
        let topology = Topology::complete(6);
        let s = Schedule::new().bisect(&topology, 2, 7);
        // K6 split 3|3: nine crossing edges, each cut once and healed once.
        assert_eq!(s.len(), 18);
        let cuts: Vec<(u64, usize, usize)> = s
            .entries
            .iter()
            .filter_map(|(r, a)| match a {
                ScheduledAction::CutLink { a, b } => Some((*r, a.index(), b.index())),
                _ => None,
            })
            .collect();
        let heals: Vec<(u64, usize, usize)> = s
            .entries
            .iter()
            .filter_map(|(r, a)| match a {
                ScheduledAction::HealLink { a, b } => Some((*r, a.index(), b.index())),
                _ => None,
            })
            .collect();
        assert_eq!(cuts.len(), 9);
        assert_eq!(heals.len(), 9);
        assert!(cuts.iter().all(|&(r, a, b)| r == 2 && a < 3 && b >= 3));
        assert!(heals.iter().all(|&(r, a, b)| r == 7 && a < 3 && b >= 3));
        // The same edges are healed that were cut.
        let mut cut_edges: Vec<(usize, usize)> = cuts.iter().map(|&(_, a, b)| (a, b)).collect();
        let mut healed_edges: Vec<(usize, usize)> = heals.iter().map(|&(_, a, b)| (a, b)).collect();
        cut_edges.sort_unstable();
        healed_edges.sort_unstable();
        assert_eq!(cut_edges, healed_edges);
    }

    #[test]
    fn bisect_on_a_ring_cuts_the_two_bridges() {
        // ring(6) halves {0,1,2} | {3,4,5}: only edges (2,3) and (0,5)
        // cross, so the bisection is exactly those two cuts (plus heals).
        let topology = Topology::ring(6);
        let s = Schedule::new().bisect(&topology, 1, 4);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn midrun_push_of_a_past_round_fires_once_and_never_refires_history() {
        let mut s = Schedule::new()
            .at(1, ScheduledAction::Disconnect(ProcessId(0)))
            .at(8, ScheduledAction::Disconnect(ProcessId(8)));
        // Drain through round 5: only the round-1 entry has fired.
        assert!(matches!(
            s.next_due(Round(5)),
            Some(ScheduledAction::Disconnect(ProcessId(0)))
        ));
        assert!(s.next_due(Round(5)).is_none());

        // A push for the long-gone round 2 lands after the cursor, not in
        // the consumed prefix (which would re-fire the round-1 entry).
        s.push(2, ScheduledAction::Disconnect(ProcessId(2)));
        assert_eq!(s.pending(), 2);
        assert!(
            matches!(
                s.next_due(Round(6)),
                Some(ScheduledAction::Disconnect(ProcessId(2)))
            ),
            "late entry fires at the next pulse"
        );
        assert!(
            s.next_due(Round(6)).is_none(),
            "exactly once, and nothing fired re-fires"
        );
        assert!(matches!(
            s.next_due(Round(8)),
            Some(ScheduledAction::Disconnect(ProcessId(8)))
        ));
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn midrun_push_of_a_future_round_stays_sorted() {
        let mut s = Schedule::new()
            .at(1, ScheduledAction::Disconnect(ProcessId(0)))
            .at(9, ScheduledAction::Disconnect(ProcessId(9)));
        assert!(s.next_due(Round(1)).is_some());
        s.push(4, ScheduledAction::Disconnect(ProcessId(4)));
        assert_eq!(rounds_of(&mut s), vec![1, 4, 9]);
        assert!(s.next_due(Round(3)).is_none());
        assert!(matches!(
            s.next_due(Round(4)),
            Some(ScheduledAction::Disconnect(ProcessId(4)))
        ));
    }

    #[test]
    fn empty_schedule_reports_empty() {
        let mut s = Schedule::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.next_due(Round(0)).is_none());
    }

    #[test]
    fn interleaved_out_of_order_pushes_sort_before_reads() {
        // The O(E²) pattern the lazy sort exists for: alternating pushes
        // to two distant rounds. Appends are O(1); the deferred stable
        // sort restores round order (insertion-stable within a round).
        let mut s = Schedule::new();
        for i in 0..4usize {
            s.push(10, ScheduledAction::Disconnect(ProcessId(i)));
            s.push(3, ScheduledAction::Disconnect(ProcessId(100 + i)));
        }
        assert_eq!(rounds_of(&mut s), vec![3, 3, 3, 3, 10, 10, 10, 10]);
        let ids: Vec<usize> = s
            .entries
            .iter()
            .filter_map(|(_, a)| match a {
                ScheduledAction::Disconnect(id) => Some(id.index()),
                _ => None,
            })
            .collect();
        assert_eq!(ids, vec![100, 101, 102, 103, 0, 1, 2, 3]);
    }

    fn corrupt(recurrence: Recurrence) -> ScheduledAction {
        ScheduledAction::Corrupt(CorruptionFamily::random_k(1, 7), recurrence)
    }

    fn fires(s: &mut Schedule, horizon: u64) -> Vec<u64> {
        let mut fired = Vec::new();
        for round in 0..=horizon {
            while s.next_due(Round(round)).is_some() {
                fired.push(round);
            }
        }
        fired
    }

    #[test]
    fn recurring_corrupt_refires_every_period_until_bound() {
        let mut s = Schedule::new().at(
            4,
            corrupt(Recurrence::Every {
                period: 5,
                until: 15,
            }),
        );
        // 4, 9, 14 fire; the follow-up at 19 exceeds `until` and is never
        // armed. The schedule holds at most one pending burst at a time.
        assert_eq!(fires(&mut s, 40), vec![4, 9, 14]);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn recurrence_until_is_inclusive_and_zero_period_fires_once() {
        let mut s = Schedule::new().at(
            2,
            corrupt(Recurrence::Every {
                period: 4,
                until: 6,
            }),
        );
        assert_eq!(fires(&mut s, 20), vec![2, 6], "until bound is inclusive");

        let mut once = Schedule::new().at(
            3,
            corrupt(Recurrence::Every {
                period: 0,
                until: u64::MAX,
            }),
        );
        assert_eq!(
            fires(&mut once, 20),
            vec![3],
            "zero period degenerates to Once instead of spinning"
        );
    }

    #[test]
    fn recurring_corrupt_at_round_zero_fires_from_the_first_pulse() {
        let mut s = Schedule::new().at(
            0,
            corrupt(Recurrence::Every {
                period: 3,
                until: 7,
            }),
        );
        assert_eq!(fires(&mut s, 12), vec![0, 3, 6]);
    }

    #[test]
    fn late_recurring_entry_anchors_at_actual_fire_round() {
        // Attached mid-run: the round-2 start was missed, so the burst
        // fires at the next pulse (round 10) and the train continues from
        // there — no catch-up burst per missed period.
        let mut s = Schedule::new();
        s.push(
            2,
            corrupt(Recurrence::Every {
                period: 4,
                until: 17,
            }),
        );
        let mut fired = Vec::new();
        for round in 10..=30 {
            while s.next_due(Round(round)).is_some() {
                fired.push(round);
            }
        }
        assert_eq!(fired, vec![10, 14], "anchored at 10; 18 exceeds until");
    }

    #[test]
    fn firing_rounds_mirror_the_lazy_rearm() {
        let r = Recurrence::Every {
            period: 5,
            until: 15,
        };
        assert_eq!(r.firing_rounds(4), vec![4, 9, 14]);
        assert_eq!(Recurrence::Once.firing_rounds(7), vec![7]);
        assert_eq!(
            Recurrence::Every {
                period: 0,
                until: 99
            }
            .firing_rounds(3),
            vec![3],
            "zero period degenerates to Once"
        );
        // Cross-check against what the schedule actually fires.
        let mut s = Schedule::new().at(4, corrupt(r));
        assert_eq!(fires(&mut s, 40), r.firing_rounds(4));
    }

    #[test]
    fn once_corrupt_never_rearms() {
        let mut s = Schedule::new().at(5, corrupt(Recurrence::Once));
        assert_eq!(fires(&mut s, 30), vec![5]);
        assert_eq!(s.len(), 1, "no hidden entries were ever created");
    }
}

//! Round-triggered event schedules: churn and fault injection as data.
//!
//! The scenario engine describes *when* a run's environment changes —
//! a processor is punitively disconnected, a partition heals, a transient
//! fault scrambles the configuration, the loss model degrades — as a
//! [`Schedule`] attached to the [`Simulation`](crate::sim::Simulation).
//! Each entry fires at the *start* of its round, before any process takes
//! its step, so the round's deliveries already reflect the new topology
//! and delivery model. Schedules are plain data (no closures), which keeps
//! specs `Clone + Send + Sync` and lets sweep workers share one spec
//! across threads.

use crate::fault::{CorruptionFamily, TransientFault};
use crate::ids::{ProcessId, Round};
use crate::sim::Delivery;
use crate::topology::Topology;

/// One environment change, applied at the start of a scheduled round.
#[derive(Debug, Clone)]
pub enum ScheduledAction {
    /// Remove every link of the processor (churn: departure, or the
    /// executive's punitive disconnection).
    Disconnect(ProcessId),
    /// Re-add links from the processor to each listed peer (churn:
    /// recovery). Peers that are already linked, out of range, or equal to
    /// the processor itself are skipped.
    Reconnect(ProcessId, Vec<ProcessId>),
    /// Remove the single edge `(a, b)` (partition churn at edge
    /// granularity — [`Topology::cut_link`]). Absent, reflexive or
    /// out-of-range edges are skipped.
    CutLink {
        /// One endpoint of the edge.
        a: ProcessId,
        /// The other endpoint.
        b: ProcessId,
    },
    /// Re-add the single edge `(a, b)` (a partition healing —
    /// [`Topology::heal_link`]). Already-present, reflexive or
    /// out-of-range edges are skipped.
    HealLink {
        /// One endpoint of the edge.
        a: ProcessId,
        /// The other endpoint.
        b: ProcessId,
    },
    /// Inject a transient fault (arbitrary-configuration scrambling).
    Inject(TransientFault),
    /// Apply a seed-derived corruption family: scramble a strategy-chosen
    /// set of process states and degrade in-flight messages, with every
    /// RNG draw keyed by `(seed, id, round)` coordinates — see
    /// [`CorruptionFamily`].
    Corrupt(CorruptionFamily),
    /// Switch the delivery model (e.g. a lossy interval mid-run).
    SetDelivery(Delivery),
}

impl ScheduledAction {
    /// Stable lowercase kind label, used by the telemetry event plane
    /// ([`Event::ScheduleFired`](crate::telemetry::Event::ScheduleFired)).
    pub fn kind(&self) -> &'static str {
        match self {
            ScheduledAction::Disconnect(_) => "disconnect",
            ScheduledAction::Reconnect(..) => "reconnect",
            ScheduledAction::CutLink { .. } => "cut_link",
            ScheduledAction::HealLink { .. } => "heal_link",
            ScheduledAction::Inject(_) => "inject",
            ScheduledAction::Corrupt(_) => "corrupt",
            ScheduledAction::SetDelivery(_) => "set_delivery",
        }
    }
}

/// An ordered list of `(round, action)` entries.
///
/// Entries may be added in any order; they are kept sorted by round, with
/// insertion order preserved within a round. The simulation consumes the
/// schedule with a monotone cursor, so the per-round cost of an attached
/// schedule is O(1) when nothing fires.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    /// Sorted by round (stable w.r.t. insertion).
    entries: Vec<(u64, ScheduledAction)>,
    /// Index of the first entry not yet fired.
    cursor: usize,
}

impl Schedule {
    /// An empty schedule (fires nothing).
    pub fn new() -> Schedule {
        Schedule::default()
    }

    /// Adds `action` to fire at the start of `round` (builder-style).
    #[must_use]
    pub fn at(mut self, round: u64, action: ScheduledAction) -> Schedule {
        self.push(round, action);
        self
    }

    /// Schedules a healable bisection of `topology` (builder-style): every
    /// edge crossing the lower-half/upper-half id split (`0..n/2` vs
    /// `n/2..n`) is [cut](ScheduledAction::CutLink) at the start of
    /// `round` and [healed](ScheduledAction::HealLink) at the start of
    /// `heal_round` — the canonical partition-tolerance event: the network
    /// splits into two silent halves, then rejoins.
    ///
    /// The crossing edges are computed against `topology` as passed;
    /// edges cut or added by *earlier* scheduled events are not tracked
    /// (the cut/heal entries are plain data, so absent edges are skipped
    /// at fire time like every other churn action).
    #[must_use]
    pub fn bisect(mut self, topology: &Topology, round: u64, heal_round: u64) -> Schedule {
        let half = topology.len() / 2;
        let crossing: Vec<(ProcessId, ProcessId)> = (0..half)
            .flat_map(|a| {
                topology
                    .neighbors(ProcessId(a))
                    .iter()
                    .filter(move |&&b| b >= half)
                    .map(move |&b| (ProcessId(a), ProcessId(b)))
            })
            .collect();
        // Push all entries of the earlier round first: each push then
        // appends at the end of its equal-round run, keeping construction
        // linear in crossing edges (interleaving cut/heal pushes would
        // shift every already-inserted later-round entry — O(E²)).
        let mut batch = |r: u64, heal: bool| {
            for &(a, b) in &crossing {
                let action = if heal {
                    ScheduledAction::HealLink { a, b }
                } else {
                    ScheduledAction::CutLink { a, b }
                };
                self.push(r, action);
            }
        };
        if round <= heal_round {
            batch(round, false);
            batch(heal_round, true);
        } else {
            batch(heal_round, true);
            batch(round, false);
        }
        self
    }

    /// Adds `action` to fire at the start of `round`.
    ///
    /// Safe to call on a partially consumed schedule (e.g. one re-attached
    /// mid-run via
    /// [`Simulation::set_schedule`](crate::sim::Simulation::set_schedule)):
    /// the entry is inserted at or after the consumption cursor, so
    /// already-fired entries are never displaced into firing again, and an
    /// entry pushed for a round that has already passed fires exactly once,
    /// at the start of the next pulse — the same late-entry rule the
    /// simulation applies to skipped rounds when consuming the schedule.
    pub fn push(&mut self, round: u64, action: ScheduledAction) {
        // Insert after every entry with round <= `round`: stable by
        // construction, no sort needed later. Clamping to the cursor keeps
        // the consumed prefix intact when pushing a past round mid-run.
        let pos = self
            .entries
            .partition_point(|(r, _)| *r <= round)
            .max(self.cursor);
        self.entries.insert(pos, (round, action));
    }

    /// Number of entries (fired and pending).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the schedule has no entries at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries that have not fired yet.
    pub fn pending(&self) -> usize {
        self.entries.len() - self.cursor
    }

    /// Pops the next action due at `round`, advancing the cursor.
    /// Entries scheduled for earlier rounds that were never reached (e.g.
    /// the schedule was attached mid-run) fire immediately.
    pub(crate) fn next_due(&mut self, round: Round) -> Option<ScheduledAction> {
        let (due, action) = self.entries.get(self.cursor)?;
        if *due <= round.value() {
            self.cursor += 1;
            Some(action.clone())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rounds_of(s: &Schedule) -> Vec<u64> {
        s.entries.iter().map(|(r, _)| *r).collect()
    }

    #[test]
    fn entries_sorted_by_round_insertion_stable() {
        let s = Schedule::new()
            .at(5, ScheduledAction::Disconnect(ProcessId(1)))
            .at(2, ScheduledAction::Disconnect(ProcessId(2)))
            .at(5, ScheduledAction::Disconnect(ProcessId(3)))
            .at(9, ScheduledAction::SetDelivery(Delivery::Reliable));
        assert_eq!(rounds_of(&s), vec![2, 5, 5, 9]);
        // Same-round entries keep insertion order.
        let ids: Vec<usize> = s
            .entries
            .iter()
            .filter_map(|(_, a)| match a {
                ScheduledAction::Disconnect(id) => Some(id.index()),
                _ => None,
            })
            .collect();
        assert_eq!(ids, vec![2, 1, 3]);
    }

    #[test]
    fn cursor_drains_in_round_order() {
        let mut s = Schedule::new()
            .at(1, ScheduledAction::Disconnect(ProcessId(0)))
            .at(1, ScheduledAction::Disconnect(ProcessId(1)))
            .at(3, ScheduledAction::Disconnect(ProcessId(2)));
        assert!(s.next_due(Round(0)).is_none());
        assert!(matches!(
            s.next_due(Round(1)),
            Some(ScheduledAction::Disconnect(ProcessId(0)))
        ));
        assert!(matches!(
            s.next_due(Round(1)),
            Some(ScheduledAction::Disconnect(ProcessId(1)))
        ));
        assert!(s.next_due(Round(1)).is_none());
        assert_eq!(s.pending(), 1);
        // A skipped round still fires later entries when reached.
        assert!(matches!(
            s.next_due(Round(7)),
            Some(ScheduledAction::Disconnect(ProcessId(2)))
        ));
        assert!(s.next_due(Round(7)).is_none());
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn bisect_cuts_and_heals_every_crossing_edge() {
        let topology = Topology::complete(6);
        let s = Schedule::new().bisect(&topology, 2, 7);
        // K6 split 3|3: nine crossing edges, each cut once and healed once.
        assert_eq!(s.len(), 18);
        let cuts: Vec<(u64, usize, usize)> = s
            .entries
            .iter()
            .filter_map(|(r, a)| match a {
                ScheduledAction::CutLink { a, b } => Some((*r, a.index(), b.index())),
                _ => None,
            })
            .collect();
        let heals: Vec<(u64, usize, usize)> = s
            .entries
            .iter()
            .filter_map(|(r, a)| match a {
                ScheduledAction::HealLink { a, b } => Some((*r, a.index(), b.index())),
                _ => None,
            })
            .collect();
        assert_eq!(cuts.len(), 9);
        assert_eq!(heals.len(), 9);
        assert!(cuts.iter().all(|&(r, a, b)| r == 2 && a < 3 && b >= 3));
        assert!(heals.iter().all(|&(r, a, b)| r == 7 && a < 3 && b >= 3));
        // The same edges are healed that were cut.
        let mut cut_edges: Vec<(usize, usize)> = cuts.iter().map(|&(_, a, b)| (a, b)).collect();
        let mut healed_edges: Vec<(usize, usize)> = heals.iter().map(|&(_, a, b)| (a, b)).collect();
        cut_edges.sort_unstable();
        healed_edges.sort_unstable();
        assert_eq!(cut_edges, healed_edges);
    }

    #[test]
    fn bisect_on_a_ring_cuts_the_two_bridges() {
        // ring(6) halves {0,1,2} | {3,4,5}: only edges (2,3) and (0,5)
        // cross, so the bisection is exactly those two cuts (plus heals).
        let topology = Topology::ring(6);
        let s = Schedule::new().bisect(&topology, 1, 4);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn midrun_push_of_a_past_round_fires_once_and_never_refires_history() {
        let mut s = Schedule::new()
            .at(1, ScheduledAction::Disconnect(ProcessId(0)))
            .at(8, ScheduledAction::Disconnect(ProcessId(8)));
        // Drain through round 5: only the round-1 entry has fired.
        assert!(matches!(
            s.next_due(Round(5)),
            Some(ScheduledAction::Disconnect(ProcessId(0)))
        ));
        assert!(s.next_due(Round(5)).is_none());

        // A push for the long-gone round 2 lands after the cursor, not in
        // the consumed prefix (which would re-fire the round-1 entry).
        s.push(2, ScheduledAction::Disconnect(ProcessId(2)));
        assert_eq!(s.pending(), 2);
        assert!(
            matches!(
                s.next_due(Round(6)),
                Some(ScheduledAction::Disconnect(ProcessId(2)))
            ),
            "late entry fires at the next pulse"
        );
        assert!(
            s.next_due(Round(6)).is_none(),
            "exactly once, and nothing fired re-fires"
        );
        assert!(matches!(
            s.next_due(Round(8)),
            Some(ScheduledAction::Disconnect(ProcessId(8)))
        ));
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn midrun_push_of_a_future_round_stays_sorted() {
        let mut s = Schedule::new()
            .at(1, ScheduledAction::Disconnect(ProcessId(0)))
            .at(9, ScheduledAction::Disconnect(ProcessId(9)));
        assert!(s.next_due(Round(1)).is_some());
        s.push(4, ScheduledAction::Disconnect(ProcessId(4)));
        assert_eq!(rounds_of(&s), vec![1, 4, 9]);
        assert!(s.next_due(Round(3)).is_none());
        assert!(matches!(
            s.next_due(Round(4)),
            Some(ScheduledAction::Disconnect(ProcessId(4)))
        ));
    }

    #[test]
    fn empty_schedule_reports_empty() {
        let mut s = Schedule::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.next_due(Round(0)).is_none());
    }
}

//! Integration tests for the zero-copy message substrate: broadcast
//! fan-out shares one buffer end-to-end, the loss-RNG derivation stays
//! deterministic, and in-place disconnection preserves unrelated edges.

use bytes::Bytes;
use ga_simnet::prelude::*;
use ga_simnet::sim::Delivery;

/// Broadcasts one fixed payload on round 0 only.
struct OneShotBroadcaster;

impl Process for OneShotBroadcaster {
    fn on_pulse(&mut self, ctx: &mut Context<'_>) {
        if ctx.round().value() == 0 {
            ctx.broadcast(vec![0xAB; 8]);
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Stores a clone of every delivered payload (refcount bump — pointer
/// identity with the sender's buffer is preserved).
#[derive(Default)]
struct Capture {
    payloads: Vec<Bytes>,
}

impl Process for Capture {
    fn on_pulse(&mut self, ctx: &mut Context<'_>) {
        for m in ctx.inbox() {
            self.payloads.push(m.payload.clone());
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// One broadcast on `Topology::complete(64)`: all 63 recipients must hold
/// the *same allocation*, not 63 copies — the zero-copy tentpole property.
#[test]
fn broadcast_recipients_share_one_allocation() {
    let n = 64;
    let mut sim = Simulation::builder(Topology::complete(n)).build_with(|id| {
        if id.index() == 0 {
            Box::new(OneShotBroadcaster) as Box<dyn Process>
        } else {
            Box::new(Capture::default())
        }
    });
    sim.run(2); // round 0 sends, round 1 delivers

    let mut pointers = Vec::new();
    for i in 1..n {
        let cap = sim.process_as::<Capture>(ProcessId(i)).unwrap();
        assert_eq!(cap.payloads.len(), 1, "p{i} got the broadcast");
        assert_eq!(cap.payloads[0], vec![0xABu8; 8]);
        pointers.push(cap.payloads[0].as_ptr());
    }
    assert_eq!(pointers.len(), n - 1);
    assert!(
        pointers.iter().all(|&p| p == pointers[0]),
        "one allocation shared by all 63 recipients"
    );
}

/// Every round's broadcast from every process shares its buffer across
/// recipients — steady state, not just the first pulse.
#[test]
fn steady_state_broadcasts_stay_shared() {
    struct EveryRound;
    impl Process for EveryRound {
        fn on_pulse(&mut self, ctx: &mut Context<'_>) {
            ctx.broadcast(ctx.round().value().to_be_bytes());
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    let n = 8;
    let mut sim = Simulation::builder(Topology::complete(n)).build_with(|id| {
        if id.index() == 0 {
            Box::new(EveryRound) as Box<dyn Process>
        } else {
            Box::new(Capture::default())
        }
    });
    sim.run(6);

    // For each delivered round, all recipients alias one buffer.
    let per_recipient: Vec<Vec<Bytes>> = (1..n)
        .map(|i| {
            sim.process_as::<Capture>(ProcessId(i))
                .unwrap()
                .payloads
                .clone()
        })
        .collect();
    let rounds_delivered = per_recipient[0].len();
    assert!(rounds_delivered >= 5);
    for r in 0..rounds_delivered {
        let first = per_recipient[0][r].as_ptr();
        for caps in &per_recipient {
            assert_eq!(caps[r].as_ptr(), first, "round {r} payload shared");
        }
    }
}

/// Counts received messages; broadcasts one message per round.
struct Chatter;

impl Process for Chatter {
    fn on_pulse(&mut self, ctx: &mut Context<'_>) {
        ctx.broadcast(vec![1, 2, 3]);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Same-seed lossy runs produce byte-identical traces: guards the numeric
/// `labeled_rng_u64` loss derivation that replaced the per-round
/// `format!` label.
#[test]
fn lossy_delivery_is_deterministic_per_seed() {
    let build = |seed| {
        Simulation::builder(Topology::complete(6))
            .seed(seed)
            .delivery(Delivery::Lossy { p: 0.3 })
            .build_with(|_| Box::new(Chatter) as Box<dyn Process>)
    };
    let mut a = build(99);
    let mut b = build(99);
    a.run(50);
    b.run(50);
    assert_eq!(a.trace(), b.trace(), "same seed, same lossy history");
    assert!(a.trace().messages_dropped_lossy > 0, "loss model engaged");
    assert!(a.trace().messages_delivered > 0);

    let mut c = build(100);
    c.run(50);
    assert_ne!(
        a.trace().messages_dropped_lossy,
        0,
        "sanity: losses occurred"
    );
    assert!(
        c.trace() != a.trace(),
        "different seed perturbs the loss pattern"
    );
}

/// Disconnection is surgical: every edge not incident to the victim
/// survives, with delivery behaviour to match (regression for the old
/// O(n²) rebuild which also used to collect a dead `peers` vector).
#[test]
fn disconnect_preserves_unrelated_edges() {
    let n = 6;
    let mut sim = Simulation::builder(Topology::complete(n))
        .build_with(|_| Box::new(Chatter) as Box<dyn Process>);
    let before = sim.topology().clone();
    sim.disconnect(ProcessId(3));

    let after = sim.topology();
    assert!(after.neighbors(ProcessId(3)).is_empty());
    for u in 0..n {
        for v in 0..n {
            if u == v {
                continue;
            }
            let expect = u != 3 && v != 3 && before.connected(ProcessId(u), ProcessId(v));
            assert_eq!(
                after.connected(ProcessId(u), ProcessId(v)),
                expect,
                "edge {u}-{v}"
            );
        }
    }

    sim.run(3);
    assert_eq!(sim.trace().delivered_to(ProcessId(3)), 0);
    for i in (0..n).filter(|&i| i != 3) {
        // 3 routed rounds × 4 surviving peers.
        assert_eq!(sim.trace().delivered_to(ProcessId(i)), 12, "p{i}");
    }
    // Broadcast targets the (now empty) neighbor list, so the victim sends
    // nothing at all — no phantom no-link drops either.
    assert_eq!(sim.trace().messages_dropped_no_link, 0);
}

/// Inbox buffers are recycled, not reallocated: capacity survives a
/// quiet round and message history stays correct across bursts.
#[test]
fn inbox_reuse_keeps_histories_correct() {
    struct Bursty;
    impl Process for Bursty {
        fn on_pulse(&mut self, ctx: &mut Context<'_>) {
            // Send only on even rounds; odd rounds are quiet.
            if ctx.round().value() % 2 == 0 {
                ctx.broadcast(vec![7; 16]);
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    let n = 5;
    let mut sim = Simulation::builder(Topology::complete(n))
        .build_with(|_| Box::new(Bursty) as Box<dyn Process>);
    sim.run(10);
    // Rounds 0,2,4,6,8 send: 5 bursts × n(n-1) messages.
    assert_eq!(sim.trace().messages_delivered, 5 * (n * (n - 1)) as u64);
    assert_eq!(
        sim.trace().bytes_delivered,
        5 * 16 * (n * (n - 1)) as u64,
        "payload sizes accounted exactly once per delivery"
    );
}

//! Property tests for the simulator substrate.

use ga_simnet::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;

/// A process that broadcasts a constant and counts receipts.
struct Beacon {
    received: usize,
}

impl Process for Beacon {
    fn on_pulse(&mut self, ctx: &mut Context<'_>) {
        self.received += ctx.inbox().len();
        ctx.broadcast(vec![0xBE]);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Simulation histories are a pure function of the seed.
    #[test]
    fn determinism(seed in any::<u64>(), n in 3usize..8, rounds in 1u64..20) {
        let build = || Simulation::builder(Topology::complete(n))
            .seed(seed)
            .build_with(|_| Box::new(Beacon { received: 0 }) as Box<dyn Process>);
        let mut a = build();
        let mut b = build();
        a.run(rounds);
        b.run(rounds);
        prop_assert_eq!(a.trace(), b.trace());
    }

    /// On a complete graph, every broadcast reaches everyone: counts are
    /// exactly n(n−1) per routed round.
    #[test]
    fn conservation_of_messages(n in 2usize..8, rounds in 1u64..10) {
        let mut sim = Simulation::builder(Topology::complete(n))
            .build_with(|_| Box::new(Beacon { received: 0 }) as Box<dyn Process>);
        sim.run(rounds);
        prop_assert_eq!(
            sim.trace().messages_delivered,
            rounds * (n * (n - 1)) as u64
        );
        prop_assert_eq!(sim.trace().messages_dropped_no_link, 0);
    }

    /// Ring topologies always have vertex connectivity exactly 2.
    #[test]
    fn ring_connectivity(n in 3usize..10) {
        let t = Topology::ring(n);
        prop_assert!(t.is_connected());
        prop_assert!(t.vertex_connectivity_at_least(2));
        prop_assert!(!t.vertex_connectivity_at_least(3));
    }

    /// Complete graphs on n vertices are exactly (n−1)-connected — the
    /// paper's 2f+1 disjoint-paths condition holds for all f < n/2 there.
    #[test]
    fn complete_graph_connectivity(n in 2usize..8) {
        let t = Topology::complete(n);
        prop_assert!(t.vertex_connectivity_at_least(n - 1));
        if n > 2 {
            prop_assert!(!t.vertex_connectivity_at_least(n));
        }
    }

    /// Random k-connected constructions meet their minimum degree and stay
    /// connected.
    #[test]
    fn random_k_connected_sane(seed in any::<u64>(), n in 6usize..14, k in 2usize..5) {
        prop_assume!(k < n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = Topology::random_k_connected(n, k, 0.05, &mut rng);
        prop_assert!(t.min_degree() >= k);
        prop_assert!(t.is_connected());
    }

    /// The dense bitmask plane and the pure-CSR path answer `connected`
    /// and `degree` identically on random graphs driven through random
    /// cut/heal/isolate sequences — the representations are
    /// interchangeable, which is what lets the auto threshold pick by
    /// size alone.
    #[test]
    fn csr_and_dense_agree_under_mutation(
        seed in any::<u64>(),
        n in 4usize..12,
        k in 2usize..4,
        ops in proptest::collection::vec((0usize..3, 0usize..12, 0usize..12), 0..24),
    ) {
        prop_assume!(k < n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let base = Topology::random_k_connected(n, k, 0.1, &mut rng);
        let mut dense = base.clone();
        dense.set_repr(AdjacencyRepr::Dense);
        let mut sparse = base;
        sparse.set_repr(AdjacencyRepr::Sparse);
        for (op, a, b) in ops {
            let (a, b) = (ProcessId(a % n), ProcessId(b % n));
            match op {
                0 => {
                    prop_assert_eq!(dense.cut_link(a, b), sparse.cut_link(a, b));
                }
                1 => {
                    prop_assert_eq!(dense.heal_link(a, b), sparse.heal_link(a, b));
                }
                _ => {
                    dense.isolate(a);
                    sparse.isolate(a);
                }
            }
            for i in 0..n {
                prop_assert_eq!(dense.degree(ProcessId(i)), sparse.degree(ProcessId(i)));
                for j in 0..n {
                    prop_assert_eq!(
                        dense.connected(ProcessId(i), ProcessId(j)),
                        sparse.connected(ProcessId(i), ProcessId(j)),
                        "connected({}, {}) diverged", i, j
                    );
                }
            }
        }
    }

    /// Disconnecting a vertex removes all its deliveries and only its own.
    #[test]
    fn disconnect_isolates(n in 3usize..7, victim in 0usize..7, rounds in 1u64..8) {
        let victim = victim % n;
        let mut sim = Simulation::builder(Topology::complete(n))
            .build_with(|_| Box::new(Beacon { received: 0 }) as Box<dyn Process>);
        sim.disconnect(ProcessId(victim));
        sim.run(rounds);
        prop_assert_eq!(sim.trace().delivered_to(ProcessId(victim)), 0);
        for i in 0..n {
            if i != victim && rounds > 1 {
                prop_assert!(sim.trace().delivered_to(ProcessId(i)) > 0);
            }
        }
    }
}

//! Sharded-step determinism: `StepExec::Sharded` must reproduce serial
//! stepping **byte-for-byte** — identical traces *and* identical
//! per-process delivery histories (sender, round, payload bytes, in inbox
//! order) — on every topology shape, under lossy delivery, churn
//! schedules, transient faults and colluding adversaries. Mirrors the
//! sweep-level guarantees in `crates/scenario/tests/determinism.rs`.

use ga_simnet::colluding::Cabal;
use ga_simnet::prelude::*;
use ga_simnet::sim::Delivery;
use rand::Rng;

/// A chatty worker that logs its full delivery history: every round it
/// records `(round, sender, payload)` for each inbox message, then
/// broadcasts a payload derived from its id, the round and its per-pulse
/// RNG — so histories are sensitive to any mis-sharding of process state,
/// inbox routing order or RNG derivation.
struct HistoryChatter {
    id: u64,
    history: Vec<(u64, usize, Vec<u8>)>,
}

impl HistoryChatter {
    fn new(id: u64) -> HistoryChatter {
        HistoryChatter {
            id,
            history: Vec::new(),
        }
    }
}

impl Process for HistoryChatter {
    fn on_pulse(&mut self, ctx: &mut Context<'_>) {
        let round = ctx.round().value();
        for m in ctx.inbox() {
            self.history
                .push((round, m.from.index(), m.bytes().to_vec()));
        }
        let nonce: u8 = ctx.rng().gen();
        let payload = vec![self.id as u8, round as u8, nonce];
        ctx.broadcast(payload);
    }

    fn scramble(&mut self, rng: &mut rand::rngs::StdRng) {
        // Make fault injection visible in subsequent payloads.
        self.id ^= rng.gen::<u64>() & 0x7F;
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A churn schedule touching every intervention kind: a disconnect, a
/// reconnect, a delivery-model switch and a transient fault.
fn churn_schedule(n: usize) -> Schedule {
    Schedule::new()
        .at(2, ScheduledAction::Disconnect(ProcessId(1)))
        .at(4, ScheduledAction::Inject(TransientFault::total(n, 5)))
        .at(
            6,
            ScheduledAction::Reconnect(ProcessId(1), vec![ProcessId(0), ProcessId(2)]),
        )
        .at(8, ScheduledAction::SetDelivery(Delivery::Lossy { p: 0.35 }))
}

fn build(topology: Topology, shards: usize, colluders: bool) -> Simulation {
    let n = topology.len();
    let cabal = Cabal::seeded(77);
    Simulation::builder(topology)
        .seed(1234)
        .delivery(Delivery::Lossy { p: 0.2 })
        .schedule(churn_schedule(n))
        .shards(shards)
        .build_with(|id| {
            if colluders && id.index() >= n - 2 {
                Box::new(cabal.member()) as Box<dyn Process>
            } else {
                Box::new(HistoryChatter::new(id.index() as u64))
            }
        })
}

fn histories(sim: &Simulation) -> Vec<Vec<(u64, usize, Vec<u8>)>> {
    (0..sim.len())
        .filter_map(|i| {
            sim.process_as::<HistoryChatter>(ProcessId(i))
                .map(|p| p.history.clone())
        })
        .collect()
}

fn assert_sharded_matches_serial(make_topology: impl Fn() -> Topology, label: &str) {
    let mut serial = build(make_topology(), 1, true);
    serial.run(16);
    let serial_histories = histories(&serial);
    assert!(
        serial.trace().messages_dropped_lossy > 0,
        "{label}: loss model engaged"
    );
    assert!(
        serial.trace().messages_dropped_fault > 0,
        "{label}: scheduled fault engaged"
    );

    for shards in [2, 8] {
        let mut sharded = build(make_topology(), shards, true);
        sharded.run(16);
        assert_eq!(
            serial.trace(),
            sharded.trace(),
            "{label}: trace at {shards} shards"
        );
        assert_eq!(
            serial_histories,
            histories(&sharded),
            "{label}: delivery histories at {shards} shards"
        );
    }
}

#[test]
fn complete_topology_byte_identical_across_shard_counts() {
    assert_sharded_matches_serial(|| Topology::complete(12), "complete(12)");
}

#[test]
fn ring_topology_byte_identical_across_shard_counts() {
    assert_sharded_matches_serial(|| Topology::ring(13), "ring(13)");
}

#[test]
fn grid_topology_byte_identical_across_shard_counts() {
    assert_sharded_matches_serial(|| Topology::grid(4, 4), "grid(4,4)");
}

/// Shard counts that do not divide n (and exceed it) still reproduce the
/// serial trace: partitioning is an implementation detail, not a semantic
/// input.
#[test]
fn ragged_and_oversized_shard_counts_are_identical() {
    let mut serial = build(Topology::complete(7), 1, false);
    serial.run(12);
    for shards in [2, 3, 5, 6, 7, 64] {
        let mut sharded = build(Topology::complete(7), shards, false);
        sharded.run(12);
        assert_eq!(serial.trace(), sharded.trace(), "shards={shards}");
        assert_eq!(histories(&serial), histories(&sharded), "shards={shards}");
    }
}

/// Colluders split across shard boundaries still tell one coordinated,
/// reproducible lie per round: lie fabrication is a pure function of the
/// cabal key and the round, not of which member (or thread) asks first.
#[test]
fn cabal_lies_are_shard_position_independent() {
    let run = |shards: usize| {
        let cabal = Cabal::seeded(9);
        let mut sim = Simulation::builder(Topology::complete(8))
            .seed(5)
            .shards(shards)
            .build_with(|id| {
                // Members at ids 0 and 7 land in different shards at any
                // sharded split of 8 processes.
                if id.index() == 0 || id.index() == 7 {
                    Box::new(cabal.member()) as Box<dyn Process>
                } else {
                    Box::new(HistoryChatter::new(id.index() as u64))
                }
            });
        sim.run(6);
        histories(&sim)
    };
    let serial = run(1);
    // Both colluders delivered the same payload to p3 each round.
    let p3 = &serial[2]; // histories() skips the two colluders, p3 is index 2
    for round in 1..6 {
        let lies: Vec<&Vec<u8>> = p3
            .iter()
            .filter(|(r, from, _)| *r == round && (*from == 0 || *from == 7))
            .map(|(_, _, payload)| payload)
            .collect();
        assert_eq!(lies.len(), 2, "round {round}: both colluders heard");
        assert_eq!(lies[0], lies[1], "round {round}: one coordinated lie");
    }
    for shards in [2, 4, 8] {
        assert_eq!(serial, run(shards), "shards={shards}");
    }
}

//! Persistent-runtime determinism and steady-state thread accounting:
//! traces must be byte-identical at pool sizes 1/2/8, across pool *reuse*
//! (consecutive runs on one pool must see no stale scratch), and
//! steady-state sharded stepping must spawn **zero** new OS threads per
//! round — the per-round `thread::scope` spawn is gone for good.

use std::sync::{Mutex, MutexGuard};

use ga_simnet::colluding::Cabal;
use ga_simnet::prelude::*;
use ga_simnet::sim::Delivery;
use rand::Rng;

/// Serializes this binary's tests: the thread-accounting test reads the
/// process-wide OS thread count, which sibling tests' pool creation and
/// teardown would otherwise perturb mid-measurement on multi-core hosts
/// (the harness runs tests concurrently).
static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    EXCLUSIVE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Logs its delivery history and broadcasts an RNG-dependent payload, so
/// any mis-sharding, stale scratch or RNG drift shows up in the bytes.
struct Chatter {
    id: u64,
    history: Vec<(u64, usize, Vec<u8>)>,
}

impl Process for Chatter {
    fn on_pulse(&mut self, ctx: &mut Context<'_>) {
        let round = ctx.round().value();
        for m in ctx.inbox() {
            self.history
                .push((round, m.from.index(), m.bytes().to_vec()));
        }
        let nonce: u8 = ctx.rng().gen();
        ctx.broadcast(vec![self.id as u8, round as u8, nonce]);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn build(runtime: Runtime, shards: usize) -> Simulation {
    let cabal = Cabal::seeded(3);
    Simulation::builder(Topology::grid(4, 4))
        .seed(99)
        .delivery(Delivery::Lossy { p: 0.25 })
        .schedule(
            Schedule::new()
                .bisect(&Topology::grid(4, 4), 3, 9)
                .at(5, ScheduledAction::Inject(TransientFault::total(16, 2))),
        )
        .shards(shards)
        .runtime(runtime)
        .build_with(|id| {
            if id.index() == 7 {
                Box::new(cabal.member()) as Box<dyn Process>
            } else {
                Box::new(Chatter {
                    id: id.index() as u64,
                    history: Vec::new(),
                })
            }
        })
}

/// One process's delivery history: `(round, sender, payload)` per message.
type History = Vec<(u64, usize, Vec<u8>)>;

fn run_trace(runtime: Runtime, shards: usize) -> (Trace, Vec<History>) {
    let mut sim = build(runtime, shards);
    sim.run(14);
    let histories = (0..sim.len())
        .filter_map(|i| {
            sim.process_as::<Chatter>(ProcessId(i))
                .map(|p| p.history.clone())
        })
        .collect();
    (sim.trace().clone(), histories)
}

#[test]
fn traces_byte_identical_at_pool_sizes_1_2_8() {
    let _exclusive = exclusive();
    let baseline = run_trace(Runtime::serial(), 4);
    for threads in [2, 8] {
        let pool = Runtime::new(threads);
        assert_eq!(run_trace(pool, 4), baseline, "pool size {threads}");
    }
}

#[test]
fn pool_reuse_across_consecutive_runs_is_byte_identical() {
    let _exclusive = exclusive();
    // The stale-scratch regression: consecutive runs drawing from one
    // persistent pool (and resharded differently) must each reproduce the
    // fresh-pool trace exactly.
    let baseline = run_trace(Runtime::serial(), 4);
    let pool = Runtime::new(4);
    for attempt in 0..3 {
        assert_eq!(
            run_trace(pool.clone(), 4),
            baseline,
            "reused pool, run {attempt}"
        );
    }
    for shards in [2, 8, 3] {
        let serial = run_trace(Runtime::serial(), shards);
        assert_eq!(serial, baseline, "shard count never changes the trace");
        assert_eq!(
            run_trace(pool.clone(), shards),
            baseline,
            "reused pool at {shards} shards"
        );
    }
}

#[test]
fn two_simulations_share_one_pool_concurrently_consistent() {
    let _exclusive = exclusive();
    // Interleaved stepping of two sims on the same pool: neither's trace
    // may bleed into the other.
    let pool = Runtime::new(4);
    let mut a = build(pool.clone(), 4);
    let mut b = build(pool, 4);
    for _ in 0..14 {
        a.step();
        b.step();
    }
    assert_eq!(a.trace(), b.trace(), "same build, same trace");
    let solo = run_trace(Runtime::new(4), 4);
    assert_eq!(a.trace(), &solo.0);
}

/// Reads this process's OS thread count from /proc (Linux only; `None`
/// elsewhere, which skips the assertion rather than faking one).
fn os_thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

#[test]
fn steady_state_sharded_stepping_spawns_zero_threads_per_round() {
    let _exclusive = exclusive();
    let Some(_) = os_thread_count() else {
        eprintln!("no /proc/self/status; skipping thread accounting");
        return;
    };
    let pool = Runtime::new(4);
    let mut sim = build(pool, 4);
    // Warm up: the pool threads already exist (spawned at Runtime::new),
    // and the first steps populate the recycled scratch.
    sim.run(2);
    let before = os_thread_count().unwrap();
    sim.run(100);
    let after = os_thread_count().unwrap();
    assert_eq!(
        before, after,
        "steady-state sharded stepping must not spawn OS threads"
    );
    assert!(sim.trace().messages_delivered > 0);
}

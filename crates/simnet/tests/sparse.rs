//! Quiescence-aware stepping: the scheduler's O(active) contract.
//!
//! These tests pin the sparse-mode semantics documented in the crate
//! docs: processes that opt out of [`Process::always_active`] are not
//! stepped on pulses where nothing addressed them, fully quiescent
//! rounds still advance the clock and fire due schedule entries, and
//! none of it changes a trace — dense and sparse adjacency, serial and
//! sharded stepping all produce byte-identical histories.

use bytes::Bytes;
use ga_simnet::prelude::*;

/// Counts its own steps; quiescent unless a message (or fault) wakes it.
struct StepCounter {
    steps: usize,
}

impl Process for StepCounter {
    fn on_pulse(&mut self, _ctx: &mut Context<'_>) {
        self.steps += 1;
    }
    fn always_active(&self) -> bool {
        false
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// One starter emits a token, everyone else forwards arrivals away from
/// their sender — a perpetual single-token wavefront that keeps exactly
/// one process active per round while the rest of the ring sleeps.
struct Walker {
    start: bool,
}

impl Process for Walker {
    fn on_pulse(&mut self, ctx: &mut Context<'_>) {
        if self.start {
            self.start = false;
            let to = ctx.neighbors()[0];
            ctx.send(ProcessId(to), Bytes::from_static(&[0x77]));
            return;
        }
        if let Some(m) = ctx.inbox().first() {
            let from = m.from.index();
            let to = ctx
                .neighbors()
                .iter()
                .copied()
                .find(|&nb| nb != from)
                .unwrap_or(from);
            ctx.send(ProcessId(to), m.payload.clone());
        }
    }
    fn always_active(&self) -> bool {
        self.start
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

fn steps(sim: &Simulation, id: usize) -> usize {
    sim.process_as::<StepCounter>(ProcessId(id)).unwrap().steps
}

#[test]
fn all_quiescent_ring_advances_rounds_without_stepping_anyone() {
    let n = 64;
    let mut sim = Simulation::builder(Topology::ring(n))
        .build_with(|_| Box::new(StepCounter { steps: 0 }) as Box<dyn Process>);
    sim.run(50);
    assert_eq!(sim.round(), Round(50), "the clock still advances");
    assert!(
        (0..n).all(|i| steps(&sim, i) == 0),
        "no messages, no wake-ups: nobody steps"
    );
    assert_eq!(sim.pending_messages(), 0);
    assert_eq!(sim.quiescent_processes(), n);
}

#[test]
fn a_scramble_wakes_exactly_the_scrambled_processes() {
    let n = 16;
    let mut sim = Simulation::builder(Topology::ring(n))
        .build_with(|_| Box::new(StepCounter { steps: 0 }) as Box<dyn Process>);
    sim.run(5);
    sim.inject(&TransientFault::state_only([3, 9], 1));
    sim.run(5);
    for i in 0..n {
        let expected = usize::from(i == 3 || i == 9);
        assert_eq!(steps(&sim, i), expected, "process {i}");
    }
}

#[test]
fn a_due_schedule_entry_fires_in_an_otherwise_quiescent_round() {
    let n = 8;
    let schedule = Schedule::new().at(
        3,
        ScheduledAction::Inject(TransientFault::state_only([0], 7)),
    );
    let mut sim = Simulation::builder(Topology::ring(n))
        .schedule(schedule)
        .build_with(|_| Box::new(StepCounter { steps: 0 }) as Box<dyn Process>);
    sim.run(10);
    assert_eq!(steps(&sim, 0), 1, "the scheduled fault woke the victim");
    assert!((1..n).all(|i| steps(&sim, i) == 0));
}

#[test]
fn a_single_token_keeps_exactly_one_process_active() {
    let n = 32;
    let mut sim = Simulation::builder(Topology::ring(n)).build_with(|id| {
        Box::new(Walker {
            start: id.index() == 0,
        }) as Box<dyn Process>
    });
    sim.run(2);
    for _ in 0..10 {
        assert_eq!(sim.pending_messages(), 1, "one token in flight");
        assert_eq!(sim.quiescent_processes(), n - 1);
        sim.step();
    }
    assert_eq!(
        sim.trace().messages_delivered,
        12,
        "one delivery per round after the starter fired"
    );
}

#[test]
fn traces_are_identical_across_repr_and_exec_choices() {
    let n = 48;
    let run = |repr: AdjacencyRepr, shards: usize| {
        let mut topology = Topology::ring(n);
        topology.set_repr(repr);
        let mut sim = Simulation::builder(topology)
            .seed(11)
            .shards(shards)
            .telemetry(TelemetryConfig::default())
            .build_with(|id| {
                Box::new(Walker {
                    start: id.index() == 0,
                }) as Box<dyn Process>
            });
        sim.run(30);
        let events = sim.events_mut().expect("telemetry on").drain();
        (sim.trace().clone(), events)
    };
    let baseline = run(AdjacencyRepr::Dense, 1);
    for (repr, shards) in [
        (AdjacencyRepr::Sparse, 1),
        (AdjacencyRepr::Dense, 4),
        (AdjacencyRepr::Sparse, 4),
    ] {
        let other = run(repr, shards);
        assert_eq!(baseline.0, other.0, "trace diverged at {repr:?} s{shards}");
        assert_eq!(
            baseline.1, other.1,
            "event stream diverged at {repr:?} s{shards}"
        );
    }
}

#[test]
fn grid1m_builds_fast() {
    // Tier-1 build smoke: the streaming CSR builder must construct the
    // 1000x1000 grid (n = 10^6, 2 * (999*1000 + 1000*999) directed rows)
    // inside the gate's timeout — a reintroduced per-vertex Vec
    // intermediate or an O(n^2) pass blows the bound immediately. The
    // spot checks pin corner/interior degrees so a "fast but wrong"
    // builder can't pass.
    let topology = Topology::grid(1000, 1000);
    assert_eq!(topology.len(), 1_000_000);
    assert_eq!(topology.edge_count(), 999 * 1000 + 1000 * 999);
    assert_eq!(topology.neighbors(ProcessId(0)).len(), 2, "corner");
    assert_eq!(topology.neighbors(ProcessId(500)).len(), 3, "edge");
    assert_eq!(topology.neighbors(ProcessId(500_500)).len(), 4, "interior");
    // One slab-built process table on top: the whole n=10^6 substrate
    // (topology + processes + inboxes) comes up in a handful of
    // allocations.
    let sim = Simulation::builder(topology).build_slab(|id| Walker {
        start: id.index() == 0,
    });
    assert_eq!(sim.len(), 1_000_000);
}

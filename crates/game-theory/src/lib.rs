//! # ga-game-theory — strategic games, equilibria and anarchy costs
//!
//! The definitional core of the game-authority reproduction, following the
//! paper's §2 preliminaries (which in turn follow Osborne–Rubinstein):
//!
//! * a game `Γ = ⟨N, (Πᵢ), (uᵢ)⟩` is a finite agent set, finite per-agent
//!   strategy sets and per-agent **cost** functions (lower is better — the
//!   paper's `uᵢ` are costs: an agent deviates when the deviation's cost is
//!   *smaller*);
//! * [pure strategy profiles](profile::PureProfile) (PSPs), [mixed
//!   strategies](profile::MixedStrategy) and [best
//!   responses](best_response::best_response);
//! * [pure Nash equilibria](nash::pure_nash_equilibria) by enumeration,
//!   [mixed equilibria](mixed) for bimatrix games by support enumeration,
//!   and learning dynamics ([fictitious play](fictitious_play), [best-response
//!   dynamics](nash::best_response_dynamics));
//! * a [repeated-game engine](repeated) — the paper's plays are repeated
//!   games refereed by the authority;
//! * the cost criteria the paper compares: social cost, optimum, price of
//!   anarchy / stability / malice, and the paper's new **multi-round anarchy
//!   cost** `R(k)` (§6), in [`cost`].
//!
//! ## Quickstart
//!
//! ```
//! use ga_game_theory::prelude::*;
//!
//! // Prisoner's dilemma in cost form (years of prison; lower is better).
//! let pd = MatrixGame::from_costs(
//!     "prisoners-dilemma",
//!     vec![
//!         vec![(1.0, 1.0), (3.0, 0.0)],
//!         vec![(0.0, 3.0), (2.0, 2.0)],
//!     ],
//! );
//! let equilibria = pure_nash_equilibria(&pd);
//! assert_eq!(equilibria, vec![PureProfile::new(vec![1, 1])]); // defect/defect
//! ```

pub mod best_response;
pub mod cost;
pub mod fictitious_play;
pub mod game;
pub mod linalg;
pub mod mixed;
pub mod nash;
pub mod profile;
pub mod regret;
pub mod repeated;

/// Convenient glob import.
pub mod prelude {
    pub use crate::best_response::{best_response, is_best_response};
    pub use crate::cost::{optimal_social_cost, price_of_anarchy, price_of_stability, social_cost};
    pub use crate::game::{ClosureGame, Game, MatrixGame, TableGame};
    pub use crate::mixed::{expected_cost, support_enumeration};
    pub use crate::nash::{best_response_dynamics, is_pure_nash, pure_nash_equilibria};
    pub use crate::profile::{MixedProfile, MixedStrategy, PureProfile};
    pub use crate::repeated::{Policy, RepeatedGame, RoundRecord};
}

use std::error::Error;
use std::fmt;

/// Errors from equilibrium computation and profile validation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GameError {
    /// A profile's length or an action index does not fit the game.
    MalformedProfile(String),
    /// A mixed strategy's weights are negative or do not sum to 1.
    MalformedStrategy(String),
    /// A solver did not converge / no equilibrium found where one was
    /// required.
    NoEquilibrium,
    /// The operation requires a 2-player game.
    NotBimatrix,
}

impl fmt::Display for GameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GameError::MalformedProfile(why) => write!(f, "malformed profile: {why}"),
            GameError::MalformedStrategy(why) => write!(f, "malformed strategy: {why}"),
            GameError::NoEquilibrium => write!(f, "no equilibrium found"),
            GameError::NotBimatrix => write!(f, "operation requires a 2-player game"),
        }
    }
}

impl Error for GameError {}

/// Tolerance used throughout for floating-point cost comparisons.
pub const EPSILON: f64 = 1e-9;

//! Cost criteria: social cost, optimum, and the anarchy-family ratios.
//!
//! The paper's §1/§6 compare four ratios:
//!
//! * **Price of anarchy** (PoA, Koutsoupias–Papadimitriou): worst
//!   equilibrium vs. the centralistic optimum.
//! * **Price of stability** (PoS, Anshelevich et al.): best equilibrium vs.
//!   optimum.
//! * **Price of malice** (PoM, Moscibroda–Schmid–Wattenhofer): selfish
//!   system with `k` malicious agents vs. the purely selfish system.
//! * **Multi-round anarchy cost** `R(k) = SC(k)/OPT(k)` (the paper's new
//!   criterion, §6): the eventually-expected ratio for *repeated* games; see
//!   [`MultiRoundCost`].

use crate::game::Game;
use crate::nash::pure_nash_equilibria;
use crate::profile::{all_profiles, PureProfile};

/// Social cost of `profile`: the sum of **honest** agents' costs (§2:
/// "the social cost of a PSP is the sum of all individual costs of honest
/// agents"). Pass `None` to treat every agent as honest.
pub fn social_cost(game: &dyn Game, profile: &PureProfile, honest: Option<&[bool]>) -> f64 {
    (0..game.num_agents())
        .filter(|&i| honest.is_none_or(|h| h.get(i).copied().unwrap_or(true)))
        .map(|i| game.cost(i, profile))
        .sum()
}

/// The centralistic optimum: minimum social cost over all pure profiles
/// (exhaustive; exponential in agents).
pub fn optimal_social_cost(game: &dyn Game) -> (f64, PureProfile) {
    all_profiles(game)
        .map(|p| (social_cost(game, &p, None), p))
        .min_by(|(a, _), (b, _)| a.partial_cmp(b).expect("finite costs"))
        .expect("games have at least one profile")
}

/// Price of anarchy: worst PNE social cost over the optimum.
///
/// Returns `None` when the game has no PNE or the optimum is non-positive
/// (the ratio would be meaningless).
pub fn price_of_anarchy(game: &dyn Game) -> Option<f64> {
    let (opt, _) = optimal_social_cost(game);
    if opt <= 0.0 {
        return None;
    }
    pure_nash_equilibria(game)
        .into_iter()
        .map(|p| social_cost(game, &p, None) / opt)
        .max_by(|a, b| a.partial_cmp(b).expect("finite ratios"))
}

/// Price of stability: best PNE social cost over the optimum.
///
/// Returns `None` under the same conditions as [`price_of_anarchy`].
pub fn price_of_stability(game: &dyn Game) -> Option<f64> {
    let (opt, _) = optimal_social_cost(game);
    if opt <= 0.0 {
        return None;
    }
    pure_nash_equilibria(game)
        .into_iter()
        .map(|p| social_cost(game, &p, None) / opt)
        .min_by(|a, b| a.partial_cmp(b).expect("finite ratios"))
}

/// Price of malice for measured social costs: the ratio between the honest
/// agents' social cost when `k` malicious agents act, and the all-selfish
/// baseline.
///
/// Returns `None` if the baseline is non-positive.
pub fn price_of_malice(cost_with_malice: f64, cost_without_malice: f64) -> Option<f64> {
    if cost_without_malice <= 0.0 {
        None
    } else {
        Some(cost_with_malice / cost_without_malice)
    }
}

/// Accumulates the paper's §6 multi-round anarchy cost for a repeated game.
///
/// Per round, feed the realized social cost and the round-optimum; the
/// criterion is `R(k) = SC(k) / OPT(k)` where both sides accumulate over
/// the first `k` rounds. For the RRA game the paper proves
/// `R(k) ≤ 1 + 2b/k` and `R(∞) = 1` (Theorem 5).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MultiRoundCost {
    rounds: u64,
    /// Worst-case (or realized) cumulative max-load / social cost.
    sc: f64,
    /// Cumulative optimum.
    opt: f64,
    history: Vec<f64>,
}

impl MultiRoundCost {
    /// Creates an empty accumulator.
    pub fn new() -> MultiRoundCost {
        MultiRoundCost::default()
    }

    /// Records one round's realized social cost and optimum contribution,
    /// then returns the running ratio `R(k)`.
    pub fn record(&mut self, social_cost: f64, optimum: f64) -> f64 {
        self.rounds += 1;
        self.sc = social_cost;
        self.opt = optimum;
        let r = self.ratio();
        self.history.push(r);
        r
    }

    /// Rounds recorded so far (`k`).
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The current `R(k)` (`+∞` before any round or with a zero optimum).
    pub fn ratio(&self) -> f64 {
        if self.opt > 0.0 {
            self.sc / self.opt
        } else {
            f64::INFINITY
        }
    }

    /// The whole `R(1), …, R(k)` trajectory.
    pub fn trajectory(&self) -> &[f64] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::{ClosureGame, MatrixGame};

    fn pd() -> MatrixGame {
        MatrixGame::from_costs(
            "pd",
            vec![vec![(1.0, 1.0), (3.0, 0.0)], vec![(0.0, 3.0), (2.0, 2.0)]],
        )
    }

    #[test]
    fn social_cost_sums_all_by_default() {
        let g = pd();
        assert_eq!(social_cost(&g, &PureProfile::new(vec![0, 0]), None), 2.0);
        assert_eq!(social_cost(&g, &PureProfile::new(vec![1, 1]), None), 4.0);
    }

    #[test]
    fn social_cost_filters_dishonest() {
        let g = pd();
        let honest = [true, false];
        assert_eq!(
            social_cost(&g, &PureProfile::new(vec![0, 1]), Some(&honest)),
            3.0,
            "only row player's cost counts"
        );
    }

    #[test]
    fn optimum_of_pd_is_cooperate() {
        let (opt, profile) = optimal_social_cost(&pd());
        assert_eq!(opt, 2.0);
        assert_eq!(profile, PureProfile::new(vec![0, 0]));
    }

    #[test]
    fn pd_poa_and_pos_are_two() {
        // Unique PNE (D,D) with SC 4; OPT 2.
        assert_eq!(price_of_anarchy(&pd()), Some(2.0));
        assert_eq!(price_of_stability(&pd()), Some(2.0));
    }

    #[test]
    fn poa_none_without_pne() {
        let mp = MatrixGame::from_payoffs(
            "mp",
            vec![
                vec![(1.0, -1.0), (-1.0, 1.0)],
                vec![(-1.0, 1.0), (1.0, -1.0)],
            ],
        );
        assert_eq!(price_of_anarchy(&mp), None);
    }

    #[test]
    fn poa_differs_from_pos_with_multiple_pnes() {
        // Coordination game with one good and one bad equilibrium.
        let g = MatrixGame::from_costs(
            "coord",
            vec![vec![(1.0, 1.0), (5.0, 5.0)], vec![(5.0, 5.0), (3.0, 3.0)]],
        );
        assert_eq!(price_of_anarchy(&g), Some(3.0));
        assert_eq!(price_of_stability(&g), Some(1.0));
    }

    #[test]
    fn pom_ratio() {
        assert_eq!(price_of_malice(8.0, 4.0), Some(2.0));
        assert_eq!(price_of_malice(8.0, 0.0), None);
    }

    #[test]
    fn multi_round_cost_tracks_ratio() {
        let mut mrc = MultiRoundCost::new();
        assert!(mrc.ratio().is_infinite());
        let r1 = mrc.record(10.0, 5.0);
        assert_eq!(r1, 2.0);
        let r2 = mrc.record(12.0, 10.0);
        assert!((r2 - 1.2).abs() < 1e-12);
        assert_eq!(mrc.rounds(), 2);
        assert_eq!(mrc.trajectory(), &[2.0, 1.2]);
    }

    #[test]
    fn poa_on_three_player_congestion_game() {
        let g = ClosureGame::new("cong", 3, vec![2, 2, 2], |agent, p| {
            let mine = p.action(agent);
            p.actions().iter().filter(|&&a| a == mine).count() as f64
        });
        // OPT: split 2/1 → SC = 2·2 + 1 = 5; every PNE is a 2/1 split too.
        let poa = price_of_anarchy(&g).unwrap();
        assert!((poa - 1.0).abs() < 1e-9, "poa={poa}");
    }
}

//! Best responses — the judicial service's yardstick.
//!
//! The paper defines a *foul play* (§3.2 requirement 3) as an action that is
//! not the agent's best response to the previous play's profile; the
//! judicial service instructs punishment for exactly those actions. §2
//! assumes best responses are computable in polynomial time — here they are
//! a linear scan over the agent's action set.

use crate::game::Game;
use crate::profile::PureProfile;
use crate::EPSILON;

/// The set of best responses of `agent` to `profile`'s other coordinates:
/// all actions minimizing the agent's cost (ties included).
///
/// # Panics
///
/// Panics if `profile` does not fit `game` (validate at trust boundaries).
pub fn best_responses(game: &dyn Game, agent: usize, profile: &PureProfile) -> Vec<usize> {
    let m = game.num_actions(agent);
    assert!(m > 0, "agent has no actions");
    let mut best = f64::INFINITY;
    let mut arg = Vec::new();
    for action in 0..m {
        let cost = game.cost(agent, &profile.with_action(agent, action));
        if cost < best - EPSILON {
            best = cost;
            arg.clear();
            arg.push(action);
        } else if (cost - best).abs() <= EPSILON {
            arg.push(action);
        }
    }
    arg
}

/// The lowest-index best response (deterministic tie-break).
pub fn best_response(game: &dyn Game, agent: usize, profile: &PureProfile) -> usize {
    best_responses(game, agent, profile)[0]
}

/// Whether `agent`'s action *in* `profile` is a best response to the rest —
/// i.e. whether the agent played honestly by the paper's criterion.
pub fn is_best_response(game: &dyn Game, agent: usize, profile: &PureProfile) -> bool {
    let played = game.cost(agent, profile);
    let m = game.num_actions(agent);
    for action in 0..m {
        if game.cost(agent, &profile.with_action(agent, action)) < played - EPSILON {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::MatrixGame;

    fn pd() -> MatrixGame {
        // Cost form: (C,C)=1, (C,D)=3/0, (D,C)=0/3, (D,D)=2.
        MatrixGame::from_costs(
            "pd",
            vec![vec![(1.0, 1.0), (3.0, 0.0)], vec![(0.0, 3.0), (2.0, 2.0)]],
        )
    }

    #[test]
    fn defect_dominates_in_pd() {
        let g = pd();
        for other in 0..2 {
            let p = PureProfile::new(vec![0, other]);
            assert_eq!(best_response(&g, 0, &p), 1, "defect is dominant");
        }
    }

    #[test]
    fn is_best_response_detects_foul() {
        let g = pd();
        // Cooperating against a defector is not a best response.
        assert!(!is_best_response(&g, 0, &PureProfile::new(vec![0, 1])));
        assert!(is_best_response(&g, 0, &PureProfile::new(vec![1, 1])));
    }

    #[test]
    fn ties_are_all_reported() {
        let g = MatrixGame::from_costs(
            "tie",
            vec![vec![(1.0, 0.0), (1.0, 0.0)], vec![(1.0, 0.0), (1.0, 0.0)]],
        );
        let p = PureProfile::new(vec![0, 0]);
        assert_eq!(best_responses(&g, 0, &p), vec![0, 1]);
        // Any action is a best response under total indifference.
        assert!(is_best_response(&g, 0, &p));
        assert!(is_best_response(&g, 0, &PureProfile::new(vec![1, 0])));
    }

    #[test]
    fn best_response_ignores_current_action() {
        let g = pd();
        // Same opponent action, different own action: same best response.
        let a = best_response(&g, 0, &PureProfile::new(vec![0, 1]));
        let b = best_response(&g, 0, &PureProfile::new(vec![1, 1]));
        assert_eq!(a, b);
    }
}

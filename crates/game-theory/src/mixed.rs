//! Mixed strategies and mixed Nash equilibria for bimatrix games.
//!
//! "A game may not possess a PNE at all. However, if we extend the game to
//! include mixed strategy … then an equilibrium is guaranteed to exist"
//! (§2, citing Nash 1950). The authority must therefore audit mixed play
//! (paper §5); this module computes the equilibria those audits reference.
//!
//! [`support_enumeration`] finds all equilibria of a (nondegenerate)
//! bimatrix game by solving indifference equations over equal-size support
//! pairs with the tiny Gaussian solver in [`linalg`](crate::linalg).

use crate::game::{Game, MatrixGame};
use crate::linalg::solve;
use crate::profile::{all_profiles, MixedProfile, MixedStrategy};
use crate::{GameError, EPSILON};

/// Expected cost of `agent` under a fully mixed profile, by direct
/// summation over all pure profiles.
///
/// Exponential in agents — fine for the small games under audit.
pub fn expected_cost(game: &dyn Game, profile: &MixedProfile, agent: usize) -> f64 {
    all_profiles(game)
        .map(|p| profile.prob_of(&p) * game.cost(agent, &p))
        .sum()
}

/// Expected cost of `agent` when it deviates to pure `action` while others
/// keep playing `profile` — the quantity a mixed-equilibrium check compares
/// across actions.
pub fn expected_cost_of_deviation(
    game: &dyn Game,
    profile: &MixedProfile,
    agent: usize,
    action: usize,
) -> f64 {
    let mut strategies = profile.strategies().to_vec();
    strategies[agent] = MixedStrategy::pure(action, game.num_actions(agent));
    expected_cost(game, &MixedProfile::new(strategies), agent)
}

/// Whether `profile` is a mixed Nash equilibrium of `game` (within
/// `tol`): no agent has a pure deviation with strictly lower expected cost.
pub fn is_mixed_nash(game: &dyn Game, profile: &MixedProfile, tol: f64) -> bool {
    for agent in 0..game.num_agents() {
        let current = expected_cost(game, profile, agent);
        for action in 0..game.num_actions(agent) {
            if expected_cost_of_deviation(game, profile, agent, action) < current - tol {
                return false;
            }
        }
    }
    true
}

/// A mixed equilibrium of a bimatrix game.
#[derive(Debug, Clone, PartialEq)]
pub struct BimatrixEquilibrium {
    /// Row player's strategy.
    pub row: MixedStrategy,
    /// Column player's strategy.
    pub col: MixedStrategy,
    /// Row player's equilibrium expected cost.
    pub row_cost: f64,
    /// Column player's equilibrium expected cost.
    pub col_cost: f64,
}

/// Finds all mixed Nash equilibria of a bimatrix game by support
/// enumeration.
///
/// Iterates equal-size support pairs, solves each pair's indifference
/// system, and keeps solutions that are valid distributions with no
/// profitable outside-support deviation. Complete for nondegenerate games;
/// degenerate games may additionally have equilibrium *components*, of
/// which this returns the vertices it encounters.
///
/// # Errors
///
/// Never errs for well-formed games; returns an empty vector only for
/// degenerate corner cases where numerics reject every support pair
/// (callers may fall back to [`fictitious_play`](crate::fictitious_play)).
pub fn support_enumeration(game: &MatrixGame) -> Result<Vec<BimatrixEquilibrium>, GameError> {
    let m = game.rows();
    let n = game.cols();
    let mut found: Vec<BimatrixEquilibrium> = Vec::new();

    for size in 1..=m.min(n) {
        for row_support in subsets_of_size(m, size) {
            for col_support in subsets_of_size(n, size) {
                if let Some(eq) = try_support(game, &row_support, &col_support) {
                    if !found.iter().any(|e| same_equilibrium(e, &eq)) {
                        found.push(eq);
                    }
                }
            }
        }
    }
    Ok(found)
}

/// All `size`-element subsets of `0..n` (lexicographic).
fn subsets_of_size(n: usize, size: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    fn rec(
        start: usize,
        n: usize,
        size: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if current.len() == size {
            out.push(current.clone());
            return;
        }
        for i in start..n {
            current.push(i);
            rec(i + 1, n, size, current, out);
            current.pop();
        }
    }
    rec(0, n, size, &mut current, &mut out);
    out
}

fn same_equilibrium(a: &BimatrixEquilibrium, b: &BimatrixEquilibrium) -> bool {
    let close = |x: &[f64], y: &[f64]| x.iter().zip(y).all(|(p, q)| (p - q).abs() < 1e-6);
    close(a.row.weights(), b.row.weights()) && close(a.col.weights(), b.col.weights())
}

/// Solves the indifference equations for one support pair.
fn try_support(
    game: &MatrixGame,
    row_support: &[usize],
    col_support: &[usize],
) -> Option<BimatrixEquilibrium> {
    let k = row_support.len();
    debug_assert_eq!(k, col_support.len());
    let m = game.rows();
    let n = game.cols();

    // Solve for the column player's mixture y (over col_support) and the
    // row player's equilibrium cost v: every supported row is indifferent.
    //   Σ_j A[i][j]·y_j − v = 0   for i ∈ row_support
    //   Σ_j y_j = 1
    let mut a = vec![vec![0.0; k + 1]; k + 1];
    let mut b = vec![0.0; k + 1];
    for (eq, &i) in row_support.iter().enumerate() {
        for (col_idx, &j) in col_support.iter().enumerate() {
            a[eq][col_idx] = game.at(i, j).0;
        }
        a[eq][k] = -1.0; // −v
    }
    for cell in &mut a[k][..k] {
        *cell = 1.0;
    }
    b[k] = 1.0;
    let sol_y = solve(&a, &b)?;
    let (y_support, v) = (&sol_y[..k], sol_y[k]);

    // Symmetric system for the row player's mixture x and the column
    // player's cost w.
    let mut a2 = vec![vec![0.0; k + 1]; k + 1];
    let mut b2 = vec![0.0; k + 1];
    for (eq, &j) in col_support.iter().enumerate() {
        for (row_idx, &i) in row_support.iter().enumerate() {
            a2[eq][row_idx] = game.at(i, j).1;
        }
        a2[eq][k] = -1.0;
    }
    for cell in &mut a2[k][..k] {
        *cell = 1.0;
    }
    b2[k] = 1.0;
    let sol_x = solve(&a2, &b2)?;
    let (x_support, w) = (&sol_x[..k], sol_x[k]);

    // Distributions must be non-negative.
    if y_support.iter().any(|&p| p < -1e-9) || x_support.iter().any(|&p| p < -1e-9) {
        return None;
    }

    // Expand to full-dimension strategies.
    let mut x = vec![0.0; m];
    for (idx, &i) in row_support.iter().enumerate() {
        x[i] = x_support[idx].max(0.0);
    }
    let mut y = vec![0.0; n];
    for (idx, &j) in col_support.iter().enumerate() {
        y[j] = y_support[idx].max(0.0);
    }

    // No profitable deviation outside the support.
    for i in 0..m {
        let cost_i: f64 = (0..n).map(|j| game.at(i, j).0 * y[j]).sum();
        if cost_i < v - 1e-7 {
            return None;
        }
    }
    for j in 0..n {
        let cost_j: f64 = (0..m).map(|i| game.at(i, j).1 * x[i]).sum();
        if cost_j < w - 1e-7 {
            return None;
        }
    }

    let row = MixedStrategy::new(normalize(x)).ok()?;
    let col = MixedStrategy::new(normalize(y)).ok()?;
    Some(BimatrixEquilibrium {
        row,
        col,
        row_cost: v,
        col_cost: w,
    })
}

fn normalize(mut v: Vec<f64>) -> Vec<f64> {
    let total: f64 = v.iter().sum();
    if total > EPSILON {
        for x in &mut v {
            *x /= total;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matching_pennies() -> MatrixGame {
        MatrixGame::from_payoffs(
            "mp",
            vec![
                vec![(1.0, -1.0), (-1.0, 1.0)],
                vec![(-1.0, 1.0), (1.0, -1.0)],
            ],
        )
    }

    #[test]
    fn matching_pennies_unique_mixed_equilibrium() {
        let eqs = support_enumeration(&matching_pennies()).unwrap();
        assert_eq!(eqs.len(), 1);
        let eq = &eqs[0];
        assert!((eq.row.prob(0) - 0.5).abs() < 1e-9);
        assert!((eq.col.prob(0) - 0.5).abs() < 1e-9);
        assert!(eq.row_cost.abs() < 1e-9, "zero-sum value is 0");
        assert!(eq.col_cost.abs() < 1e-9);
    }

    #[test]
    fn pd_equilibrium_is_pure_defect() {
        let pd = MatrixGame::from_costs(
            "pd",
            vec![vec![(1.0, 1.0), (3.0, 0.0)], vec![(0.0, 3.0), (2.0, 2.0)]],
        );
        let eqs = support_enumeration(&pd).unwrap();
        assert_eq!(eqs.len(), 1);
        assert_eq!(eqs[0].row.as_pure(), Some(1));
        assert_eq!(eqs[0].col.as_pure(), Some(1));
    }

    #[test]
    fn battle_of_sexes_has_three_equilibria() {
        // Cost form of battle of the sexes.
        let bos = MatrixGame::from_payoffs(
            "bos",
            vec![vec![(2.0, 1.0), (0.0, 0.0)], vec![(0.0, 0.0), (1.0, 2.0)]],
        );
        let eqs = support_enumeration(&bos).unwrap();
        assert_eq!(eqs.len(), 3, "two pure + one mixed");
        let mixed = eqs
            .iter()
            .find(|e| e.row.as_pure().is_none())
            .expect("mixed equilibrium exists");
        // Known: row plays (2/3, 1/3), col plays (1/3, 2/3).
        assert!((mixed.row.prob(0) - 2.0 / 3.0).abs() < 1e-9);
        assert!((mixed.col.prob(0) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn equilibria_pass_is_mixed_nash() {
        for game in [matching_pennies()] {
            for eq in support_enumeration(&game).unwrap() {
                let profile = MixedProfile::new(vec![eq.row.clone(), eq.col.clone()]);
                assert!(is_mixed_nash(&game, &profile, 1e-6));
            }
        }
    }

    #[test]
    fn non_equilibrium_fails_is_mixed_nash() {
        let game = matching_pennies();
        let profile = MixedProfile::new(vec![
            MixedStrategy::new(vec![0.9, 0.1]).unwrap(),
            MixedStrategy::new(vec![0.5, 0.5]).unwrap(),
        ]);
        // Row's skew is exploitable by col.
        assert!(!is_mixed_nash(&game, &profile, 1e-6));
    }

    #[test]
    fn expected_cost_of_uniform_matching_pennies_is_zero() {
        let game = matching_pennies();
        let profile = MixedProfile::new(vec![MixedStrategy::uniform(2), MixedStrategy::uniform(2)]);
        assert!(expected_cost(&game, &profile, 0).abs() < 1e-12);
        assert!(expected_cost(&game, &profile, 1).abs() < 1e-12);
    }

    #[test]
    fn deviation_cost_matches_manual_computation() {
        let game = matching_pennies();
        let profile = MixedProfile::new(vec![
            MixedStrategy::uniform(2),
            MixedStrategy::new(vec![0.75, 0.25]).unwrap(),
        ]);
        // Row plays heads vs (0.75, 0.25): cost = 0.75·(−1) + 0.25·(+1) = −0.5.
        let c = expected_cost_of_deviation(&game, &profile, 0, 0);
        assert!((c - (-0.5)).abs() < 1e-12);
    }

    #[test]
    fn subsets_enumeration_counts() {
        assert_eq!(subsets_of_size(4, 2).len(), 6);
        assert_eq!(subsets_of_size(3, 3), vec![vec![0, 1, 2]]);
        assert_eq!(subsets_of_size(3, 1).len(), 3);
    }
}

//! Strategy profiles: pure, mixed, and per-agent mixed strategies.

use crate::game::Game;
use crate::{GameError, EPSILON};

/// A pure strategy profile (PSP): one action index per agent.
///
/// The paper writes `π = (π₁, …, πₙ) ∈ Π ≡ ×ᵢ Πᵢ`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PureProfile(Vec<usize>);

impl PureProfile {
    /// Wraps raw action indices.
    pub fn new(actions: Vec<usize>) -> PureProfile {
        PureProfile(actions)
    }

    /// The action of `agent`.
    ///
    /// # Panics
    ///
    /// Panics if `agent` is out of range.
    pub fn action(&self, agent: usize) -> usize {
        self.0[agent]
    }

    /// All actions as a slice.
    pub fn actions(&self) -> &[usize] {
        &self.0
    }

    /// Number of agents covered.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the profile covers no agents.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// A copy with `agent`'s action replaced — the paper's unilateral
    /// deviation `(π′ᵢ, π₋ᵢ)`.
    #[must_use]
    pub fn with_action(&self, agent: usize, action: usize) -> PureProfile {
        let mut v = self.0.clone();
        v[agent] = action;
        PureProfile(v)
    }

    /// Validates the profile against a game's dimensions.
    ///
    /// # Errors
    ///
    /// [`GameError::MalformedProfile`] when the agent count or any action
    /// index does not fit.
    pub fn validate(&self, game: &dyn Game) -> Result<(), GameError> {
        if self.0.len() != game.num_agents() {
            return Err(GameError::MalformedProfile(format!(
                "profile covers {} agents, game has {}",
                self.0.len(),
                game.num_agents()
            )));
        }
        for (agent, &action) in self.0.iter().enumerate() {
            if action >= game.num_actions(agent) {
                return Err(GameError::MalformedProfile(format!(
                    "agent {agent} action {action} out of range (< {})",
                    game.num_actions(agent)
                )));
            }
        }
        Ok(())
    }
}

impl From<Vec<usize>> for PureProfile {
    fn from(v: Vec<usize>) -> Self {
        PureProfile(v)
    }
}

/// Iterates over every PSP of a game in lexicographic order.
///
/// Exponential in the number of agents; intended for the small matrix games
/// the authority referees and for exact PoA/PoS computation in tests.
pub fn all_profiles(game: &dyn Game) -> ProfileIter {
    ProfileIter {
        dims: (0..game.num_agents())
            .map(|i| game.num_actions(i))
            .collect(),
        next: Some(vec![0; game.num_agents()]),
    }
}

/// Iterator over all pure profiles (see [`all_profiles`]).
#[derive(Debug, Clone)]
pub struct ProfileIter {
    dims: Vec<usize>,
    next: Option<Vec<usize>>,
}

impl Iterator for ProfileIter {
    type Item = PureProfile;

    fn next(&mut self) -> Option<PureProfile> {
        let current = self.next.take()?;
        if self.dims.contains(&0) {
            return None;
        }
        let mut succ = current.clone();
        // Mixed-radix increment from the last agent.
        let mut i = succ.len();
        loop {
            if i == 0 {
                self.next = None;
                break;
            }
            i -= 1;
            succ[i] += 1;
            if succ[i] < self.dims[i] {
                self.next = Some(succ);
                break;
            }
            succ[i] = 0;
        }
        Some(PureProfile(current))
    }
}

/// A mixed strategy for one agent: a probability distribution over actions.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedStrategy(Vec<f64>);

impl MixedStrategy {
    /// Validates and wraps a probability vector.
    ///
    /// # Errors
    ///
    /// [`GameError::MalformedStrategy`] if any weight is negative/non-finite
    /// or the weights do not sum to 1 (tolerance 1e-6).
    pub fn new(weights: Vec<f64>) -> Result<MixedStrategy, GameError> {
        if weights.is_empty() {
            return Err(GameError::MalformedStrategy("empty support".into()));
        }
        if weights.iter().any(|w| !w.is_finite() || *w < -EPSILON) {
            return Err(GameError::MalformedStrategy(
                "weights must be finite and non-negative".into(),
            ));
        }
        let total: f64 = weights.iter().sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(GameError::MalformedStrategy(format!(
                "weights sum to {total}, expected 1"
            )));
        }
        Ok(MixedStrategy(weights))
    }

    /// The pure strategy playing `action` with probability 1 among
    /// `num_actions` actions.
    pub fn pure(action: usize, num_actions: usize) -> MixedStrategy {
        let mut w = vec![0.0; num_actions];
        w[action] = 1.0;
        MixedStrategy(w)
    }

    /// The uniform distribution over `num_actions` actions.
    pub fn uniform(num_actions: usize) -> MixedStrategy {
        MixedStrategy(vec![1.0 / num_actions as f64; num_actions])
    }

    /// Probability of `action` (0 if out of range).
    pub fn prob(&self, action: usize) -> f64 {
        self.0.get(action).copied().unwrap_or(0.0)
    }

    /// The probability vector.
    pub fn weights(&self) -> &[f64] {
        &self.0
    }

    /// Number of actions covered.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the strategy covers no actions (never true — `new` rejects
    /// empty supports).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Actions with non-negligible probability.
    pub fn support(&self) -> Vec<usize> {
        self.0
            .iter()
            .enumerate()
            .filter(|(_, &w)| w > 1e-9)
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether this strategy is (numerically) pure.
    pub fn as_pure(&self) -> Option<usize> {
        let support = self.support();
        match support.as_slice() {
            [only] if self.0[*only] > 1.0 - 1e-9 => Some(*only),
            _ => None,
        }
    }
}

/// A mixed profile: one [`MixedStrategy`] per agent.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedProfile(Vec<MixedStrategy>);

impl MixedProfile {
    /// Wraps per-agent strategies.
    pub fn new(strategies: Vec<MixedStrategy>) -> MixedProfile {
        MixedProfile(strategies)
    }

    /// The strategy of `agent`.
    ///
    /// # Panics
    ///
    /// Panics if `agent` is out of range.
    pub fn strategy(&self, agent: usize) -> &MixedStrategy {
        &self.0[agent]
    }

    /// All strategies.
    pub fn strategies(&self) -> &[MixedStrategy] {
        &self.0
    }

    /// Number of agents covered.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the profile covers no agents.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Probability this profile assigns to a pure profile.
    pub fn prob_of(&self, pure: &PureProfile) -> f64 {
        self.0
            .iter()
            .zip(pure.actions())
            .map(|(s, &a)| s.prob(a))
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::MatrixGame;

    fn pd() -> MatrixGame {
        MatrixGame::from_costs(
            "pd",
            vec![vec![(1.0, 1.0), (3.0, 0.0)], vec![(0.0, 3.0), (2.0, 2.0)]],
        )
    }

    #[test]
    fn with_action_is_unilateral() {
        let p = PureProfile::new(vec![0, 1, 2]);
        let q = p.with_action(1, 5);
        assert_eq!(q.actions(), &[0, 5, 2]);
        assert_eq!(p.actions(), &[0, 1, 2], "original untouched");
    }

    #[test]
    fn validate_accepts_good_profile() {
        let g = pd();
        assert!(PureProfile::new(vec![0, 1]).validate(&g).is_ok());
    }

    #[test]
    fn validate_rejects_wrong_arity_and_range() {
        let g = pd();
        assert!(PureProfile::new(vec![0]).validate(&g).is_err());
        assert!(PureProfile::new(vec![0, 2]).validate(&g).is_err());
    }

    #[test]
    fn all_profiles_enumerates_cartesian_product() {
        let g = pd();
        let all: Vec<PureProfile> = all_profiles(&g).collect();
        assert_eq!(all.len(), 4);
        assert_eq!(all[0], PureProfile::new(vec![0, 0]));
        assert_eq!(all[3], PureProfile::new(vec![1, 1]));
    }

    #[test]
    fn mixed_strategy_validation() {
        assert!(MixedStrategy::new(vec![0.5, 0.5]).is_ok());
        assert!(MixedStrategy::new(vec![0.6, 0.6]).is_err());
        assert!(MixedStrategy::new(vec![-0.1, 1.1]).is_err());
        assert!(MixedStrategy::new(vec![]).is_err());
        assert!(MixedStrategy::new(vec![f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn uniform_and_pure_constructors() {
        let u = MixedStrategy::uniform(4);
        assert!((u.prob(2) - 0.25).abs() < 1e-12);
        let p = MixedStrategy::pure(1, 3);
        assert_eq!(p.as_pure(), Some(1));
        assert_eq!(u.as_pure(), None);
        assert_eq!(p.support(), vec![1]);
    }

    #[test]
    fn mixed_profile_prob_of_multiplies() {
        let mp = MixedProfile::new(vec![MixedStrategy::uniform(2), MixedStrategy::uniform(2)]);
        assert!((mp.prob_of(&PureProfile::new(vec![0, 1])) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn profile_iter_handles_heterogeneous_dims() {
        use crate::game::ClosureGame;
        let g = ClosureGame::new("het", 2, vec![2, 3], |_, _| 0.0);
        let all: Vec<PureProfile> = all_profiles(&g).collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all.last().unwrap().actions(), &[1, 2]);
    }
}

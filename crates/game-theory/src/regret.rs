//! Regret matching and correlated equilibria (Hart–Mas-Colell).
//!
//! An extension the paper's framework invites: the game authority can
//! certify not only Nash play but any *auditable learning dynamic*, since
//! every sampled action is committed and replayable (§5.3). Regret
//! matching is the canonical such dynamic: each agent plays actions with
//! probability proportional to positive cumulative regret, and the
//! empirical joint distribution converges to the set of **correlated
//! equilibria** — a natural solution concept when a middleware (the
//! authority!) can act as the correlation device.

use std::collections::HashMap;

use rand::Rng;

use crate::game::Game;
use crate::profile::PureProfile;

/// Result of a regret-matching run.
#[derive(Debug, Clone)]
pub struct RegretOutcome {
    /// Empirical joint distribution over pure profiles.
    pub joint: HashMap<PureProfile, f64>,
    /// Final cumulative regrets per agent and action.
    pub regrets: Vec<Vec<f64>>,
    /// Rounds played.
    pub rounds: u64,
}

impl RegretOutcome {
    /// The maximum per-agent average swap regret — ε such that the joint
    /// distribution is an ε-correlated equilibrium.
    pub fn epsilon(&self) -> f64 {
        self.regrets
            .iter()
            .flat_map(|r| r.iter())
            .fold(0.0f64, |m, &r| m.max(r))
            / self.rounds.max(1) as f64
    }
}

/// Runs regret matching for `rounds` rounds.
///
/// Each round every agent samples from its positive-regret distribution
/// (uniform when no regret is positive), then updates the regret of every
/// alternative action `a`: `regret[a] += cost(played) − cost(a, others)`.
///
/// # Panics
///
/// Panics if `rounds == 0`.
pub fn regret_matching(game: &dyn Game, rounds: u64, rng: &mut impl Rng) -> RegretOutcome {
    assert!(rounds > 0, "need at least one round");
    let n = game.num_agents();
    let mut regrets: Vec<Vec<f64>> = (0..n).map(|i| vec![0.0; game.num_actions(i)]).collect();
    let mut joint: HashMap<PureProfile, f64> = HashMap::new();

    for _ in 0..rounds {
        // Sample simultaneously from positive-regret mixtures.
        let actions: Vec<usize> = (0..n)
            .map(|i| sample_positive_regret(&regrets[i], rng))
            .collect();
        let profile = PureProfile::new(actions);
        *joint.entry(profile.clone()).or_insert(0.0) += 1.0;

        // Regret update.
        for (agent, agent_regrets) in regrets.iter_mut().enumerate() {
            let played_cost = game.cost(agent, &profile);
            for (a, regret) in agent_regrets.iter_mut().enumerate() {
                let alt_cost = game.cost(agent, &profile.with_action(agent, a));
                *regret += played_cost - alt_cost;
            }
        }
    }

    for v in joint.values_mut() {
        *v /= rounds as f64;
    }
    RegretOutcome {
        joint,
        regrets,
        rounds,
    }
}

fn sample_positive_regret(regrets: &[f64], rng: &mut impl Rng) -> usize {
    let total: f64 = regrets.iter().map(|&r| r.max(0.0)).sum();
    if total <= 1e-12 {
        return rng.gen_range(0..regrets.len());
    }
    let mut x = rng.gen_range(0.0..total);
    for (i, &r) in regrets.iter().enumerate() {
        let p = r.max(0.0);
        if x < p {
            return i;
        }
        x -= p;
    }
    regrets.len() - 1
}

/// Checks whether `joint` is an ε-correlated equilibrium of `game`: for
/// every agent and every swap `a → b`, following the recommendation is
/// within `eps` of the swap, in expectation over the distribution.
pub fn is_correlated_equilibrium(
    game: &dyn Game,
    joint: &HashMap<PureProfile, f64>,
    eps: f64,
) -> bool {
    for agent in 0..game.num_agents() {
        for a in 0..game.num_actions(agent) {
            for b in 0..game.num_actions(agent) {
                if a == b {
                    continue;
                }
                // Expected gain from swapping a→b whenever recommended a.
                let mut gain = 0.0;
                for (profile, &p) in joint {
                    if profile.action(agent) != a {
                        continue;
                    }
                    gain += p
                        * (game.cost(agent, profile)
                            - game.cost(agent, &profile.with_action(agent, b)));
                }
                if gain > eps {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::MatrixGame;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    fn pd() -> MatrixGame {
        MatrixGame::from_costs(
            "pd",
            vec![vec![(1.0, 1.0), (3.0, 0.0)], vec![(0.0, 3.0), (2.0, 2.0)]],
        )
    }

    #[test]
    fn pd_converges_to_defection() {
        let out = regret_matching(&pd(), 3000, &mut rng());
        let dd = out
            .joint
            .get(&PureProfile::new(vec![1, 1]))
            .copied()
            .unwrap_or(0.0);
        assert!(dd > 0.9, "defect/defect mass = {dd}");
        assert!(out.epsilon() < 0.1, "eps = {}", out.epsilon());
    }

    #[test]
    fn matching_pennies_low_regret_and_balanced() {
        let mp = MatrixGame::from_payoffs(
            "mp",
            vec![
                vec![(1.0, -1.0), (-1.0, 1.0)],
                vec![(-1.0, 1.0), (1.0, -1.0)],
            ],
        );
        let out = regret_matching(&mp, 20_000, &mut rng());
        assert!(out.epsilon() < 0.1, "eps = {}", out.epsilon());
        // Row marginal close to uniform.
        let row_heads: f64 = out
            .joint
            .iter()
            .filter(|(p, _)| p.action(0) == 0)
            .map(|(_, &v)| v)
            .sum();
        assert!((row_heads - 0.5).abs() < 0.1, "row heads mass {row_heads}");
    }

    #[test]
    fn empirical_joint_is_eps_correlated_equilibrium() {
        let out = regret_matching(&pd(), 3000, &mut rng());
        assert!(is_correlated_equilibrium(
            &pd(),
            &out.joint,
            out.epsilon() + 1e-9
        ));
    }

    #[test]
    fn correlated_equilibrium_checker_rejects_bad_distribution() {
        // All mass on (C, C) in the PD: defecting gains 1 ⇒ not a CE.
        let mut joint = HashMap::new();
        joint.insert(PureProfile::new(vec![0, 0]), 1.0);
        assert!(!is_correlated_equilibrium(&pd(), &joint, 0.5));
        assert!(
            is_correlated_equilibrium(&pd(), &joint, 1.01),
            "but is a 1.01-CE"
        );
    }

    #[test]
    fn joint_distribution_sums_to_one() {
        let out = regret_matching(&pd(), 500, &mut rng());
        let total: f64 = out.joint.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}

//! Repeated-game engine.
//!
//! The authority referees *repeated* plays of the elected game: "we assume
//! that the number of plays is unknown, i.e., every play could be the last
//! one. Thus, selfish agents choose resources in an ad hoc manner … the
//! choices are according to a repeated Nash equilibrium; independent in
//! every round" (§6). [`RepeatedGame`] drives any [`Game`] for a number of
//! rounds, with per-agent [`Policy`] objects choosing actions from the
//! public history.

use crate::game::Game;
use crate::profile::PureProfile;

/// What one round of play produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// The round number, starting at 0.
    pub round: u64,
    /// The realized pure profile.
    pub profile: PureProfile,
    /// Per-agent costs under that profile.
    pub costs: Vec<f64>,
}

/// An agent's decision rule in a repeated game.
///
/// Policies see the full public history (the paper's repeated games are
/// complete-information: "at the end of every play all agents know the load
/// that exists on the resources").
pub trait Policy {
    /// Chooses `agent`'s action for round `round` given the history so far.
    fn choose(
        &mut self,
        game: &dyn Game,
        agent: usize,
        round: u64,
        history: &[RoundRecord],
    ) -> usize;

    /// Diagnostic label.
    fn name(&self) -> &'static str {
        "policy"
    }
}

/// Best-respond to the previous round's profile; play `initial` in round 0.
///
/// This is exactly the paper's honest-selfish behaviour: "every agent
/// chooses its best response π′ᵢ to π₋ᵢ where π is the PSP of the previous
/// play" (§3.3).
#[derive(Debug, Clone)]
pub struct BestResponder {
    /// Action for the first round, before any history exists.
    pub initial: usize,
}

impl Policy for BestResponder {
    fn choose(
        &mut self,
        game: &dyn Game,
        agent: usize,
        _round: u64,
        history: &[RoundRecord],
    ) -> usize {
        match history.last() {
            None => self.initial,
            Some(prev) => crate::best_response::best_response(game, agent, &prev.profile),
        }
    }

    fn name(&self) -> &'static str {
        "best-responder"
    }
}

/// Always plays the same action.
#[derive(Debug, Clone)]
pub struct FixedAction(
    /// The action to repeat forever.
    pub usize,
);

impl Policy for FixedAction {
    fn choose(&mut self, _: &dyn Game, _: usize, _: u64, _: &[RoundRecord]) -> usize {
        self.0
    }

    fn name(&self) -> &'static str {
        "fixed-action"
    }
}

/// Cycles deterministically through the agent's actions.
#[derive(Debug, Clone, Default)]
pub struct Cycler;

impl Policy for Cycler {
    fn choose(&mut self, game: &dyn Game, agent: usize, round: u64, _: &[RoundRecord]) -> usize {
        (round as usize) % game.num_actions(agent)
    }

    fn name(&self) -> &'static str {
        "cycler"
    }
}

/// Copies the other player's previous action; plays `opening` first.
///
/// The classic reciprocal strategy for two-player repeated games — part of
/// the repeated-game strategy repertoire the paper's follow-up work
/// (Dolev et al., "Strategies for repeated games with subsystem
/// takeovers") studies under the same middleware.
///
/// # Panics
///
/// [`choose`](Policy::choose) panics if the game is not 2-player.
#[derive(Debug, Clone)]
pub struct TitForTat {
    /// First-round action (the "nice" opening).
    pub opening: usize,
}

impl Policy for TitForTat {
    fn choose(
        &mut self,
        game: &dyn Game,
        agent: usize,
        _round: u64,
        history: &[RoundRecord],
    ) -> usize {
        assert_eq!(game.num_agents(), 2, "tit-for-tat is a 2-player strategy");
        match history.last() {
            None => self.opening,
            Some(prev) => prev.profile.action(1 - agent),
        }
    }

    fn name(&self) -> &'static str {
        "tit-for-tat"
    }
}

/// Cooperates until the opponent ever deviates from `cooperate`, then
/// plays `punish` forever (the grim trigger).
///
/// # Panics
///
/// [`choose`](Policy::choose) panics if the game is not 2-player.
#[derive(Debug, Clone)]
pub struct GrimTrigger {
    /// The cooperative action.
    pub cooperate: usize,
    /// The punishment action, played forever after a betrayal.
    pub punish: usize,
    triggered: bool,
}

impl GrimTrigger {
    /// A fresh, untriggered grim strategy.
    pub fn new(cooperate: usize, punish: usize) -> GrimTrigger {
        GrimTrigger {
            cooperate,
            punish,
            triggered: false,
        }
    }
}

impl Policy for GrimTrigger {
    fn choose(
        &mut self,
        game: &dyn Game,
        agent: usize,
        _round: u64,
        history: &[RoundRecord],
    ) -> usize {
        assert_eq!(game.num_agents(), 2, "grim trigger is a 2-player strategy");
        if let Some(prev) = history.last() {
            if prev.profile.action(1 - agent) != self.cooperate {
                self.triggered = true;
            }
        }
        if self.triggered {
            self.punish
        } else {
            self.cooperate
        }
    }

    fn name(&self) -> &'static str {
        "grim-trigger"
    }
}

/// Win-stay / lose-shift (Pavlov): repeat the last action if its realized
/// cost was at most `aspiration`, otherwise switch to the next action.
#[derive(Debug, Clone)]
pub struct WinStayLoseShift {
    /// First-round action.
    pub opening: usize,
    /// Cost threshold counting as a "win".
    pub aspiration: f64,
}

impl Policy for WinStayLoseShift {
    fn choose(
        &mut self,
        game: &dyn Game,
        agent: usize,
        _round: u64,
        history: &[RoundRecord],
    ) -> usize {
        match history.last() {
            None => self.opening,
            Some(prev) => {
                let last = prev.profile.action(agent);
                if prev.costs[agent] <= self.aspiration {
                    last
                } else {
                    (last + 1) % game.num_actions(agent)
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "win-stay-lose-shift"
    }
}

/// Drives a game for several rounds under per-agent policies.
pub struct RepeatedGame<'g> {
    game: &'g dyn Game,
    policies: Vec<Box<dyn Policy>>,
    history: Vec<RoundRecord>,
}

impl std::fmt::Debug for RepeatedGame<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RepeatedGame")
            .field("game", &self.game.name())
            .field("rounds", &self.history.len())
            .finish_non_exhaustive()
    }
}

impl<'g> RepeatedGame<'g> {
    /// Pairs a game with one policy per agent.
    ///
    /// # Panics
    ///
    /// Panics if the policy count differs from the agent count.
    pub fn new(game: &'g dyn Game, policies: Vec<Box<dyn Policy>>) -> RepeatedGame<'g> {
        assert_eq!(policies.len(), game.num_agents(), "one policy per agent");
        RepeatedGame {
            game,
            policies,
            history: Vec::new(),
        }
    }

    /// Plays one round; returns the new record.
    ///
    /// All policies observe the same pre-round history — choices are
    /// simultaneous, as requirement (2) of the judicial service demands.
    pub fn play_round(&mut self) -> &RoundRecord {
        let round = self.history.len() as u64;
        let actions: Vec<usize> = self
            .policies
            .iter_mut()
            .enumerate()
            .map(|(agent, policy)| {
                let a = policy.choose(self.game, agent, round, &self.history);
                assert!(
                    a < self.game.num_actions(agent),
                    "policy for agent {agent} chose illegal action {a}"
                );
                a
            })
            .collect();
        let profile = PureProfile::new(actions);
        let costs = (0..self.game.num_agents())
            .map(|agent| self.game.cost(agent, &profile))
            .collect();
        self.history.push(RoundRecord {
            round,
            profile,
            costs,
        });
        self.history.last().expect("just pushed")
    }

    /// Plays `rounds` rounds.
    pub fn play(&mut self, rounds: u64) -> &[RoundRecord] {
        for _ in 0..rounds {
            self.play_round();
        }
        &self.history
    }

    /// The full history.
    pub fn history(&self) -> &[RoundRecord] {
        &self.history
    }

    /// Cumulative cost of one agent over all rounds.
    pub fn cumulative_cost(&self, agent: usize) -> f64 {
        self.history.iter().map(|r| r.costs[agent]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::MatrixGame;

    fn pd() -> MatrixGame {
        MatrixGame::from_costs(
            "pd",
            vec![vec![(1.0, 1.0), (3.0, 0.0)], vec![(0.0, 3.0), (2.0, 2.0)]],
        )
    }

    #[test]
    fn best_responders_lock_into_nash() {
        let g = pd();
        let mut rg = RepeatedGame::new(
            &g,
            vec![
                Box::new(BestResponder { initial: 0 }),
                Box::new(BestResponder { initial: 0 }),
            ],
        );
        rg.play(5);
        // Round 0: (C, C); from round 1 on: (D, D).
        assert_eq!(rg.history()[0].profile, PureProfile::new(vec![0, 0]));
        for r in &rg.history()[1..] {
            assert_eq!(r.profile, PureProfile::new(vec![1, 1]));
        }
    }

    #[test]
    fn round_records_carry_costs() {
        let g = pd();
        let mut rg =
            RepeatedGame::new(&g, vec![Box::new(FixedAction(0)), Box::new(FixedAction(1))]);
        let rec = rg.play_round();
        assert_eq!(rec.costs, vec![3.0, 0.0]);
        assert_eq!(rec.round, 0);
    }

    #[test]
    fn cumulative_cost_sums_rounds() {
        let g = pd();
        let mut rg =
            RepeatedGame::new(&g, vec![Box::new(FixedAction(1)), Box::new(FixedAction(1))]);
        rg.play(4);
        assert_eq!(rg.cumulative_cost(0), 8.0);
        assert_eq!(rg.cumulative_cost(1), 8.0);
    }

    #[test]
    fn cycler_cycles() {
        let g = pd();
        let mut rg = RepeatedGame::new(&g, vec![Box::new(Cycler), Box::new(FixedAction(0))]);
        rg.play(4);
        let actions: Vec<usize> = rg.history().iter().map(|r| r.profile.action(0)).collect();
        assert_eq!(actions, vec![0, 1, 0, 1]);
    }

    #[test]
    fn tit_for_tat_sustains_cooperation_with_itself() {
        let g = pd();
        let mut rg = RepeatedGame::new(
            &g,
            vec![
                Box::new(TitForTat { opening: 0 }),
                Box::new(TitForTat { opening: 0 }),
            ],
        );
        rg.play(10);
        for r in rg.history() {
            assert_eq!(
                r.profile,
                PureProfile::new(vec![0, 0]),
                "mutual cooperation"
            );
        }
    }

    #[test]
    fn tit_for_tat_retaliates_once_per_betrayal() {
        let g = pd();
        let mut rg = RepeatedGame::new(
            &g,
            vec![
                Box::new(TitForTat { opening: 0 }),
                Box::new(Cycler), // cooperates on even rounds, defects on odd
            ],
        );
        rg.play(6);
        // TFT mirrors the cycler with one round of lag.
        let tft: Vec<usize> = rg.history().iter().map(|r| r.profile.action(0)).collect();
        assert_eq!(tft, vec![0, 0, 1, 0, 1, 0]);
    }

    #[test]
    fn grim_trigger_never_forgives() {
        let g = pd();
        let mut rg = RepeatedGame::new(
            &g,
            vec![
                Box::new(GrimTrigger::new(0, 1)),
                Box::new(FixedAction(1)), // always defects
            ],
        );
        rg.play(5);
        let grim: Vec<usize> = rg.history().iter().map(|r| r.profile.action(0)).collect();
        assert_eq!(grim, vec![0, 1, 1, 1, 1], "one round of grace, then war");
    }

    #[test]
    fn grim_trigger_cooperates_with_cooperator() {
        let g = pd();
        let mut rg = RepeatedGame::new(
            &g,
            vec![Box::new(GrimTrigger::new(0, 1)), Box::new(FixedAction(0))],
        );
        rg.play(5);
        assert!(rg.history().iter().all(|r| r.profile.action(0) == 0));
    }

    #[test]
    fn win_stay_lose_shift_switches_on_bad_outcomes() {
        let g = pd();
        // Aspiration 1.0: mutual cooperation (cost 1) is a win; being
        // betrayed (cost 3) is a loss.
        let mut rg = RepeatedGame::new(
            &g,
            vec![
                Box::new(WinStayLoseShift {
                    opening: 0,
                    aspiration: 1.0,
                }),
                Box::new(FixedAction(1)),
            ],
        );
        rg.play(3);
        let pavlov: Vec<usize> = rg.history().iter().map(|r| r.profile.action(0)).collect();
        // Round 0: C (cost 3, lose) → shift to D (cost 2, lose) → shift to C…
        assert_eq!(pavlov, vec![0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "one policy per agent")]
    fn policy_count_must_match() {
        let g = pd();
        RepeatedGame::new(&g, vec![Box::new(Cycler)]);
    }

    #[test]
    #[should_panic(expected = "illegal action")]
    fn illegal_action_is_rejected() {
        let g = pd();
        let mut rg =
            RepeatedGame::new(&g, vec![Box::new(FixedAction(7)), Box::new(FixedAction(0))]);
        rg.play_round();
    }
}

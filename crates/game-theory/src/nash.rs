//! Pure Nash equilibria and best-response dynamics.

use crate::best_response::{best_response, is_best_response};
use crate::game::Game;
use crate::profile::{all_profiles, PureProfile};

/// Whether `profile` is a pure Nash equilibrium (PNE): no agent can lower
/// its cost by a unilateral deviation (§2).
pub fn is_pure_nash(game: &dyn Game, profile: &PureProfile) -> bool {
    (0..game.num_agents()).all(|agent| is_best_response(game, agent, profile))
}

/// Enumerates all PNEs (lexicographic order).
///
/// Exhaustive over the profile space — exponential in agents, intended for
/// the small games the legislative service can put to a vote. "A game may
/// not possess a PNE at all" (§2): the result may be empty (e.g. matching
/// pennies).
pub fn pure_nash_equilibria(game: &dyn Game) -> Vec<PureProfile> {
    all_profiles(game)
        .filter(|p| is_pure_nash(game, p))
        .collect()
}

/// Result of running best-response dynamics.
#[derive(Debug, Clone, PartialEq)]
pub struct Dynamics {
    /// The final profile.
    pub profile: PureProfile,
    /// Number of improvement steps taken.
    pub steps: usize,
    /// Whether the dynamics reached a PNE (vs. hitting the step limit).
    pub converged: bool,
}

/// Iterated best-response dynamics: repeatedly let the lowest-index agent
/// with a profitable deviation switch to its best response.
///
/// Converges on potential games (congestion, load balancing); may cycle on
/// others (matching pennies), in which case `converged` is `false` after
/// `max_steps`.
pub fn best_response_dynamics(game: &dyn Game, start: PureProfile, max_steps: usize) -> Dynamics {
    let mut profile = start;
    for steps in 0..max_steps {
        let deviator = (0..game.num_agents()).find(|&a| !is_best_response(game, a, &profile));
        match deviator {
            None => {
                return Dynamics {
                    profile,
                    steps,
                    converged: true,
                }
            }
            Some(agent) => {
                let br = best_response(game, agent, &profile);
                profile = profile.with_action(agent, br);
            }
        }
    }
    let converged = is_pure_nash(game, &profile);
    Dynamics {
        profile,
        steps: max_steps,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::{ClosureGame, MatrixGame};

    fn pd() -> MatrixGame {
        MatrixGame::from_costs(
            "pd",
            vec![vec![(1.0, 1.0), (3.0, 0.0)], vec![(0.0, 3.0), (2.0, 2.0)]],
        )
    }

    fn matching_pennies() -> MatrixGame {
        MatrixGame::from_payoffs(
            "mp",
            vec![
                vec![(1.0, -1.0), (-1.0, 1.0)],
                vec![(-1.0, 1.0), (1.0, -1.0)],
            ],
        )
    }

    #[test]
    fn pd_has_unique_pne_defect_defect() {
        assert_eq!(
            pure_nash_equilibria(&pd()),
            vec![PureProfile::new(vec![1, 1])]
        );
    }

    #[test]
    fn matching_pennies_has_no_pne() {
        assert!(pure_nash_equilibria(&matching_pennies()).is_empty());
    }

    #[test]
    fn coordination_game_has_two_pnes() {
        let g = MatrixGame::from_costs(
            "coord",
            vec![vec![(0.0, 0.0), (1.0, 1.0)], vec![(1.0, 1.0), (0.0, 0.0)]],
        );
        let pnes = pure_nash_equilibria(&g);
        assert_eq!(
            pnes,
            vec![PureProfile::new(vec![0, 0]), PureProfile::new(vec![1, 1])]
        );
    }

    #[test]
    fn dynamics_converge_on_pd() {
        let d = best_response_dynamics(&pd(), PureProfile::new(vec![0, 0]), 100);
        assert!(d.converged);
        assert_eq!(d.profile, PureProfile::new(vec![1, 1]));
        assert!(d.steps <= 2);
    }

    #[test]
    fn dynamics_cycle_on_matching_pennies() {
        let d = best_response_dynamics(&matching_pennies(), PureProfile::new(vec![0, 0]), 50);
        assert!(!d.converged);
        assert_eq!(d.steps, 50);
    }

    #[test]
    fn dynamics_converge_on_three_player_congestion() {
        // 3 agents pick one of 2 resources; cost = load on chosen resource.
        let g = ClosureGame::new("cong", 3, vec![2, 2, 2], |agent, p| {
            let mine = p.action(agent);
            p.actions().iter().filter(|&&a| a == mine).count() as f64
        });
        let d = best_response_dynamics(&g, PureProfile::new(vec![0, 0, 0]), 100);
        assert!(d.converged);
        // Balanced: loads 2 and 1.
        let ones = d.profile.actions().iter().filter(|&&a| a == 1).count();
        assert!(ones == 1 || ones == 2);
        assert!(is_pure_nash(&g, &d.profile));
    }

    #[test]
    fn already_at_equilibrium_takes_zero_steps() {
        let d = best_response_dynamics(&pd(), PureProfile::new(vec![1, 1]), 10);
        assert!(d.converged);
        assert_eq!(d.steps, 0);
    }
}

//! Minimal dense linear algebra: Gaussian elimination with partial
//! pivoting.
//!
//! Used by [`mixed`](crate::mixed) support enumeration to solve the
//! indifference equations of candidate equilibria. Small systems only
//! (supports of bimatrix games), so a dense `O(n³)` solver is exactly
//! right.

/// Solves `A x = b` for square `A` (row-major), returning `None` when the
/// system is (numerically) singular.
///
/// # Panics
///
/// Panics if `a` is not `n × n` for `n = b.len()`.
pub fn solve(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let n = b.len();
    assert_eq!(a.len(), n, "matrix must be square");
    assert!(a.iter().all(|row| row.len() == n), "matrix must be square");

    // Augmented matrix.
    let mut m: Vec<Vec<f64>> = a
        .iter()
        .zip(b)
        .map(|(row, &rhs)| {
            let mut r = row.clone();
            r.push(rhs);
            r
        })
        .collect();

    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            m[i][col]
                .abs()
                .partial_cmp(&m[j][col].abs())
                .expect("finite")
        })?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..n {
            let factor = m[row][col] / m[col][col];
            if factor == 0.0 {
                continue;
            }
            // Split borrow: the pivot row is read while `row` is written.
            let (pivot_row, target_row) = {
                let (head, tail) = m.split_at_mut(row);
                (&head[col], &mut tail[0])
            };
            for (t, p) in target_row[col..=n].iter_mut().zip(&pivot_row[col..=n]) {
                *t -= factor * p;
            }
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = m[row][n];
        for k in row + 1..n {
            acc -= m[row][k] * x[k];
        }
        x[row] = acc / m[row][row];
        if !x[row].is_finite() {
            return None;
        }
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9)
    }

    #[test]
    fn solves_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve(&a, &[3.0, 4.0]).unwrap();
        assert!(close(&x, &[3.0, 4.0]));
    }

    #[test]
    fn solves_general_system() {
        // 2x + y = 5; x - y = 1  =>  x = 2, y = 1.
        let a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
        let x = solve(&a, &[5.0, 1.0]).unwrap();
        assert!(close(&x, &[2.0, 1.0]));
    }

    #[test]
    fn detects_singular() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn needs_pivoting() {
        // Zero pivot in the natural order.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!(close(&x, &[3.0, 2.0]));
    }

    #[test]
    fn three_by_three() {
        let a = vec![
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ];
        let x = solve(&a, &[8.0, -11.0, -3.0]).unwrap();
        assert!(close(&x, &[2.0, 3.0, -1.0]));
    }

    #[test]
    fn one_by_one() {
        assert!(close(&solve(&[vec![4.0]], &[8.0]).unwrap(), &[2.0]));
        assert!(solve(&[vec![0.0]], &[1.0]).is_none());
    }
}

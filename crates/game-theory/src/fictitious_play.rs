//! Fictitious play for bimatrix games.
//!
//! A learning dynamic: each round, each player best-responds to the
//! opponent's *empirical* action frequencies. For zero-sum games (e.g.
//! matching pennies) the empirical frequencies converge to a mixed
//! equilibrium — a useful fallback when
//! [`support_enumeration`](crate::mixed::support_enumeration) meets a
//! degenerate game, and a reference dynamic for the repeated-game
//! experiments.

use crate::game::MatrixGame;
use crate::profile::MixedStrategy;

/// Outcome of a fictitious-play run.
#[derive(Debug, Clone, PartialEq)]
pub struct FictitiousPlay {
    /// Row player's empirical mixture.
    pub row: MixedStrategy,
    /// Column player's empirical mixture.
    pub col: MixedStrategy,
    /// Rounds simulated.
    pub rounds: usize,
}

/// Runs fictitious play for `rounds` rounds from uniform priors.
///
/// Deterministic: ties in the best response break toward the lower index.
///
/// # Panics
///
/// Panics if `rounds == 0`.
pub fn fictitious_play(game: &MatrixGame, rounds: usize) -> FictitiousPlay {
    assert!(rounds > 0, "need at least one round");
    let m = game.rows();
    let n = game.cols();
    // Laplace-style unit priors keep round 1 well-defined.
    let mut row_counts = vec![1.0f64; m];
    let mut col_counts = vec![1.0f64; n];
    let mut row_plays = vec![0u64; m];
    let mut col_plays = vec![0u64; n];

    for _ in 0..rounds {
        let col_total: f64 = col_counts.iter().sum();
        let row_total: f64 = row_counts.iter().sum();

        // Row best-responds to empirical column mixture (min expected cost).
        let row_br = (0..m)
            .min_by(|&a, &b| {
                let ca: f64 = (0..n)
                    .map(|j| game.at(a, j).0 * col_counts[j] / col_total)
                    .sum();
                let cb: f64 = (0..n)
                    .map(|j| game.at(b, j).0 * col_counts[j] / col_total)
                    .sum();
                ca.partial_cmp(&cb).expect("finite costs")
            })
            .expect("nonempty action set");
        let col_br = (0..n)
            .min_by(|&a, &b| {
                let ca: f64 = (0..m)
                    .map(|i| game.at(i, a).1 * row_counts[i] / row_total)
                    .sum();
                let cb: f64 = (0..m)
                    .map(|i| game.at(i, b).1 * row_counts[i] / row_total)
                    .sum();
                ca.partial_cmp(&cb).expect("finite costs")
            })
            .expect("nonempty action set");

        row_counts[row_br] += 1.0;
        col_counts[col_br] += 1.0;
        row_plays[row_br] += 1;
        col_plays[col_br] += 1;
    }

    let to_mixture = |plays: &[u64]| {
        let total: u64 = plays.iter().sum();
        MixedStrategy::new(plays.iter().map(|&c| c as f64 / total as f64).collect())
            .expect("play frequencies form a distribution")
    };
    FictitiousPlay {
        row: to_mixture(&row_plays),
        col: to_mixture(&col_plays),
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_matching_pennies() {
        let mp = MatrixGame::from_payoffs(
            "mp",
            vec![
                vec![(1.0, -1.0), (-1.0, 1.0)],
                vec![(-1.0, 1.0), (1.0, -1.0)],
            ],
        );
        let fp = fictitious_play(&mp, 20_000);
        assert!((fp.row.prob(0) - 0.5).abs() < 0.02, "row={:?}", fp.row);
        assert!((fp.col.prob(0) - 0.5).abs() < 0.02, "col={:?}", fp.col);
    }

    #[test]
    fn finds_dominant_strategy_in_pd() {
        let pd = MatrixGame::from_costs(
            "pd",
            vec![vec![(1.0, 1.0), (3.0, 0.0)], vec![(0.0, 3.0), (2.0, 2.0)]],
        );
        let fp = fictitious_play(&pd, 500);
        assert!(fp.row.prob(1) > 0.95);
        assert!(fp.col.prob(1) > 0.95);
    }

    #[test]
    fn deterministic() {
        let mp = MatrixGame::from_payoffs(
            "mp",
            vec![
                vec![(1.0, -1.0), (-1.0, 1.0)],
                vec![(-1.0, 1.0), (1.0, -1.0)],
            ],
        );
        assert_eq!(fictitious_play(&mp, 100), fictitious_play(&mp, 100));
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_rejected() {
        let g = MatrixGame::from_costs("g", vec![vec![(0.0, 0.0)]]);
        fictitious_play(&g, 0);
    }
}

//! The [`Game`] trait and concrete game representations.

use crate::profile::PureProfile;

/// A finite strategic-form game `Γ = ⟨N, (Πᵢ), (uᵢ)⟩` in **cost**
/// convention: every agent wants to *minimize* `cost`.
///
/// The paper (§2) defines `uᵢ : Π → ℝ` as a "cost function (utility)" and a
/// deviation happens when the deviating agent's cost gets *smaller*; we keep
/// exactly that orientation. Games stated in payoff form (e.g. matching
/// pennies) are converted by negation — see
/// [`MatrixGame::from_payoffs`].
pub trait Game {
    /// Number of agents `|N|`.
    fn num_agents(&self) -> usize;

    /// Number of applicable actions `|Πᵢ|` for `agent`.
    fn num_actions(&self, agent: usize) -> usize;

    /// The cost `uᵢ(π)` of `agent` under pure profile `profile`.
    ///
    /// # Panics
    ///
    /// Implementations may panic on malformed profiles; validate with
    /// [`PureProfile::validate`] at trust boundaries.
    fn cost(&self, agent: usize, profile: &PureProfile) -> f64;

    /// A short diagnostic name.
    fn name(&self) -> &str {
        "game"
    }
}

/// A 2-player game stored as a cost bimatrix.
///
/// `costs[a][b] = (cost_row, cost_col)` when the row player picks `a` and
/// the column player picks `b`.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixGame {
    name: String,
    costs: Vec<Vec<(f64, f64)>>,
}

impl MatrixGame {
    /// Builds from a cost bimatrix (lower = better).
    ///
    /// # Panics
    ///
    /// Panics if `costs` is empty or ragged.
    pub fn from_costs(name: impl Into<String>, costs: Vec<Vec<(f64, f64)>>) -> MatrixGame {
        assert!(!costs.is_empty(), "need at least one row action");
        let cols = costs[0].len();
        assert!(cols > 0, "need at least one column action");
        assert!(
            costs.iter().all(|r| r.len() == cols),
            "cost matrix must be rectangular"
        );
        MatrixGame {
            name: name.into(),
            costs,
        }
    }

    /// Builds from a *payoff* bimatrix (higher = better) by negating, which
    /// is how payoff-form games from the literature (Fig. 1's matching
    /// pennies) enter the cost-form machinery.
    pub fn from_payoffs(name: impl Into<String>, payoffs: Vec<Vec<(f64, f64)>>) -> MatrixGame {
        let costs = payoffs
            .into_iter()
            .map(|row| row.into_iter().map(|(a, b)| (-a, -b)).collect())
            .collect();
        MatrixGame::from_costs(name, costs)
    }

    /// Row player's action count.
    pub fn rows(&self) -> usize {
        self.costs.len()
    }

    /// Column player's action count.
    pub fn cols(&self) -> usize {
        self.costs[0].len()
    }

    /// The cost pair at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn at(&self, row: usize, col: usize) -> (f64, f64) {
        self.costs[row][col]
    }
}

impl Game for MatrixGame {
    fn num_agents(&self) -> usize {
        2
    }

    fn num_actions(&self, agent: usize) -> usize {
        match agent {
            0 => self.rows(),
            1 => self.cols(),
            _ => panic!("matrix game has agents 0 and 1, got {agent}"),
        }
    }

    fn cost(&self, agent: usize, profile: &PureProfile) -> f64 {
        let (r, c) = (profile.action(0), profile.action(1));
        let (cr, cc) = self.costs[r][c];
        match agent {
            0 => cr,
            1 => cc,
            _ => panic!("matrix game has agents 0 and 1, got {agent}"),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// An n-player game with an explicit cost table.
///
/// Cost lookup is `O(1)` via mixed-radix profile indexing; table size is the
/// product of action counts, so this fits small games exactly (which is all
/// the authority needs for rule distribution: the *elected* game must be
/// communicable to every agent anyway).
#[derive(Debug, Clone, PartialEq)]
pub struct TableGame {
    name: String,
    dims: Vec<usize>,
    /// `table[profile_index][agent] = cost`.
    table: Vec<Vec<f64>>,
}

impl TableGame {
    /// Builds a table game by evaluating `cost(agent, profile)` for every
    /// profile of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn tabulate(
        name: impl Into<String>,
        dims: Vec<usize>,
        cost: impl Fn(usize, &PureProfile) -> f64,
    ) -> TableGame {
        assert!(dims.iter().all(|&d| d > 0), "dimensions must be positive");
        let n = dims.len();
        let total: usize = dims.iter().product();
        let mut table = Vec::with_capacity(total);
        for idx in 0..total {
            let profile = Self::unindex(&dims, idx);
            table.push((0..n).map(|agent| cost(agent, &profile)).collect());
        }
        TableGame {
            name: name.into(),
            dims,
            table,
        }
    }

    fn index(dims: &[usize], profile: &PureProfile) -> usize {
        let mut idx = 0;
        for (d, &a) in dims.iter().zip(profile.actions()) {
            debug_assert!(a < *d);
            idx = idx * d + a;
        }
        idx
    }

    fn unindex(dims: &[usize], mut idx: usize) -> PureProfile {
        let mut actions = vec![0; dims.len()];
        for i in (0..dims.len()).rev() {
            actions[i] = idx % dims[i];
            idx /= dims[i];
        }
        PureProfile::new(actions)
    }
}

impl Game for TableGame {
    fn num_agents(&self) -> usize {
        self.dims.len()
    }

    fn num_actions(&self, agent: usize) -> usize {
        self.dims[agent]
    }

    fn cost(&self, agent: usize, profile: &PureProfile) -> f64 {
        self.table[Self::index(&self.dims, profile)][agent]
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A game defined by a cost closure — for large or structured games
/// (congestion, resource allocation) where tabulation is wasteful.
pub struct ClosureGame<F> {
    name: String,
    num_agents: usize,
    dims: Vec<usize>,
    cost: F,
}

impl<F> std::fmt::Debug for ClosureGame<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClosureGame")
            .field("name", &self.name)
            .field("num_agents", &self.num_agents)
            .field("dims", &self.dims)
            .finish_non_exhaustive()
    }
}

impl<F: Fn(usize, &PureProfile) -> f64> ClosureGame<F> {
    /// Builds a closure-backed game.
    ///
    /// # Panics
    ///
    /// Panics if `dims.len() != num_agents` or any dimension is zero.
    pub fn new(
        name: impl Into<String>,
        num_agents: usize,
        dims: Vec<usize>,
        cost: F,
    ) -> ClosureGame<F> {
        assert_eq!(dims.len(), num_agents, "one dimension per agent");
        assert!(dims.iter().all(|&d| d > 0), "dimensions must be positive");
        ClosureGame {
            name: name.into(),
            num_agents,
            dims,
            cost,
        }
    }
}

impl<F: Fn(usize, &PureProfile) -> f64> Game for ClosureGame<F> {
    fn num_agents(&self) -> usize {
        self.num_agents
    }

    fn num_actions(&self, agent: usize) -> usize {
        self.dims[agent]
    }

    fn cost(&self, agent: usize, profile: &PureProfile) -> f64 {
        (self.cost)(agent, profile)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_game_costs() {
        let g = MatrixGame::from_costs("g", vec![vec![(1.0, 2.0), (3.0, 4.0)]]);
        let p = PureProfile::new(vec![0, 1]);
        assert_eq!(g.cost(0, &p), 3.0);
        assert_eq!(g.cost(1, &p), 4.0);
        assert_eq!(g.num_agents(), 2);
        assert_eq!(g.num_actions(0), 1);
        assert_eq!(g.num_actions(1), 2);
    }

    #[test]
    fn payoffs_negate_into_costs() {
        let g = MatrixGame::from_payoffs("mp", vec![vec![(1.0, -1.0)]]);
        let p = PureProfile::new(vec![0, 0]);
        assert_eq!(g.cost(0, &p), -1.0);
        assert_eq!(g.cost(1, &p), 1.0);
    }

    #[test]
    #[should_panic(expected = "rectangular")]
    fn ragged_matrix_rejected() {
        MatrixGame::from_costs("bad", vec![vec![(0.0, 0.0)], vec![]]);
    }

    #[test]
    fn table_game_round_trips_closure() {
        let dims = vec![2, 3, 2];
        let f = |agent: usize, p: &PureProfile| {
            (agent + 1) as f64 * p.actions().iter().sum::<usize>() as f64
        };
        let t = TableGame::tabulate("t", dims.clone(), f);
        for idx in 0..12 {
            let p = TableGame::unindex(&dims, idx);
            for agent in 0..3 {
                assert_eq!(t.cost(agent, &p), f(agent, &p));
            }
        }
    }

    #[test]
    fn table_index_unindex_inverse() {
        let dims = vec![3, 4, 2];
        for idx in 0..24 {
            let p = TableGame::unindex(&dims, idx);
            assert_eq!(TableGame::index(&dims, &p), idx);
        }
    }

    #[test]
    fn closure_game_evaluates() {
        let g = ClosureGame::new("c", 3, vec![2, 2, 2], |agent, p| {
            if p.action(agent) == 0 {
                1.0
            } else {
                0.0
            }
        });
        assert_eq!(g.cost(1, &PureProfile::new(vec![0, 0, 1])), 1.0);
        assert_eq!(g.cost(2, &PureProfile::new(vec![0, 0, 1])), 0.0);
        assert_eq!(g.name(), "c");
    }

    #[test]
    #[should_panic(expected = "one dimension per agent")]
    fn closure_game_dims_must_match() {
        ClosureGame::new("c", 2, vec![2], |_, _| 0.0);
    }
}

//! Property tests for the game-theory core: equilibrium and cost
//! invariants over random games.

use ga_game_theory::best_response::{best_response, best_responses, is_best_response};
use ga_game_theory::cost::{optimal_social_cost, social_cost};
use ga_game_theory::game::{Game, MatrixGame};
use ga_game_theory::mixed::{is_mixed_nash, support_enumeration};
use ga_game_theory::nash::{best_response_dynamics, is_pure_nash, pure_nash_equilibria};
use ga_game_theory::profile::{all_profiles, MixedProfile, PureProfile};
use proptest::prelude::*;

/// Strategy for random 2×2 cost bimatrices with small integer costs
/// (integers avoid knife-edge numerics in support enumeration).
fn matrix_2x2() -> impl Strategy<Value = MatrixGame> {
    proptest::collection::vec(-5i32..=5, 8).prop_map(|v| {
        MatrixGame::from_costs(
            "random",
            vec![
                vec![(v[0] as f64, v[1] as f64), (v[2] as f64, v[3] as f64)],
                vec![(v[4] as f64, v[5] as f64), (v[6] as f64, v[7] as f64)],
            ],
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Everything `pure_nash_equilibria` returns passes `is_pure_nash`,
    /// and nothing else does.
    #[test]
    fn pne_enumeration_is_exact(game in matrix_2x2()) {
        let pnes = pure_nash_equilibria(&game);
        for p in all_profiles(&game) {
            prop_assert_eq!(pnes.contains(&p), is_pure_nash(&game, &p));
        }
    }

    /// A best response is never beaten by any alternative.
    #[test]
    fn best_response_is_minimal(game in matrix_2x2(), r in 0usize..2, c in 0usize..2) {
        let profile = PureProfile::new(vec![r, c]);
        for agent in 0..2 {
            let br = best_response(&game, agent, &profile);
            let br_cost = game.cost(agent, &profile.with_action(agent, br));
            for a in 0..2 {
                prop_assert!(br_cost <= game.cost(agent, &profile.with_action(agent, a)) + 1e-9);
            }
            prop_assert!(is_best_response(&game, agent, &profile.with_action(agent, br)));
            prop_assert!(best_responses(&game, agent, &profile).contains(&br));
        }
    }

    /// Converged best-response dynamics end at a PNE.
    #[test]
    fn dynamics_end_at_equilibrium(game in matrix_2x2(), r in 0usize..2, c in 0usize..2) {
        let d = best_response_dynamics(&game, PureProfile::new(vec![r, c]), 200);
        if d.converged {
            prop_assert!(is_pure_nash(&game, &d.profile));
        }
    }

    /// The optimum really is minimal over all profiles.
    #[test]
    fn optimum_is_minimal(game in matrix_2x2()) {
        let (opt, profile) = optimal_social_cost(&game);
        prop_assert!((social_cost(&game, &profile, None) - opt).abs() < 1e-9);
        for p in all_profiles(&game) {
            prop_assert!(opt <= social_cost(&game, &p, None) + 1e-9);
        }
    }

    /// Support enumeration returns only genuine mixed equilibria, and (for
    /// 2×2 games, where degeneracy aside an equilibrium always exists)
    /// finds at least one.
    #[test]
    fn support_enumeration_sound(game in matrix_2x2()) {
        let eqs = support_enumeration(&game).unwrap();
        for eq in &eqs {
            let profile = MixedProfile::new(vec![eq.row.clone(), eq.col.clone()]);
            prop_assert!(is_mixed_nash(&game, &profile, 1e-6), "{:?}", eq);
        }
        // Degenerate integer games can defeat equal-support enumeration;
        // only require existence when a PNE exists (pure = size-1 support).
        if !pure_nash_equilibria(&game).is_empty() {
            prop_assert!(!eqs.is_empty());
        }
    }
}

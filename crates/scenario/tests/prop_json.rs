//! Property tests for the hand-rolled JSON emitter/parser.
//!
//! The parser reads artifacts this workspace itself emitted (`scenario
//! trace` over `--events` JSONL), but it must also survive anything else
//! that lands in those files: truncated writes, editor mangling, or plain
//! garbage. These properties pin the two contracts down: emitted JSON
//! round-trips byte-exactly, and arbitrary input returns `Err` — never a
//! panic, never a stack overflow.
//!
//! The vendored proptest has no recursive/`String` strategies, so values
//! are grown by a seeded generator: each case draws one `u64` and the
//! whole document is a pure function of it.

use ga_scenario::json::Json;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A random string mixing ASCII, escapes-to-be, control bytes and
/// astral-plane unicode — everything the emitter's `\u` machinery covers.
fn gen_string(rng: &mut StdRng) -> String {
    const POOL: &[char] = &[
        'a',
        'Z',
        '0',
        ' ',
        '"',
        '\\',
        '/',
        '\n',
        '\t',
        '\r',
        '\u{0}',
        '\u{1b}',
        'é',
        'λ',
        '中',
        '\u{1F600}',
    ];
    let len = rng.gen_range(0..12);
    (0..len)
        .map(|_| POOL[rng.gen_range(0..POOL.len())])
        .collect()
}

/// A random [`Json`] document of bounded depth, pure in the rng state.
fn gen_json(rng: &mut StdRng, depth: usize) -> Json {
    let top = if depth == 0 { 6 } else { 8 };
    match rng.gen_range(0..top) {
        0 => Json::Null,
        1 => Json::Bool(rng.next_u64() & 1 == 1),
        2 => Json::Int(rng.next_u64() as i64),
        3 => Json::Uint(rng.next_u64()),
        // Covers negatives, non-integral values and the occasional
        // non-finite one (which renders as `null` and must still fixpoint).
        4 => Json::Num(f64::from_bits(rng.next_u64())),
        5 => Json::Str(gen_string(rng)),
        6 => Json::Arr(
            (0..rng.gen_range(0..5))
                .map(|_| gen_json(rng, depth - 1))
                .collect(),
        ),
        _ => Json::Obj(
            (0..rng.gen_range(0..5))
                .map(|_| (gen_string(rng), gen_json(rng, depth - 1)))
                .collect(),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Whatever the emitter writes, the parser reads back to the same
    /// bytes. (Variant identity can legitimately shift — `Num(250.0)`
    /// renders as `250` and re-parses as `Uint` — so the byte-level
    /// fixpoint is the contract, matching how sweep summaries are
    /// compared.)
    #[test]
    fn render_parse_render_is_a_fixpoint(seed in any::<u64>()) {
        let v = gen_json(&mut StdRng::seed_from_u64(seed), 4);
        let rendered = v.render();
        match Json::parse(&rendered) {
            Ok(reparsed) => prop_assert_eq!(reparsed.render(), rendered),
            Err(e) => prop_assert!(false, "emitted JSON must parse: {e} in {rendered}"),
        }
    }

    /// Arbitrary byte garbage (lossily decoded) never panics the parser —
    /// it parses or it returns `Err`.
    #[test]
    fn garbage_input_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = Json::parse(&String::from_utf8_lossy(&bytes));
    }

    /// Mangling valid JSON (truncation, byte splices) never panics.
    #[test]
    fn mangled_valid_json_never_panics(
        seed in any::<u64>(),
        cut in any::<u64>(),
        splice_at in any::<u64>(),
        byte in any::<u8>(),
    ) {
        let rendered = gen_json(&mut StdRng::seed_from_u64(seed), 3).render();
        // Truncate at an arbitrary char boundary.
        let keep = (cut as usize) % (rendered.chars().count() + 1);
        let truncated: String = rendered.chars().take(keep).collect();
        let _ = Json::parse(&truncated);
        // Splice an arbitrary byte in (lossily re-decoded).
        let mut bytes = rendered.into_bytes();
        if !bytes.is_empty() {
            let i = (splice_at as usize) % bytes.len();
            bytes[i] = byte;
        }
        let _ = Json::parse(&String::from_utf8_lossy(&bytes));
    }

    /// Unbounded nesting is rejected with `Err` instead of exhausting the
    /// stack, whatever the bracket mix.
    #[test]
    fn deep_nesting_is_rejected_not_fatal(depth in 129usize..4096, obj in 0u8..2) {
        let open = if obj == 1 { "{\"k\":" } else { "[" };
        let bomb = open.repeat(depth);
        prop_assert!(Json::parse(&bomb).is_err());
    }
}

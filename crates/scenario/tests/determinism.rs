//! Sweep determinism: the same spec + seed range must produce identical
//! aggregated JSON at 1, 2 and 8 worker threads, and repeated runs must be
//! stable. (`scripts/tier1.sh` additionally diffs two separate *process*
//! invocations of the CLI.)

use std::sync::Arc;

use ga_scenario::prelude::*;
use ga_scenario::suites;

fn lossy_grid_scenarios() -> Vec<Arc<dyn Scenario>> {
    expand_grid(
        "det_lossy_grid",
        &ParamGrid::new().axis("p", [0.0, 0.2, 0.5]),
        |point| {
            let p = point[0].1;
            ScenarioSpec::new(
                "det_lossy_grid",
                TopologyFamily::RandomK {
                    n: 16,
                    k: 4,
                    extra_p: 0.1,
                },
                |id, _n| Box::new(MaxGossip::new(id.index() as u64)) as Box<dyn Process>,
            )
            .delivery(Delivery::Lossy { p })
            .max_rounds(25)
        },
    )
}

#[test]
fn sweep_json_identical_at_1_2_and_8_workers() {
    let scenarios = lossy_grid_scenarios();
    let render = |workers: usize| {
        sweep("det", &scenarios, 0..6, workers)
            .to_json(true)
            .render()
    };
    let baseline = render(1);
    assert_eq!(render(2), baseline, "2 workers diverged from 1");
    assert_eq!(render(8), baseline, "8 workers diverged from 1");
    assert!(baseline.contains("det_lossy_grid[p=0.2]"));
}

#[test]
fn sweep_json_stable_across_repeated_runs() {
    let scenarios = lossy_grid_scenarios();
    let first = sweep("det", &scenarios, 0..4, 4).to_json(true).render();
    for _ in 0..3 {
        assert_eq!(
            sweep("det", &scenarios, 0..4, 4).to_json(true).render(),
            first
        );
    }
}

#[test]
fn smoke_suite_json_identical_across_worker_counts() {
    let suite = suites::find("smoke").expect("smoke suite registered");
    let render = |workers: usize| suite.run(Some(2), workers).to_json(true).render();
    let baseline = render(1);
    assert_eq!(render(2), baseline);
    assert_eq!(render(8), baseline);
}

#[test]
fn smoke_suite_json_identical_across_shard_counts() {
    // The intra-run sharding knob composes with sweep-level parallelism:
    // any (workers, shards) combination must render the same summary.
    let suite = suites::find("smoke").expect("smoke suite registered");
    let baseline = suite.run_sharded(Some(2), 1, 1).to_json(true).render();
    for (workers, shards) in [(1, 2), (1, 8), (4, 2), (2, 4)] {
        assert_eq!(
            suite
                .run_sharded(Some(2), workers, shards)
                .to_json(true)
                .render(),
            baseline,
            "workers={workers} shards={shards}"
        );
    }
}

#[test]
fn authority_suite_json_identical_across_workers_and_shards() {
    // The §3.3 distributed-authority plays run under the same plumbing:
    // any (workers, shards) combination must render the same summary —
    // the clock RNG, commitment nonces and BA traffic are all
    // (seed, id, round) derived.
    let suite = suites::find("authority").expect("authority suite registered");
    let baseline = suite.run_sharded(Some(1), 1, 1).to_json(true).render();
    assert!(baseline.contains("authority_selfish_cluster"));
    for (workers, shards) in [(4, 1), (2, 2), (1, 4), (4, 4)] {
        assert_eq!(
            suite
                .run_sharded(Some(1), workers, shards)
                .to_json(true)
                .render(),
            baseline,
            "workers={workers} shards={shards}"
        );
    }
}

#[test]
fn stabilize_suite_json_identical_across_workers_shards_and_pools() {
    // The recovery frontier's corruption events fire mid-run from inside
    // worker threads — target selection, per-victim scrambles and
    // channel corruption/drops must all be (seed, id, round) anchored,
    // so the summary is byte-identical at any (pool, workers, shards).
    let suite = suites::find("stabilize").expect("stabilize suite registered");
    let baseline = suite
        .run_on(&Runtime::new(1), Some(2), 1, 1)
        .to_json(true)
        .render();
    assert!(baseline.contains("stabilize_ssba[loss=0.15,c=1,n=7]"));
    assert!(baseline.contains("rounds_to_stabilize"));
    assert_eq!(
        suite
            .run_on(&Runtime::new(4), Some(2), 4, 4)
            .to_json(true)
            .render(),
        baseline,
        "pool 4 / workers 4 / shards 4 diverged from fully serial"
    );
}

#[test]
fn unsupportive_suite_json_identical_across_workers_shards_and_pools() {
    // The recurring-corruption frontier re-arms its schedule entry at
    // every fire — the re-arm happens inside worker threads mid-run, so
    // this pins the lazy recurrence to the same (seed, id, round)
    // anchoring as everything else: byte-identical summaries at any
    // (pool, workers, shards).
    let suite = suites::find("unsupportive").expect("unsupportive suite registered");
    let baseline = suite
        .run_on(&Runtime::new(1), Some(2), 1, 1)
        .to_json(true)
        .render();
    assert!(baseline.contains("unsupportive_ring[period=8,c=0.25]"));
    assert!(baseline.contains("rounds_to_stabilize"));
    assert!(baseline.contains("legal_fraction"));
    assert_eq!(
        suite
            .run_on(&Runtime::new(4), Some(2), 4, 4)
            .to_json(true)
            .render(),
        baseline,
        "pool 4 / workers 4 / shards 4 diverged from fully serial"
    );
}

#[test]
fn recurring_corruption_events_identical_at_1_1_1_vs_4_4_4() {
    // Same invariant as `event_stream_identical_at_1_1_1_vs_4_4_4`, but
    // with a *recurring* corruption entry firing mid-window: every lazy
    // re-arm and every per-burst draw must replay identically whatever
    // the execution split, in both the summary and the event JSONL.
    let spec = ScenarioSpec::new("det_recurrence", TopologyFamily::Ring(8), |id, _| {
        Box::new(BfsTree::new(id)) as Box<dyn Process>
    })
    .schedule(Schedule::new().at(
        5,
        ScheduledAction::Corrupt(
            CorruptionFamily {
                targets: CorruptionTargets::All,
                corrupt_messages_p: 0.0,
                drop_messages_p: 1.0,
                salt: 21,
            },
            Recurrence::Every {
                period: 9,
                until: 23,
            },
        ),
    ))
    .max_rounds(36)
    .stabilization_episodes([5, 14, 23], ga_scenario::bfs::bfs_tree_legal);
    let scenarios: Vec<Arc<dyn Scenario>> = vec![Arc::new(spec)];
    let telemetry = TelemetryConfig::default();
    let run = |pool: usize, workers: usize, shards: usize| {
        let mut lines = String::new();
        let mut sink = |_i: usize, r: &RunRecord| {
            for event in &r.events {
                lines.push_str(
                    &ga_scenario::record::event_json(&r.scenario, r.seed, event).render(),
                );
                lines.push('\n');
            }
        };
        let summary = ga_scenario::sweep::sweep_stream_on(
            &Runtime::new(pool),
            "rec",
            &scenarios,
            0..4,
            workers,
            shards,
            Some(&telemetry),
            &mut sink,
        );
        (summary.to_json(true).render(), lines)
    };
    let (summary, events) = run(1, 1, 1);
    assert_eq!(
        events.matches("\"kind\":\"corruption_applied\"").count(),
        3 * 4,
        "three bursts (rounds 5, 14, 23) in each of the 4 seeds"
    );
    assert!(events.contains("\"kind\":\"legality_flip\""));
    assert_eq!(run(4, 4, 4), (summary, events), "4/4/4 diverged from 1/1/1");
}

#[test]
fn lossy_grid_records_identical_across_shard_counts() {
    // Per-seed records — lossy drops included — must not depend on the
    // shard count (the loss RNG is per-sender, not per-routing-order).
    let scenarios = lossy_grid_scenarios();
    let render = |shards: usize| {
        sweep_sharded("det", &scenarios, 0..6, 4, shards)
            .to_json(true)
            .render()
    };
    let baseline = render(1);
    assert_eq!(render(2), baseline, "2 shards diverged from serial");
    assert_eq!(render(8), baseline, "8 shards diverged from serial");
}

#[test]
fn streamed_sweep_matches_batch_aggregates() {
    // The JSONL streaming path must re-render the identical aggregate
    // summary while retaining no records.
    let scenarios = lossy_grid_scenarios();
    let batch = sweep("det", &scenarios, 0..4, 4);
    let mut lines: Vec<String> = Vec::new();
    let mut sink = |_i: usize, r: &RunRecord| lines.push(r.to_json().render());
    let streamed = sweep_stream("det", &scenarios, 0..4, 4, 2, &mut sink);
    assert_eq!(
        streamed.to_json(false).render(),
        batch.to_json(false).render()
    );
    assert!(streamed.records.is_empty());
    assert_eq!(
        lines,
        batch
            .records
            .iter()
            .map(|r| r.to_json().render())
            .collect::<Vec<_>>(),
        "streamed lines are the batch records, in job order"
    );
}

#[test]
fn sweep_json_identical_at_pool_sizes_1_2_8_with_reuse() {
    // The persistent-runtime guarantee: summaries are byte-identical at
    // any pool size, and a pool *reused* across consecutive sweeps (the
    // stale-scratch / leftover-queue regression) reproduces the fresh
    // result exactly.
    let scenarios = lossy_grid_scenarios();
    let baseline = ga_scenario::sweep::sweep_on(&Runtime::serial(), "det", &scenarios, 0..6, 2, 2)
        .to_json(true)
        .render();
    for threads in [2, 8] {
        let pool = Runtime::new(threads);
        for attempt in 0..3 {
            assert_eq!(
                ga_scenario::sweep::sweep_on(&pool, "det", &scenarios, 0..6, 2, 2)
                    .to_json(true)
                    .render(),
                baseline,
                "pool size {threads}, reuse {attempt}"
            );
        }
    }
}

#[test]
fn nested_sweep_and_shard_submission_completes_at_budget_1() {
    // The deadlock regression the runtime's nested-submission contract
    // rules out: a budget-1 pool (zero background threads) running a
    // sweep whose every job itself submits 4-shard step batches to the
    // *same* pool must run to completion inline. A watchdog turns a
    // regression into a failure instead of a hung test run.
    let (tx, rx) = std::sync::mpsc::channel();
    let worker = std::thread::spawn(move || {
        let pool = Runtime::new(1);
        let suite = suites::find("smoke").expect("smoke suite registered");
        let nested = suite.run_on(&pool, Some(2), 1, 4).to_json(true).render();
        let serial = suite.run_on(&pool, Some(2), 1, 1).to_json(true).render();
        tx.send((nested, serial)).ok();
    });
    let (nested, serial) = rx
        .recv_timeout(std::time::Duration::from_secs(120))
        .expect("budget-1 nested sweep x shard submission deadlocked");
    worker.join().expect("sweep thread panicked");
    assert_eq!(nested, serial, "budget never changes the summary");
}

#[test]
fn one_pool_shared_by_sweep_workers_and_shard_tasks_is_deterministic() {
    // Oversubscribed on purpose: 4 sweep workers x 4-shard runs on a
    // 4-thread pool exercises nested batches queueing behind worker
    // loops; the summary must still match the fully-serial render.
    let suite = suites::find("smoke").expect("smoke suite registered");
    let pool = Runtime::new(4);
    let baseline = suite
        .run_on(&Runtime::serial(), Some(2), 1, 1)
        .to_json(true)
        .render();
    assert_eq!(
        suite.run_on(&pool, Some(2), 4, 4).to_json(true).render(),
        baseline
    );
    assert_eq!(
        suite.run_on(&pool, Some(2), 2, 8).to_json(true).render(),
        baseline,
        "pool reused by a second differently-split sweep"
    );
}

#[test]
fn schedule_events_are_reflected_identically_in_parallel_records() {
    // Churn + fault events fire from inside worker threads; their effects
    // (fault drops, stop rounds) must be identical to the serial run.
    let spec = ScenarioSpec::new("det_churn", TopologyFamily::Grid(4, 4), |id, _n| {
        Box::new(MaxGossip::new(id.index() as u64)) as Box<dyn Process>
    })
    .schedule(
        Schedule::new()
            .at(4, ScheduledAction::Inject(TransientFault::total(16, 3)))
            .at(8, ScheduledAction::Disconnect(ProcessId(15)))
            .at(
                14,
                ScheduledAction::Reconnect(ProcessId(15), vec![ProcessId(11), ProcessId(14)]),
            ),
    )
    .max_rounds(30);
    let scenarios: Vec<Arc<dyn Scenario>> = vec![Arc::new(spec)];
    let serial = sweep("churn", &scenarios, 0..8, 1);
    let parallel = sweep("churn", &scenarios, 0..8, 8);
    assert_eq!(serial.records, parallel.records);
    assert!(
        serial.records.iter().all(|r| r.messages.dropped_fault > 0),
        "every seed sees the scheduled fault"
    );
}

#[test]
fn event_stream_identical_at_1_1_1_vs_4_4_4() {
    // The deterministic telemetry plane rides the same invariant as the
    // records: with a transient fault, a corruption family and link churn
    // all firing mid-window, the rendered --events stream must be
    // byte-identical at (pool, workers, shards) = (1, 1, 1) and (4, 4, 4).
    let spec = ScenarioSpec::new("det_events", TopologyFamily::Grid(4, 4), |id, _n| {
        Box::new(MaxGossip::new(id.index() as u64)) as Box<dyn Process>
    })
    .delivery(Delivery::Lossy { p: 0.2 })
    .schedule(
        Schedule::new()
            .at(4, ScheduledAction::Inject(TransientFault::total(16, 3)))
            .at(
                6,
                ScheduledAction::Corrupt(
                    CorruptionFamily {
                        targets: CorruptionTargets::RandomK(4),
                        corrupt_messages_p: 0.5,
                        drop_messages_p: 0.5,
                        salt: 9,
                    },
                    Recurrence::Once,
                ),
            )
            .at(8, ScheduledAction::Disconnect(ProcessId(15)))
            .at(
                14,
                ScheduledAction::Reconnect(ProcessId(15), vec![ProcessId(11), ProcessId(14)]),
            ),
    )
    .max_rounds(20)
    .stabilization(6, |sim| ga_scenario::workload::gossip_agreed(sim, 0..16));
    let scenarios: Vec<Arc<dyn Scenario>> = vec![Arc::new(spec)];
    let telemetry = TelemetryConfig::default();
    let stream = |pool: usize, workers: usize, shards: usize| {
        let mut lines = String::new();
        let mut sink = |_i: usize, r: &RunRecord| {
            for event in &r.events {
                lines.push_str(
                    &ga_scenario::record::event_json(&r.scenario, r.seed, event).render(),
                );
                lines.push('\n');
            }
        };
        ga_scenario::sweep::sweep_stream_on(
            &Runtime::new(pool),
            "ev",
            &scenarios,
            0..4,
            workers,
            shards,
            Some(&telemetry),
            &mut sink,
        );
        lines
    };
    let serial = stream(1, 1, 1);
    for kind in [
        "\"kind\":\"round_end\"",
        "\"kind\":\"delivered\"",
        "\"kind\":\"dropped\"",
        "\"kind\":\"schedule_fired\"",
        "\"kind\":\"corruption_applied\"",
        "\"kind\":\"scrambled\"",
        "\"kind\":\"legality_flip\"",
    ] {
        assert!(serial.contains(kind), "expected {kind} in the event stream");
    }
    assert_eq!(stream(4, 4, 4), serial, "4/4/4 diverged from 1/1/1");
}

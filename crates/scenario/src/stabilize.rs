//! The `stabilize` suite: scheduled corruption, stabilization-time
//! probes, and the lossy frontier of the paper's recovery claims.
//!
//! Self-stabilization (§2) promises convergence from *any* configuration.
//! The suite states that promise as data: every scenario schedules a
//! [`CorruptionFamily`] at a fixed round, declares the protocol's legal
//! set as a predicate, and lets the [`stabilization`] probe measure
//! `rounds_to_stabilize` — with explicit censoring when the budget runs
//! out, so a diverged run never masquerades as a slow one.
//!
//! Two frontier families sweep a `loss × corruption-intensity × n` grid:
//!
//! * **stabilize_ssba** — the §3.1 self-stabilizing Byzantine agreement
//!   composition ([`SsbaProcess`]); legal = all clocks equal.
//! * **stabilize_pulse** — the §3.3 common pulse generator
//!   ([`PulseProcess`]); legal = all clock values equal.
//!
//! At `loss = 0` both legal sets are closed (an all-equal configuration
//! keeps its quorum every round), so every run stabilizes and the
//! percentiles read as pure recovery times. Under loss the legal set is
//! *not* closed — quorum misses knock synchronized clocks apart for a
//! round or two — so `rounds_to_stabilize` grows toward the budget and
//! harsh grid points censor: that widening band *is* the stabilization
//! frontier the table renders.
//!
//! Three `stabilize_port_*` scenarios port the historical
//! `tests/self_stabilization.rs` integration experiments into the suite,
//! so the same machinery (sweeps, percentiles, byte-identical parallel
//! summaries) covers them too.
//!
//! With `--events` the probe also narrates recovery on the deterministic
//! event plane: every legality transition lands as a
//! [`LegalityFlip`](ga_simnet::telemetry::Event::LegalityFlip) event, so
//! a `scenario trace` render shows the illegal window between the
//! corruption instant and re-entry into the legal set. Censored runs fail
//! their verdicts, which the CLI reports as exit code 2 — distinct from
//! exit code 1, which is reserved for real errors.
//!
//! [`stabilization`]: crate::spec::ScenarioSpec::stabilization

use std::sync::Arc;

use ga_agreement::consensus::OmConsensus;
use ga_agreement::traits::BaInstance;
use ga_clocksync::harness::{measure_convergence_with, run_ssba};
use ga_clocksync::pulse::PulseProcess;
use ga_clocksync::ssba::SsbaProcess;
use ga_simnet::prelude::*;
use ga_simnet::sim::Delivery;
use game_authority::distributed::AuthorityCluster;

use crate::authority::{congestion, min_plays, play_records};
use crate::record::{FnScenario, RunRecord, Scenario, Verdict};
use crate::spec::{ScenarioSpec, TopologyFamily};
use crate::sweep::{expand_grid, ParamGrid};

/// The round every frontier scenario fires its corruption at — late
/// enough for a clean start to have synchronized first, so the probe
/// measures recovery, not initial convergence.
pub const CORRUPTION_ROUND: u64 = 12;

/// Round budget for the frontier families. Clean-start synchronization
/// for n ∈ {4, 7} takes a handful of rounds in expectation, so a run
/// still illegal after 240 rounds is diverged-for-the-budget, not slow.
const ROUND_BUDGET: u64 = 240;

/// Decorrelates the suite's corruption draws from any other family a
/// spec might schedule.
const SALT: u64 = 0x57AB_112E;

/// The single corruption knob `c ∈ (0, 1]` mapped onto a family:
/// scramble `ceil(c · n)` seed-chosen processes and corrupt/drop each
/// in-flight message with probability `c`.
fn corruption(n: usize, c: f64) -> CorruptionFamily {
    let k = ((c * n as f64).ceil() as usize).clamp(1, n);
    CorruptionFamily::intensity(k, c, SALT)
}

/// Axis lookup inside an [`expand_grid`] point.
fn param(point: &[(String, f64)], name: &str) -> f64 {
    point
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| *v)
        .expect("grid axis present")
}

/// `loss = 0` means reliable delivery, not `Lossy {{ p: 0.0 }}` — the
/// closed-legal-set baseline should not pay the lossy code path.
fn delivery(loss: f64) -> Delivery {
    if loss > 0.0 {
        Delivery::Lossy { p: loss }
    } else {
        Delivery::Reliable
    }
}

/// The frontier grid: delivery loss rate × corruption intensity × n.
fn frontier_grid() -> ParamGrid {
    ParamGrid::new()
        .axis("loss", [0.0, 0.05, 0.15])
        .axis("c", [0.3, 1.0])
        .axis("n", [4.0, 7.0])
}

/// Pass = the run re-entered the legal set within the budget. Censored
/// runs fail their verdict, which is what the frontier table's pass-rate
/// column counts.
fn stabilized_verdict(_sim: &Simulation, record: &RunRecord) -> Verdict {
    Verdict::check(
        record.get_metric("censored") == Some(0.0),
        "stabilized within the round budget",
    )
}

/// Legal set of the SSBA composition: every clock holds one value.
fn ssba_clocks_agree(sim: &Simulation, n: usize) -> bool {
    let mut value = None;
    for id in 0..n {
        let Some(p) = sim.process_as::<SsbaProcess>(ProcessId(id)) else {
            return false;
        };
        if *value.get_or_insert(p.clock_value()) != p.clock_value() {
            return false;
        }
    }
    true
}

/// Legal set of the pulse generator: every clock holds one value.
fn pulse_values_agree(sim: &Simulation, n: usize) -> bool {
    let mut value = None;
    for id in 0..n {
        let Some(p) = sim.process_as::<PulseProcess>(ProcessId(id)) else {
            return false;
        };
        if *value.get_or_insert(p.value()) != p.value() {
            return false;
        }
    }
    true
}

/// §3.1 SSBA over the frontier grid.
fn ssba_family() -> Vec<Arc<dyn Scenario>> {
    expand_grid("stabilize_ssba", &frontier_grid(), |point| {
        let loss = param(point, "loss");
        let c = param(point, "c");
        let n = param(point, "n") as usize;
        let f = (n - 1) / 3;
        let modulus = OmConsensus::new(0, n, f).rounds() + 2;
        ScenarioSpec::new(
            "stabilize_ssba",
            TopologyFamily::Complete(n),
            move |id, _| {
                Box::new(SsbaProcess::new(
                    n,
                    f,
                    modulus,
                    Box::new(OmConsensus::new(id.index(), n, f)),
                    1 + id.index() as u64,
                ))
            },
        )
        .delivery(delivery(loss))
        .schedule(Schedule::new().at(
            CORRUPTION_ROUND,
            ScheduledAction::Corrupt(corruption(n, c), Recurrence::Once),
        ))
        .max_rounds(ROUND_BUDGET)
        .stabilization(CORRUPTION_ROUND, move |sim| ssba_clocks_agree(sim, n))
        .verdict(stabilized_verdict)
    })
}

/// §3.3 common pulse generator over the frontier grid.
fn pulse_family() -> Vec<Arc<dyn Scenario>> {
    expand_grid("stabilize_pulse", &frontier_grid(), |point| {
        let loss = param(point, "loss");
        let c = param(point, "c");
        let n = param(point, "n") as usize;
        let f = (n - 1) / 3;
        ScenarioSpec::new(
            "stabilize_pulse",
            TopologyFamily::Complete(n),
            move |_, _| Box::new(PulseProcess::new(n, f, 8, 1)),
        )
        .delivery(delivery(loss))
        .schedule(Schedule::new().at(
            CORRUPTION_ROUND,
            ScheduledAction::Corrupt(corruption(n, c), Recurrence::Once),
        ))
        .max_rounds(ROUND_BUDGET)
        .stabilization(CORRUPTION_ROUND, move |sim| pulse_values_agree(sim, n))
        .verdict(stabilized_verdict)
    })
}

/// Port of `clock_sync_converges_from_arbitrary_states_across_seeds`:
/// the Theorem 1 clock converges from a seed-scrambled start, measured
/// in pulses. Censors (and fails) on budget exhaustion.
pub fn clock_convergence_port() -> Arc<dyn Scenario> {
    Arc::new(FnScenario::new(
        "stabilize_port_clock_convergence",
        |seed| {
            let budget = 200_000;
            let mut record = RunRecord::new("stabilize_port_clock_convergence", seed);
            match measure_convergence_with(4, 1, 1, 8, seed, budget) {
                Some(pulses) => {
                    record.rounds = pulses;
                    record.metric("convergence_pulses", pulses as f64);
                    record.metric("censored", 0.0);
                }
                None => {
                    record.rounds = budget;
                    record.metric("censored", 1.0);
                }
            }
            let converged = record.get_metric("censored") == Some(0.0);
            record.require(converged, "clock converges within the pulse budget");
            record
        },
    ))
}

/// Port of `ssba_closure_after_midrun_fault`: a total transient fault at
/// pulse 150 must leave every honest log sharing a 2-decision suffix.
pub fn ssba_closure_port() -> Arc<dyn Scenario> {
    Arc::new(FnScenario::new("stabilize_port_ssba_closure", |seed| {
        let mut record = RunRecord::new("stabilize_port_ssba_closure", seed);
        let report = run_ssba(4, 1, 1, 1200, Some(150), seed);
        record.rounds = report.pulses;
        let agreements = report.logs.iter().map(Vec::len).min().unwrap_or(0);
        record.metric("agreements", agreements as f64);
        record.require(
            report.common_suffix(2),
            "honest logs share a 2-decision suffix after the fault",
        );
        record
    }))
}

/// Legal set of the authority-recovery port: the *latest* play record is
/// identical everywhere. (The full logs intentionally stay out of the
/// predicate: a solo play appended mid-chaos diverges the append-only
/// logs forever, but the latest-play view heals as soon as the next
/// synchronized play lands everywhere.)
fn last_plays_agree(sim: &Simulation, n: usize) -> bool {
    let mut reference = None;
    for id in 0..n {
        let Some(records) = play_records(sim, id) else {
            return false;
        };
        if *reference.get_or_insert(records.last()) != records.last() {
            return false;
        }
    }
    true
}

/// Port of `distributed_authority_recovers_and_keeps_agreeing`: a full
/// §3.3 cluster is corrupted wholesale (every process scrambled, every
/// in-flight message dropped) after three plays; it must re-enter the
/// agreeing state and keep completing plays.
pub fn authority_recovery_port() -> Arc<dyn Scenario> {
    let n = 4;
    let cluster = AuthorityCluster::new(congestion(n), 1);
    let period = cluster.play_len();
    let corruption_round = period * 3 + 1;
    let family = CorruptionFamily {
        targets: CorruptionTargets::All,
        corrupt_messages_p: 0.0,
        drop_messages_p: 1.0,
        salt: SALT,
    };
    Arc::new(
        ScenarioSpec::new_seeded(
            "stabilize_port_authority_recovery",
            TopologyFamily::Complete(n),
            move |id, _, seed| cluster.process(id.index(), seed),
        )
        .schedule(Schedule::new().at(
            corruption_round,
            ScheduledAction::Corrupt(family, Recurrence::Once),
        ))
        .max_rounds(period * 56)
        .stabilization(corruption_round, move |sim| last_plays_agree(sim, n))
        .probe(move |sim, record| {
            record.metric("plays", min_plays(sim, 0..n) as f64);
        })
        .verdict(move |sim, record| {
            stabilized_verdict(sim, record).and(Verdict::check(
                min_plays(sim, 0..n) > 3,
                "plays keep completing after recovery",
            ))
        }),
    )
}

/// The `stabilize` suite: both frontier families plus the three ports.
pub fn suite() -> Vec<Arc<dyn Scenario>> {
    let mut scenarios = ssba_family();
    scenarios.extend(pulse_family());
    scenarios.push(clock_convergence_port());
    scenarios.push(ssba_closure_port());
    scenarios.push(authority_recovery_port());
    scenarios
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_shape() {
        let scenarios = suite();
        // 3 loss × 2 c × 2 n per family, two families, three ports.
        assert_eq!(scenarios.len(), 12 + 12 + 3);
        assert!(scenarios.iter().all(|s| s.name().starts_with("stabilize_")));
    }

    #[test]
    fn corruption_intensity_scales_targets() {
        assert!(matches!(
            corruption(4, 0.3).targets,
            CorruptionTargets::RandomK(2)
        ));
        assert!(matches!(
            corruption(7, 1.0).targets,
            CorruptionTargets::RandomK(7)
        ));
        assert!(
            matches!(corruption(4, 0.01).targets, CorruptionTargets::RandomK(1)),
            "at least one victim"
        );
    }

    #[test]
    fn benign_frontier_points_stabilize() {
        // loss = 0: the legal set is closed, so every seed must recover
        // (censored = 0) and report a finite stabilization time.
        for scenario in suite() {
            if !scenario.name().contains("[loss=0,") {
                continue;
            }
            for seed in [60, 61] {
                let r = scenario.run(seed);
                assert_eq!(
                    r.get_metric("censored"),
                    Some(0.0),
                    "{} censored at seed {seed}",
                    scenario.name()
                );
                assert!(
                    r.verdict.passed(),
                    "{} failed at seed {seed}: {:?}",
                    scenario.name(),
                    r.verdict
                );
                assert!(r.get_metric("rounds_to_stabilize").is_some());
            }
        }
    }

    #[test]
    fn corruption_actually_perturbs_the_frontier_runs() {
        // At full intensity the probe must see at least one illegal
        // round, i.e. a strictly positive stabilization time.
        let scenarios = suite();
        let full = scenarios
            .iter()
            .find(|s| s.name() == "stabilize_pulse[loss=0,c=1,n=4]")
            .expect("grid point exists");
        let positive = (60..70).any(|seed| {
            full.run(seed)
                .get_metric("rounds_to_stabilize")
                .is_some_and(|r| r > 0.0)
        });
        assert!(positive, "total corruption desynchronizes some seed");
    }

    #[test]
    fn ports_pass_at_suite_seeds() {
        for port in [
            clock_convergence_port(),
            ssba_closure_port(),
            authority_recovery_port(),
        ] {
            for seed in [60, 61] {
                let r = port.run(seed);
                assert!(
                    r.verdict.passed(),
                    "{} failed at seed {seed}: {:?}",
                    port.name(),
                    r.verdict
                );
            }
        }
    }

    #[test]
    fn frontier_runs_are_pure_and_shard_invariant() {
        let scenarios = suite();
        let point = scenarios
            .iter()
            .find(|s| s.name() == "stabilize_ssba[loss=0.05,c=1,n=4]")
            .expect("grid point exists");
        let serial = point.run_sharded(60, 1);
        assert_eq!(point.run(60), serial, "pure in the seed");
        assert_eq!(
            point.run_sharded(60, 4),
            serial,
            "corruption draws are (seed, id, round) anchored, not visit-ordered"
        );
    }
}

//! The declarative, simulator-backed [`ScenarioSpec`].
//!
//! A spec composes everything a simnet execution family needs — topology
//! family, delivery model, adversary/colluder placement, a churn/fault
//! [`Schedule`], the protocol under test, and stop/verdict predicates —
//! into one `Clone + Send + Sync` value. [`ScenarioSpec::run`] is a pure
//! function of `(spec, seed)`, which is what lets the sweep engine fan a
//! spec out across threads and still produce byte-identical aggregates.

use std::sync::Arc;

use ga_simnet::adversary::{ByzantineProcess, Equivocator, RandomNoise, Silent};
use ga_simnet::colluding::Cabal;
use ga_simnet::prelude::*;
use ga_simnet::rng::labeled_rng;
use ga_simnet::runtime::Runtime;
use ga_simnet::sim::Delivery;
use ga_simnet::telemetry::{Event, TelemetryConfig};
use rand::seq::SliceRandom;

use crate::record::{MessageStats, RunRecord, Verdict};

/// A family of communication graphs, instantiated per run.
///
/// Randomized families derive their graph from the run seed, so two runs
/// of the same spec at the same seed see the same wires.
#[derive(Debug, Clone)]
pub enum TopologyFamily {
    /// `Topology::complete(n)`.
    Complete(usize),
    /// `Topology::ring(n)`.
    Ring(usize),
    /// `Topology::star(n)` — hub is processor 0.
    Star(usize),
    /// `Topology::grid(w, h)`.
    Grid(usize, usize),
    /// `Topology::random_k_connected(n, k, extra_p)`, seeded per run.
    RandomK {
        /// Processors.
        n: usize,
        /// Minimum degree / backbone connectivity.
        k: usize,
        /// Extra-edge probability.
        extra_p: f64,
    },
    /// Explicit edge list.
    Edges {
        /// Processors.
        n: usize,
        /// Undirected edges.
        edges: Vec<(usize, usize)>,
    },
}

impl TopologyFamily {
    /// Number of processors every instance of the family has.
    pub fn len(&self) -> usize {
        match self {
            TopologyFamily::Complete(n)
            | TopologyFamily::Ring(n)
            | TopologyFamily::Star(n)
            | TopologyFamily::RandomK { n, .. }
            | TopologyFamily::Edges { n, .. } => *n,
            TopologyFamily::Grid(w, h) => w * h,
        }
    }

    /// Whether the family is empty (never, by constructor contracts).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Instantiates the graph for one run.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters (same contracts as the underlying
    /// [`Topology`] constructors).
    pub fn build(&self, seed: u64) -> Topology {
        match self {
            TopologyFamily::Complete(n) => Topology::complete(*n),
            TopologyFamily::Ring(n) => Topology::ring(*n),
            TopologyFamily::Star(n) => Topology::star(*n),
            TopologyFamily::Grid(w, h) => Topology::grid(*w, *h),
            TopologyFamily::RandomK { n, k, extra_p } => {
                let mut rng = labeled_rng(seed, "scenario-topology");
                Topology::random_k_connected(*n, *k, *extra_p, &mut rng)
            }
            TopologyFamily::Edges { n, edges } => {
                Topology::from_edges(*n, edges).expect("spec edge list is valid")
            }
        }
    }
}

/// A Byzantine role assigned to a processor by the spec.
#[derive(Debug, Clone)]
pub enum Role {
    /// Crash/omission: never sends.
    Silent,
    /// Random byte strings every round.
    Noise {
        /// Maximum payload length (exclusive).
        max_len: usize,
    },
    /// Different fixed payloads to even/odd neighbors.
    Equivocator {
        /// Payload for even-indexed neighbors.
        a: Vec<u8>,
        /// Payload for odd-indexed neighbors.
        b: Vec<u8>,
    },
    /// Member of the run's shared [`Cabal`]: all colluders broadcast one
    /// coordinated per-round lie.
    Colluder,
}

/// A seed-derived adversary placement family.
///
/// Per-id placements ([`ScenarioSpec::adversary`]) pin Byzantine
/// processors to fixed positions; a strategy instead picks them per run
/// from the run's graph and seed, so one spec covers the whole
/// adversary-position family. Strategies resolve after the fixed
/// placements and the last write per id wins.
#[derive(Debug, Clone)]
pub enum PlacementStrategy {
    /// Exactly these per-id placements — what `adversary`/`colluders`
    /// append, factored out as data.
    Fixed(Vec<(usize, Role)>),
    /// `f` distinct processors drawn uniformly from the run seed.
    RandomF {
        /// Number of adversaries to place.
        f: usize,
        /// The role each drawn processor plays.
        role: Role,
    },
    /// The `f` highest-degree processors of the run's graph (ties go to
    /// the lower id) — the worst case for protocols leaning on
    /// well-connected relays.
    WorstCaseByDegree {
        /// Number of adversaries to place.
        f: usize,
        /// The role each picked processor plays.
        role: Role,
    },
}

impl PlacementStrategy {
    /// Resolves the family to concrete per-id placements for one run
    /// (ascending id order). Pure in `(self, topology, seed, salt)`;
    /// `salt` decorrelates the random draws of multiple strategies on
    /// one spec ([`ScenarioSpec::place`] passes the strategy's index),
    /// so two `RandomF` families never shadow each other's picks.
    pub fn resolve(&self, topology: &Topology, seed: u64, salt: u64) -> Vec<(usize, Role)> {
        let place = |mut ids: Vec<usize>, f: usize, role: &Role| {
            ids.truncate(f.min(topology.len()));
            ids.sort_unstable();
            ids.into_iter().map(|id| (id, role.clone())).collect()
        };
        match self {
            PlacementStrategy::Fixed(placements) => placements.clone(),
            PlacementStrategy::RandomF { f, role } => {
                let mut ids: Vec<usize> = (0..topology.len()).collect();
                let label = format!("scenario-placement-{salt}");
                ids.shuffle(&mut labeled_rng(seed, &label));
                place(ids, *f, role)
            }
            PlacementStrategy::WorstCaseByDegree { f, role } => {
                let ids: Vec<usize> = topology
                    .top_k_by_degree(*f)
                    .into_iter()
                    .map(|id| id.index())
                    .collect();
                place(ids, *f, role)
            }
        }
    }
}

type ProtocolFactory = Arc<dyn Fn(ProcessId, usize, u64) -> Box<dyn Process> + Send + Sync>;
type StopPredicate = Arc<dyn Fn(&Simulation) -> bool + Send + Sync>;
type VerdictFn = Arc<dyn Fn(&Simulation, &RunRecord) -> Verdict + Send + Sync>;
type ProbeFn = Arc<dyn Fn(&Simulation, &mut RunRecord) + Send + Sync>;
type LegalFn = Arc<dyn Fn(&Simulation) -> bool + Send + Sync>;
type RoundMetricFn = Arc<dyn Fn(&Simulation) -> f64 + Send + Sync>;

/// A per-round legality probe measuring recovery after scheduled
/// corruption — see [`ScenarioSpec::stabilization`] and
/// [`ScenarioSpec::stabilization_episodes`].
#[derive(Clone)]
struct StabilizationProbe {
    /// The rounds the spec's corruption bursts fire at, ascending and
    /// deduplicated. Each opens one measurement *episode*: the window from
    /// its burst to the next burst (or the end of the run), with the burst
    /// round as that episode's `rounds_to_stabilize` origin.
    corruption_rounds: Vec<u64>,
    /// The legitimacy predicate of the protocol's state space.
    legal: LegalFn,
}

/// A declarative description of a family of simulator executions.
///
/// Built with chained setters; executed with [`run`](ScenarioSpec::run).
/// See the crate docs for a complete example.
#[derive(Clone)]
pub struct ScenarioSpec {
    name: String,
    topology: TopologyFamily,
    /// Adjacency representation override for each run's graph; `None`
    /// keeps the size-based auto choice (or the process-wide default).
    repr: Option<AdjacencyRepr>,
    delivery: Delivery,
    placements: Vec<(usize, Role)>,
    strategies: Vec<PlacementStrategy>,
    schedule: Schedule,
    max_rounds: u64,
    shards: usize,
    protocol: ProtocolFactory,
    stop: Option<StopPredicate>,
    verdict: Option<VerdictFn>,
    probe: Option<ProbeFn>,
    stabilization: Option<StabilizationProbe>,
    round_metrics: Vec<(String, RoundMetricFn)>,
}

impl std::fmt::Debug for ScenarioSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioSpec")
            .field("name", &self.name)
            .field("topology", &self.topology)
            .field("delivery", &self.delivery)
            .field("placements", &self.placements)
            .field("max_rounds", &self.max_rounds)
            .finish_non_exhaustive()
    }
}

impl ScenarioSpec {
    /// Starts a spec: `name`, the graph family, and the protocol factory
    /// (called once per honest processor per run).
    pub fn new(
        name: impl Into<String>,
        topology: TopologyFamily,
        protocol: impl Fn(ProcessId, usize) -> Box<dyn Process> + Send + Sync + 'static,
    ) -> ScenarioSpec {
        Self::new_seeded(name, topology, move |id, n, _seed| protocol(id, n))
    }

    /// Like [`new`](ScenarioSpec::new), but the protocol factory also
    /// receives the run seed — for protocols whose processes derive
    /// per-run randomness (commitment nonces, PRG streams) from it.
    pub fn new_seeded(
        name: impl Into<String>,
        topology: TopologyFamily,
        protocol: impl Fn(ProcessId, usize, u64) -> Box<dyn Process> + Send + Sync + 'static,
    ) -> ScenarioSpec {
        ScenarioSpec {
            name: name.into(),
            topology,
            repr: None,
            delivery: Delivery::Reliable,
            placements: Vec::new(),
            strategies: Vec::new(),
            schedule: Schedule::new(),
            max_rounds: 100,
            shards: 1,
            protocol: Arc::new(protocol),
            stop: None,
            verdict: None,
            probe: None,
            stabilization: None,
            round_metrics: Vec::new(),
        }
    }

    /// The spec's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the spec (used when a sweep stamps parameter values into
    /// scenario names).
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the delivery model (default reliable).
    #[must_use]
    pub fn delivery(mut self, delivery: Delivery) -> Self {
        self.delivery = delivery;
        self
    }

    /// Forces the adjacency representation of every run's graph (default:
    /// the size-based auto choice). Purely a memory/speed knob — dense
    /// and sparse answer every query identically, so records are
    /// byte-identical either way; see
    /// [`Topology::set_repr`](ga_simnet::topology::Topology::set_repr).
    #[must_use]
    pub fn repr(mut self, repr: AdjacencyRepr) -> Self {
        self.repr = Some(repr);
        self
    }

    /// Assigns a Byzantine `role` to processor `id`. Re-assigning the
    /// same id overrides the earlier role (last write wins).
    #[must_use]
    pub fn adversary(mut self, id: usize, role: Role) -> Self {
        Self::assign(&mut self.placements, id, role);
        self
    }

    /// Assigns [`Role::Colluder`] to every listed processor (they share
    /// one cabal per run; last write per id wins).
    #[must_use]
    pub fn colluders(mut self, ids: impl IntoIterator<Item = usize>) -> Self {
        for id in ids {
            Self::assign(&mut self.placements, id, Role::Colluder);
        }
        self
    }

    /// Adds a seed-derived adversary placement family, resolved against
    /// each run's graph and seed and overlaid on the fixed
    /// `adversary`/`colluders` placements (last write per id wins).
    #[must_use]
    pub fn place(mut self, strategy: PlacementStrategy) -> Self {
        self.strategies.push(strategy);
        self
    }

    /// Upserts a placement: one role per id, the latest assignment wins.
    fn assign(placements: &mut Vec<(usize, Role)>, id: usize, role: Role) {
        match placements.iter_mut().find(|(existing, _)| *existing == id) {
            Some((_, slot)) => *slot = role,
            None => placements.push((id, role)),
        }
    }

    /// Concrete per-id placements for one run: the fixed list overlaid
    /// with every strategy's seed-resolved picks, in insertion order.
    fn resolve_placements(&self, topology: &Topology, seed: u64) -> Vec<(usize, Role)> {
        let mut placements = self.placements.clone();
        for (salt, strategy) in self.strategies.iter().enumerate() {
            for (id, role) in strategy.resolve(topology, seed, salt as u64) {
                Self::assign(&mut placements, id, role);
            }
        }
        placements
    }

    /// Attaches the churn/fault schedule.
    #[must_use]
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the round budget (default 100).
    #[must_use]
    pub fn max_rounds(mut self, rounds: u64) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Shards each run's `Simulation::step` compute phase across this many
    /// threads (default 1 = serial). Purely a throughput knob for large-n
    /// specs: records are identical at every shard count. An explicit
    /// sweep-level hint
    /// ([`Scenario::run_sharded`](crate::record::Scenario::run_sharded),
    /// the CLI's `--shards` — 1 included, forcing serial) overrides this;
    /// a hint of 0 defers to it.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets a stop predicate: the run ends as soon as it holds (checked
    /// before every pulse), recording the round in
    /// [`RunRecord::stopped_at`].
    #[must_use]
    pub fn stop_when(mut self, stop: impl Fn(&Simulation) -> bool + Send + Sync + 'static) -> Self {
        self.stop = Some(Arc::new(stop));
        self
    }

    /// Sets the verdict predicate, evaluated on the final state (the
    /// record already carries rounds/stop/trace data and probe metrics).
    #[must_use]
    pub fn verdict(
        mut self,
        verdict: impl Fn(&Simulation, &RunRecord) -> Verdict + Send + Sync + 'static,
    ) -> Self {
        self.verdict = Some(Arc::new(verdict));
        self
    }

    /// Sets a probe that extracts extra metrics from the final state
    /// (runs before the verdict predicate).
    #[must_use]
    pub fn probe(
        mut self,
        probe: impl Fn(&Simulation, &mut RunRecord) + Send + Sync + 'static,
    ) -> Self {
        self.probe = Some(Arc::new(probe));
        self
    }

    /// Samples `f` after every pulse and emits the mean of the samples as
    /// metric `name` — the vehicle for per-round observables that final-
    /// state probes cannot reconstruct (live-play counts, queue depths).
    /// Sampled metrics are part of the deterministic plane: `f` must be a
    /// pure function of the simulation state. Every run also emits the
    /// built-in round metrics `inbox_depth_mean` (mean pending messages
    /// after each pulse) and `quiescent_mean` (mean count of processes
    /// with an empty inbox).
    #[must_use]
    pub fn round_metric(
        mut self,
        name: impl Into<String>,
        f: impl Fn(&Simulation) -> f64 + Send + Sync + 'static,
    ) -> Self {
        self.round_metrics.push((name.into(), Arc::new(f)));
        self
    }

    /// Attaches a stabilization probe measuring recovery from the
    /// corruption the spec schedules at `corruption_round` — the
    /// single-episode form of
    /// [`stabilization_episodes`](Self::stabilization_episodes).
    ///
    /// `legal` — the protocol's legitimacy predicate — is evaluated after
    /// every pulse, and the run tracks the *last illegal round*. If the
    /// final state is legal the run emits
    ///
    /// * `rounds_to_stabilize` = `last_illegal_round − corruption_round`
    ///   (saturating; `0` when no post-corruption round was ever illegal),
    /// * `censored` = `0`.
    ///
    /// If the budget runs out while the state is still illegal the run is
    /// **censored**: it emits only `censored = 1` and *no*
    /// `rounds_to_stabilize` — the sweep aggregator computes percentiles
    /// over emitting runs only, so a diverged run can never masquerade as
    /// a slow one. Both metrics land before the [`probe`](Self::probe) and
    /// [`verdict`](Self::verdict) callbacks, which may read them.
    #[must_use]
    pub fn stabilization(
        self,
        corruption_round: u64,
        legal: impl Fn(&Simulation) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.stabilization_episodes([corruption_round], legal)
    }

    /// Attaches a stabilization probe measuring recovery from *recurring*
    /// corruption: one measurement episode per burst in
    /// `corruption_rounds` (sorted and deduplicated; must be non-empty).
    ///
    /// Episode `i` spans the pulses from burst `i` up to (excluding) burst
    /// `i + 1`; the last episode runs to the end of the run, and pulses
    /// before the first burst fold into episode 0, preserving the
    /// single-episode semantics of [`stabilization`](Self::stabilization).
    /// Each episode is scored independently, against the state at its
    /// window's last pulse:
    ///
    /// * recovered — the window ends legal: the episode emits one
    ///   `rounds_to_stabilize` value, `last_illegal_in_window − burst`
    ///   (saturating; `0` for an episode that never went illegal). Every
    ///   per-episode value feeds the sweep percentiles, so p50/p90/p99
    ///   aggregate over *episodes*, not runs.
    /// * censored — the window closes (next burst lands, or the budget
    ///   runs out) while the state is still illegal: no value is emitted
    ///   for it. Back-to-back bursts with no legal pulse between them are
    ///   censored episodes, not slow ones.
    /// * unscored — a burst after the last executed pulse never opens its
    ///   window (scheduled past the budget, or the run stopped early):
    ///   neither a value nor a censoring. Episode 0 is always scored.
    ///
    /// The run then emits `censored` = the number of censored episodes
    /// (`0` iff every opened episode recovered) and `legal_fraction` =
    /// the fraction of executed pulses whose state was legal — the run's
    /// availability over the measurement window, the natural summary when
    /// corruption re-fires forever and "fully stabilized" stops being the
    /// interesting question.
    #[must_use]
    pub fn stabilization_episodes(
        mut self,
        corruption_rounds: impl IntoIterator<Item = u64>,
        legal: impl Fn(&Simulation) -> bool + Send + Sync + 'static,
    ) -> Self {
        let mut rounds: Vec<u64> = corruption_rounds.into_iter().collect();
        rounds.sort_unstable();
        rounds.dedup();
        assert!(
            !rounds.is_empty(),
            "stabilization_episodes requires at least one corruption round"
        );
        self.stabilization = Some(StabilizationProbe {
            corruption_rounds: rounds,
            legal: Arc::new(legal),
        });
        self
    }

    /// Number of processors per run.
    pub fn n(&self) -> usize {
        self.topology.len()
    }

    fn role_process(role: &Role, cabal: &Cabal) -> Box<dyn Process> {
        match role {
            Role::Silent => Box::new(ByzantineProcess::new(Box::new(Silent))),
            Role::Noise { max_len } => Box::new(ByzantineProcess::new(Box::new(RandomNoise {
                max_len: *max_len,
            }))),
            Role::Equivocator { a, b } => Box::new(ByzantineProcess::new(Box::new(Equivocator {
                payload_a: a.clone().into(),
                payload_b: b.clone().into(),
            }))),
            Role::Colluder => Box::new(cabal.member()),
        }
    }

    /// Executes one run at `seed`. Pure: equal seeds give equal records.
    pub fn run(&self, seed: u64) -> RunRecord {
        self.run_sharded(seed, 0)
    }

    /// Executes one run at `seed` with the compute phase of every
    /// `Simulation::step` sharded across `shards` threads. The record is
    /// identical at every shard count (the spec's own
    /// [`shards`](ScenarioSpec::shards) default included) — sharding only
    /// changes wall-clock time.
    pub fn run_sharded(&self, seed: u64, shards: usize) -> RunRecord {
        self.run_inner(seed, shards, None, None)
    }

    /// [`run_sharded`](ScenarioSpec::run_sharded) with the sharded
    /// compute phase drawing from `runtime` — the sweep engine passes its
    /// own pool here so sweep- and shard-level parallelism share one
    /// thread budget. The pool never changes the record.
    pub fn run_on(&self, seed: u64, shards: usize, runtime: &Runtime) -> RunRecord {
        self.run_inner(seed, shards, Some(runtime), None)
    }

    /// [`run_on`](ScenarioSpec::run_on) with the deterministic event
    /// plane switched on: the simulation carries an
    /// [`EventSink`](ga_simnet::telemetry::EventSink) sized by
    /// `telemetry` and the retained events (plus the spec's own
    /// [`Event::LegalityFlip`] markers from the stabilization probe) land
    /// in [`RunRecord::events`]. Events never change the rest of the
    /// record, and the stream itself is identical at every shard count
    /// and on every pool.
    pub fn run_telemetry(
        &self,
        seed: u64,
        shards: usize,
        runtime: &Runtime,
        telemetry: Option<&TelemetryConfig>,
    ) -> RunRecord {
        self.run_inner(seed, shards, Some(runtime), telemetry)
    }

    fn run_inner(
        &self,
        seed: u64,
        shards: usize,
        runtime: Option<&Runtime>,
        telemetry: Option<&TelemetryConfig>,
    ) -> RunRecord {
        // A hint of 0 means "unspecified" (the sweep default): fall back
        // to the spec's own knob so `.shards(n)` survives every sweep
        // path. Any explicit hint — including 1 = force serial — wins.
        let shards = if shards == 0 { self.shards } else { shards };
        let mut topology = self.topology.build(seed);
        if let Some(repr) = self.repr {
            topology.set_repr(repr);
        }
        let n = topology.len();
        let placements = self.resolve_placements(&topology, seed);
        // The cabal's per-round lies derive from the run seed, so records
        // stay a pure function of (spec, seed) and colluders split across
        // step shards tell identical lies.
        let cabal = Cabal::seeded(seed);
        let mut builder = Simulation::builder(topology)
            .seed(seed)
            .delivery(self.delivery)
            .schedule(self.schedule.clone())
            .shards(shards);
        if let Some(cfg) = telemetry {
            builder = builder.telemetry(*cfg);
        }
        if let Some(runtime) = runtime {
            builder = builder.runtime(runtime.clone());
            // Timing plane: if the pool carries a profiler, per-step wall
            // clock flows into that side channel. It is never read back
            // into the record.
            if let Some(profiler) = runtime.profiler() {
                builder = builder.profiler(profiler);
            }
        }
        let mut sim =
            builder.build_with(
                |id| match placements.iter().find(|(byz, _)| *byz == id.index()) {
                    Some((_, role)) => Self::role_process(role, &cabal),
                    None => (self.protocol)(id, n, seed),
                },
            );

        let mut record = RunRecord::new(self.name.clone(), seed);
        // One manual loop mirroring `run_until` (stop checked before each
        // pulse, once more after the budget) so the per-round samplers —
        // round metrics, the stabilization legality probe — see every
        // pulse on every execution path.
        let mut stopped = None;
        // Per-episode stabilization state: `episode` indexes the burst
        // whose measurement window the current pulse falls in,
        // `episode_last_illegal` tracks the last illegal pulse inside that
        // window, and closed windows accumulate into `recoveries` /
        // `censored_episodes` (see `stabilization_episodes`).
        let mut episode = 0usize;
        let mut episode_last_illegal: Option<u64> = None;
        let mut recoveries: Vec<u64> = Vec::new();
        let mut censored_episodes = 0u64;
        let mut legal_pulses = 0u64;
        // The legal set is the resting state; a run is presumed inside it
        // until a post-pulse probe says otherwise, so the first flip
        // event marks the entry into illegality.
        let mut prev_legal = true;
        let mut sampled = 0u64;
        let mut inbox_depth_sum = 0.0;
        let mut quiescent_sum = 0.0;
        let mut metric_sums = vec![0.0f64; self.round_metrics.len()];
        for executed in 0..self.max_rounds {
            if let Some(stop) = &self.stop {
                if stop(&sim) {
                    stopped = Some(executed);
                    break;
                }
            }
            sim.step();
            // step() already advanced the round counter; the pulse just
            // executed is the previous one.
            let pulse = sim.round().value() - 1;
            sampled += 1;
            inbox_depth_sum += sim.pending_messages() as f64;
            quiescent_sum += sim.quiescent_processes() as f64;
            for (sum, (_, f)) in metric_sums.iter_mut().zip(&self.round_metrics) {
                *sum += f(&sim);
            }
            if let Some(stab) = &self.stabilization {
                let bursts = &stab.corruption_rounds;
                // Reaching the next burst round closes the current
                // episode's window: score it against the state after the
                // *previous* pulse (this pulse already reflects the new
                // burst, which fires at the start of its round).
                while episode + 1 < bursts.len() && pulse >= bursts[episode + 1] {
                    if prev_legal {
                        recoveries.push(
                            episode_last_illegal.map_or(0, |l| l.saturating_sub(bursts[episode])),
                        );
                    } else {
                        censored_episodes += 1;
                    }
                    episode += 1;
                    episode_last_illegal = None;
                }
                let legal = (stab.legal)(&sim);
                if legal {
                    legal_pulses += 1;
                } else {
                    episode_last_illegal = Some(pulse);
                }
                if legal != prev_legal {
                    prev_legal = legal;
                    if let Some(sink) = sim.events_mut() {
                        sink.push(Event::LegalityFlip {
                            round: pulse,
                            legal,
                        });
                    }
                }
            }
        }
        if stopped.is_none() {
            if let Some(stop) = &self.stop {
                if stop(&sim) {
                    stopped = Some(self.max_rounds);
                }
            }
        }
        record.stopped_at = stopped;
        if let Some(stab) = &self.stabilization {
            // The run's end closes the current episode; later bursts never
            // opened their windows and stay unscored. A diverged episode
            // emits no rounds_to_stabilize, keeping it out of the
            // stabilization-time percentiles.
            if (stab.legal)(&sim) {
                recoveries.push(
                    episode_last_illegal
                        .map_or(0, |l| l.saturating_sub(stab.corruption_rounds[episode])),
                );
            } else {
                censored_episodes += 1;
            }
            for recovery in &recoveries {
                record.metric("rounds_to_stabilize", *recovery as f64);
            }
            record.metric("censored", censored_episodes as f64);
            record.metric(
                "legal_fraction",
                if sampled == 0 {
                    1.0
                } else {
                    legal_pulses as f64 / sampled as f64
                },
            );
        }
        record.rounds = sim.round().value();
        record.messages = MessageStats::from_trace(sim.trace());
        let mean = |sum: f64| {
            if sampled == 0 {
                0.0
            } else {
                sum / sampled as f64
            }
        };
        record.metric("inbox_depth_mean", mean(inbox_depth_sum));
        record.metric("quiescent_mean", mean(quiescent_sum));
        for ((name, _), sum) in self.round_metrics.iter().zip(&metric_sums) {
            record.metric(name.clone(), mean(*sum));
        }
        if let Some(probe) = &self.probe {
            probe(&sim, &mut record);
        }
        record.verdict = match &self.verdict {
            Some(verdict) => verdict(&sim, &record),
            None => Verdict::Pass,
        };
        record.events = sim.take_events();
        record
    }
}

impl crate::record::Scenario for ScenarioSpec {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&self, seed: u64) -> RunRecord {
        ScenarioSpec::run(self, seed)
    }

    fn run_sharded(&self, seed: u64, shards: usize) -> RunRecord {
        ScenarioSpec::run_sharded(self, seed, shards)
    }

    fn run_on(&self, seed: u64, shards: usize, runtime: &Runtime) -> RunRecord {
        ScenarioSpec::run_on(self, seed, shards, runtime)
    }

    fn run_telemetry(
        &self,
        seed: u64,
        shards: usize,
        runtime: &Runtime,
        telemetry: Option<&TelemetryConfig>,
    ) -> RunRecord {
        ScenarioSpec::run_telemetry(self, seed, shards, runtime, telemetry)
    }

    fn supports_sharding(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Flood;

    fn flood_spec(topology: TopologyFamily) -> ScenarioSpec {
        ScenarioSpec::new("flood", topology, |_, _| Box::new(Flood::default())).max_rounds(10)
    }

    #[test]
    fn same_seed_same_record() {
        let spec = flood_spec(TopologyFamily::RandomK {
            n: 12,
            k: 4,
            extra_p: 0.2,
        })
        .delivery(Delivery::Lossy { p: 0.3 });
        assert_eq!(spec.run(5), spec.run(5));
        assert_ne!(
            spec.run(5).messages,
            spec.run(6).messages,
            "different seeds give different lossy traces"
        );
    }

    #[test]
    fn topology_families_build() {
        for family in [
            TopologyFamily::Complete(4),
            TopologyFamily::Ring(5),
            TopologyFamily::Star(4),
            TopologyFamily::Grid(3, 2),
            TopologyFamily::RandomK {
                n: 8,
                k: 3,
                extra_p: 0.1,
            },
            TopologyFamily::Edges {
                n: 3,
                edges: vec![(0, 1), (1, 2)],
            },
        ] {
            let n = family.len();
            assert!(!family.is_empty());
            let t = family.build(1);
            assert_eq!(t.len(), n);
            assert!(t.is_connected());
        }
    }

    #[test]
    fn adversaries_and_schedule_shape_the_run() {
        // Complete(5) with a silent processor: everyone else hears 3 per
        // round instead of 4.
        let spec = flood_spec(TopologyFamily::Complete(5))
            .adversary(4, Role::Silent)
            .probe(|sim, record| {
                let heard = sim
                    .process_as::<Flood>(ProcessId(0))
                    .map(|f| f.heard)
                    .unwrap_or(0);
                record.metric("p0_heard", heard as f64);
            });
        let r = spec.run(0);
        // 9 full delivery rounds × 3 speaking neighbors.
        assert_eq!(r.get_metric("p0_heard"), Some(27.0));

        // Disconnecting the silent node instead changes nothing for p0.
        let spec2 = flood_spec(TopologyFamily::Complete(5))
            .adversary(4, Role::Silent)
            .schedule(Schedule::new().at(0, ScheduledAction::Disconnect(ProcessId(4))))
            .probe(|sim, record| {
                let heard = sim
                    .process_as::<Flood>(ProcessId(0))
                    .map(|f| f.heard)
                    .unwrap_or(0);
                record.metric("p0_heard", heard as f64);
            });
        assert_eq!(spec2.run(0).get_metric("p0_heard"), Some(27.0));
    }

    #[test]
    fn stop_predicate_records_round() {
        let spec = flood_spec(TopologyFamily::Complete(3))
            .max_rounds(50)
            .stop_when(|sim| {
                sim.process_as::<Flood>(ProcessId(0))
                    .map(|f| f.heard >= 4)
                    .unwrap_or(false)
            });
        let r = spec.run(0);
        assert_eq!(r.stopped_at, Some(3), "2 msgs/round from round 1 on");
        assert_eq!(r.rounds, 3);
    }

    #[test]
    fn colluders_share_one_lie() {
        let spec = flood_spec(TopologyFamily::Complete(4))
            .colluders([2, 3])
            .max_rounds(4)
            .probe(|sim, record| {
                record.metric("delivered", sim.trace().messages_delivered as f64);
            });
        let r = spec.run(3);
        assert!(r.verdict.passed());
        assert!(r.messages.delivered > 0);
    }

    #[test]
    fn verdict_failure_is_reported() {
        let spec = flood_spec(TopologyFamily::Ring(4))
            .verdict(|_, record| Verdict::check(record.rounds > 100, "too few rounds"));
        assert_eq!(spec.run(0).verdict, Verdict::Fail("too few rounds".into()));
    }

    #[test]
    fn duplicate_adversary_is_last_write_wins() {
        // Regression: re-assigning an id used to be silently ignored
        // because role lookup took the first match. p0 on Complete(3)
        // hears 1/round if processor 2 stays Silent, 2/round once the
        // later Equivocator assignment actually overrides it.
        let heard = |spec: ScenarioSpec| {
            spec.max_rounds(10)
                .probe(|sim, r| {
                    let heard = sim
                        .process_as::<Flood>(ProcessId(0))
                        .map(|f| f.heard)
                        .unwrap_or(0);
                    r.metric("p0_heard", heard as f64);
                })
                .run(0)
                .get_metric("p0_heard")
        };
        let overridden = flood_spec(TopologyFamily::Complete(3))
            .adversary(2, Role::Silent)
            .adversary(
                2,
                Role::Equivocator {
                    a: vec![1],
                    b: vec![2],
                },
            );
        assert_eq!(heard(overridden), Some(18.0), "9 delivery rounds × 2");
        let silent = flood_spec(TopologyFamily::Complete(3)).adversary(2, Role::Silent);
        assert_eq!(heard(silent), Some(9.0), "9 delivery rounds × 1");
        // colluders() participates in the same upsert rule.
        let spec = flood_spec(TopologyFamily::Complete(4))
            .adversary(3, Role::Silent)
            .colluders([3]);
        assert_eq!(spec.placements.len(), 1);
        assert!(matches!(spec.placements[0], (3, Role::Colluder)));
    }

    #[test]
    fn placement_strategies_resolve_deterministically() {
        let star = TopologyFamily::Star(9).build(0);
        let hub = PlacementStrategy::WorstCaseByDegree {
            f: 1,
            role: Role::Silent,
        };
        let resolved = hub.resolve(&star, 5, 0);
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[0].0, 0, "the star's hub is the max-degree pick");

        let complete = TopologyFamily::Complete(12).build(0);
        let random = PlacementStrategy::RandomF {
            f: 3,
            role: Role::Silent,
        };
        let a = random.resolve(&complete, 7, 0);
        assert_eq!(a.len(), 3);
        assert!(a.windows(2).all(|w| w[0].0 < w[1].0), "ascending ids");
        assert_eq!(
            a.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            random
                .resolve(&complete, 7, 0)
                .iter()
                .map(|(id, _)| *id)
                .collect::<Vec<_>>(),
            "same seed, same picks"
        );
        let distinct: std::collections::HashSet<Vec<usize>> = (0..8)
            .map(|seed| {
                random
                    .resolve(&complete, seed, 0)
                    .iter()
                    .map(|(id, _)| *id)
                    .collect()
            })
            .collect();
        assert!(distinct.len() > 1, "the family varies across seeds");
        // Oversized f clamps to n.
        let all = PlacementStrategy::RandomF {
            f: 99,
            role: Role::Silent,
        }
        .resolve(&complete, 0, 0);
        assert_eq!(all.len(), 12);
    }

    #[test]
    fn stacked_random_strategies_are_decorrelated() {
        // Two RandomF families on one spec draw from salt-distinct RNG
        // streams, so the second must not simply shadow the first's
        // picks on every seed (they'd collide and last-write-wins would
        // erase the first family entirely).
        let spec = flood_spec(TopologyFamily::Complete(12))
            .place(PlacementStrategy::RandomF {
                f: 1,
                role: Role::Silent,
            })
            .place(PlacementStrategy::RandomF {
                f: 1,
                role: Role::Noise { max_len: 4 },
            });
        let topology = TopologyFamily::Complete(12).build(0);
        let both = (0..8).any(|seed| spec.resolve_placements(&topology, seed).len() == 2);
        assert!(both, "salted draws place two distinct adversaries");
    }

    #[test]
    fn strategy_placements_shape_the_run() {
        // Silencing the star's hub by degree cuts every leaf off.
        let spec = flood_spec(TopologyFamily::Star(8))
            .place(PlacementStrategy::WorstCaseByDegree {
                f: 1,
                role: Role::Silent,
            })
            .probe(|sim, r| {
                let heard = sim
                    .process_as::<Flood>(ProcessId(1))
                    .map(|f| f.heard)
                    .unwrap_or(99);
                r.metric("leaf_heard", heard as f64);
            });
        assert_eq!(spec.run(3).get_metric("leaf_heard"), Some(0.0));
    }

    fn gossip_recovery_spec() -> ScenarioSpec {
        // Ring(6): a scrambled maximum takes up to diameter (3) rounds to
        // re-propagate, so the stabilization time is visibly non-zero.
        ScenarioSpec::new("stab", TopologyFamily::Ring(6), |id, _| {
            Box::new(crate::workload::MaxGossip::new(id.index() as u64))
        })
        .schedule(Schedule::new().at(
            5,
            ScheduledAction::Corrupt(
                CorruptionFamily {
                    targets: CorruptionTargets::All,
                    corrupt_messages_p: 0.0,
                    drop_messages_p: 0.0,
                    salt: 1,
                },
                Recurrence::Once,
            ),
        ))
        .max_rounds(20)
        .stabilization(5, |sim| crate::workload::gossip_agreed(sim, 0..6))
    }

    #[test]
    fn stabilization_probe_measures_recovery() {
        let r = gossip_recovery_spec().run(3);
        assert_eq!(r.get_metric("censored"), Some(0.0));
        let rts = r.get_metric("rounds_to_stabilize").expect("emitted");
        assert!(
            (1.0..=5.0).contains(&rts),
            "ring gossip re-agrees within a few propagation rounds, got {rts}"
        );
        assert_eq!(gossip_recovery_spec().run(3), r, "pure in the seed");
    }

    #[test]
    fn stabilization_censors_diverged_runs() {
        // gossip_agreed over an id range including a non-gossiper is
        // always false: the run can never re-enter the legal set.
        let r = ScenarioSpec::new("stab", TopologyFamily::Complete(5), |id, _| {
            Box::new(crate::workload::MaxGossip::new(id.index() as u64))
        })
        .max_rounds(8)
        .stabilization(2, |_| false)
        .run(0);
        assert_eq!(r.get_metric("censored"), Some(1.0));
        assert_eq!(
            r.get_metric("rounds_to_stabilize"),
            None,
            "a diverged run must not masquerade as a slow one"
        );
    }

    #[test]
    fn stabilization_without_illegal_rounds_reports_zero() {
        // No corruption scheduled and the predicate always holds.
        let r = ScenarioSpec::new("stab", TopologyFamily::Complete(3), |id, _| {
            Box::new(crate::workload::MaxGossip::new(id.index() as u64))
        })
        .max_rounds(6)
        .stabilization(2, |_| true)
        .run(0);
        assert_eq!(r.get_metric("rounds_to_stabilize"), Some(0.0));
        assert_eq!(r.get_metric("censored"), Some(0.0));
    }

    fn bfs_episode_spec(
        schedule: Schedule,
        bursts: impl IntoIterator<Item = u64>,
        max_rounds: u64,
    ) -> ScenarioSpec {
        ScenarioSpec::new("episodes", TopologyFamily::Ring(8), |id, _| {
            Box::new(crate::bfs::BfsTree::new(id))
        })
        .schedule(schedule)
        .max_rounds(max_rounds)
        .stabilization_episodes(bursts, crate::bfs::bfs_tree_legal)
    }

    fn total_scramble() -> CorruptionFamily {
        // Scramble every register *and* wipe the in-flight claims: with the
        // channels intact, one BfsTree pulse re-adopts the pre-burst claims
        // and the scramble never becomes observable.
        CorruptionFamily {
            targets: CorruptionTargets::All,
            corrupt_messages_p: 0.0,
            drop_messages_p: 1.0,
            salt: 2,
        }
    }

    #[test]
    fn recurring_bursts_score_one_episode_each() {
        // Bursts at 10 and 25, far enough apart for full recovery: two
        // rounds_to_stabilize values, no censoring, and availability
        // strictly between 0 and 1.
        let recurrence = Recurrence::Every {
            period: 15,
            until: 30,
        };
        let r = bfs_episode_spec(
            Schedule::new().at(10, ScheduledAction::Corrupt(total_scramble(), recurrence)),
            recurrence.firing_rounds(10),
            60,
        )
        .run(1);
        let recoveries: Vec<f64> = r
            .metrics
            .iter()
            .filter(|(n, _)| n == "rounds_to_stabilize")
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(recoveries.len(), 2, "one recovery per episode: {r:?}");
        let bound = crate::bfs::certified_bound(&Topology::ring(8)).unwrap() as f64;
        assert!(
            recoveries.iter().all(|&v| v >= 1.0 && v <= bound),
            "recoveries within the certified bound: {recoveries:?}"
        );
        assert_eq!(r.get_metric("censored"), Some(0.0));
        let legal = r.get_metric("legal_fraction").unwrap();
        assert!(legal > 0.0 && legal < 1.0, "legal_fraction {legal}");
    }

    #[test]
    fn corruption_at_round_zero_measures_from_the_first_pulse() {
        let r = bfs_episode_spec(
            Schedule::new().at(
                0,
                ScheduledAction::Corrupt(total_scramble(), Recurrence::Once),
            ),
            [0],
            40,
        )
        .run(1);
        assert_eq!(r.get_metric("censored"), Some(0.0));
        let rts = r.get_metric("rounds_to_stabilize").unwrap();
        let bound = crate::bfs::certified_bound(&Topology::ring(8)).unwrap() as f64;
        assert!(
            rts >= 1.0 && rts <= bound,
            "round-0 burst measured from pulse 0, got {rts}"
        );
    }

    #[test]
    fn burst_after_the_budget_leaves_its_episode_unscored() {
        // Second burst at 300 never fires inside the 40-round budget: the
        // run emits exactly one recovery and no censoring for the ghost
        // episode.
        let r = bfs_episode_spec(
            Schedule::new().at(
                10,
                ScheduledAction::Corrupt(total_scramble(), Recurrence::Once),
            ),
            [10, 300],
            40,
        )
        .run(1);
        let recoveries = r
            .metrics
            .iter()
            .filter(|(n, _)| n == "rounds_to_stabilize")
            .count();
        assert_eq!(recoveries, 1, "the unopened episode emits nothing");
        assert_eq!(
            r.get_metric("censored"),
            Some(0.0),
            "an unopened episode is not censored either"
        );
    }

    #[test]
    fn back_to_back_bursts_censor_the_squeezed_episodes() {
        // Re-firing every round leaves no legal pulse between bursts on a
        // diameter-4 ring: every closed episode is censored. The final
        // episode gets a recovery tail after `until`, so the run still
        // ends legal and emits exactly one recovery.
        let recurrence = Recurrence::Every {
            period: 1,
            until: 20,
        };
        let r = bfs_episode_spec(
            Schedule::new().at(10, ScheduledAction::Corrupt(total_scramble(), recurrence)),
            recurrence.firing_rounds(10),
            60,
        )
        .run(1);
        let recoveries = r
            .metrics
            .iter()
            .filter(|(n, _)| n == "rounds_to_stabilize")
            .count();
        assert_eq!(
            r.get_metric("censored"),
            Some(10.0),
            "episodes with zero legal pulses between bursts are censored: {r:?}"
        );
        assert_eq!(recoveries, 1, "only the final episode recovers");
        let legal = r.get_metric("legal_fraction").unwrap();
        assert!(
            legal < 0.8,
            "sustained bursts depress availability: {legal}"
        );
    }

    #[test]
    fn seeded_protocol_factory_receives_the_run_seed() {
        let spec =
            ScenarioSpec::new_seeded("seeded", TopologyFamily::Complete(4), |id, _n, seed| {
                Box::new(crate::workload::MaxGossip::new(
                    seed * 10 + id.index() as u64,
                )) as Box<dyn Process>
            })
            .max_rounds(5)
            .probe(|sim, r| {
                let v = sim
                    .process_as::<crate::workload::MaxGossip>(ProcessId(0))
                    .map(|p| p.current)
                    .unwrap_or(0);
                r.metric("converged_max", v as f64);
            });
        assert_eq!(spec.run(2).get_metric("converged_max"), Some(23.0));
        assert_eq!(spec.run(5).get_metric("converged_max"), Some(53.0));
    }
}

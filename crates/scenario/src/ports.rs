//! The paper's experiments (`ga-bench` e1–e8) and two `examples/`
//! walkthroughs, re-expressed as scenarios.
//!
//! Each port is a *thin* definition: it calls the shared experiment
//! implementation in `ga-bench` (or the middleware directly), lifts the
//! result into [`RunRecord`] metrics, and states the paper's claim as a
//! verdict. The sweep engine then gives every experiment seed fan-out,
//! parallelism and deterministic JSON summaries for free — replacing the
//! eight hand-rolled harness `main`s as the way to vary and batch them.

use std::sync::Arc;

use ga_bench::{
    e1_fig1, e2_pom_pennies, e3_rra, e4_ssba, e5_virus, e6_overhead, e7_dynamics, e8_audit_cadence,
};
use ga_games::matching_pennies::{manipulated_matching_pennies, MANIPULATE};
use ga_games::prisoners_dilemma;
use ga_games::resource_allocation::RraProcess;
use game_authority::agent::Behavior;
use game_authority::authority::{Authority, AuthorityConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::record::{FnScenario, RunRecord, Scenario};

fn port(
    name: &'static str,
    f: impl Fn(u64, &mut RunRecord) + Send + Sync + 'static,
) -> Arc<dyn Scenario> {
    Arc::new(FnScenario::new(name, move |seed| {
        let mut record = RunRecord::new(name, seed);
        f(seed, &mut record);
        record
    }))
}

/// E1 — Fig. 1's payoff matrix and §5.1 expected profits (seed-free).
pub fn e1_fig1_port() -> Arc<dyn Scenario> {
    port("e1_fig1", |_seed, r| {
        let out = e1_fig1::run();
        let (ea, eb) = out.expected[2];
        r.metric("a_vs_manipulate", ea)
            .metric("b_manipulate_gain", eb)
            .require(
                out.matrix[0] == vec![(1.0, -1.0), (-1.0, 1.0), (1.0, -1.0)]
                    && out.matrix[1] == vec![(-1.0, 1.0), (1.0, -1.0), (-9.0, 9.0)],
                "payoff matrix deviates from Fig. 1",
            )
            .require(
                out.expected[0] == (0.0, 0.0) && out.expected[1] == (0.0, 0.0),
                "honest columns should break even",
            )
            .require(
                (ea, eb) == (-4.0, 4.0),
                "manipulation should move (A, B) to (-4, +4)",
            );
    })
}

/// E2 — price of malice on Fig. 1's game across the three regimes (§5.4).
pub fn e2_pom_port() -> Arc<dyn Scenario> {
    port("e2_pom_pennies", |seed, r| {
        let rounds = 200u64;
        let out = e2_pom_pennies::run(rounds, seed);
        let unsupervised = &out.regimes[0];
        let disconnect = &out.regimes[1];
        let fine = &out.regimes[2];
        let per_round_loss = -unsupervised.honest_payoff / rounds as f64;
        r.metric("baseline_honest_payoff", out.baseline_honest_payoff)
            .metric("unsupervised_loss_per_round", per_round_loss)
            .metric("disconnect_honest_payoff", disconnect.honest_payoff)
            .metric("fine_manipulator_payoff", fine.manipulator_payoff)
            .metric(
                "disconnect_detected_at",
                disconnect.detected_at.map_or(-1.0, |d| d as f64),
            )
            .require(
                unsupervised.detected_at.is_none() && per_round_loss > 2.5,
                "unsupervised manipulation should bleed A ≈ 4/round",
            )
            .require(
                disconnect.detected_at == Some(0),
                "the support audit should catch B in the first play",
            )
            .require(
                -disconnect.honest_payoff <= 10.0,
                "disconnection should cap A's damage at one play",
            )
            .require(
                fine.manipulator_payoff < 0.0,
                "fines should make manipulation unprofitable",
            );
    })
}

/// E3 — Theorem 5 / Lemma 6: RRA multi-round anarchy cost bounds.
pub fn e3_rra_port() -> Arc<dyn Scenario> {
    port("e3_rra_bounds", |seed, r| {
        let points = e3_rra::run(&[(4, 2), (8, 4)], &[10, 100, 1000], seed);
        for p in &points {
            if p.k == 1000 {
                r.metric(format!("ratio_n{}_b{}_k1000", p.n, p.b), p.ratio);
            }
            r.require(
                p.bounds_held_throughout,
                "R(k) ≤ 1 + 2b/k and Δ(k) < 2n − 1 must hold at every k",
            );
        }
        let late = points.iter().filter(|p| p.k == 1000);
        for p in late {
            r.require(
                p.ratio < 1.05,
                "R(1000) should be close to 1 (asymptotic optimality)",
            );
        }
    })
}

/// E4 — Lemma 2 / Theorem 1: SSBA convergence and closure.
pub fn e4_ssba_port() -> Arc<dyn Scenario> {
    port("e4_ssba_stabilization", |seed, r| {
        let trials = 2u32;
        let points = e4_ssba::run_convergence(&[(4, 1)], trials, 300_000, seed);
        let p = &points[0];
        r.metric("mean_pulses", p.mean_pulses)
            .metric("max_pulses", p.max_pulses as f64)
            .metric("converged", p.converged as f64)
            .require(
                p.converged == trials,
                "every trial should converge within the pulse budget",
            );
        let (recovered, plays) = e4_ssba::run_closure(4, 1, seed);
        r.metric("plays_after_fault", plays as f64).require(
            recovered && plays >= 2,
            "closure: agreement logs should realign after a total fault",
        );
    })
}

/// E5 — price of malice in the virus inoculation game (seed-free).
pub fn e5_virus_port() -> Arc<dyn Scenario> {
    port("e5_virus_pom", |_seed, r| {
        let points = e5_virus::run(5, 1.0, 25.0, &[0, 3, 6]);
        r.require(
            (points[0].pom_unsupervised - 1.0).abs() < 1e-9,
            "k = 0 must reproduce the baseline",
        );
        for p in &points[1..] {
            r.metric(format!("pom_unsupervised_k{}", p.k), p.pom_unsupervised)
                .metric(format!("pom_supervised_k{}", p.k), p.pom_supervised)
                .require(
                    p.pom_unsupervised > 1.0,
                    "unsupervised malice should degrade honest welfare",
                )
                .require(
                    p.pom_supervised < p.pom_unsupervised,
                    "the authority should reduce the price of malice",
                );
        }
    })
}

/// E6 — per-consensus and per-play protocol cost of the authority.
pub fn e6_overhead_port() -> Arc<dyn Scenario> {
    port("e6_authority_overhead", |seed, r| {
        let points = e6_overhead::run(&[4, 7], seed);
        let mut om = Vec::new();
        for p in &points {
            r.metric(
                format!("{}_n{}_messages", p.backend.label(), p.n),
                p.messages as f64,
            )
            .metric(
                format!("{}_n{}_bytes", p.backend.label(), p.n),
                p.bytes as f64,
            )
            .require(p.agreement, "every backend must reach agreement");
            if p.backend.label() == "om" {
                om.push(p.bytes);
            }
        }
        r.require(
            om.len() == 2 && om[1] > om[0] * 4,
            "OM's byte cost should grow super-linearly with n",
        );
    })
}

/// E7 — RRA load-gap trajectories: honest / cheated / supervised.
pub fn e7_dynamics_port() -> Arc<dyn Scenario> {
    port("e7_rra_dynamics", |seed, r| {
        let out = e7_dynamics::run(5, 2, &[1, 100, 500], seed);
        let last = out.checkpoints.len() - 1;
        r.metric("honest_gap_final", out.honest[last] as f64)
            .metric("cheated_gap_final", out.cheated[last] as f64)
            .metric("supervised_gap_final", out.supervised[last] as f64)
            .metric("envelope", out.envelope as f64)
            .require(
                out.honest[last] <= out.envelope,
                "honest play must stay inside Lemma 6's envelope",
            )
            .require(
                out.cheated[last] > out.envelope,
                "an unsupervised cheater should push Δ(k) past the envelope",
            )
            .require(
                out.supervised[last] < out.cheated[last] / 2,
                "disconnecting the cheater should collapse the gap",
            );
    })
}

/// E8 — audit-cadence ablation: detection latency vs. audit work (§5.3).
pub fn e8_cadence_port() -> Arc<dyn Scenario> {
    port("e8_audit_cadence", |seed, r| {
        let points = e8_audit_cadence::run(64, seed);
        let mut latencies = Vec::new();
        for p in &points {
            let label = if p.epoch_len == 1 {
                "per_play".to_string()
            } else {
                format!("epoch{}", p.epoch_len)
            };
            r.metric(
                format!("detected_at_{label}"),
                p.detected_at.map_or(-1.0, |d| d as f64),
            )
            .metric(format!("audit_ops_{label}"), p.audit_ops as f64)
            .require(
                p.detected_at.is_some(),
                "every cadence must detect eventually",
            );
            latencies.extend(p.detected_at);
        }
        r.require(
            points[0].detected_at == Some(0),
            "the per-play audit should detect in play 0",
        )
        .require(
            latencies.windows(2).all(|w| w[0] <= w[1]),
            "detection latency should grow with the epoch length",
        );
    })
}

/// Port of `examples/manipulation_audit.rs`: the Fig. 1 manipulation,
/// unsupervised vs. audited, as one seeded scenario.
pub fn manipulation_audit_port() -> Arc<dyn Scenario> {
    port("example_manipulation_audit", |seed, r| {
        let game = manipulated_matching_pennies();
        let behaviors = || {
            vec![
                Behavior::honest_mixed(vec![0.5, 0.5]),
                Behavior::hidden_manipulator(vec![0.5, 0.5, 0.0], MANIPULATE),
            ]
        };
        let rounds = 100u64;
        let mut unsupervised = Authority::new(
            &game,
            behaviors(),
            AuthorityConfig {
                audits_enabled: false,
                seed,
                ..AuthorityConfig::default()
            },
        );
        let a_loss: f64 = unsupervised
            .play(rounds)
            .iter()
            .map(|rep| rep.costs[0])
            .sum();

        let mut supervised = Authority::new(
            &game,
            behaviors(),
            AuthorityConfig {
                seed,
                ..AuthorityConfig::default()
            },
        );
        let reports = supervised.play(rounds);
        let a_loss_supervised: f64 = reports.iter().map(|rep| rep.costs[0]).sum();
        let caught = reports
            .iter()
            .find(|rep| rep.punished.contains(&1))
            .map(|rep| rep.round);

        r.metric("a_loss_unsupervised", a_loss)
            .metric("a_loss_supervised", a_loss_supervised)
            .metric("caught_at", caught.map_or(-1.0, |c| c as f64))
            .require(caught == Some(0), "the audit should expose B in play 0")
            .require(
                a_loss > 2.5 * rounds as f64,
                "without the authority A bleeds ≈ 4/play",
            )
            .require(
                a_loss_supervised < a_loss / 10.0,
                "the authority should reduce malice damage by >10x",
            );
    })
}

/// Port of `examples/rra_consortium.rs`: §6's license consortium under
/// supervised repeated Nash play.
pub fn rra_consortium_port() -> Arc<dyn Scenario> {
    port("example_rra_consortium", |seed, r| {
        let (companies, hosts) = (8usize, 4usize);
        let mut rra = RraProcess::new(companies, hosts);
        let mut rng = StdRng::seed_from_u64(seed);
        let stats = rra.play(5000, &mut rng);
        let last = stats.last().expect("played rounds");
        r.metric("ratio_final", last.ratio)
            .metric("bound_final", last.bound)
            .metric("gap_final", last.gap as f64)
            .require(
                stats
                    .iter()
                    .all(|s| s.ratio <= s.bound + 1e-9 && s.gap < 2 * companies as u64),
                "Theorem 5 / Lemma 6 bounds must hold at every round",
            )
            .require(last.ratio < 1.01, "R(5000) should be within 1% of optimal");
    })
}

/// Port of `examples/quickstart.rs`: the prisoner's dilemma referee, honest
/// and with an equivocating cheat.
pub fn quickstart_port() -> Arc<dyn Scenario> {
    port("example_quickstart_pd", |seed, r| {
        let game = prisoners_dilemma();
        let mut honest = Authority::new(
            &game,
            vec![Behavior::honest_pure(0), Behavior::honest_pure(0)],
            AuthorityConfig {
                seed,
                ..AuthorityConfig::default()
            },
        );
        let honest_reports = honest.play(5);
        r.metric(
            "honest_punishments",
            honest_reports
                .iter()
                .map(|rep| rep.punished.len())
                .sum::<usize>() as f64,
        )
        .require(
            honest_reports.iter().all(|rep| rep.punished.is_empty()),
            "honest play should never be punished",
        );

        let mut cheated = Authority::new(
            &game,
            vec![Behavior::honest_pure(0), Behavior::equivocator(0, 1)],
            AuthorityConfig {
                seed,
                ..AuthorityConfig::default()
            },
        );
        let reports = cheated.play(3);
        let caught = reports
            .iter()
            .find(|rep| rep.punished.contains(&1))
            .map(|rep| rep.round);
        r.metric("equivocator_caught_at", caught.map_or(-1.0, |c| c as f64))
            .require(
                caught == Some(0),
                "the judicial service should catch the equivocation in play 0",
            )
            .require(
                !cheated.executive().is_active(1),
                "the executive should disconnect the equivocator",
            );
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_ports_pass_at_several_seeds() {
        for scenario in [
            e1_fig1_port(),
            e3_rra_port(),
            e5_virus_port(),
            e7_dynamics_port(),
            e8_cadence_port(),
            quickstart_port(),
        ] {
            for seed in [2010, 7] {
                let r = scenario.run(seed);
                assert!(
                    r.verdict.passed(),
                    "{} failed at seed {seed}: {:?}",
                    scenario.name(),
                    r.verdict
                );
            }
        }
    }

    #[test]
    fn authority_ports_pass() {
        for scenario in [e2_pom_port(), manipulation_audit_port()] {
            let r = scenario.run(2010);
            assert!(r.verdict.passed(), "{}: {:?}", scenario.name(), r.verdict);
            assert!(r.get_metric("caught_at").unwrap_or(0.0) <= 0.0);
        }
    }

    #[test]
    fn records_are_deterministic_per_seed() {
        let s = e2_pom_port();
        assert_eq!(s.run(11), s.run(11));
    }
}

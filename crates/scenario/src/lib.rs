//! # ga-scenario — declarative scenarios and a deterministic sweep engine
//!
//! The paper's claims are statements over *families* of executions:
//! topologies × adversary mixes × fault schedules × churn × seeds. This
//! crate turns "run the protocol under environment X and check claim Y"
//! into data:
//!
//! * [`ScenarioSpec`](spec::ScenarioSpec) — a builder-style description of
//!   a simulator execution family: topology family, delivery model,
//!   adversary/colluder placement, a churn/fault
//!   [`Schedule`](ga_simnet::schedule::Schedule), the protocol under test
//!   and stop/verdict predicates. [`run(seed)`](spec::ScenarioSpec::run)
//!   is a pure function of the seed.
//! * [`sweep`] — fans scenarios out over seed ranges and
//!   [`ParamGrid`](sweep::ParamGrid)s across a persistent
//!   [`Runtime`](ga_simnet::runtime::Runtime) worker pool — the same pool
//!   each run's sharded `Simulation::step` draws from, so one `--workers`
//!   budget covers both levels. Each run derives all randomness from its
//!   seed and lands in its own result slot, so aggregated
//!   [`SweepSummary`](sweep::SweepSummary) JSON is **byte-identical at
//!   any worker count and pool size**.
//! * [`suites`] — named suites for the `scenario` CLI: `paper` (the e1–e8
//!   experiment ports, see [`ports`]), `authority` (the §3.3 distributed-
//!   authority plays, see [`authority`]), `stabilize` (the recovery
//!   frontier, see [`stabilize`]), `examples`, `smoke`, `bench64`.
//! * [`spec::PlacementStrategy`] — seed-derived adversary placement
//!   families (`RandomF`, `WorstCaseByDegree`), so one spec covers every
//!   adversary position instead of one pinned id.
//!
//! ## Stabilization probes and the recovery frontier
//!
//! Self-stabilization claims are recovery-time statements, so
//! [`ScenarioSpec::stabilization`](spec::ScenarioSpec::stabilization)
//! makes the measurement declarative: the spec schedules a
//! [`CorruptionFamily`](ga_simnet::fault::CorruptionFamily) (a
//! [`ScheduledAction::Corrupt`](ga_simnet::schedule::ScheduledAction)
//! entry — corruption is spec data, exactly like churn) and declares the
//! protocol's *legal set* as a predicate. The probe evaluates legality
//! after every round and emits
//!
//! * `rounds_to_stabilize = last_illegal_round − corruption_round` when
//!   the run ends legal, and
//! * `censored = 1` (and **no** `rounds_to_stabilize`) when the budget
//!   runs out while the state is still illegal — percentiles aggregate
//!   over emitting runs only, so a diverged run never masquerades as a
//!   slow one.
//!
//! `scenario run --suite stabilize --table rounds_to_stabilize` renders
//! the frontier: each row is one `loss × corruption-intensity × n` grid
//! point, the `rate` column is the fraction of runs that stabilized
//! (censored runs fail their verdict) and the p50/p90/p99 columns are
//! stabilization-time percentiles over the runs that recovered. Reading
//! it: at `loss=0` the legal sets are closed, so rates are `1.00` and the
//! percentiles are pure recovery times; as loss and intensity grow the
//! percentiles widen and the rate falls below one — that boundary is the
//! protocol's stabilization frontier. See [`stabilize`].
//!
//! ## Telemetry: the two-plane rule
//!
//! Observability follows `ga_simnet::telemetry`'s split. The
//! *deterministic event plane* — per-message deliveries/drops, schedule
//! firings, corruption, scrambles, and the stabilization probe's legality
//! flips — rides in [`RunRecord::events`](record::RunRecord::events)
//! (enable via [`Scenario::run_telemetry`](record::Scenario::run_telemetry)
//! or `scenario run --events FILE`, render lines with
//! [`record::event_json`]) and is byte-identical at any workers × shards ×
//! pool combination. The *timing plane* — wall-clock step/merge/batch
//! profiles ([`Profiler`](ga_simnet::telemetry::Profiler), `--profile
//! FILE`) — is a side channel that never feeds summaries, records or
//! events. Per-round observables that must survive aggregation go through
//! [`ScenarioSpec::round_metric`](spec::ScenarioSpec::round_metric) and
//! the built-in `inbox_depth_mean`/`quiescent_mean` metrics instead.
//! `scenario trace events.jsonl` converts an event stream to Chrome
//! trace-event JSON loadable in Perfetto.
//!
//! ## Quickstart
//!
//! Flood a lossy ring and check the observed drop rate tracks the model:
//!
//! ```
//! use ga_scenario::prelude::*;
//!
//! let spec = ScenarioSpec::new(
//!     "lossy_ring",
//!     TopologyFamily::Ring(8),
//!     |_id, _n| Box::new(Flood::default()) as Box<dyn Process>,
//! )
//! .delivery(Delivery::Lossy { p: 0.25 })
//! .max_rounds(40)
//! .verdict(|_sim, record| {
//!     Verdict::check(
//!         (record.messages.lossy_drop_rate - 0.25).abs() < 0.2,
//!         "drop rate should track p",
//!     )
//! });
//!
//! // One run is a pure function of the seed…
//! let record = spec.run(7);
//! assert!(record.verdict.passed());
//! assert_eq!(record, spec.run(7));
//!
//! // …and a sweep aggregates many runs deterministically: the JSON is
//! // byte-identical no matter how many workers execute it.
//! let scenarios: Vec<std::sync::Arc<dyn Scenario>> = vec![std::sync::Arc::new(spec)];
//! let summary = sweep("demo", &scenarios, 0..8, 4);
//! assert_eq!(summary.runs(), 8);
//! assert_eq!(
//!     summary.to_json(true).render(),
//!     sweep("demo", &scenarios, 0..8, 1).to_json(true).render(),
//! );
//! ```
//!
//! Churn and faults are data too — a hub outage with recovery:
//!
//! ```
//! use ga_scenario::prelude::*;
//!
//! let spec = ScenarioSpec::new(
//!     "hub_outage",
//!     TopologyFamily::Star(6),
//!     |id, _n| Box::new(MaxGossip::new(id.index() as u64)) as Box<dyn Process>,
//! )
//! .schedule(
//!     Schedule::new()
//!         .at(2, ScheduledAction::Disconnect(ProcessId(0)))
//!         .at(6, ScheduledAction::Reconnect(ProcessId(0), (1..6).map(ProcessId).collect())),
//! )
//! .max_rounds(20)
//! .stop_when(|sim| ga_scenario::workload::gossip_agreed(sim, 0..6));
//!
//! assert!(spec.run(0).stopped_at.is_some(), "gossip survives the outage");
//! ```

pub mod authority;
pub mod bfs;
pub mod cli;
pub mod json;
pub mod ports;
pub mod record;
pub mod spec;
pub mod stabilize;
pub mod suites;
pub mod sweep;
pub mod unsupportive;
pub mod workload;

/// Convenient glob import for scenario authors.
pub mod prelude {
    pub use crate::bfs::BfsTree;
    pub use crate::record::{event_json, FnScenario, MessageStats, RunRecord, Scenario, Verdict};
    pub use crate::spec::{PlacementStrategy, Role, ScenarioSpec, TopologyFamily};
    pub use crate::suites::Suite;
    pub use crate::sweep::{
        expand_grid, sweep, sweep_on, sweep_sharded, sweep_stream, sweep_stream_on, MetricAgg,
        ParamGrid, RecordSink, SummaryBuilder, SweepSummary,
    };
    pub use crate::workload::{Flood, MaxGossip};
    pub use ga_simnet::prelude::*;
    pub use ga_simnet::sim::Delivery;
}

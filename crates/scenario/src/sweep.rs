//! The deterministic parallel sweep engine.
//!
//! A sweep fans scenarios out over seed ranges (and, via [`ParamGrid`],
//! parameter grids) as worker-loop tasks on a persistent
//! [`Runtime`] pool — the same pool every run's sharded
//! `Simulation::step` draws from, so a thread budget is one number shared
//! by inter-run and intra-run parallelism. Determinism is structural, not
//! incidental:
//!
//! * every job is a pure function of `(scenario, seed)` — scenarios derive
//!   all randomness from the seed;
//! * jobs are enumerated in a fixed order and each worker writes its
//!   result into the job's own slot, so the record vector is independent
//!   of which worker ran what and of completion order;
//! * aggregation folds records in job order, fixing float summation order.
//!
//! Consequently the summary JSON is **byte-identical** at any worker
//! count, any pool size, and across process invocations — verified by
//! `tests/determinism.rs` and re-checked by `scripts/tier1.sh`.
//!
//! Nested submission is safe by the runtime's contract (see
//! [`ga_simnet::runtime`]): a sweep worker's job may itself submit shard
//! batches; even at a total budget of 1 the nesting runs inline and never
//! deadlocks.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use ga_simnet::runtime::{BatchTask, Runtime};
use ga_simnet::telemetry::TelemetryConfig;

use crate::json::Json;
use crate::record::{RunRecord, Scenario};

/// A parameter grid: named axes, swept as a cartesian product in axis
/// order (first axis outermost).
#[derive(Debug, Clone, Default)]
pub struct ParamGrid {
    axes: Vec<(String, Vec<f64>)>,
}

impl ParamGrid {
    /// An empty grid (one point with no parameters).
    pub fn new() -> ParamGrid {
        ParamGrid::default()
    }

    /// Adds an axis (builder-style).
    #[must_use]
    pub fn axis(mut self, name: impl Into<String>, values: impl Into<Vec<f64>>) -> ParamGrid {
        self.axes.push((name.into(), values.into()));
        self
    }

    /// Enumerates every grid point in deterministic order.
    pub fn points(&self) -> Vec<Vec<(String, f64)>> {
        let mut points: Vec<Vec<(String, f64)>> = vec![Vec::new()];
        for (name, values) in &self.axes {
            points = points
                .into_iter()
                .flat_map(|point| {
                    values.iter().map(move |&v| {
                        let mut p = point.clone();
                        p.push((name.clone(), v));
                        p
                    })
                })
                .collect();
        }
        points
    }
}

/// Expands `grid` × `make` into one scenario per grid point, with the
/// point's values stamped into the scenario name (`base[k=v,...]`) and
/// into every record's `params`.
pub fn expand_grid<S: Scenario + 'static>(
    base: &str,
    grid: &ParamGrid,
    make: impl Fn(&[(String, f64)]) -> S,
) -> Vec<Arc<dyn Scenario>> {
    grid.points()
        .into_iter()
        .map(|point| {
            let inner = make(&point);
            Arc::new(GridPoint {
                name: grid_point_name(base, &point),
                params: point,
                inner,
            }) as Arc<dyn Scenario>
        })
        .collect()
}

fn grid_point_name(base: &str, point: &[(String, f64)]) -> String {
    if point.is_empty() {
        return base.to_string();
    }
    let params: Vec<String> = point.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{base}[{}]", params.join(","))
}

/// A scenario bound to one grid point.
struct GridPoint<S: Scenario> {
    name: String,
    params: Vec<(String, f64)>,
    inner: S,
}

impl<S: Scenario> GridPoint<S> {
    fn stamp(&self, mut record: RunRecord) -> RunRecord {
        record.scenario = self.name.clone();
        record.params = self.params.clone();
        record
    }
}

impl<S: Scenario> Scenario for GridPoint<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&self, seed: u64) -> RunRecord {
        self.stamp(self.inner.run(seed))
    }

    fn run_sharded(&self, seed: u64, shards: usize) -> RunRecord {
        self.stamp(self.inner.run_sharded(seed, shards))
    }

    fn run_on(&self, seed: u64, shards: usize, runtime: &Runtime) -> RunRecord {
        self.stamp(self.inner.run_on(seed, shards, runtime))
    }

    fn run_telemetry(
        &self,
        seed: u64,
        shards: usize,
        runtime: &Runtime,
        telemetry: Option<&TelemetryConfig>,
    ) -> RunRecord {
        self.stamp(self.inner.run_telemetry(seed, shards, runtime, telemetry))
    }

    fn supports_sharding(&self) -> bool {
        self.inner.supports_sharding()
    }
}

/// One unit of sweep work.
#[derive(Clone)]
pub struct Job {
    /// The scenario to run.
    pub scenario: Arc<dyn Scenario>,
    /// The seed to run it at.
    pub seed: u64,
}

/// Enumerates `scenarios × seeds` in deterministic (scenario-major) order.
pub fn jobs_for(
    scenarios: &[Arc<dyn Scenario>],
    seeds: impl Iterator<Item = u64> + Clone,
) -> Vec<Job> {
    scenarios
        .iter()
        .flat_map(|s| {
            seeds.clone().map(move |seed| Job {
                scenario: Arc::clone(s),
                seed,
            })
        })
        .collect()
}

/// A streaming consumer of finished records: called with `(job index,
/// record)` strictly in job order, as soon as every earlier job has also
/// finished — the contiguous-prefix rule that lets million-run sweeps
/// write stable-order JSONL while the sweep is still running.
pub type RecordSink<'a> = &'a mut (dyn FnMut(usize, &RunRecord) + Send);

/// Reorder ring shared by the sweep workers: `slots[i % window]` parks
/// jobs that finished ahead of the emission cursor (`next_emit` = first
/// job not yet handed to the consumer), and `emitting` marks that one
/// worker is currently draining the ready prefix **outside** the lock.
struct ReorderRing {
    slots: Vec<Option<RunRecord>>,
    next_emit: usize,
    emitting: bool,
    /// Set when any worker panics, so workers parked on the backpressure
    /// condvar abort instead of waiting for a slot that will never fill.
    poisoned: bool,
}

/// Drop guard armed for the whole life of a sweep worker: if the worker
/// unwinds (a panicking scenario run, sink, or consumer), mark the ring
/// poisoned and wake every parked worker so the sweep panics outward
/// instead of deadlocking on the gap the dead worker leaves behind.
struct PoisonOnPanic<'a> {
    ring: &'a Mutex<ReorderRing>,
    cursor_advanced: &'a Condvar,
}

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // The ring mutex may itself be poisoned by another worker's
            // panic; the flag write is still safe.
            self.ring
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .poisoned = true;
            self.cursor_advanced.notify_all();
        }
    }
}

/// How far ahead of the emission cursor workers may run before blocking.
/// This — not the sweep size — bounds the records held in memory, which
/// is what lets `--records` JSONL sweeps run at any seed count.
fn reorder_window(workers: usize, jobs: usize) -> usize {
    (workers * 4).max(16).min(jobs).max(1)
}

/// Executes `jobs` across `workers` threads; the result order equals the
/// job order no matter how work is interleaved.
///
/// # Panics
///
/// Propagates panics from scenario runs (a panicking worker poisons the
/// slot mutex, surfacing the failure instead of silently dropping runs).
pub fn run_jobs(jobs: &[Job], workers: usize) -> Vec<RunRecord> {
    let mut records = Vec::with_capacity(jobs.len());
    run_jobs_ordered(jobs, workers, 0, &mut |_, record| records.push(record));
    records
}

/// [`run_jobs_on`] on the process-wide [`Runtime::global`] pool.
///
/// # Panics
///
/// Propagates panics from scenario runs (see [`run_jobs_on`]).
pub fn run_jobs_ordered(
    jobs: &[Job],
    workers: usize,
    shards: usize,
    consume: &mut (dyn FnMut(usize, RunRecord) + Send),
) {
    run_jobs_on(&Runtime::global(), jobs, workers, shards, None, consume);
}

/// The fully-general executor behind [`run_jobs`] and the sweeps:
/// `workers` worker-loop tasks are submitted to `runtime` (so sweep-level
/// parallelism shares the pool's thread budget with everything else),
/// `shards` is passed to every scenario as the intra-run parallelism hint
/// ([`Scenario::run_on`] — sharded runs submit *nested* batches to the
/// same pool), `telemetry` switches the deterministic event plane on for
/// every run ([`Scenario::run_telemetry`] — the per-run event streams ride
/// in [`RunRecord::events`] and are themselves knob-independent), and
/// `consume` receives every record **owned, in job order**.
///
/// Two properties make the streaming path scale:
///
/// * **Bounded memory.** Finished records park in a fixed-size reorder
///   ring ([`reorder_window`]); a worker that runs further ahead than the
///   window blocks until the cursor catches up, so in-flight records
///   never exceed `window + workers` regardless of sweep size.
/// * **Emission outside the lock.** The worker that fills the gap at the
///   cursor takes the whole ready prefix out of the ring, releases the
///   slot lock, and only then runs the consumer (sink I/O included) — the
///   `emitting` flag keeps emitters exclusive and ordered, and other
///   workers keep computing instead of queueing behind the sink.
///
/// Everything the consumer observes is independent of all three knobs:
/// `runtime`/`workers`/`shards` change wall-clock time only.
///
/// Parking on the ring's backpressure condvar inside a pool task is safe
/// under the runtime's nested-submission contract: the worker owning the
/// cursor gap is *running* (never parked), so the wait is always
/// satisfied by a live task.
///
/// # Panics
///
/// Propagates panics from scenario runs: the panicking worker poisons the
/// reorder ring and wakes every parked worker (see [`PoisonOnPanic`]), so
/// the whole sweep drains and re-raises instead of deadlocking on the
/// never-filled slot.
pub fn run_jobs_on(
    runtime: &Runtime,
    jobs: &[Job],
    workers: usize,
    shards: usize,
    telemetry: Option<&TelemetryConfig>,
    consume: &mut (dyn FnMut(usize, RunRecord) + Send),
) {
    let workers = workers.clamp(1, jobs.len().max(1));
    let window = reorder_window(workers, jobs.len());
    let next = AtomicUsize::new(0);
    let ring = Mutex::new(ReorderRing {
        slots: (0..window).map(|_| None).collect(),
        next_emit: 0,
        emitting: false,
        poisoned: false,
    });
    let cursor_advanced = Condvar::new();
    // The consumer is one `&mut`; the `emitting` flag already keeps users
    // exclusive, but the mutex is what proves it to the compiler.
    let consume = Mutex::new(consume);

    let worker_tasks: Vec<BatchTask<'_>> = (0..workers)
        .map(|_| {
            let (ring, cursor_advanced, next, consume) = (&ring, &cursor_advanced, &next, &consume);
            Box::new(move || {
                let _guard = PoisonOnPanic {
                    ring,
                    cursor_advanced,
                };
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(i) else { break };
                    let record = job
                        .scenario
                        .run_telemetry(job.seed, shards, runtime, telemetry);

                    let mut state = ring.lock().expect("no panicked worker");
                    // Backpressure: never overwrite a slot still awaiting
                    // emission one lap behind. The worker owning the cursor
                    // gap never waits here (its i < next_emit + window), so
                    // the prefix always eventually fills — unless that worker
                    // panicked, which poisons the ring and wakes us.
                    while !state.poisoned && i >= state.next_emit + window {
                        state = cursor_advanced.wait(state).expect("no panicked worker");
                    }
                    assert!(!state.poisoned, "a sweep worker panicked");
                    state.slots[i % window] = Some(record);
                    if state.emitting {
                        // The active emitter will pick this up on its next
                        // drain pass.
                        continue;
                    }
                    state.emitting = true;
                    loop {
                        let base = state.next_emit;
                        let mut batch = Vec::new();
                        loop {
                            let slot = state.next_emit % window;
                            let Some(ready) = state.slots[slot].take() else {
                                break;
                            };
                            batch.push(ready);
                            state.next_emit += 1;
                        }
                        if batch.is_empty() {
                            state.emitting = false;
                            break;
                        }
                        drop(state);
                        cursor_advanced.notify_all();
                        {
                            let mut consume = consume.lock().expect("no panicked consumer");
                            for (offset, record) in batch.into_iter().enumerate() {
                                consume(base + offset, record);
                            }
                        }
                        state = ring.lock().expect("no panicked worker");
                    }
                }
            }) as BatchTask<'_>
        })
        .collect();
    runtime.run_batch(worker_tasks);

    let state = ring.into_inner().expect("no panicked worker");
    debug_assert_eq!(state.next_emit, jobs.len(), "every job was consumed");
}

/// Nearest-rank percentile (`q` in `(0, 1]`) over values pre-sorted by
/// `f64::total_cmp` — a deterministic order even in the presence of
/// equal or non-finite values, so summary JSON stays byte-stable.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// `(p50, p90, p99)` of `values`, which arrive in job order and are
/// sorted on a copy here.
fn percentiles(values: &[f64]) -> (f64, f64, f64) {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    (
        percentile(&sorted, 0.50),
        percentile(&sorted, 0.90),
        percentile(&sorted, 0.99),
    )
}

/// One metric's aggregate across the runs that emitted it.
///
/// Metrics need not appear in every run (a probe may only report
/// `rounds_to_converge` on converged seeds), so the mean and percentiles
/// are over [`runs`](MetricAgg::runs), not the scenario's run count.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricAgg {
    /// Metric name.
    pub name: String,
    /// Mean over the emitting runs.
    pub mean: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Median (nearest-rank 50th percentile).
    pub p50: f64,
    /// Nearest-rank 90th percentile.
    pub p90: f64,
    /// Nearest-rank 99th percentile.
    pub p99: f64,
    /// Number of runs that emitted the metric.
    pub runs: u64,
}

impl MetricAgg {
    /// Aggregates one metric's values (in job order).
    fn from_values(name: String, values: &[f64]) -> MetricAgg {
        // Sum in job order so the mean is bit-identical to the serial fold.
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let (p50, p90, p99) = percentiles(values);
        MetricAgg {
            name,
            mean,
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            p50,
            p90,
            p99,
            runs: values.len() as u64,
        }
    }
}

/// Per-scenario aggregates plus the records behind them.
#[derive(Debug, Clone)]
pub struct ScenarioSummary {
    /// Scenario name.
    pub name: String,
    /// Sweep-parameter values shared by this scenario's runs (a grid
    /// point's axis values, in axis order; empty off-grid) — what lets
    /// cross-run tables plot aggregates against parameters without
    /// re-parsing scenario names. Not serialized into summary JSON.
    pub params: Vec<(String, f64)>,
    /// Number of runs.
    pub runs: u64,
    /// Runs whose verdict passed.
    pub passed: u64,
    /// Mean rounds per run.
    pub mean_rounds: f64,
    /// Median rounds per run (nearest rank).
    pub rounds_p50: f64,
    /// 90th-percentile rounds per run (nearest rank).
    pub rounds_p90: f64,
    /// 99th-percentile rounds per run (nearest rank).
    pub rounds_p99: f64,
    /// Mean loss-model drop rate.
    pub mean_drop_rate: f64,
    /// Per-metric aggregates, in first-appearance order.
    pub metrics: Vec<MetricAgg>,
}

impl ScenarioSummary {
    /// Looks an aggregate up by metric name.
    pub fn metric(&self, name: &str) -> Option<&MetricAgg> {
        self.metrics.iter().find(|m| m.name == name)
    }
}

/// Incremental, order-sensitive aggregation state for one scenario.
#[derive(Debug, Default)]
struct ScenarioGather {
    name: String,
    /// Axis values stamped on the scenario's records (taken from the
    /// first one; identical across a grid point's runs by construction).
    params: Vec<(String, f64)>,
    passed: u64,
    rounds: Vec<f64>,
    drop_rate_sum: f64,
    /// Per-metric values in job order, keyed in first-appearance order.
    metrics: Vec<(String, Vec<f64>)>,
}

impl ScenarioGather {
    fn finish(self) -> ScenarioSummary {
        let runs = self.rounds.len() as u64;
        let n = self.rounds.len().max(1) as f64;
        let (rounds_p50, rounds_p90, rounds_p99) = if self.rounds.is_empty() {
            (0.0, 0.0, 0.0)
        } else {
            percentiles(&self.rounds)
        };
        ScenarioSummary {
            name: self.name,
            params: self.params,
            runs,
            passed: self.passed,
            mean_rounds: self.rounds.iter().sum::<f64>() / n,
            rounds_p50,
            rounds_p90,
            rounds_p99,
            mean_drop_rate: self.drop_rate_sum / n,
            metrics: self
                .metrics
                .into_iter()
                .map(|(name, values)| MetricAgg::from_values(name, &values))
                .collect(),
        }
    }
}

/// Streaming aggregator: folds records **in job order** into per-scenario
/// summaries without retaining the records themselves — the memory-bounded
/// path behind both [`SweepSummary::new`] and the record-sink sweeps.
#[derive(Debug, Default)]
pub struct SummaryBuilder {
    scenarios: Vec<ScenarioGather>,
}

impl SummaryBuilder {
    /// An empty aggregator.
    pub fn new() -> SummaryBuilder {
        SummaryBuilder::default()
    }

    /// Folds one record in; callers must push in job order.
    pub fn push(&mut self, record: &RunRecord) {
        let entry = match self
            .scenarios
            .iter_mut()
            .find(|s| s.name == record.scenario)
        {
            Some(entry) => entry,
            None => {
                self.scenarios.push(ScenarioGather {
                    name: record.scenario.clone(),
                    params: record.params.clone(),
                    ..ScenarioGather::default()
                });
                self.scenarios.last_mut().expect("just pushed")
            }
        };
        entry.passed += u64::from(record.verdict.passed());
        entry.rounds.push(record.rounds as f64);
        entry.drop_rate_sum += record.messages.lossy_drop_rate;
        for (name, value) in &record.metrics {
            match entry.metrics.iter_mut().find(|(n, _)| n == name) {
                Some((_, values)) => values.push(*value),
                None => entry.metrics.push((name.clone(), vec![*value])),
            }
        }
    }

    /// Finishes aggregation. `records` may be empty (streaming sweeps that
    /// already wrote them to a sink) or the full job-ordered record vector.
    pub fn finish(self, name: impl Into<String>, records: Vec<RunRecord>) -> SweepSummary {
        let mut total_runs = 0;
        let scenarios: Vec<ScenarioSummary> = self
            .scenarios
            .into_iter()
            .map(|g| {
                let s = g.finish();
                total_runs += s.runs;
                s
            })
            .collect();
        SweepSummary {
            name: name.into(),
            total_runs,
            records,
            scenarios,
        }
    }
}

/// The aggregated outcome of a sweep.
#[derive(Debug, Clone)]
pub struct SweepSummary {
    /// Suite or sweep name.
    pub name: String,
    /// Total runs aggregated (kept separately from `records`, which a
    /// streaming sweep leaves empty).
    total_runs: u64,
    /// All run records, in job order — empty when the sweep streamed them
    /// to a [`RecordSink`] instead of retaining them.
    pub records: Vec<RunRecord>,
    /// Per-scenario aggregates, in first-appearance order.
    pub scenarios: Vec<ScenarioSummary>,
}

impl SweepSummary {
    /// Aggregates `records` (already in job order).
    pub fn new(name: impl Into<String>, records: Vec<RunRecord>) -> SweepSummary {
        let mut builder = SummaryBuilder::new();
        for r in &records {
            builder.push(r);
        }
        builder.finish(name, records)
    }

    /// Total runs.
    pub fn runs(&self) -> u64 {
        self.total_runs
    }

    /// Runs whose verdict passed.
    pub fn passed(&self) -> u64 {
        self.scenarios.iter().map(|s| s.passed).sum()
    }

    /// Whether every run passed.
    pub fn all_passed(&self) -> bool {
        self.passed() == self.runs()
    }

    /// Serializes the summary. With `include_records`, every per-run
    /// record is embedded; aggregates are always present.
    pub fn to_json(&self, include_records: bool) -> Json {
        let scenarios = self
            .scenarios
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("name", Json::str(s.name.clone())),
                    ("runs", Json::Uint(s.runs)),
                    ("passed", Json::Uint(s.passed)),
                    ("mean_rounds", Json::Num(s.mean_rounds)),
                    ("rounds_p50", Json::Num(s.rounds_p50)),
                    ("rounds_p90", Json::Num(s.rounds_p90)),
                    ("rounds_p99", Json::Num(s.rounds_p99)),
                    ("mean_drop_rate", Json::Num(s.mean_drop_rate)),
                    (
                        "metrics",
                        Json::Obj(
                            s.metrics
                                .iter()
                                .map(|m| {
                                    (
                                        m.name.clone(),
                                        Json::obj(vec![
                                            ("mean", Json::Num(m.mean)),
                                            ("min", Json::Num(m.min)),
                                            ("max", Json::Num(m.max)),
                                            ("p50", Json::Num(m.p50)),
                                            ("p90", Json::Num(m.p90)),
                                            ("p99", Json::Num(m.p99)),
                                            ("runs", Json::Uint(m.runs)),
                                        ]),
                                    )
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();

        let mut fields = vec![
            ("suite", Json::str(self.name.clone())),
            ("runs", Json::Uint(self.runs())),
            ("passed", Json::Uint(self.passed())),
            ("scenarios", Json::Arr(scenarios)),
        ];
        if include_records {
            fields.push((
                "records",
                Json::Arr(self.records.iter().map(RunRecord::to_json).collect()),
            ));
        }
        Json::obj(fields)
    }
}

/// Runs `scenarios × seeds` on `workers` threads and aggregates.
pub fn sweep(
    name: &str,
    scenarios: &[Arc<dyn Scenario>],
    seeds: std::ops::Range<u64>,
    workers: usize,
) -> SweepSummary {
    sweep_sharded(name, scenarios, seeds, workers, 0)
}

/// [`sweep`] with every run's `Simulation::step` sharded across `shards`
/// threads ([`Scenario::run_sharded`]; 0 defers to each scenario's own
/// default, 1 forces serial). The summary is byte-identical at any
/// `(workers, shards)` combination.
pub fn sweep_sharded(
    name: &str,
    scenarios: &[Arc<dyn Scenario>],
    seeds: std::ops::Range<u64>,
    workers: usize,
    shards: usize,
) -> SweepSummary {
    sweep_on(&Runtime::global(), name, scenarios, seeds, workers, shards)
}

/// [`sweep_sharded`] drawing both sweep workers and every run's shard
/// tasks from `runtime` — one pool, one thread budget. The summary is
/// byte-identical at any `(pool size, workers, shards)` combination.
pub fn sweep_on(
    runtime: &Runtime,
    name: &str,
    scenarios: &[Arc<dyn Scenario>],
    seeds: std::ops::Range<u64>,
    workers: usize,
    shards: usize,
) -> SweepSummary {
    let jobs = jobs_for(scenarios, seeds);
    let records = {
        let mut records = Vec::with_capacity(jobs.len());
        run_jobs_on(runtime, &jobs, workers, shards, None, &mut |_, r| {
            records.push(r)
        });
        records
    };
    SweepSummary::new(name, records)
}

/// The streaming sweep: every finished record is handed to `sink` in job
/// order and then **dropped** — the summary aggregates incrementally and
/// carries no `records`, so memory stays bounded by the out-of-order
/// window regardless of sweep size.
pub fn sweep_stream(
    name: &str,
    scenarios: &[Arc<dyn Scenario>],
    seeds: std::ops::Range<u64>,
    workers: usize,
    shards: usize,
    sink: RecordSink<'_>,
) -> SweepSummary {
    sweep_stream_on(
        &Runtime::global(),
        name,
        scenarios,
        seeds,
        workers,
        shards,
        None,
        sink,
    )
}

/// [`sweep_stream`] on an explicit [`Runtime`] pool, with the
/// deterministic event plane switched on for every run when `telemetry`
/// is set — the sink reads each run's events off
/// [`RunRecord::events`] before the record is dropped.
#[allow(clippy::too_many_arguments)]
pub fn sweep_stream_on(
    runtime: &Runtime,
    name: &str,
    scenarios: &[Arc<dyn Scenario>],
    seeds: std::ops::Range<u64>,
    workers: usize,
    shards: usize,
    telemetry: Option<&TelemetryConfig>,
    sink: RecordSink<'_>,
) -> SweepSummary {
    let jobs = jobs_for(scenarios, seeds);
    let mut builder = SummaryBuilder::new();
    let mut consume = |i: usize, record: RunRecord| {
        sink(i, &record);
        builder.push(&record);
    };
    run_jobs_on(runtime, &jobs, workers, shards, telemetry, &mut consume);
    builder.finish(name, Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::FnScenario;

    fn toy(name: &'static str) -> Arc<dyn Scenario> {
        Arc::new(FnScenario::new(name, move |seed| {
            let mut r = RunRecord::new(name, seed);
            r.rounds = seed + 1;
            r.metric("x", seed as f64);
            r
        }))
    }

    #[test]
    fn grid_points_cartesian_in_order() {
        let grid = ParamGrid::new().axis("p", [0.0, 0.5]).axis("n", [4.0]);
        let points = grid.points();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0], vec![("p".into(), 0.0), ("n".into(), 4.0)]);
        assert_eq!(points[1], vec![("p".into(), 0.5), ("n".into(), 4.0)]);
        assert_eq!(ParamGrid::new().points(), vec![Vec::new()]);
    }

    #[test]
    fn expanded_grid_stamps_names_and_params() {
        let grid = ParamGrid::new().axis("p", [0.25]);
        let scenarios = expand_grid("base", &grid, |point| {
            let p = point[0].1;
            FnScenario::new("inner", move |seed| {
                let mut r = RunRecord::new("inner", seed);
                r.metric("p", p);
                r
            })
        });
        assert_eq!(scenarios[0].name(), "base[p=0.25]");
        let r = scenarios[0].run(1);
        assert_eq!(r.scenario, "base[p=0.25]");
        assert_eq!(r.params, vec![("p".to_string(), 0.25)]);
    }

    #[test]
    fn job_order_is_scenario_major() {
        let jobs = jobs_for(&[toy("a"), toy("b")], 0..3);
        let order: Vec<(String, u64)> = jobs
            .iter()
            .map(|j| (j.scenario.name().to_string(), j.seed))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a".into(), 0),
                ("a".into(), 1),
                ("a".into(), 2),
                ("b".into(), 0),
                ("b".into(), 1),
                ("b".into(), 2),
            ]
        );
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let scenarios = vec![toy("a"), toy("b"), toy("c")];
        let jobs = jobs_for(&scenarios, 0..5);
        let one = run_jobs(&jobs, 1);
        for workers in [2, 4, 8, 64] {
            assert_eq!(run_jobs(&jobs, workers), one, "workers={workers}");
        }
    }

    #[test]
    fn summary_aggregates_in_order() {
        let summary = sweep("s", &[toy("a"), toy("b")], 0..4, 2);
        assert_eq!(summary.runs(), 8);
        assert!(summary.all_passed());
        assert_eq!(summary.scenarios.len(), 2);
        let a = &summary.scenarios[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.runs, 4);
        assert!(
            (a.mean_rounds - 2.5).abs() < 1e-12,
            "seeds 0..4 → rounds 1..5"
        );
        let x = a.metric("x").unwrap();
        assert!((x.mean - 1.5).abs() < 1e-12);
        assert_eq!((x.min, x.max, x.runs), (0.0, 3.0, 4));
    }

    #[test]
    fn partial_metrics_average_over_emitting_runs_only() {
        // "conv" is only emitted on even seeds; its mean must be over the
        // emitting runs, and stay inside [min, max].
        let scenario: Arc<dyn Scenario> = Arc::new(FnScenario::new("partial", |seed| {
            let mut r = RunRecord::new("partial", seed);
            if seed % 2 == 0 {
                r.metric("conv", 10.0 + seed as f64);
            }
            r
        }));
        let summary = sweep("s", &[scenario], 0..4, 2);
        let conv = summary.scenarios[0].metric("conv").unwrap();
        assert_eq!(conv.runs, 2, "seeds 0 and 2 emit");
        assert!((conv.mean - 11.0).abs() < 1e-12, "(10 + 12) / 2");
        assert!(conv.min <= conv.mean && conv.mean <= conv.max);
        assert!(summary.scenarios[0].metric("missing").is_none());
    }

    #[test]
    fn percentiles_nearest_rank() {
        let (p50, p90, p99) = percentiles(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!((p50, p90, p99), (3.0, 5.0, 5.0));
        assert_eq!(percentiles(&[7.0]), (7.0, 7.0, 7.0));
        let hundred: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentiles(&hundred), (50.0, 90.0, 99.0));
    }

    #[test]
    fn percentiles_single_element_and_all_equal_are_pinned() {
        // Nearest-rank on degenerate inputs: a single element is every
        // percentile, and all-equal vectors collapse to that value.
        assert_eq!(percentiles(&[0.0]), (0.0, 0.0, 0.0));
        assert_eq!(percentiles(&[2.5, 2.5, 2.5]), (2.5, 2.5, 2.5));
        // Two elements: rank ceil(0.5·2)=1 → first, ceil(0.9·2)=2 → last.
        assert_eq!(percentiles(&[1.0, 2.0]), (1.0, 2.0, 2.0));
        // Negative and unsorted input sorts before ranking.
        assert_eq!(percentiles(&[3.0, -1.0]), (-1.0, 3.0, 3.0));
    }

    #[test]
    fn summary_builder_with_no_records_is_empty() {
        // The empty-metric-vector edge: finishing an untouched builder
        // must produce a well-formed, renderable summary with zero runs
        // (and trivially all_passed), not divide by zero.
        let summary = SummaryBuilder::new().finish("empty", Vec::new());
        assert_eq!(summary.runs(), 0);
        assert_eq!(summary.passed(), 0);
        assert!(summary.all_passed(), "vacuously true");
        assert!(summary.scenarios.is_empty());
        let json = summary.to_json(true).render();
        assert!(json.contains("\"runs\":0"));
        assert!(json.contains("\"records\":[]"));
    }

    #[test]
    fn summary_builder_single_run_and_metricless_records() {
        // One record, no metrics: rounds percentiles pin to that run and
        // the metrics object stays empty rather than inventing entries.
        let mut builder = SummaryBuilder::new();
        let mut r = RunRecord::new("solo", 3);
        r.rounds = 9;
        builder.push(&r);
        let summary = builder.finish("s", Vec::new());
        let solo = &summary.scenarios[0];
        assert_eq!((solo.runs, solo.passed), (1, 1));
        assert_eq!(solo.mean_rounds, 9.0);
        assert_eq!(
            (solo.rounds_p50, solo.rounds_p90, solo.rounds_p99),
            (9.0, 9.0, 9.0)
        );
        assert!(solo.metrics.is_empty());
        assert!(solo.metric("anything").is_none());
    }

    #[test]
    fn summary_builder_all_equal_metric_values() {
        // All-equal metric values: mean, min, max and every percentile
        // must coincide exactly (no float drift from the fold order).
        let mut builder = SummaryBuilder::new();
        for seed in 0..5 {
            let mut r = RunRecord::new("const", seed);
            r.rounds = 4;
            r.metric("x", 1.25);
            builder.push(&r);
        }
        let summary = builder.finish("s", Vec::new());
        let x = summary.scenarios[0].metric("x").unwrap();
        assert_eq!(
            (x.mean, x.min, x.max, x.p50, x.p90, x.p99),
            (1.25, 1.25, 1.25, 1.25, 1.25, 1.25)
        );
        assert_eq!(x.runs, 5);
    }

    #[test]
    fn summary_carries_percentiles() {
        // Seeds 0..10 → metric x = seed, rounds = seed + 1.
        let summary = sweep("s", &[toy("a")], 0..10, 3);
        let a = &summary.scenarios[0];
        assert_eq!((a.rounds_p50, a.rounds_p90, a.rounds_p99), (5.0, 9.0, 10.0));
        let x = a.metric("x").unwrap();
        assert_eq!((x.p50, x.p90, x.p99), (4.0, 8.0, 9.0));
        assert!(x.min <= x.p50 && x.p50 <= x.p90 && x.p90 <= x.p99 && x.p99 <= x.max);
        let json = summary.to_json(false).render();
        assert!(json.contains("\"rounds_p50\":5"));
        assert!(json.contains("\"p99\":9"));
    }

    #[test]
    fn streamed_records_arrive_in_job_order_and_summary_matches() {
        let scenarios = vec![toy("a"), toy("b")];
        let batch = sweep("s", &scenarios, 0..6, 4);
        for workers in [1, 3, 8] {
            let mut seen: Vec<(usize, String, u64)> = Vec::new();
            let mut sink = |i: usize, r: &RunRecord| {
                seen.push((i, r.scenario.clone(), r.seed));
            };
            let streamed = sweep_stream("s", &scenarios, 0..6, workers, 1, &mut sink);
            assert_eq!(
                seen.iter().map(|(i, _, _)| *i).collect::<Vec<_>>(),
                (0..12).collect::<Vec<_>>(),
                "workers={workers}: emission is in job order"
            );
            assert_eq!(
                seen.iter()
                    .map(|(_, s, seed)| (s.clone(), *seed))
                    .collect::<Vec<_>>(),
                batch
                    .records
                    .iter()
                    .map(|r| (r.scenario.clone(), r.seed))
                    .collect::<Vec<_>>()
            );
            assert!(streamed.records.is_empty(), "streaming retains no records");
            assert_eq!(streamed.runs(), batch.runs());
            assert_eq!(
                streamed.to_json(false).render(),
                batch.to_json(false).render(),
                "streaming aggregation matches batch aggregation"
            );
        }
    }

    #[test]
    fn ordered_emission_survives_ring_wraparound() {
        // 500 jobs through an 8-worker executor (reorder window 32) wrap
        // the ring many times; emission must stay exactly job-ordered and
        // lose nothing to backpressure.
        let scenarios = vec![toy("a")];
        let jobs = jobs_for(&scenarios, 0..500);
        assert!(reorder_window(8, jobs.len()) < jobs.len());
        let mut indexes = Vec::new();
        run_jobs_ordered(&jobs, 8, 1, &mut |i, r| {
            assert_eq!(r.seed, i as u64, "slot {i} holds its own job's record");
            indexes.push(i);
        });
        assert_eq!(indexes, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_run_propagates_instead_of_hanging() {
        // A panicked job leaves a permanent gap at the emission cursor;
        // the poison flag must wake parked workers so the batch drains
        // and the runtime re-raises the panic rather than deadlock the
        // sweep on the never-filled slot.
        let bomb: Arc<dyn Scenario> = Arc::new(FnScenario::new("bomb", |seed| {
            assert_ne!(seed, 10, "boom");
            RunRecord::new("bomb", seed)
        }));
        let jobs = jobs_for(&[bomb], 0..200);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_jobs(&jobs, 8);
        }));
        assert!(outcome.is_err(), "the seed-10 panic must propagate");
    }

    #[test]
    fn reorder_window_is_bounded_and_positive() {
        assert_eq!(reorder_window(1, 0), 1);
        assert_eq!(reorder_window(1, 5), 5);
        assert_eq!(reorder_window(4, 1_000_000), 16);
        assert_eq!(reorder_window(16, 1_000_000), 64);
    }

    #[test]
    fn sharded_sweep_summary_is_byte_identical() {
        let scenarios = vec![toy("a"), toy("b")];
        let baseline = sweep("s", &scenarios, 0..4, 2).to_json(true).render();
        for shards in [2, 4] {
            assert_eq!(
                sweep_sharded("s", &scenarios, 0..4, 2, shards)
                    .to_json(true)
                    .render(),
                baseline,
                "shards={shards}"
            );
        }
    }

    #[test]
    fn summary_json_identical_across_worker_counts() {
        let scenarios = vec![toy("a"), toy("b")];
        let render = |workers| {
            sweep("det", &scenarios, 0..6, workers)
                .to_json(true)
                .render()
        };
        let baseline = render(1);
        assert_eq!(render(2), baseline);
        assert_eq!(render(8), baseline);
    }
}

//! The deterministic parallel sweep engine.
//!
//! A sweep fans scenarios out over seed ranges (and, via [`ParamGrid`],
//! parameter grids) across `std::thread::scope` workers. Determinism is
//! structural, not incidental:
//!
//! * every job is a pure function of `(scenario, seed)` — scenarios derive
//!   all randomness from the seed;
//! * jobs are enumerated in a fixed order and each worker writes its
//!   result into the job's own slot, so the record vector is independent
//!   of which worker ran what and of completion order;
//! * aggregation folds records in job order, fixing float summation order.
//!
//! Consequently the summary JSON is **byte-identical** at any worker
//! count and across process invocations — verified by
//! `tests/determinism.rs` and re-checked by `scripts/tier1.sh`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Json;
use crate::record::{RunRecord, Scenario};

/// A parameter grid: named axes, swept as a cartesian product in axis
/// order (first axis outermost).
#[derive(Debug, Clone, Default)]
pub struct ParamGrid {
    axes: Vec<(String, Vec<f64>)>,
}

impl ParamGrid {
    /// An empty grid (one point with no parameters).
    pub fn new() -> ParamGrid {
        ParamGrid::default()
    }

    /// Adds an axis (builder-style).
    #[must_use]
    pub fn axis(mut self, name: impl Into<String>, values: impl Into<Vec<f64>>) -> ParamGrid {
        self.axes.push((name.into(), values.into()));
        self
    }

    /// Enumerates every grid point in deterministic order.
    pub fn points(&self) -> Vec<Vec<(String, f64)>> {
        let mut points: Vec<Vec<(String, f64)>> = vec![Vec::new()];
        for (name, values) in &self.axes {
            points = points
                .into_iter()
                .flat_map(|point| {
                    values.iter().map(move |&v| {
                        let mut p = point.clone();
                        p.push((name.clone(), v));
                        p
                    })
                })
                .collect();
        }
        points
    }
}

/// Expands `grid` × `make` into one scenario per grid point, with the
/// point's values stamped into the scenario name (`base[k=v,...]`) and
/// into every record's `params`.
pub fn expand_grid<S: Scenario + 'static>(
    base: &str,
    grid: &ParamGrid,
    make: impl Fn(&[(String, f64)]) -> S,
) -> Vec<Arc<dyn Scenario>> {
    grid.points()
        .into_iter()
        .map(|point| {
            let inner = make(&point);
            Arc::new(GridPoint {
                name: grid_point_name(base, &point),
                params: point,
                inner,
            }) as Arc<dyn Scenario>
        })
        .collect()
}

fn grid_point_name(base: &str, point: &[(String, f64)]) -> String {
    if point.is_empty() {
        return base.to_string();
    }
    let params: Vec<String> = point.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{base}[{}]", params.join(","))
}

/// A scenario bound to one grid point.
struct GridPoint<S: Scenario> {
    name: String,
    params: Vec<(String, f64)>,
    inner: S,
}

impl<S: Scenario> Scenario for GridPoint<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&self, seed: u64) -> RunRecord {
        let mut record = self.inner.run(seed);
        record.scenario = self.name.clone();
        record.params = self.params.clone();
        record
    }
}

/// One unit of sweep work.
#[derive(Clone)]
pub struct Job {
    /// The scenario to run.
    pub scenario: Arc<dyn Scenario>,
    /// The seed to run it at.
    pub seed: u64,
}

/// Enumerates `scenarios × seeds` in deterministic (scenario-major) order.
pub fn jobs_for(
    scenarios: &[Arc<dyn Scenario>],
    seeds: impl Iterator<Item = u64> + Clone,
) -> Vec<Job> {
    scenarios
        .iter()
        .flat_map(|s| {
            seeds.clone().map(move |seed| Job {
                scenario: Arc::clone(s),
                seed,
            })
        })
        .collect()
}

/// Executes `jobs` across `workers` threads; the result order equals the
/// job order no matter how work is interleaved.
///
/// # Panics
///
/// Propagates panics from scenario runs (a panicking worker poisons the
/// slot mutex, surfacing the failure instead of silently dropping runs).
pub fn run_jobs(jobs: &[Job], workers: usize) -> Vec<RunRecord> {
    let workers = workers.clamp(1, jobs.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<RunRecord>>> = Mutex::new(vec![None; jobs.len()]);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                let record = job.scenario.run(job.seed);
                slots.lock().expect("no panicked worker")[i] = Some(record);
            });
        }
    });

    slots
        .into_inner()
        .expect("no panicked worker")
        .into_iter()
        .map(|r| r.expect("every job ran"))
        .collect()
}

/// One metric's aggregate across the runs that emitted it.
///
/// Metrics need not appear in every run (a probe may only report
/// `rounds_to_converge` on converged seeds), so the mean is over
/// [`runs`](MetricAgg::runs), not the scenario's run count.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricAgg {
    /// Metric name.
    pub name: String,
    /// Mean over the emitting runs.
    pub mean: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Number of runs that emitted the metric.
    pub runs: u64,
}

/// Per-scenario aggregates plus the records behind them.
#[derive(Debug, Clone)]
pub struct ScenarioSummary {
    /// Scenario name.
    pub name: String,
    /// Number of runs.
    pub runs: u64,
    /// Runs whose verdict passed.
    pub passed: u64,
    /// Mean rounds per run.
    pub mean_rounds: f64,
    /// Mean loss-model drop rate.
    pub mean_drop_rate: f64,
    /// Per-metric aggregates, in first-appearance order.
    pub metrics: Vec<MetricAgg>,
}

impl ScenarioSummary {
    /// Looks an aggregate up by metric name.
    pub fn metric(&self, name: &str) -> Option<&MetricAgg> {
        self.metrics.iter().find(|m| m.name == name)
    }
}

/// The aggregated outcome of a sweep.
#[derive(Debug, Clone)]
pub struct SweepSummary {
    /// Suite or sweep name.
    pub name: String,
    /// All run records, in job order.
    pub records: Vec<RunRecord>,
    /// Per-scenario aggregates, in first-appearance order.
    pub scenarios: Vec<ScenarioSummary>,
}

impl SweepSummary {
    /// Aggregates `records` (already in job order).
    pub fn new(name: impl Into<String>, records: Vec<RunRecord>) -> SweepSummary {
        let mut scenarios: Vec<ScenarioSummary> = Vec::new();
        for r in &records {
            let entry = match scenarios.iter_mut().find(|s| s.name == r.scenario) {
                Some(e) => e,
                None => {
                    scenarios.push(ScenarioSummary {
                        name: r.scenario.clone(),
                        runs: 0,
                        passed: 0,
                        mean_rounds: 0.0,
                        mean_drop_rate: 0.0,
                        metrics: Vec::new(),
                    });
                    scenarios.last_mut().expect("just pushed")
                }
            };
            entry.runs += 1;
            entry.passed += u64::from(r.verdict.passed());
            // Accumulate sums; normalized below.
            entry.mean_rounds += r.rounds as f64;
            entry.mean_drop_rate += r.messages.lossy_drop_rate;
            for (name, value) in &r.metrics {
                match entry.metrics.iter_mut().find(|m| &m.name == name) {
                    Some(m) => {
                        m.mean += value; // sum for now; normalized below
                        m.min = m.min.min(*value);
                        m.max = m.max.max(*value);
                        m.runs += 1;
                    }
                    None => entry.metrics.push(MetricAgg {
                        name: name.clone(),
                        mean: *value,
                        min: *value,
                        max: *value,
                        runs: 1,
                    }),
                }
            }
        }
        for s in &mut scenarios {
            let n = s.runs as f64;
            s.mean_rounds /= n;
            s.mean_drop_rate /= n;
            for m in &mut s.metrics {
                m.mean /= m.runs as f64;
            }
        }
        SweepSummary {
            name: name.into(),
            records,
            scenarios,
        }
    }

    /// Total runs.
    pub fn runs(&self) -> u64 {
        self.records.len() as u64
    }

    /// Runs whose verdict passed.
    pub fn passed(&self) -> u64 {
        self.scenarios.iter().map(|s| s.passed).sum()
    }

    /// Whether every run passed.
    pub fn all_passed(&self) -> bool {
        self.passed() == self.runs()
    }

    /// Serializes the summary. With `include_records`, every per-run
    /// record is embedded; aggregates are always present.
    pub fn to_json(&self, include_records: bool) -> Json {
        let scenarios = self
            .scenarios
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("name", Json::str(s.name.clone())),
                    ("runs", Json::Uint(s.runs)),
                    ("passed", Json::Uint(s.passed)),
                    ("mean_rounds", Json::Num(s.mean_rounds)),
                    ("mean_drop_rate", Json::Num(s.mean_drop_rate)),
                    (
                        "metrics",
                        Json::Obj(
                            s.metrics
                                .iter()
                                .map(|m| {
                                    (
                                        m.name.clone(),
                                        Json::obj(vec![
                                            ("mean", Json::Num(m.mean)),
                                            ("min", Json::Num(m.min)),
                                            ("max", Json::Num(m.max)),
                                            ("runs", Json::Uint(m.runs)),
                                        ]),
                                    )
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();

        let mut fields = vec![
            ("suite", Json::str(self.name.clone())),
            ("runs", Json::Uint(self.runs())),
            ("passed", Json::Uint(self.passed())),
            ("scenarios", Json::Arr(scenarios)),
        ];
        if include_records {
            fields.push((
                "records",
                Json::Arr(self.records.iter().map(RunRecord::to_json).collect()),
            ));
        }
        Json::obj(fields)
    }
}

/// Runs `scenarios × seeds` on `workers` threads and aggregates.
pub fn sweep(
    name: &str,
    scenarios: &[Arc<dyn Scenario>],
    seeds: std::ops::Range<u64>,
    workers: usize,
) -> SweepSummary {
    let jobs = jobs_for(scenarios, seeds);
    let records = run_jobs(&jobs, workers);
    SweepSummary::new(name, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::FnScenario;

    fn toy(name: &'static str) -> Arc<dyn Scenario> {
        Arc::new(FnScenario::new(name, move |seed| {
            let mut r = RunRecord::new(name, seed);
            r.rounds = seed + 1;
            r.metric("x", seed as f64);
            r
        }))
    }

    #[test]
    fn grid_points_cartesian_in_order() {
        let grid = ParamGrid::new().axis("p", [0.0, 0.5]).axis("n", [4.0]);
        let points = grid.points();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0], vec![("p".into(), 0.0), ("n".into(), 4.0)]);
        assert_eq!(points[1], vec![("p".into(), 0.5), ("n".into(), 4.0)]);
        assert_eq!(ParamGrid::new().points(), vec![Vec::new()]);
    }

    #[test]
    fn expanded_grid_stamps_names_and_params() {
        let grid = ParamGrid::new().axis("p", [0.25]);
        let scenarios = expand_grid("base", &grid, |point| {
            let p = point[0].1;
            FnScenario::new("inner", move |seed| {
                let mut r = RunRecord::new("inner", seed);
                r.metric("p", p);
                r
            })
        });
        assert_eq!(scenarios[0].name(), "base[p=0.25]");
        let r = scenarios[0].run(1);
        assert_eq!(r.scenario, "base[p=0.25]");
        assert_eq!(r.params, vec![("p".to_string(), 0.25)]);
    }

    #[test]
    fn job_order_is_scenario_major() {
        let jobs = jobs_for(&[toy("a"), toy("b")], 0..3);
        let order: Vec<(String, u64)> = jobs
            .iter()
            .map(|j| (j.scenario.name().to_string(), j.seed))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a".into(), 0),
                ("a".into(), 1),
                ("a".into(), 2),
                ("b".into(), 0),
                ("b".into(), 1),
                ("b".into(), 2),
            ]
        );
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let scenarios = vec![toy("a"), toy("b"), toy("c")];
        let jobs = jobs_for(&scenarios, 0..5);
        let one = run_jobs(&jobs, 1);
        for workers in [2, 4, 8, 64] {
            assert_eq!(run_jobs(&jobs, workers), one, "workers={workers}");
        }
    }

    #[test]
    fn summary_aggregates_in_order() {
        let summary = sweep("s", &[toy("a"), toy("b")], 0..4, 2);
        assert_eq!(summary.runs(), 8);
        assert!(summary.all_passed());
        assert_eq!(summary.scenarios.len(), 2);
        let a = &summary.scenarios[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.runs, 4);
        assert!(
            (a.mean_rounds - 2.5).abs() < 1e-12,
            "seeds 0..4 → rounds 1..5"
        );
        let x = a.metric("x").unwrap();
        assert!((x.mean - 1.5).abs() < 1e-12);
        assert_eq!((x.min, x.max, x.runs), (0.0, 3.0, 4));
    }

    #[test]
    fn partial_metrics_average_over_emitting_runs_only() {
        // "conv" is only emitted on even seeds; its mean must be over the
        // emitting runs, and stay inside [min, max].
        let scenario: Arc<dyn Scenario> = Arc::new(FnScenario::new("partial", |seed| {
            let mut r = RunRecord::new("partial", seed);
            if seed % 2 == 0 {
                r.metric("conv", 10.0 + seed as f64);
            }
            r
        }));
        let summary = sweep("s", &[scenario], 0..4, 2);
        let conv = summary.scenarios[0].metric("conv").unwrap();
        assert_eq!(conv.runs, 2, "seeds 0 and 2 emit");
        assert!((conv.mean - 11.0).abs() < 1e-12, "(10 + 12) / 2");
        assert!(conv.min <= conv.mean && conv.mean <= conv.max);
        assert!(summary.scenarios[0].metric("missing").is_none());
    }

    #[test]
    fn summary_json_identical_across_worker_counts() {
        let scenarios = vec![toy("a"), toy("b")];
        let render = |workers| {
            sweep("det", &scenarios, 0..6, workers)
                .to_json(true)
                .render()
        };
        let baseline = render(1);
        assert_eq!(render(2), baseline);
        assert_eq!(render(8), baseline);
    }
}

//! A minimal, deterministic JSON emitter and parser.
//!
//! The sweep engine's summaries must be **byte-identical** across repeated
//! runs, worker counts and process invocations, so serialization avoids
//! anything with ambient nondeterminism: no hash maps, no timestamps, no
//! locale-sensitive formatting. Numbers render through Rust's shortest
//! round-trip float formatting (stable across platforms for the same
//! value); object keys appear in the order the caller wrote them.
//!
//! [`Json::parse`] is the matching reader — `scenario trace` uses it to
//! load the `--events` JSONL this crate itself emitted, so it supports
//! standard JSON (objects, arrays, strings with escapes, numbers,
//! booleans, null) and preserves object key order.

use std::fmt::Write as _;

/// A JSON value assembled by the summary writers.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integers stay integers (no trailing `.0`).
    Int(i64),
    /// Unsigned counters (message counts can exceed `i64::MAX` in theory).
    Uint(u64),
    /// Finite floats; non-finite values serialize as `null` per JSON.
    Num(f64),
    /// A string (escaped on write).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An ordered object — **insertion order is the serialization order**.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for objects.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Serializes compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parses one JSON document (errors carry the byte offset). Integers
    /// land in [`Json::Uint`]/[`Json::Int`] and everything else numeric in
    /// [`Json::Num`]; object key order is preserved.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing data at byte {}", parser.pos));
        }
        Ok(value)
    }

    /// Field lookup on an object (`None` for other variants or missing
    /// keys; duplicate keys resolve to the first occurrence).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Uint(u) => Some(*u),
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, for any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Uint(u) => Some(*u as f64),
            Json::Int(i) => Some(*i as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Uint(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Nesting ceiling for [`Json::parse`]: recursion depth is bounded so
/// adversarial input (e.g. ten thousand `[`s) returns `Err` instead of
/// overflowing the stack. Far deeper than any artifact this workspace
/// emits.
const MAX_DEPTH: usize = 128;

/// Recursive-descent state for [`Json::parse`].
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected `{word}` at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("expected a value at byte {}", self.pos)),
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(format!(
                                "bad escape '\\{}' at byte {}",
                                other as char,
                                self.pos - 1
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // char boundaries are trustworthy).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let s = std::str::from_utf8(slice).map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape `{s}`"))?;
        self.pos = end;
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        let hi = self.hex4()?;
        // Surrogate pair: a high surrogate must be followed by \uXXXX low.
        let code = if (0xD800..0xDC00).contains(&hi) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00) & 0x3FF)
            } else {
                return Err("lone high surrogate".into());
            }
        } else {
            hi
        };
        char::from_u32(code).ok_or_else(|| format!("invalid scalar U+{code:04X}"))
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::Uint(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::Uint(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(2.0).render(), "2");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(Json::str("a\"b\\c\n").render(), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn containers_preserve_order() {
        let v = Json::obj(vec![
            ("z", Json::Int(1)),
            ("a", Json::Arr(vec![Json::Int(2), Json::Null])),
        ]);
        assert_eq!(v.render(), "{\"z\":1,\"a\":[2,null]}");
    }

    #[test]
    fn rendering_is_reproducible() {
        let v = Json::obj(vec![("x", Json::Num(0.1 + 0.2))]);
        assert_eq!(v.render(), v.render());
    }

    #[test]
    fn parse_round_trips_the_emitter() {
        let v = Json::obj(vec![
            ("scenario", Json::str("drift[p=0.1]")),
            ("seed", Json::Uint(3)),
            ("neg", Json::Int(-7)),
            ("rate", Json::Num(0.125)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("arr", Json::Arr(vec![Json::Uint(1), Json::str("a\"b\n")])),
        ]);
        let parsed = Json::parse(&v.render()).unwrap();
        assert_eq!(parsed, v);
        assert_eq!(parsed.render(), v.render(), "byte-exact round trip");
    }

    #[test]
    fn parse_accessors_read_fields() {
        let v = Json::parse(r#" { "kind" : "delivered", "round": 12, "x": 1.5, "legal": false } "#)
            .unwrap();
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("delivered"));
        assert_eq!(v.get("round").and_then(Json::as_u64), Some(12));
        assert_eq!(v.get("x").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("legal").and_then(Json::as_bool), Some(false));
        assert!(v.get("missing").is_none());
        assert!(v.as_arr().is_none());
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\n\u0041\u00e9""#).unwrap(),
            Json::str("a\"b\\c\nAé")
        );
        // Surrogate pair for U+1F600.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::str("\u{1F600}")
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "1.2.3", "{}x", "\"\\q\""] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parse_bounds_nesting_depth_instead_of_overflowing() {
        // At the ceiling: parses fine.
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(Json::parse(&ok).is_ok());
        // One past the ceiling: a clean `Err`.
        let over = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        assert!(Json::parse(&over).unwrap_err().contains("nesting"));
        // Pathological input must never panic or blow the stack.
        let bomb = "[".repeat(100_000);
        assert!(Json::parse(&bomb).is_err());
        let obj_bomb = "{\"k\":".repeat(100_000);
        assert!(Json::parse(&obj_bomb).is_err());
        // Siblings don't accumulate depth: a wide flat array is fine.
        let wide = format!("[{}1]", "1,".repeat(10_000));
        assert!(Json::parse(&wide).is_ok());
    }

    #[test]
    fn parse_number_variants() {
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::Uint(u64::MAX)
        );
        assert_eq!(Json::parse("-3").unwrap(), Json::Int(-3));
        assert_eq!(Json::parse("2.5e2").unwrap(), Json::Num(250.0));
    }
}

//! A minimal, deterministic JSON emitter.
//!
//! The sweep engine's summaries must be **byte-identical** across repeated
//! runs, worker counts and process invocations, so serialization avoids
//! anything with ambient nondeterminism: no hash maps, no timestamps, no
//! locale-sensitive formatting. Numbers render through Rust's shortest
//! round-trip float formatting (stable across platforms for the same
//! value); object keys appear in the order the caller wrote them.

use std::fmt::Write as _;

/// A JSON value assembled by the summary writers.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integers stay integers (no trailing `.0`).
    Int(i64),
    /// Unsigned counters (message counts can exceed `i64::MAX` in theory).
    Uint(u64),
    /// Finite floats; non-finite values serialize as `null` per JSON.
    Num(f64),
    /// A string (escaped on write).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An ordered object — **insertion order is the serialization order**.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for objects.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Serializes compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Uint(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::Uint(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(2.0).render(), "2");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(Json::str("a\"b\\c\n").render(), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn containers_preserve_order() {
        let v = Json::obj(vec![
            ("z", Json::Int(1)),
            ("a", Json::Arr(vec![Json::Int(2), Json::Null])),
        ]);
        assert_eq!(v.render(), "{\"z\":1,\"a\":[2,null]}");
    }

    #[test]
    fn rendering_is_reproducible() {
        let v = Json::obj(vec![("x", Json::Num(0.1 + 0.2))]);
        assert_eq!(v.render(), v.render());
    }
}

//! Structured per-run results: [`RunRecord`], [`Verdict`] and the
//! [`Scenario`] abstraction the sweep engine executes.

use ga_simnet::runtime::Runtime;
use ga_simnet::telemetry::{Event, TelemetryConfig};
use ga_simnet::trace::Trace;

use crate::json::Json;

/// Did the run support the claim the scenario encodes?
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The claim held.
    Pass,
    /// The claim failed; the string says which check broke.
    Fail(String),
}

impl Verdict {
    /// Pass if `ok`, otherwise a failure carrying `why`.
    pub fn check(ok: bool, why: &str) -> Verdict {
        if ok {
            Verdict::Pass
        } else {
            Verdict::Fail(why.to_string())
        }
    }

    /// Combines two verdicts: the first failure wins.
    #[must_use]
    pub fn and(self, other: Verdict) -> Verdict {
        match self {
            Verdict::Pass => other,
            fail => fail,
        }
    }

    /// Whether the verdict is a pass.
    pub fn passed(&self) -> bool {
        matches!(self, Verdict::Pass)
    }
}

/// Message accounting lifted out of a simulation [`Trace`] (all zero for
/// scenarios that do not run the simulator).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MessageStats {
    /// Messages delivered.
    pub delivered: u64,
    /// Payload bytes delivered.
    pub bytes: u64,
    /// Drops: destination not a neighbor.
    pub dropped_no_link: u64,
    /// Drops: loss model.
    pub dropped_lossy: u64,
    /// Drops: transient-fault injection.
    pub dropped_fault: u64,
    /// Observed loss-model drop rate in `[0, 1]`.
    pub lossy_drop_rate: f64,
}

impl MessageStats {
    /// Extracts the counters from a trace.
    pub fn from_trace(trace: &Trace) -> MessageStats {
        MessageStats {
            delivered: trace.messages_delivered,
            bytes: trace.bytes_delivered,
            dropped_no_link: trace.messages_dropped_no_link,
            dropped_lossy: trace.messages_dropped_lossy,
            dropped_fault: trace.messages_dropped_fault,
            lossy_drop_rate: trace.lossy_drop_rate(),
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("delivered", Json::Uint(self.delivered)),
            ("bytes", Json::Uint(self.bytes)),
            ("dropped_no_link", Json::Uint(self.dropped_no_link)),
            ("dropped_lossy", Json::Uint(self.dropped_lossy)),
            ("dropped_fault", Json::Uint(self.dropped_fault)),
            ("lossy_drop_rate", Json::Num(self.lossy_drop_rate)),
        ])
    }
}

/// The structured result of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Scenario name (including any parameter suffix).
    pub scenario: String,
    /// The seed this run derived all randomness from.
    pub seed: u64,
    /// Sweep-parameter values for this run, in axis order.
    pub params: Vec<(String, f64)>,
    /// Rounds executed (0 for non-simulator scenarios).
    pub rounds: u64,
    /// Round at which the stop predicate held, if one was set and held.
    pub stopped_at: Option<u64>,
    /// The scenario's claim, checked against this run.
    pub verdict: Verdict,
    /// Named measurements, in the order the scenario emitted them.
    pub metrics: Vec<(String, f64)>,
    /// Message accounting.
    pub messages: MessageStats,
    /// Deterministic telemetry events retained by the run's
    /// [`EventSink`](ga_simnet::telemetry::EventSink) ring, oldest first.
    /// Empty unless the run executed with the event plane enabled
    /// ([`Scenario::run_telemetry`]). Deliberately **not** part of
    /// [`to_json`](RunRecord::to_json) — the event stream has its own
    /// channel (`scenario run --events`, rendered via [`event_json`]) so
    /// record/summary JSON stays unchanged whether or not events are on.
    pub events: Vec<Event>,
}

impl RunRecord {
    /// A blank record for `scenario` at `seed`; scenarios fill the rest in.
    pub fn new(scenario: impl Into<String>, seed: u64) -> RunRecord {
        RunRecord {
            scenario: scenario.into(),
            seed,
            params: Vec::new(),
            rounds: 0,
            stopped_at: None,
            verdict: Verdict::Pass,
            metrics: Vec::new(),
            messages: MessageStats::default(),
            events: Vec::new(),
        }
    }

    /// Appends a named measurement.
    pub fn metric(&mut self, name: impl Into<String>, value: f64) -> &mut Self {
        self.metrics.push((name.into(), value));
        self
    }

    /// Looks up a metric by name.
    pub fn get_metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Folds `verdict` into the record (first failure wins).
    pub fn require(&mut self, ok: bool, why: &str) -> &mut Self {
        self.verdict =
            std::mem::replace(&mut self.verdict, Verdict::Pass).and(Verdict::check(ok, why));
        self
    }

    /// Serializes the record.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("scenario", Json::str(self.scenario.clone())),
            ("seed", Json::Uint(self.seed)),
        ];
        if !self.params.is_empty() {
            fields.push((
                "params",
                Json::Obj(
                    self.params
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ));
        }
        fields.push(("rounds", Json::Uint(self.rounds)));
        fields.push((
            "stopped_at",
            match self.stopped_at {
                Some(r) => Json::Uint(r),
                None => Json::Null,
            },
        ));
        fields.push((
            "verdict",
            match &self.verdict {
                Verdict::Pass => Json::str("pass"),
                Verdict::Fail(why) => Json::str(format!("fail: {why}")),
            },
        ));
        fields.push((
            "metrics",
            Json::Obj(
                self.metrics
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v)))
                    .collect(),
            ),
        ));
        fields.push(("messages", self.messages.to_json()));
        Json::obj(fields)
    }
}

/// Renders one deterministic telemetry event as a JSON object for the
/// `--events` JSONL stream, stamped with its run coordinates. Field order
/// is fixed, so the rendered stream inherits the event plane's
/// byte-identity across workers × shards × pool size.
pub fn event_json(scenario: &str, seed: u64, event: &Event) -> Json {
    let mut fields = vec![
        ("scenario", Json::str(scenario)),
        ("seed", Json::Uint(seed)),
        ("kind", Json::str(event.kind())),
        ("round", Json::Uint(event.round())),
    ];
    match event {
        Event::RoundStart { .. } => {}
        Event::RoundEnd { delivered, .. } => {
            fields.push(("delivered", Json::Uint(*delivered)));
        }
        Event::Delivered {
            from, to, bytes, ..
        } => {
            fields.push(("from", Json::Uint(from.index() as u64)));
            fields.push(("to", Json::Uint(to.index() as u64)));
            fields.push(("bytes", Json::Uint(*bytes as u64)));
        }
        Event::Dropped {
            from, to, reason, ..
        } => {
            fields.push(("from", Json::Uint(from.index() as u64)));
            fields.push(("to", Json::Uint(to.index() as u64)));
            fields.push(("reason", Json::str(reason.label())));
        }
        Event::ScheduleFired { action, .. } => {
            fields.push(("action", Json::str(*action)));
        }
        Event::CorruptionApplied {
            targets, dropped, ..
        } => {
            fields.push(("targets", Json::Uint(*targets as u64)));
            fields.push(("dropped", Json::Uint(*dropped)));
        }
        Event::Scrambled { id, .. } => {
            fields.push(("id", Json::Uint(id.index() as u64)));
        }
        Event::LegalityFlip { legal, .. } => {
            fields.push(("legal", Json::Bool(*legal)));
        }
    }
    Json::obj(fields)
}

/// Anything the sweep engine can execute: a named, seedable, pure
/// computation producing a [`RunRecord`].
///
/// Implementations must be pure functions of `(self, seed)` — no ambient
/// randomness, clocks or I/O — so records are identical no matter which
/// worker thread executes them and sweeps aggregate deterministically.
pub trait Scenario: Send + Sync {
    /// Scenario name (stable; used in summaries and CLI selection).
    fn name(&self) -> &str;

    /// Executes one run.
    fn run(&self, seed: u64) -> RunRecord;

    /// Executes one run with an intra-run parallelism hint: simulator-
    /// backed scenarios shard `Simulation::step` across `shards` threads.
    /// A hint of 0 means "unspecified" — scenarios carrying their own
    /// shard default (`ScenarioSpec::shards`) fall back to it; any
    /// explicit value (1 = force serial) wins.
    ///
    /// Sharding is an execution knob, never a semantic one — the record
    /// must be identical at every shard count (sharded stepping is
    /// byte-identical to serial, see `ga_simnet::sim::StepExec`). The
    /// default ignores the hint, which is trivially conformant for pure
    /// computations.
    fn run_sharded(&self, seed: u64, shards: usize) -> RunRecord {
        let _ = shards;
        self.run(seed)
    }

    /// [`run_sharded`](Scenario::run_sharded) drawing intra-run
    /// parallelism from `runtime` — the sweep engine calls this so one
    /// persistent pool backs both the sweep's workers and every run's
    /// sharded stepping (`--workers` is one global thread budget). The
    /// pool is an execution detail: records are identical whichever pool
    /// executes them. The default ignores the handle, which is trivially
    /// conformant for pure computations.
    fn run_on(&self, seed: u64, shards: usize, runtime: &Runtime) -> RunRecord {
        let _ = runtime;
        self.run_sharded(seed, shards)
    }

    /// [`run_on`](Scenario::run_on) with the deterministic telemetry
    /// event plane switched on: simulator-backed scenarios attach an
    /// [`EventSink`](ga_simnet::telemetry::EventSink) sized by `telemetry`
    /// and return the retained events in
    /// [`RunRecord::events`]. `None` (or the default implementation,
    /// which is trivially conformant for pure computations that step no
    /// simulator) leaves the event plane off and `events` empty. Events
    /// are part of the deterministic plane — the stream must be identical
    /// at every shard count and on every pool, like the record itself.
    fn run_telemetry(
        &self,
        seed: u64,
        shards: usize,
        runtime: &Runtime,
        telemetry: Option<&TelemetryConfig>,
    ) -> RunRecord {
        let _ = telemetry;
        self.run_on(seed, shards, runtime)
    }

    /// Whether [`run_sharded`](Scenario::run_sharded) actually honors the
    /// shard hint (default false — pure computations step no simulator).
    /// Sweep frontends use this to avoid carving a thread budget up for
    /// sharding that would buy nothing.
    fn supports_sharding(&self) -> bool {
        false
    }
}

/// A [`Scenario`] defined by a closure — the porting vehicle for
/// experiments that are direct computations rather than simulator runs.
pub struct FnScenario {
    name: String,
    f: Box<dyn Fn(u64) -> RunRecord + Send + Sync>,
}

impl FnScenario {
    /// Wraps `f` as a scenario. The closure receives the seed and must
    /// stamp it into the returned record.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(u64) -> RunRecord + Send + Sync + 'static,
    ) -> FnScenario {
        FnScenario {
            name: name.into(),
            f: Box::new(f),
        }
    }
}

impl Scenario for FnScenario {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&self, seed: u64) -> RunRecord {
        (self.f)(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_combinators() {
        assert!(Verdict::check(true, "x").passed());
        assert!(!Verdict::check(false, "x").passed());
        assert_eq!(
            Verdict::Pass.and(Verdict::Fail("a".into())),
            Verdict::Fail("a".into())
        );
        assert_eq!(
            Verdict::Fail("first".into()).and(Verdict::Fail("second".into())),
            Verdict::Fail("first".into()),
            "first failure wins"
        );
    }

    #[test]
    fn record_builds_and_serializes() {
        let mut r = RunRecord::new("demo", 7);
        r.metric("x", 1.5)
            .require(true, "ok")
            .require(false, "boom");
        assert_eq!(r.get_metric("x"), Some(1.5));
        assert_eq!(r.verdict, Verdict::Fail("boom".into()));
        let s = r.to_json().render();
        assert!(s.contains("\"scenario\":\"demo\""));
        assert!(s.contains("\"seed\":7"));
        assert!(s.contains("\"x\":1.5"));
        assert!(s.contains("fail: boom"));
        assert!(!s.contains("params"), "empty params omitted");
    }

    #[test]
    fn fn_scenario_runs() {
        let s = FnScenario::new("f", |seed| {
            let mut r = RunRecord::new("f", seed);
            r.metric("seed2", (seed * 2) as f64);
            r
        });
        assert_eq!(s.name(), "f");
        assert_eq!(s.run(3).get_metric("seed2"), Some(6.0));
    }
}

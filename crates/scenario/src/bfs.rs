//! Self-stabilizing BFS spanning tree with a *certified* convergence
//! bound.
//!
//! The `stabilize` suite charts recovery times for workloads whose true
//! stabilization time is unknown — the percentiles are numbers we plot,
//! not numbers we can check. This module closes that gap with the classic
//! BFS spanning-tree construction of Dolev, Israeli & Moran, whose
//! convergence under a synchronous daemon has a round bound stated purely
//! in terms of the topology (revisited and certified by Altisen & Bozga,
//! arXiv 2502.17035): [`certified_bound`] computes it from
//! [`Topology::diameter`], and verdicts compare the *measured*
//! `rounds_to_stabilize` against it.
//!
//! ## The protocol
//!
//! Every processor keeps two volatile registers — a `distance` estimate
//! and a `parent` pointer — plus one ROM bit (`is_root`) that corruption
//! cannot touch. Each pulse:
//!
//! * the root resets `distance = 0`, `parent = None` and broadcasts `0`;
//! * every other processor takes the smallest distance claim heard this
//!   pulse (ties broken toward the lower sender id), adopts `claim + 1`
//!   and the claiming sender as parent, and broadcasts its own distance.
//!
//! ## Why the bound holds (sketch)
//!
//! Claims can be arbitrarily corrupted, but a non-root's new distance is
//! always `1 +` some claim heard, so the minimum non-root estimate rises
//! by at least one per pulse — fake low values age out linearly — while
//! the root's genuine `0` wave reaches every vertex at true BFS distance
//! `d` within `d` pulses. Once the fake floor clears a vertex's true
//! distance, the root wave is the minimum and both registers lock to the
//! BFS tree: recovery takes at most `ecc(root) ≤ diameter` pulses plus a
//! constant for message latency (claims heard this pulse were sent the
//! previous one) and the burst's channel wipe. [`certified_bound`] adds
//! that constant: `diameter + 2`.

use ga_simnet::prelude::*;
use rand::rngs::StdRng;
use rand::RngCore;

/// The id every spec in this module roots the tree at.
pub const ROOT: ProcessId = ProcessId(0);

/// A self-stabilizing BFS spanning-tree processor (see the module docs).
///
/// `is_root` is ROM — [`scramble`](Process::scramble) randomizes only the
/// volatile `distance`/`parent` registers, modelling a transient fault
/// that cannot rewrite program identity.
#[derive(Debug, Clone)]
pub struct BfsTree {
    /// ROM: whether this processor is the tree root.
    pub is_root: bool,
    /// Volatile register: estimated hop distance from the root.
    pub distance: u64,
    /// Volatile register: the neighbor this processor currently routes
    /// through (`None` for the root — or for a processor that has heard
    /// nothing yet).
    pub parent: Option<ProcessId>,
}

impl BfsTree {
    /// A fresh processor; `id == ROOT` pins the root role.
    pub fn new(id: ProcessId) -> BfsTree {
        BfsTree {
            is_root: id == ROOT,
            distance: if id == ROOT { 0 } else { u64::MAX },
            parent: None,
        }
    }

    /// Wire format: the claimed distance as 8 little-endian bytes.
    pub fn encode(distance: u64) -> Vec<u8> {
        distance.to_le_bytes().to_vec()
    }

    /// Inverse of [`encode`](BfsTree::encode); `None` for ill-formed
    /// payloads (adversarial or corrupted bytes of the wrong shape).
    pub fn decode(bytes: &[u8]) -> Option<u64> {
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }
}

impl Process for BfsTree {
    fn on_pulse(&mut self, ctx: &mut Context<'_>) {
        if self.is_root {
            self.distance = 0;
            self.parent = None;
        } else {
            // Adopt the smallest claim heard this pulse, ties toward the
            // lower sender id — a pure function of the inbox contents, so
            // sharding never changes the choice.
            let best = ctx
                .inbox()
                .iter()
                .filter_map(|m| BfsTree::decode(m.bytes()).map(|d| (d, m.from)))
                .min_by_key(|&(d, from)| (d, from.index()));
            if let Some((claim, from)) = best {
                self.distance = claim.saturating_add(1);
                self.parent = Some(from);
            }
            // An empty (or undecodable) inbox keeps the registers: the
            // processor has no evidence to revise its estimate with.
        }
        ctx.broadcast(BfsTree::encode(self.distance));
    }

    fn scramble(&mut self, rng: &mut StdRng) {
        // Volatile registers only; the ROM root bit survives. The distance
        // is bounded so a scrambled claim is garbage, not an overflow.
        self.distance = rng.next_u64() % (1 << 20);
        self.parent = Some(ProcessId((rng.next_u64() % 64) as usize));
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "bfs_tree"
    }
}

/// The certified convergence bound, in rounds, for [`BfsTree`] on
/// `topology` under the synchronous daemon: `diameter + 2` (see the module
/// docs for the derivation; the `+ 2` covers message latency and the
/// corruption burst's channel wipe).
///
/// Returns `None` when the topology is disconnected — no spanning tree
/// exists, so no bound does either.
pub fn certified_bound(topology: &Topology) -> Option<u64> {
    Some(topology.diameter()? + 2)
}

/// The legality predicate: every processor's `distance` register equals
/// its true BFS distance from [`ROOT`] and every non-root's parent is a
/// neighbor one hop closer to the root — i.e. the parent pointers form a
/// correct BFS spanning tree. (On a disconnected topology there is no
/// legal configuration and this returns `false`.)
pub fn bfs_tree_legal(sim: &Simulation) -> bool {
    let topology = sim.topology();
    let truth = topology.bfs_distances(ROOT);
    (0..topology.len()).all(|i| {
        let id = ProcessId(i);
        let (Some(p), Some(true_d)) = (sim.process_as::<BfsTree>(id), truth[i]) else {
            return false;
        };
        if p.distance != true_d {
            return false;
        }
        if id == ROOT {
            p.parent.is_none()
        } else {
            p.parent.is_some_and(|parent| {
                topology.connected(id, parent)
                    && truth[parent.index()] == Some(true_d.saturating_sub(1))
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ga_simnet::rng::process_rng;

    // Homogeneous population: exercise the slab build path (byte-identical
    // to boxed storage) through a real protocol, scrambles included.
    fn build(topology: Topology) -> Simulation {
        Simulation::builder(topology)
            .seed(7)
            .build_slab(BfsTree::new)
    }

    #[test]
    fn converges_to_the_bfs_tree_within_the_certified_bound() {
        for topology in [Topology::ring(8), Topology::grid(3, 3), Topology::star(7)] {
            let bound = certified_bound(&topology).unwrap();
            let mut sim = build(topology);
            for _ in 0..bound {
                sim.step();
            }
            assert!(bfs_tree_legal(&sim), "legal within {bound} rounds");
            let truth = sim.topology().bfs_distances(ROOT);
            for (i, true_d) in truth.iter().enumerate() {
                let p = sim.process_as::<BfsTree>(ProcessId(i)).unwrap();
                assert_eq!(Some(p.distance), *true_d);
            }
        }
    }

    #[test]
    fn recovers_from_a_scramble_within_the_certified_bound() {
        // Scramble every register and wipe the in-flight claims (with the
        // channels intact one pulse re-adopts the pre-fault claims and the
        // scramble is unobservable) — the genuine worst case the bound is
        // stated for.
        let fault = TransientFault {
            scramble: (0..8).map(ProcessId).collect(),
            drop_messages_p: 1.0,
            ..TransientFault::default()
        };
        for seed_salt in [3, 4, 5] {
            let topology = Topology::ring(8);
            let bound = certified_bound(&topology).unwrap();
            let mut sim = build(topology);
            for _ in 0..bound {
                sim.step();
            }
            assert!(bfs_tree_legal(&sim));
            sim.inject(&TransientFault {
                salt: seed_salt,
                ..fault.clone()
            });
            assert!(!bfs_tree_legal(&sim), "the scramble breaks legality");
            let recovery = (1..=bound)
                .find(|_| {
                    sim.step();
                    bfs_tree_legal(&sim)
                })
                .expect("re-legal within the certified bound");
            assert!(recovery <= bound);
        }
    }

    #[test]
    fn root_rom_bit_survives_scramble() {
        let mut root = BfsTree::new(ROOT);
        let mut rng = process_rng(2, ROOT, Round(1));
        root.scramble(&mut rng);
        assert!(root.is_root, "ROM survives");
        let before = (root.distance, root.parent);
        let mut rng2 = process_rng(3, ROOT, Round(2));
        root.scramble(&mut rng2);
        assert_ne!(
            before,
            (root.distance, root.parent),
            "volatile registers actually change"
        );
    }

    #[test]
    fn decode_rejects_ill_formed_payloads() {
        assert_eq!(BfsTree::decode(&[]), None);
        assert_eq!(BfsTree::decode(&[1, 2, 3]), None);
        assert_eq!(BfsTree::decode(&BfsTree::encode(42)), Some(42));
    }

    #[test]
    fn legality_rejects_wrong_distance_and_wrong_parent() {
        let topology = Topology::ring(6);
        let mut sim = build(topology);
        sim.run(8);
        assert!(bfs_tree_legal(&sim));
        sim.process_as_mut::<BfsTree>(ProcessId(3))
            .unwrap()
            .distance = 0;
        assert!(!bfs_tree_legal(&sim), "wrong distance is illegal");
        sim.process_as_mut::<BfsTree>(ProcessId(3))
            .unwrap()
            .distance = 3;
        sim.process_as_mut::<BfsTree>(ProcessId(3)).unwrap().parent = Some(ProcessId(3));
        assert!(!bfs_tree_legal(&sim), "non-neighbor parent is illegal");
    }

    #[test]
    fn certified_bound_tracks_the_diameter() {
        assert_eq!(certified_bound(&Topology::ring(8)), Some(6));
        assert_eq!(certified_bound(&Topology::grid(3, 3)), Some(6));
        assert_eq!(certified_bound(&Topology::complete(5)), Some(3));
        assert_eq!(
            certified_bound(&Topology::from_edges(4, &[(0, 1), (2, 3)]).unwrap()),
            None,
            "no spanning tree on a disconnected graph"
        );
    }
}

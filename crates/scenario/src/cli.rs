//! The `scenario` command-line tool.
//!
//! ```text
//! scenario list
//! scenario run --suite paper [--seeds N] [--workers N] [--out FILE] [--no-records]
//! scenario bench [--suite bench64] [--seeds N] [--workers N] [--out FILE]
//! ```
//!
//! `run` prints the suite's deterministic JSON summary to stdout (and
//! optionally a file): byte-identical across repeated invocations and
//! worker counts. `bench` times a sweep and records throughput — timing
//! lives only in the bench output, never in run summaries, so summaries
//! stay reproducible.

use std::time::Instant;

use crate::json::Json;
use crate::suites;

/// Entry point; returns the process exit code (0 = all verdicts passed,
/// 1 = failures, 2 = usage error).
pub fn main(args: Vec<String>) -> i32 {
    match args.first().map(String::as_str) {
        Some("list") => {
            list();
            0
        }
        Some("run") => match Options::parse(&args[1..], "paper") {
            Ok(opts) => run(&opts),
            Err(err) => usage(&err),
        },
        Some("bench") => match Options::parse(&args[1..], "bench64") {
            Ok(opts) => bench(&opts),
            Err(err) => usage(&err),
        },
        Some("--help") | Some("-h") | None => usage("expected a subcommand"),
        Some(other) => usage(&format!("unknown subcommand: {other}")),
    }
}

struct Options {
    suite: String,
    seeds: Option<u64>,
    workers: usize,
    out: Option<String>,
    records: bool,
}

impl Options {
    fn parse(args: &[String], default_suite: &str) -> Result<Options, String> {
        let mut opts = Options {
            suite: default_suite.to_string(),
            seeds: None,
            workers: default_workers(),
            out: None,
            records: true,
        };
        let mut i = 0;
        while i < args.len() {
            let take = |i: usize| -> Result<&String, String> {
                args.get(i + 1)
                    .ok_or_else(|| format!("{} needs a value", args[i]))
            };
            match args[i].as_str() {
                "--suite" => {
                    opts.suite = take(i)?.clone();
                    i += 2;
                }
                "--seeds" => {
                    opts.seeds = Some(
                        take(i)?
                            .parse()
                            .map_err(|_| "--seeds needs an integer".to_string())?,
                    );
                    i += 2;
                }
                "--workers" => {
                    opts.workers = take(i)?
                        .parse()
                        .map_err(|_| "--workers needs an integer".to_string())?;
                    if opts.workers == 0 {
                        return Err("--workers must be positive".into());
                    }
                    i += 2;
                }
                "--out" => {
                    opts.out = Some(take(i)?.clone());
                    i += 2;
                }
                "--no-records" => {
                    opts.records = false;
                    i += 1;
                }
                other => return Err(format!("unknown argument: {other}")),
            }
        }
        Ok(opts)
    }
}

/// Worker default: the machine's parallelism, capped — sweeps are CPU
/// bound and runs are short, so more threads than cores only adds noise.
fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .clamp(1, 16)
}

fn usage(err: &str) -> i32 {
    eprintln!("error: {err}");
    eprintln!();
    eprintln!("usage: scenario <list | run | bench> [options]");
    eprintln!("  list                      show every named suite");
    eprintln!("  run   --suite NAME        run a suite, print its JSON summary");
    eprintln!("        [--seeds N]         seeds per scenario (default: suite plan)");
    eprintln!("        [--workers N]       sweep threads (default: min(cores, 16))");
    eprintln!("        [--out FILE]        also write the summary to FILE");
    eprintln!("        [--no-records]      aggregates only, omit per-run records");
    eprintln!("  bench [--suite NAME]      time a sweep, write throughput JSON");
    eprintln!("        [--seeds N] [--workers N] [--out FILE (default BENCH_scenarios.json)]");
    2
}

fn list() {
    println!("available suites:");
    for suite in suites::all() {
        let n = suite.scenarios().len();
        println!(
            "  {:<10} {:>2} scenarios × {} seeds — {}",
            suite.name, n, suite.default_seeds, suite.description
        );
        for scenario in suite.scenarios() {
            println!("             - {}", scenario.name());
        }
    }
}

fn run(opts: &Options) -> i32 {
    let Some(suite) = suites::find(&opts.suite) else {
        return usage(&format!(
            "unknown suite: {} (try `scenario list`)",
            opts.suite
        ));
    };
    let summary = suite.run(opts.seeds, opts.workers);
    let json = summary.to_json(opts.records).render();
    println!("{json}");
    if let Some(path) = &opts.out {
        if let Err(err) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("error: cannot write {path}: {err}");
            return 2;
        }
    }
    if summary.all_passed() {
        0
    } else {
        let failures: Vec<String> = summary
            .records
            .iter()
            .filter(|r| !r.verdict.passed())
            .map(|r| format!("{} (seed {})", r.scenario, r.seed))
            .collect();
        eprintln!("verdict failures: {}", failures.join(", "));
        1
    }
}

fn bench(opts: &Options) -> i32 {
    let Some(suite) = suites::find(&opts.suite) else {
        return usage(&format!(
            "unknown suite: {} (try `scenario list`)",
            opts.suite
        ));
    };
    let start = Instant::now();
    let summary = suite.run(opts.seeds, opts.workers);
    let elapsed = start.elapsed().as_secs_f64();
    let runs = summary.runs();
    let json = Json::obj(vec![
        ("suite", Json::str(suite.name)),
        ("runs", Json::Uint(runs)),
        ("workers", Json::Uint(opts.workers as u64)),
        ("elapsed_s", Json::Num(elapsed)),
        ("runs_per_sec", Json::Num(runs as f64 / elapsed.max(1e-9))),
        ("all_passed", Json::Bool(summary.all_passed())),
    ])
    .render();
    println!("{json}");
    let path = opts.out.as_deref().unwrap_or("BENCH_scenarios.json");
    if let Err(err) = std::fs::write(path, format!("{json}\n")) {
        eprintln!("error: cannot write {path}: {err}");
        return 2;
    }
    eprintln!("wrote {path}");
    i32::from(!summary.all_passed())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parse_full_option_set() {
        let opts = Options::parse(
            &args(&[
                "--suite",
                "smoke",
                "--seeds",
                "5",
                "--workers",
                "3",
                "--out",
                "x.json",
                "--no-records",
            ]),
            "paper",
        )
        .unwrap();
        assert_eq!(opts.suite, "smoke");
        assert_eq!(opts.seeds, Some(5));
        assert_eq!(opts.workers, 3);
        assert_eq!(opts.out.as_deref(), Some("x.json"));
        assert!(!opts.records);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(Options::parse(&args(&["--seeds"]), "paper").is_err());
        assert!(Options::parse(&args(&["--workers", "0"]), "paper").is_err());
        assert!(Options::parse(&args(&["--frobnicate"]), "paper").is_err());
    }

    #[test]
    fn defaults_follow_subcommand() {
        let opts = Options::parse(&[], "bench64").unwrap();
        assert_eq!(opts.suite, "bench64");
        assert_eq!(opts.seeds, None);
        assert!(opts.records);
        assert!(opts.workers >= 1);
    }

    #[test]
    fn unknown_suite_is_usage_error() {
        let code = main(args(&["run", "--suite", "no-such-suite"]));
        assert_eq!(code, 2);
    }
}

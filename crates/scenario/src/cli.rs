//! The `scenario` command-line tool.
//!
//! ```text
//! scenario list
//! scenario run --suite paper [--seeds N] [--workers N] [--shards N]
//!              [--out FILE] [--records FILE.jsonl] [--no-records]
//! scenario bench [--suite bench64] [--seeds N] [--workers N] [--shards N] [--out FILE]
//! ```
//!
//! `run` prints the suite's deterministic JSON summary to stdout (and
//! optionally a file): byte-identical across repeated invocations, worker
//! counts and shard counts. `--shards N` shards each run's
//! `Simulation::step` across N threads (absent: each scenario's own
//! setting applies; `--shards 1` forces serial); the `--workers` value is
//! treated as a **total** thread budget, so sweep-level parallelism is
//! scaled down to `workers / shards` — only for suites whose scenarios
//! actually step the simulator; pure-computation suites keep the whole
//! budget and the ignored flag is noted on stderr. `--records FILE`
//! streams one JSON line per run to FILE as runs complete (stable job
//! order), without holding the records in memory. `bench` times a sweep
//! and records throughput —
//! timing lives only in the bench output, never in run summaries, so
//! summaries stay reproducible.
//!
//! `scenario list` names every suite: `paper` (the e1–e8 experiment
//! ports), `authority` (the §3.3 distributed-authority plays — honest,
//! selfish-cluster, mute, churn, and a noise adversary placed per seed
//! by `PlacementStrategy::RandomF`), `examples`, `smoke` (the tier-1
//! gate), and the `bench64`/`bench256` throughput workloads.

use std::io::Write;
use std::time::Instant;

use crate::json::Json;
use crate::suites;

/// Entry point; returns the process exit code (0 = all verdicts passed,
/// 1 = failures, 2 = usage error).
pub fn main(args: Vec<String>) -> i32 {
    match args.first().map(String::as_str) {
        Some("list") => {
            list();
            0
        }
        Some("run") => match Options::parse(&args[1..], "paper") {
            Ok(opts) => run(&opts),
            Err(err) => usage(&err),
        },
        Some("bench") => match Options::parse(&args[1..], "bench64") {
            Ok(opts) => bench(&opts),
            Err(err) => usage(&err),
        },
        Some("--help") | Some("-h") | None => usage("expected a subcommand"),
        Some(other) => usage(&format!("unknown subcommand: {other}")),
    }
}

struct Options {
    suite: String,
    seeds: Option<u64>,
    workers: usize,
    /// `None` = not passed: each scenario keeps its own shard default.
    /// `Some(n)` (1 included, forcing serial) overrides every run.
    shards: Option<usize>,
    out: Option<String>,
    records: bool,
    record_sink: Option<String>,
}

impl Options {
    fn parse(args: &[String], default_suite: &str) -> Result<Options, String> {
        let mut opts = Options {
            suite: default_suite.to_string(),
            seeds: None,
            workers: default_workers(),
            shards: None,
            out: None,
            records: true,
            record_sink: None,
        };
        let mut i = 0;
        while i < args.len() {
            let take = |i: usize| -> Result<&String, String> {
                args.get(i + 1)
                    .ok_or_else(|| format!("{} needs a value", args[i]))
            };
            match args[i].as_str() {
                "--suite" => {
                    opts.suite = take(i)?.clone();
                    i += 2;
                }
                "--seeds" => {
                    opts.seeds = Some(
                        take(i)?
                            .parse()
                            .map_err(|_| "--seeds needs an integer".to_string())?,
                    );
                    i += 2;
                }
                "--workers" => {
                    opts.workers = take(i)?
                        .parse()
                        .map_err(|_| "--workers needs an integer".to_string())?;
                    if opts.workers == 0 {
                        return Err("--workers must be positive".into());
                    }
                    i += 2;
                }
                "--shards" => {
                    let shards: usize = take(i)?
                        .parse()
                        .map_err(|_| "--shards needs an integer".to_string())?;
                    if shards == 0 {
                        return Err("--shards must be positive".into());
                    }
                    opts.shards = Some(shards);
                    i += 2;
                }
                "--out" => {
                    opts.out = Some(take(i)?.clone());
                    i += 2;
                }
                "--records" => {
                    opts.record_sink = Some(take(i)?.clone());
                    i += 2;
                }
                "--no-records" => {
                    opts.records = false;
                    i += 1;
                }
                other => return Err(format!("unknown argument: {other}")),
            }
        }
        Ok(opts)
    }

    /// Sweep-level worker count under the combined budget: `--workers` is
    /// the total thread allowance, and each concurrent run occupies
    /// `--shards` of it (runs × shards ≤ workers, with at least one run).
    ///
    /// Suites whose scenarios cannot shard (pure-computation ports) keep
    /// the full budget — carving it up would slow the sweep for nothing —
    /// and a warning flags the ignored `--shards`.
    fn sweep_workers(&self, suite: &suites::Suite) -> usize {
        let Some(shards) = self.shards else {
            return self.workers;
        };
        if shards <= 1 {
            return self.workers;
        }
        let shardable = suite.scenarios().iter().any(|s| s.supports_sharding());
        if !shardable {
            eprintln!(
                "note: suite `{}` has no simulator-backed scenarios; --shards {shards} is ignored",
                suite.name
            );
            return self.workers;
        }
        (self.workers / shards).max(1)
    }

    /// The shard hint handed to every run: 0 = unspecified (scenario
    /// defaults apply), any explicit `--shards` value otherwise.
    fn shard_hint(&self) -> usize {
        self.shards.unwrap_or(0)
    }
}

/// Worker default: the machine's parallelism, capped — sweeps are CPU
/// bound and runs are short, so more threads than cores only adds noise.
fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .clamp(1, 16)
}

fn usage(err: &str) -> i32 {
    eprintln!("error: {err}");
    eprintln!();
    eprintln!("usage: scenario <list | run | bench> [options]");
    eprintln!("  list                      show every named suite");
    eprintln!("  run   --suite NAME        run a suite, print its JSON summary");
    eprintln!("        [--seeds N]         seeds per scenario (default: suite plan)");
    eprintln!("        [--workers N]       total thread budget (default: min(cores, 16))");
    eprintln!("        [--shards N]        threads per run's step loop (default: each");
    eprintln!("                            scenario's own setting; 1 forces serial; for");
    eprintln!("                            simulator suites, runs scale to workers/shards)");
    eprintln!("        [--out FILE]        also write the summary to FILE");
    eprintln!("        [--records FILE]    stream one JSONL record per run to FILE");
    eprintln!("        [--no-records]      aggregates only, omit per-run records");
    eprintln!("  bench [--suite NAME]      time a sweep, write throughput JSON");
    eprintln!("        [--seeds N] [--workers N] [--shards N]");
    eprintln!("        [--out FILE (default BENCH_scenarios.json)]");
    2
}

fn list() {
    println!("available suites:");
    for suite in suites::all() {
        let n = suite.scenarios().len();
        println!(
            "  {:<10} {:>2} scenarios × {} seeds — {}",
            suite.name, n, suite.default_seeds, suite.description
        );
        for scenario in suite.scenarios() {
            println!("             - {}", scenario.name());
        }
    }
}

fn run(opts: &Options) -> i32 {
    let Some(suite) = suites::find(&opts.suite) else {
        return usage(&format!(
            "unknown suite: {} (try `scenario list`)",
            opts.suite
        ));
    };
    let mut failures: Vec<String> = Vec::new();
    let summary = match &opts.record_sink {
        Some(path) => {
            // Stream one JSONL line per run as it completes (stable job
            // order); records are dropped after writing, so the sweep's
            // memory stays bounded regardless of seed count.
            let file = match std::fs::File::create(path) {
                Ok(file) => file,
                Err(err) => {
                    eprintln!("error: cannot create {path}: {err}");
                    return 2;
                }
            };
            let mut out = std::io::BufWriter::new(file);
            let mut io_err: Option<std::io::Error> = None;
            let mut sink = |_i: usize, record: &crate::record::RunRecord| {
                if !record.verdict.passed() {
                    failures.push(format!("{} (seed {})", record.scenario, record.seed));
                }
                if io_err.is_none() {
                    io_err = writeln!(out, "{}", record.to_json().render()).err();
                }
            };
            let summary = suite.run_stream(
                opts.seeds,
                opts.sweep_workers(&suite),
                opts.shard_hint(),
                &mut sink,
            );
            if io_err.is_none() {
                io_err = out.flush().err();
            }
            if let Some(err) = io_err {
                eprintln!("error: cannot write {path}: {err}");
                return 2;
            }
            summary
        }
        None => {
            let summary =
                suite.run_sharded(opts.seeds, opts.sweep_workers(&suite), opts.shard_hint());
            failures = summary
                .records
                .iter()
                .filter(|r| !r.verdict.passed())
                .map(|r| format!("{} (seed {})", r.scenario, r.seed))
                .collect();
            summary
        }
    };
    // A streamed sweep already wrote the records; the summary embeds them
    // only when they were retained and not suppressed.
    let json = summary
        .to_json(opts.records && opts.record_sink.is_none())
        .render();
    println!("{json}");
    if let Some(path) = &opts.out {
        if let Err(err) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("error: cannot write {path}: {err}");
            return 2;
        }
    }
    if summary.all_passed() {
        0
    } else {
        eprintln!("verdict failures: {}", failures.join(", "));
        1
    }
}

fn bench(opts: &Options) -> i32 {
    let Some(suite) = suites::find(&opts.suite) else {
        return usage(&format!(
            "unknown suite: {} (try `scenario list`)",
            opts.suite
        ));
    };
    // Resolve the budget split once: it also prints the ignored---shards
    // note, and the bench region must not re-trigger it.
    let workers = opts.sweep_workers(&suite);
    let start = Instant::now();
    let summary = suite.run_sharded(opts.seeds, workers, opts.shard_hint());
    let elapsed = start.elapsed().as_secs_f64();
    let runs = summary.runs();
    // `workers` records the *effective* sweep thread count (the --workers
    // budget divided by --shards), so runs_per_sec comparisons across
    // snapshots attribute throughput to the parallelism actually used.
    let json = Json::obj(vec![
        ("suite", Json::str(suite.name)),
        ("runs", Json::Uint(runs)),
        ("workers", Json::Uint(workers as u64)),
        ("shards", Json::Uint(opts.shards.unwrap_or(1) as u64)),
        ("elapsed_s", Json::Num(elapsed)),
        ("runs_per_sec", Json::Num(runs as f64 / elapsed.max(1e-9))),
        ("all_passed", Json::Bool(summary.all_passed())),
    ])
    .render();
    println!("{json}");
    let path = opts.out.as_deref().unwrap_or("BENCH_scenarios.json");
    if let Err(err) = std::fs::write(path, format!("{json}\n")) {
        eprintln!("error: cannot write {path}: {err}");
        return 2;
    }
    eprintln!("wrote {path}");
    i32::from(!summary.all_passed())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parse_full_option_set() {
        let opts = Options::parse(
            &args(&[
                "--suite",
                "smoke",
                "--seeds",
                "5",
                "--workers",
                "3",
                "--shards",
                "2",
                "--out",
                "x.json",
                "--records",
                "runs.jsonl",
                "--no-records",
            ]),
            "paper",
        )
        .unwrap();
        assert_eq!(opts.suite, "smoke");
        assert_eq!(opts.seeds, Some(5));
        assert_eq!(opts.workers, 3);
        assert_eq!(opts.shards, Some(2));
        assert_eq!(opts.out.as_deref(), Some("x.json"));
        assert_eq!(opts.record_sink.as_deref(), Some("runs.jsonl"));
        assert!(!opts.records);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(Options::parse(&args(&["--seeds"]), "paper").is_err());
        assert!(Options::parse(&args(&["--workers", "0"]), "paper").is_err());
        assert!(Options::parse(&args(&["--shards", "0"]), "paper").is_err());
        assert!(Options::parse(&args(&["--frobnicate"]), "paper").is_err());
    }

    #[test]
    fn defaults_follow_subcommand() {
        let opts = Options::parse(&[], "bench64").unwrap();
        assert_eq!(opts.suite, "bench64");
        assert_eq!(opts.seeds, None);
        assert!(opts.records);
        assert!(opts.workers >= 1);
        assert_eq!(opts.shards, None);
        assert!(opts.record_sink.is_none());
    }

    #[test]
    fn worker_budget_is_divided_by_shards_for_shardable_suites() {
        // smoke is simulator-backed (shards engage); paper is pure
        // computation (the budget split would be pure loss).
        let smoke = suites::find("smoke").unwrap();
        let paper = suites::find("paper").unwrap();
        let mut opts =
            Options::parse(&args(&["--workers", "8", "--shards", "4"]), "paper").unwrap();
        assert_eq!(opts.shard_hint(), 4);
        assert_eq!(opts.sweep_workers(&smoke), 2);
        assert_eq!(
            opts.sweep_workers(&paper),
            8,
            "non-sharding suites keep the whole budget"
        );
        opts.shards = Some(16);
        assert_eq!(
            opts.sweep_workers(&smoke),
            1,
            "budget never starves the sweep"
        );
        opts.shards = Some(3);
        assert_eq!(
            opts.sweep_workers(&smoke),
            2,
            "integer division rounds down"
        );
        opts.shards = Some(1);
        assert_eq!(
            opts.sweep_workers(&smoke),
            8,
            "explicit serial keeps the whole budget"
        );
        opts.shards = None;
        assert_eq!(
            opts.shard_hint(),
            0,
            "absent flag defers to scenario defaults"
        );
        assert_eq!(opts.sweep_workers(&paper), 8);
    }

    #[test]
    fn run_streams_jsonl_records_in_stable_order() {
        let dir = std::env::temp_dir().join("ga-scenario-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("records.jsonl");
        let path_str = path.to_str().unwrap().to_string();

        let code = main(args(&[
            "run",
            "--suite",
            "smoke",
            "--seeds",
            "2",
            "--workers",
            "4",
            "--records",
            &path_str,
        ]));
        assert_eq!(code, 0);
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        let scenarios = suites::find("smoke").unwrap().scenarios().len();
        assert_eq!(lines.len(), scenarios * 2, "one JSONL line per run");
        assert!(lines.iter().all(|l| l.starts_with("{\"scenario\":")));

        // A second invocation (different worker split) must write the
        // identical file: streaming preserves job order.
        let path2 = dir.join("records2.jsonl");
        let path2_str = path2.to_str().unwrap().to_string();
        let code = main(args(&[
            "run",
            "--suite",
            "smoke",
            "--seeds",
            "2",
            "--workers",
            "1",
            "--records",
            &path2_str,
        ]));
        assert_eq!(code, 0);
        assert_eq!(body, std::fs::read_to_string(&path2).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_suite_is_usage_error() {
        let code = main(args(&["run", "--suite", "no-such-suite"]));
        assert_eq!(code, 2);
    }
}

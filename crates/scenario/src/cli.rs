//! The `scenario` command-line tool.
//!
//! ```text
//! scenario list
//! scenario run --suite paper [--seeds N] [--workers N] [--shards N]
//!              [--out FILE] [--records FILE.jsonl] [--no-records]
//!              [--events FILE.jsonl] [--profile FILE.json]
//!              [--table METRIC]
//! scenario bench [--suite bench64] [--seeds N] [--workers N] [--shards N]
//!                [--out FILE] [--table METRIC]
//! scenario trace EVENTS.jsonl [--out trace.json]
//! ```
//!
//! `run` prints the suite's deterministic JSON summary to stdout (and
//! optionally a file): byte-identical across repeated invocations, worker
//! counts, shard counts and pool sizes. `--workers N` is a **global
//! thread budget**: the CLI builds one persistent
//! [`Runtime`](ga_simnet::runtime::Runtime) pool of N threads, and both
//! sweep-level parallelism (concurrent runs) and intra-run parallelism
//! (`--shards`) draw from it — never more than N threads total, enforced
//! by the pool rather than estimated. `--shards N` shards each run's
//! `Simulation::step` across N of those threads (absent: each scenario's
//! own setting applies; `--shards 1` forces serial); concurrent runs are
//! scaled down to `workers / shards` so the two levels share the budget —
//! only for suites whose scenarios actually step the simulator;
//! pure-computation suites keep the whole budget and the ignored flag is
//! noted on stderr. `--records FILE` streams one JSON line per run to
//! FILE as runs complete (stable job order), without holding the records
//! in memory. `--table METRIC` appends a cross-run convergence table
//! (one row per scenario/grid point: parameter values, pass rate, and
//! p50/p90/p99 of METRIC — `rounds` for rounds-to-stop) so E4-style
//! plots read straight off the CLI output. `bench` times a sweep and
//! records throughput — timing lives only in the bench output, never in
//! run summaries, so summaries stay reproducible.
//!
//! `--events FILE` switches the deterministic telemetry event plane on
//! for every run and streams one JSON line per retained event to FILE
//! (grouped per run, runs in stable job order): round boundaries,
//! per-message deliveries and drops with reasons, schedule firings,
//! corruption applications, scrambles, and the stabilization probe's
//! legality flips. The file is **byte-identical** across worker counts,
//! shard counts and pool sizes — it lives on the same deterministic plane
//! as the summary. `--profile FILE` writes wall-clock pool/step timing
//! (per-step latency histogram, merge/batch/task times) to FILE; timing
//! is the *other* plane — it never appears in summaries, records, or
//! event streams. `scenario trace` converts an `--events` JSONL file to
//! Chrome trace-event JSON loadable in Perfetto (`ui.perfetto.dev`) or
//! `chrome://tracing`: one process group per run, one track per
//! simulated process, round spans plus instant markers.
//!
//! Exit codes: 0 = every verdict passed, 2 = the suite ran but some
//! verdict failed (e.g. censored stabilize points — frontier charted,
//! tool healthy), 1 = real errors (usage, unknown suite, I/O).
//!
//! `scenario list` names every suite: `paper` (the e1–e8 experiment
//! ports), `authority` (the §3.3 distributed-authority plays — honest,
//! selfish-cluster, mute, churn, and a noise adversary placed per seed
//! by `PlacementStrategy::RandomF`), `stabilize` (the recovery frontier:
//! scheduled corruption over a loss × intensity × n grid; run it with
//! `--table rounds_to_stabilize` — censored points surface as failed
//! verdicts, so exit code 2 there means "frontier charted", not
//! "suite broken"), `examples`, `smoke` (the tier-1 gate), and the
//! `bench64`/`bench256` throughput workloads.

use std::io::Write;
use std::time::Instant;

use ga_simnet::runtime::Runtime;
use ga_simnet::sim::set_plan_cache;
use ga_simnet::telemetry::{ProfileData, Profiler, TelemetryConfig};
use ga_simnet::topology::{set_default_repr, AdjacencyRepr};

use crate::json::Json;
use crate::record::event_json;
use crate::suites;
use crate::sweep::{ScenarioSummary, SweepSummary};

/// Entry point; returns the process exit code (0 = all verdicts passed,
/// 2 = verdict failures, 1 = real errors: usage, unknown suite, I/O).
pub fn main(args: Vec<String>) -> i32 {
    match args.first().map(String::as_str) {
        Some("list") => {
            list();
            0
        }
        Some("run") => match Options::parse(&args[1..], "paper") {
            Ok(opts) => run(&opts),
            Err(err) => usage(&err),
        },
        Some("bench") => match Options::parse(&args[1..], "bench64") {
            Ok(opts) => bench(&opts),
            Err(err) => usage(&err),
        },
        Some("trace") => trace(&args[1..]),
        Some("--help") | Some("-h") | None => usage("expected a subcommand"),
        Some(other) => usage(&format!("unknown subcommand: {other}")),
    }
}

struct Options {
    suite: String,
    seeds: Option<u64>,
    workers: usize,
    /// `None` = not passed: each scenario keeps its own shard default.
    /// `Some(n)` (1 included, forcing serial) overrides every run.
    shards: Option<usize>,
    out: Option<String>,
    records: bool,
    record_sink: Option<String>,
    /// Events JSONL destination: switches the deterministic telemetry
    /// event plane on and streams one line per retained event.
    events: Option<String>,
    /// Profile JSON destination: wall-clock pool/step timing (the
    /// non-deterministic plane; never part of summaries or events).
    profile: Option<String>,
    /// Metric to render as a cross-run convergence table (`rounds` for
    /// rounds-to-stop).
    table: Option<String>,
    /// Forced adjacency representation: `None` keeps the size-based
    /// auto-selection, `Some` pins every topology built during the
    /// invocation to the dense bitmask or the pure-CSR path. Traces are
    /// identical either way; the knob exists so CI can prove it.
    repr: Option<AdjacencyRepr>,
    /// `false` disables shard-plan caching for every simulation built
    /// during the invocation. Caching never changes a trace; the knob
    /// exists so CI can prove it (cached vs uncached byte-identity).
    plan_cache: bool,
}

impl Options {
    fn parse(args: &[String], default_suite: &str) -> Result<Options, String> {
        let mut opts = Options {
            suite: default_suite.to_string(),
            seeds: None,
            workers: default_workers(),
            shards: None,
            out: None,
            records: true,
            record_sink: None,
            events: None,
            profile: None,
            table: None,
            repr: None,
            plan_cache: true,
        };
        let mut i = 0;
        while i < args.len() {
            let take = |i: usize| -> Result<&String, String> {
                args.get(i + 1)
                    .ok_or_else(|| format!("{} needs a value", args[i]))
            };
            match args[i].as_str() {
                "--suite" => {
                    opts.suite = take(i)?.clone();
                    i += 2;
                }
                "--seeds" => {
                    opts.seeds = Some(
                        take(i)?
                            .parse()
                            .map_err(|_| "--seeds needs an integer".to_string())?,
                    );
                    i += 2;
                }
                "--workers" => {
                    opts.workers = take(i)?
                        .parse()
                        .map_err(|_| "--workers needs an integer".to_string())?;
                    if opts.workers == 0 {
                        return Err("--workers must be positive".into());
                    }
                    i += 2;
                }
                "--shards" => {
                    let shards: usize = take(i)?
                        .parse()
                        .map_err(|_| "--shards needs an integer".to_string())?;
                    if shards == 0 {
                        return Err("--shards must be positive".into());
                    }
                    opts.shards = Some(shards);
                    i += 2;
                }
                "--out" => {
                    opts.out = Some(take(i)?.clone());
                    i += 2;
                }
                "--records" => {
                    opts.record_sink = Some(take(i)?.clone());
                    i += 2;
                }
                "--no-records" => {
                    opts.records = false;
                    i += 1;
                }
                "--events" => {
                    opts.events = Some(take(i)?.clone());
                    i += 2;
                }
                "--profile" => {
                    opts.profile = Some(take(i)?.clone());
                    i += 2;
                }
                "--table" => {
                    opts.table = Some(take(i)?.clone());
                    i += 2;
                }
                "--no-plan-cache" => {
                    opts.plan_cache = false;
                    i += 1;
                }
                "--repr" => {
                    opts.repr = Some(match take(i)?.as_str() {
                        "auto" => AdjacencyRepr::Auto,
                        "dense" => AdjacencyRepr::Dense,
                        "sparse" => AdjacencyRepr::Sparse,
                        other => {
                            return Err(format!(
                                "--repr must be auto, dense or sparse (got {other})"
                            ))
                        }
                    });
                    i += 2;
                }
                other => return Err(format!("unknown argument: {other}")),
            }
        }
        Ok(opts)
    }

    /// Sweep-level worker count under the global budget: `--workers` is
    /// the size of the one shared [`Runtime`] pool, and each concurrent
    /// run occupies `--shards` of it (runs × shards ≤ workers, with at
    /// least one run) — the remaining pool threads serve the runs' nested
    /// shard batches.
    ///
    /// Suites whose scenarios cannot shard (pure-computation ports) keep
    /// the full budget — carving it up would slow the sweep for nothing —
    /// and a warning flags the ignored `--shards`.
    fn sweep_workers(&self, suite: &suites::Suite) -> usize {
        let Some(shards) = self.shards else {
            return self.workers;
        };
        if shards <= 1 {
            return self.workers;
        }
        let shardable = suite.scenarios().iter().any(|s| s.supports_sharding());
        if !shardable {
            eprintln!(
                "note: suite `{}` has no simulator-backed scenarios; --shards {shards} is ignored",
                suite.name
            );
            return self.workers;
        }
        (self.workers / shards).max(1)
    }

    /// The shard hint handed to every run: 0 = unspecified (scenario
    /// defaults apply), any explicit `--shards` value otherwise.
    fn shard_hint(&self) -> usize {
        self.shards.unwrap_or(0)
    }
}

/// Worker default: the machine's parallelism, capped — sweeps are CPU
/// bound and runs are short, so more threads than cores only adds noise.
fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .clamp(1, 16)
}

fn usage(err: &str) -> i32 {
    eprintln!("error: {err}");
    eprintln!();
    eprintln!("usage: scenario <list | run | bench | trace> [options]");
    eprintln!("  list                      show every named suite");
    eprintln!("  run   --suite NAME        run a suite, print its JSON summary");
    eprintln!("        [--seeds N]         seeds per scenario (default: suite plan)");
    eprintln!("        [--workers N]       global thread budget, N >= 1 (default:");
    eprintln!("                            min(cores, 16)): one persistent worker pool");
    eprintln!("                            of N threads serves both concurrent runs and");
    eprintln!("                            each run's sharded step loop — never more");
    eprintln!("                            than N threads in total");
    eprintln!("        [--shards N]        pool threads per run's step loop (default:");
    eprintln!("                            each scenario's own setting; 1 forces serial;");
    eprintln!("                            for simulator suites, concurrent runs scale");
    eprintln!("                            to workers/shards inside the same budget)");
    eprintln!("        [--out FILE]        also write the summary to FILE");
    eprintln!("        [--records FILE]    stream one JSONL record per run to FILE");
    eprintln!("        [--no-records]      aggregates only, omit per-run records");
    eprintln!("        [--events FILE]     enable the deterministic event plane and");
    eprintln!("                            stream one JSONL event per line to FILE");
    eprintln!("                            (byte-identical at any workers/shards/pool)");
    eprintln!("        [--profile FILE]    write wall-clock pool/step timing JSON to");
    eprintln!("                            FILE (never folded into summaries/events)");
    eprintln!("        [--table METRIC]    append a convergence-vs-param table of METRIC");
    eprintln!("                            ('rounds' for rounds-to-stop percentiles)");
    eprintln!("        [--repr MODE]       force the adjacency representation for every");
    eprintln!("                            topology: auto (size-based, default), dense");
    eprintln!("                            (bitmask) or sparse (pure CSR); traces are");
    eprintln!("                            byte-identical across modes");
    eprintln!("        [--no-plan-cache]   recompute the shard plan every round instead");
    eprintln!("                            of reusing it when the active set and topology");
    eprintln!("                            are unchanged; traces are byte-identical");
    eprintln!("                            either way");
    eprintln!("  bench [--suite NAME]      time a sweep, write throughput JSON");
    eprintln!("        [--seeds N] [--workers N] [--shards N] [--table METRIC]");
    eprintln!("        [--repr MODE] [--no-plan-cache]  as for run");
    eprintln!("        [--out FILE (default BENCH_scenarios.json)]");
    eprintln!("  trace EVENTS.jsonl        convert an --events file to Chrome trace-event");
    eprintln!("        [--out FILE]        JSON (Perfetto/chrome://tracing); stdout");
    eprintln!("                            unless --out is given");
    eprintln!();
    eprintln!("exit codes: 0 = all verdicts passed, 2 = verdict failures, 1 = errors");
    1
}

fn list() {
    println!("available suites:");
    for suite in suites::all() {
        let n = suite.scenarios().len();
        println!(
            "  {:<10} {:>2} scenarios × {} seeds — {}",
            suite.name, n, suite.default_seeds, suite.description
        );
        for scenario in suite.scenarios() {
            println!("             - {}", scenario.name());
        }
    }
}

fn run(opts: &Options) -> i32 {
    let Some(suite) = suites::find(&opts.suite) else {
        return usage(&format!(
            "unknown suite: {} (try `scenario list`)",
            opts.suite
        ));
    };
    if let Some(repr) = opts.repr {
        set_default_repr(repr);
    }
    set_plan_cache(opts.plan_cache);
    // The one pool behind the whole invocation: concurrent runs and their
    // sharded step loops all draw from these `--workers` threads.
    let runtime = Runtime::new(opts.workers);
    // Timing plane: attach a profiler to the pool so batch/task/step wall
    // clock accumulates while the sweep runs. Snapshotted to --profile
    // after the sweep; never folded into the summary.
    let profiler = opts.profile.as_ref().map(|_| Profiler::new());
    if let Some(profiler) = &profiler {
        runtime.attach_profiler(profiler.clone());
    }
    // Deterministic plane: --events switches every run's event sink on.
    let telemetry = opts.events.as_ref().map(|_| TelemetryConfig::default());
    let mut failures: Vec<String> = Vec::new();
    let streaming = opts.record_sink.is_some() || opts.events.is_some();
    let summary = if streaming {
        // Stream one JSONL line per run record (and per event) as runs
        // complete, in stable job order; records are dropped after
        // writing, so the sweep's memory stays bounded regardless of
        // seed count.
        let open = |path: &Option<String>| -> Result<
            Option<(String, std::io::BufWriter<std::fs::File>)>,
            i32,
        > {
            let Some(path) = path else { return Ok(None) };
            match std::fs::File::create(path) {
                Ok(file) => Ok(Some((path.clone(), std::io::BufWriter::new(file)))),
                Err(err) => {
                    eprintln!("error: cannot create {path}: {err}");
                    Err(1)
                }
            }
        };
        let mut records_out = match open(&opts.record_sink) {
            Ok(out) => out,
            Err(code) => return code,
        };
        let mut events_out = match open(&opts.events) {
            Ok(out) => out,
            Err(code) => return code,
        };
        let mut io_err: Option<(String, std::io::Error)> = None;
        let mut sink = |_i: usize, record: &crate::record::RunRecord| {
            if !record.verdict.passed() {
                failures.push(format!("{} (seed {})", record.scenario, record.seed));
            }
            if let (Some((path, out)), None) = (&mut records_out, &io_err) {
                if let Err(err) = writeln!(out, "{}", record.to_json().render()) {
                    io_err = Some((path.clone(), err));
                }
            }
            if let (Some((path, out)), None) = (&mut events_out, &io_err) {
                for event in &record.events {
                    let line = event_json(&record.scenario, record.seed, event).render();
                    if let Err(err) = writeln!(out, "{line}") {
                        io_err = Some((path.clone(), err));
                        break;
                    }
                }
            }
        };
        let summary = suite.run_stream_on(
            &runtime,
            opts.seeds,
            opts.sweep_workers(&suite),
            opts.shard_hint(),
            telemetry.as_ref(),
            &mut sink,
        );
        for sink_out in [&mut records_out, &mut events_out].into_iter().flatten() {
            let (path, out) = sink_out;
            if io_err.is_none() {
                if let Err(err) = out.flush() {
                    io_err = Some((path.clone(), err));
                }
            }
        }
        if let Some((path, err)) = io_err {
            eprintln!("error: cannot write {path}: {err}");
            return 1;
        }
        summary
    } else {
        let summary = suite.run_on(
            &runtime,
            opts.seeds,
            opts.sweep_workers(&suite),
            opts.shard_hint(),
        );
        failures = summary
            .records
            .iter()
            .filter(|r| !r.verdict.passed())
            .map(|r| format!("{} (seed {})", r.scenario, r.seed))
            .collect();
        summary
    };
    // A streamed sweep already wrote the records; the summary embeds them
    // only when they were retained and not suppressed.
    let json = summary
        .to_json(opts.records && opts.record_sink.is_none())
        .render();
    println!("{json}");
    if let Some(path) = &opts.out {
        if let Err(err) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("error: cannot write {path}: {err}");
            return 1;
        }
    }
    if let Some(path) = &opts.profile {
        let data = profiler.as_ref().expect("profiler built with --profile");
        let json = profile_json(&data.snapshot()).render();
        if let Err(err) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("error: cannot write {path}: {err}");
            return 1;
        }
        eprintln!("wrote {path}");
    }
    if let Some(metric) = &opts.table {
        print!("{}", render_table(&summary, metric));
    }
    if summary.all_passed() {
        0
    } else {
        eprintln!("verdict failures: {}", failures.join(", "));
        2
    }
}

/// Serializes a [`ProfileData`] snapshot — the timing plane's output
/// file. Wall-clock derived, so (unlike everything else the CLI writes)
/// two invocations of the same sweep produce *different* profiles.
fn profile_json(data: &ProfileData) -> Json {
    Json::obj(vec![
        ("steps", Json::Uint(data.steps)),
        ("step_ns", Json::Uint(data.step_ns)),
        (
            "step_ns_mean",
            Json::Num(if data.steps == 0 {
                0.0
            } else {
                data.step_ns as f64 / data.steps as f64
            }),
        ),
        (
            "step_hist_log2_ns",
            Json::Arr(data.step_hist.iter().map(|&c| Json::Uint(c)).collect()),
        ),
        ("merge_ns", Json::Uint(data.merge_ns)),
        ("batches", Json::Uint(data.batches)),
        ("batch_ns", Json::Uint(data.batch_ns)),
        ("tasks", Json::Uint(data.tasks)),
        ("task_queue_ns", Json::Uint(data.task_queue_ns)),
        ("task_busy_ns", Json::Uint(data.task_busy_ns)),
    ])
}

fn bench(opts: &Options) -> i32 {
    let Some(suite) = suites::find(&opts.suite) else {
        return usage(&format!(
            "unknown suite: {} (try `scenario list`)",
            opts.suite
        ));
    };
    if let Some(repr) = opts.repr {
        set_default_repr(repr);
    }
    set_plan_cache(opts.plan_cache);
    // Resolve the budget split once: it also prints the ignored---shards
    // note, and the bench region must not re-trigger it.
    let workers = opts.sweep_workers(&suite);
    // Build the pool *outside* the timed region: its spawn cost is paid
    // once per process, which is the steady state benches should price.
    let runtime = Runtime::new(opts.workers);
    let start = Instant::now();
    let summary = suite.run_on(&runtime, opts.seeds, workers, opts.shard_hint());
    let elapsed = start.elapsed().as_secs_f64();
    let runs = summary.runs();
    // `workers` records the *effective* sweep thread count (the --workers
    // budget divided by --shards), so runs_per_sec comparisons across
    // snapshots attribute throughput to the parallelism actually used.
    let json = Json::obj(vec![
        ("suite", Json::str(suite.name)),
        ("runs", Json::Uint(runs)),
        ("workers", Json::Uint(workers as u64)),
        ("shards", Json::Uint(opts.shards.unwrap_or(1) as u64)),
        ("elapsed_s", Json::Num(elapsed)),
        ("runs_per_sec", Json::Num(runs as f64 / elapsed.max(1e-9))),
        ("all_passed", Json::Bool(summary.all_passed())),
    ])
    .render();
    println!("{json}");
    if let Some(metric) = &opts.table {
        print!("{}", render_table(&summary, metric));
    }
    let path = opts.out.as_deref().unwrap_or("BENCH_scenarios.json");
    if let Err(err) = std::fs::write(path, format!("{json}\n")) {
        eprintln!("error: cannot write {path}: {err}");
        return 1;
    }
    eprintln!("wrote {path}");
    if summary.all_passed() {
        0
    } else {
        2
    }
}

/// `scenario trace EVENTS.jsonl [--out FILE]` — converts an `--events`
/// JSONL stream to Chrome trace-event JSON (the format Perfetto and
/// `chrome://tracing` load). Each `(scenario, seed)` run becomes a
/// process group; inside it, track 0 carries the run-level timeline
/// (round spans, schedule firings, corruption, legality flips) and track
/// `p + 1` carries process `p`'s deliveries, drops and scrambles as
/// instant markers. Timestamps are synthetic — `round × 1000 µs` — since
/// the simulator's rounds are logical time.
fn trace(args: &[String]) -> i32 {
    let mut input: Option<String> = None;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                let Some(path) = args.get(i + 1) else {
                    return usage("--out needs a value");
                };
                out = Some(path.clone());
                i += 2;
            }
            flag if flag.starts_with('-') => {
                return usage(&format!("unknown argument: {flag}"));
            }
            path => {
                if input.is_some() {
                    return usage("trace takes exactly one events file");
                }
                input = Some(path.to_string());
                i += 1;
            }
        }
    }
    let Some(input) = input else {
        return usage("trace needs an events JSONL file (from `scenario run --events`)");
    };
    let body = match std::fs::read_to_string(&input) {
        Ok(body) => body,
        Err(err) => {
            eprintln!("error: cannot read {input}: {err}");
            return 1;
        }
    };
    let (json, count) = match chrome_trace(&body) {
        Ok(converted) => converted,
        Err(err) => {
            eprintln!("error: {input}: {err}");
            return 1;
        }
    };
    let rendered = json.render();
    match &out {
        Some(path) => {
            if let Err(err) = std::fs::write(path, format!("{rendered}\n")) {
                eprintln!("error: cannot write {path}: {err}");
                return 1;
            }
            eprintln!("wrote {path} ({count} trace events)");
        }
        None => println!("{rendered}"),
    }
    0
}

/// Microseconds per simulated round on the synthetic trace timeline.
const TRACE_ROUND_US: u64 = 1000;

/// Pure conversion behind [`trace`]: events JSONL in, Chrome trace-event
/// JSON plus the emitted trace-event count out. Deterministic — the
/// output is a pure function of the input bytes, so byte-identical event
/// files convert to byte-identical traces.
fn chrome_trace(body: &str) -> Result<(Json, usize), String> {
    // (scenario, seed) → pid, in first-appearance order.
    let mut runs: Vec<(String, u64)> = Vec::new();
    // (pid, tid) pairs already given a thread_name metadata record.
    let mut named_tracks: Vec<(u64, u64)> = Vec::new();
    let mut events: Vec<Json> = Vec::new();
    let mut meta: Vec<Json> = Vec::new();

    let instant = |name: String, ts: u64, pid: u64, tid: u64, args: Vec<(&str, Json)>| {
        let mut fields = vec![
            ("name", Json::Str(name)),
            ("ph", Json::str("i")),
            ("s", Json::str("t")),
            ("ts", Json::Uint(ts)),
            ("pid", Json::Uint(pid)),
            ("tid", Json::Uint(tid)),
        ];
        if !args.is_empty() {
            fields.push(("args", Json::obj(args)));
        }
        Json::obj(fields)
    };

    for (lineno, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = Json::parse(line).map_err(|err| format!("line {}: {err}", lineno + 1))?;
        let field = |key: &str| {
            event
                .get(key)
                .ok_or_else(|| format!("line {}: missing `{key}`", lineno + 1))
        };
        let scenario = field("scenario")?
            .as_str()
            .ok_or_else(|| format!("line {}: `scenario` is not a string", lineno + 1))?;
        let seed = field("seed")?
            .as_u64()
            .ok_or_else(|| format!("line {}: `seed` is not an integer", lineno + 1))?;
        let kind = field("kind")?
            .as_str()
            .ok_or_else(|| format!("line {}: `kind` is not a string", lineno + 1))?;
        let round = field("round")?
            .as_u64()
            .ok_or_else(|| format!("line {}: `round` is not an integer", lineno + 1))?;

        let run = (scenario.to_string(), seed);
        let pid = match runs.iter().position(|r| *r == run) {
            Some(index) => index as u64 + 1,
            None => {
                runs.push(run);
                let pid = runs.len() as u64;
                meta.push(Json::obj(vec![
                    ("name", Json::str("process_name")),
                    ("ph", Json::str("M")),
                    ("pid", Json::Uint(pid)),
                    (
                        "args",
                        Json::obj(vec![("name", Json::str(format!("{scenario} seed={seed}")))]),
                    ),
                ]));
                pid
            }
        };
        let mut track = |tid: u64| {
            if !named_tracks.contains(&(pid, tid)) {
                named_tracks.push((pid, tid));
                let name = if tid == 0 {
                    "run".to_string()
                } else {
                    format!("process {}", tid - 1)
                };
                meta.push(Json::obj(vec![
                    ("name", Json::str("thread_name")),
                    ("ph", Json::str("M")),
                    ("pid", Json::Uint(pid)),
                    ("tid", Json::Uint(tid)),
                    ("args", Json::obj(vec![("name", Json::Str(name))])),
                ]));
            }
            tid
        };

        let start = round * TRACE_ROUND_US;
        let mid = start + TRACE_ROUND_US / 2;
        let u64_field = |key: &str| -> Result<u64, String> {
            field(key)?
                .as_u64()
                .ok_or_else(|| format!("line {}: `{key}` is not an integer", lineno + 1))
        };
        match kind {
            "round_start" => {} // The span is emitted at round_end.
            "round_end" => {
                let delivered = u64_field("delivered")?;
                events.push(Json::obj(vec![
                    ("name", Json::str(format!("round {round}"))),
                    ("ph", Json::str("X")),
                    ("ts", Json::Uint(start)),
                    ("dur", Json::Uint(TRACE_ROUND_US)),
                    ("pid", Json::Uint(pid)),
                    ("tid", Json::Uint(track(0))),
                    (
                        "args",
                        Json::obj(vec![("delivered", Json::Uint(delivered))]),
                    ),
                ]));
            }
            "delivered" => {
                let (from, to) = (u64_field("from")?, u64_field("to")?);
                events.push(instant(
                    format!("recv {from}→{to}"),
                    mid,
                    pid,
                    track(to + 1),
                    vec![
                        ("from", Json::Uint(from)),
                        ("bytes", Json::Uint(u64_field("bytes")?)),
                    ],
                ));
            }
            "dropped" => {
                let (from, to) = (u64_field("from")?, u64_field("to")?);
                let reason = field("reason")?
                    .as_str()
                    .ok_or_else(|| format!("line {}: `reason` is not a string", lineno + 1))?
                    .to_string();
                events.push(instant(
                    format!("drop {from}→{to} ({reason})"),
                    mid,
                    pid,
                    track(to + 1),
                    vec![("reason", Json::Str(reason))],
                ));
            }
            "schedule_fired" => {
                let action = field("action")?
                    .as_str()
                    .ok_or_else(|| format!("line {}: `action` is not a string", lineno + 1))?;
                events.push(instant(
                    format!("schedule: {action}"),
                    start,
                    pid,
                    track(0),
                    Vec::new(),
                ));
            }
            "corruption_applied" => {
                events.push(instant(
                    "corruption".to_string(),
                    start,
                    pid,
                    track(0),
                    vec![
                        ("targets", Json::Uint(u64_field("targets")?)),
                        ("dropped", Json::Uint(u64_field("dropped")?)),
                    ],
                ));
            }
            "scrambled" => {
                let id = u64_field("id")?;
                events.push(instant(
                    "scrambled".to_string(),
                    mid,
                    pid,
                    track(id + 1),
                    Vec::new(),
                ));
            }
            "legality_flip" => {
                let legal = field("legal")?
                    .as_bool()
                    .ok_or_else(|| format!("line {}: `legal` is not a bool", lineno + 1))?;
                events.push(instant(
                    if legal { "legal again" } else { "illegal" }.to_string(),
                    mid,
                    pid,
                    track(0),
                    vec![("legal", Json::Bool(legal))],
                ));
            }
            other => return Err(format!("line {}: unknown event kind `{other}`", lineno + 1)),
        }
    }

    let count = events.len();
    let mut all = meta;
    all.extend(events);
    let trace = Json::obj(vec![
        ("traceEvents", Json::Arr(all)),
        ("displayTimeUnit", Json::str("ms")),
    ]);
    Ok((trace, count))
}

/// Renders the cross-run convergence table: one row per scenario (i.e.
/// per grid point), with a column per swept parameter axis, the pass
/// ("convergence") rate, and the p50/p90/p99 of `metric` — `rounds`
/// selects the rounds-to-stop percentiles the summary always carries;
/// any other name selects that probe metric (absent values render `-`).
/// Rows keep the summary's deterministic first-appearance order, so the
/// table is as byte-stable as the JSON above it.
fn render_table(summary: &SweepSummary, metric: &str) -> String {
    let mut axes: Vec<&str> = Vec::new();
    for s in &summary.scenarios {
        for (name, _) in &s.params {
            if !axes.contains(&name.as_str()) {
                axes.push(name);
            }
        }
    }
    let percentiles = |s: &ScenarioSummary| -> Option<(f64, f64, f64)> {
        if metric == "rounds" {
            Some((s.rounds_p50, s.rounds_p90, s.rounds_p99))
        } else {
            s.metric(metric).map(|m| (m.p50, m.p90, m.p99))
        }
    };

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut header = vec!["scenario".to_string()];
    header.extend(axes.iter().map(|a| a.to_string()));
    for col in ["runs", "rate", "p50", "p90", "p99"] {
        header.push(col.to_string());
    }
    rows.push(header);
    for s in &summary.scenarios {
        let mut row = vec![s.name.clone()];
        for axis in &axes {
            row.push(
                s.params
                    .iter()
                    .find(|(n, _)| n == axis)
                    .map(|&(_, v)| v.to_string())
                    .unwrap_or_else(|| "-".to_string()),
            );
        }
        row.push(s.runs.to_string());
        let rate = if s.runs == 0 {
            0.0
        } else {
            s.passed as f64 / s.runs as f64
        };
        row.push(format!("{rate:.2}"));
        match percentiles(s) {
            Some((p50, p90, p99)) => {
                // f64 Display renders integral values without a trailing
                // `.0` (`40`, not `40.0`), so round counts read cleanly.
                row.extend([p50.to_string(), p90.to_string(), p99.to_string()]);
            }
            None => row.extend(["-".to_string(), "-".to_string(), "-".to_string()]),
        }
        rows.push(row);
    }

    let columns = rows[0].len();
    let widths: Vec<usize> = (0..columns)
        .map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0))
        .collect();
    let mut out = format!("table: {metric} (p50/p90/p99) by scenario\n");
    for row in &rows {
        let mut line = String::new();
        for (c, cell) in row.iter().enumerate() {
            if c > 0 {
                line.push_str("  ");
            }
            if c == 0 {
                line.push_str(&format!("{cell:<width$}", width = widths[c]));
            } else {
                line.push_str(&format!("{cell:>width$}", width = widths[c]));
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parse_full_option_set() {
        let opts = Options::parse(
            &args(&[
                "--suite",
                "smoke",
                "--seeds",
                "5",
                "--workers",
                "3",
                "--shards",
                "2",
                "--out",
                "x.json",
                "--records",
                "runs.jsonl",
                "--no-records",
                "--no-plan-cache",
            ]),
            "paper",
        )
        .unwrap();
        assert_eq!(opts.suite, "smoke");
        assert_eq!(opts.seeds, Some(5));
        assert_eq!(opts.workers, 3);
        assert_eq!(opts.shards, Some(2));
        assert_eq!(opts.out.as_deref(), Some("x.json"));
        assert_eq!(opts.record_sink.as_deref(), Some("runs.jsonl"));
        assert!(!opts.records);
        assert!(!opts.plan_cache);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(Options::parse(&args(&["--seeds"]), "paper").is_err());
        assert!(Options::parse(&args(&["--workers", "0"]), "paper").is_err());
        assert!(Options::parse(&args(&["--shards", "0"]), "paper").is_err());
        assert!(Options::parse(&args(&["--frobnicate"]), "paper").is_err());
    }

    #[test]
    fn defaults_follow_subcommand() {
        let opts = Options::parse(&[], "bench64").unwrap();
        assert_eq!(opts.suite, "bench64");
        assert_eq!(opts.seeds, None);
        assert!(opts.records);
        assert!(opts.workers >= 1);
        assert_eq!(opts.shards, None);
        assert!(opts.record_sink.is_none());
        assert!(opts.plan_cache);
    }

    #[test]
    fn worker_budget_is_divided_by_shards_for_shardable_suites() {
        // smoke is simulator-backed (shards engage); paper is pure
        // computation (the budget split would be pure loss).
        let smoke = suites::find("smoke").unwrap();
        let paper = suites::find("paper").unwrap();
        let mut opts =
            Options::parse(&args(&["--workers", "8", "--shards", "4"]), "paper").unwrap();
        assert_eq!(opts.shard_hint(), 4);
        assert_eq!(opts.sweep_workers(&smoke), 2);
        assert_eq!(
            opts.sweep_workers(&paper),
            8,
            "non-sharding suites keep the whole budget"
        );
        opts.shards = Some(16);
        assert_eq!(
            opts.sweep_workers(&smoke),
            1,
            "budget never starves the sweep"
        );
        opts.shards = Some(3);
        assert_eq!(
            opts.sweep_workers(&smoke),
            2,
            "integer division rounds down"
        );
        opts.shards = Some(1);
        assert_eq!(
            opts.sweep_workers(&smoke),
            8,
            "explicit serial keeps the whole budget"
        );
        opts.shards = None;
        assert_eq!(
            opts.shard_hint(),
            0,
            "absent flag defers to scenario defaults"
        );
        assert_eq!(opts.sweep_workers(&paper), 8);
    }

    #[test]
    fn run_streams_jsonl_records_in_stable_order() {
        let dir = std::env::temp_dir().join("ga-scenario-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("records.jsonl");
        let path_str = path.to_str().unwrap().to_string();

        let code = main(args(&[
            "run",
            "--suite",
            "smoke",
            "--seeds",
            "2",
            "--workers",
            "4",
            "--records",
            &path_str,
        ]));
        assert_eq!(code, 0);
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        let scenarios = suites::find("smoke").unwrap().scenarios().len();
        assert_eq!(lines.len(), scenarios * 2, "one JSONL line per run");
        assert!(lines.iter().all(|l| l.starts_with("{\"scenario\":")));

        // A second invocation (different worker split) must write the
        // identical file: streaming preserves job order.
        let path2 = dir.join("records2.jsonl");
        let path2_str = path2.to_str().unwrap().to_string();
        let code = main(args(&[
            "run",
            "--suite",
            "smoke",
            "--seeds",
            "2",
            "--workers",
            "1",
            "--records",
            &path2_str,
        ]));
        assert_eq!(code, 0);
        assert_eq!(body, std::fs::read_to_string(&path2).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn events_profile_and_trace_round_trip() {
        let dir = std::env::temp_dir().join("ga-scenario-cli-events-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = |name: &str| dir.join(name).to_str().unwrap().to_string();
        let (events, events2, profile, trace) = (
            path("events.jsonl"),
            path("events2.jsonl"),
            path("prof.json"),
            path("trace.json"),
        );

        let code = main(args(&[
            "run",
            "--suite",
            "smoke",
            "--seeds",
            "1",
            "--workers",
            "4",
            "--shards",
            "2",
            "--no-records",
            "--events",
            &events,
            "--profile",
            &profile,
        ]));
        assert_eq!(code, 0);
        let body = std::fs::read_to_string(&events).unwrap();
        assert!(!body.is_empty(), "smoke runs emit telemetry events");
        assert!(body.lines().all(|l| l.starts_with("{\"scenario\":")));

        // A serial invocation writes the byte-identical event stream.
        let code = main(args(&[
            "run",
            "--suite",
            "smoke",
            "--seeds",
            "1",
            "--workers",
            "1",
            "--no-records",
            "--events",
            &events2,
        ]));
        assert_eq!(code, 0);
        assert_eq!(body, std::fs::read_to_string(&events2).unwrap());

        // The profile is valid JSON on the timing plane: shape asserted,
        // values wall-clock.
        let prof = Json::parse(&std::fs::read_to_string(&profile).unwrap()).unwrap();
        assert!(prof.get("steps").and_then(Json::as_u64).unwrap() > 0);
        assert!(prof.get("tasks").and_then(Json::as_u64).unwrap() > 0);
        assert_eq!(
            prof.get("step_hist_log2_ns")
                .and_then(Json::as_arr)
                .unwrap()
                .len(),
            ga_simnet::telemetry::STEP_HIST_BUCKETS
        );

        // `trace` converts the stream to non-empty Chrome trace JSON.
        let code = main(args(&["trace", &events, "--out", &trace]));
        assert_eq!(code, 0);
        let converted = Json::parse(&std::fs::read_to_string(&trace).unwrap()).unwrap();
        let trace_events = converted.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert!(
            trace_events.len() > body.lines().count() / 2,
            "spans + instants cover the stream"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_rejects_missing_and_malformed_input() {
        assert_eq!(main(args(&["trace"])), 1, "no input file is an error");
        let dir = std::env::temp_dir().join("ga-scenario-cli-trace-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.jsonl");
        std::fs::write(&bad, "not json\n").unwrap();
        let code = main(args(&["trace", bad.to_str().unwrap()]));
        assert_eq!(code, 1, "malformed events are an error, not a verdict");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_suite_is_usage_error() {
        // Usage/selection mistakes are *errors* (1); exit 2 is reserved
        // for verdict failures on an otherwise healthy invocation.
        let code = main(args(&["run", "--suite", "no-such-suite"]));
        assert_eq!(code, 1);
    }

    #[test]
    fn parse_table_option() {
        let opts = Options::parse(&args(&["--table", "rounds"]), "paper").unwrap();
        assert_eq!(opts.table.as_deref(), Some("rounds"));
        assert!(Options::parse(&args(&["--table"]), "paper").is_err());
        assert!(Options::parse(&[], "paper").unwrap().table.is_none());
    }

    #[test]
    fn table_reads_params_rate_and_percentiles_off_the_summary() {
        use crate::record::{RunRecord, Verdict};
        // Two grid points over p, three seeds each; seeds diverge in
        // rounds, p=0.3 fails one verdict, and only p=0.1 emits "conv".
        let mut records = Vec::new();
        for (p, fail_seed) in [(0.1, None), (0.3, Some(2))] {
            for seed in 0..3u64 {
                let mut r = RunRecord::new(format!("lossy[p={p}]"), seed);
                r.params = vec![("p".to_string(), p)];
                r.rounds = 10 + seed;
                if fail_seed == Some(seed) {
                    r.verdict = Verdict::Fail("x".into());
                }
                if p == 0.1 {
                    r.metric("conv", 5.0 + seed as f64);
                }
                records.push(r);
            }
        }
        let summary = SweepSummary::new("t", records);

        let rounds = render_table(&summary, "rounds");
        let lines: Vec<&str> = rounds.lines().collect();
        assert_eq!(lines[0], "table: rounds (p50/p90/p99) by scenario");
        assert!(lines[1].starts_with("scenario"));
        assert!(lines[1].contains("p  runs  rate  p50  p90  p99"));
        // p=0.1: all pass, rounds 10/11/12 → p50 11, p90/p99 12.
        assert!(lines[2].contains("lossy[p=0.1]"));
        assert!(lines[2].contains("0.1"));
        assert!(
            lines[2].ends_with("3  1.00   11   12   12"),
            "{:?}",
            lines[2]
        );
        // p=0.3: one failed verdict → rate 0.67.
        assert!(lines[3].contains("0.67"));

        // A probe metric present only on p=0.1: the other row renders '-'.
        let conv = render_table(&summary, "conv");
        let lines: Vec<&str> = conv.lines().collect();
        assert!(
            lines[2].ends_with("3  1.00    6    7    7"),
            "{:?}",
            lines[2]
        );
        assert!(lines[3].ends_with("-    -    -"), "{:?}", lines[3]);
    }
}

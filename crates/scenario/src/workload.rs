//! Reference workloads for simulator-backed scenarios.
//!
//! Scenario suites need simple, inspectable protocols whose correct
//! behaviour is easy to state as a verdict predicate: [`Flood`] measures
//! raw connectivity/throughput, [`MaxGossip`] is a tiny self-stabilizing
//! aggregation whose fixpoint (everyone knows the global maximum) survives
//! transient faults — the right probe for churn and fault-injection specs.
//! [`Relay`] is the quiescent counterpart: one token wavefront crosses the
//! graph and everything else sleeps, so large sparse systems run rounds in
//! O(wavefront) instead of O(n) under quiescence-aware stepping.

use ga_simnet::prelude::*;
use rand::rngs::StdRng;
use rand::RngCore;

/// Broadcasts one fixed payload per round and counts what it hears.
#[derive(Debug, Default)]
pub struct Flood {
    /// Messages received over the whole run.
    pub heard: usize,
}

impl Process for Flood {
    fn on_pulse(&mut self, ctx: &mut Context<'_>) {
        self.heard += ctx.inbox().len();
        ctx.broadcast(vec![0xF1]);
    }

    fn scramble(&mut self, rng: &mut StdRng) {
        // The counter is the only volatile state; a transient fault leaves
        // it arbitrary, so throughput verdicts cannot trust pre-fault tallies.
        self.heard = (rng.next_u64() % 1024) as usize;
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "flood"
    }
}

/// Self-stabilizing max aggregation: every round, broadcast the largest
/// value seen; adopt any larger value heard.
///
/// From a clean start the fixpoint is `max(own values) = n - 1 + base`
/// everywhere after `diameter` rounds. A transient fault may scramble
/// `current` arbitrarily — including *above* the true maximum, which honest
/// gossip then propagates; the verdict for fault scenarios is therefore
/// *agreement* (all honest processors converge to one value), the
/// self-stabilization claim, not a specific value.
#[derive(Debug)]
pub struct MaxGossip {
    /// This processor's immutable contribution.
    pub own: u64,
    /// The largest value seen so far.
    pub current: u64,
}

impl MaxGossip {
    /// A gossiper contributing `own`.
    pub fn new(own: u64) -> MaxGossip {
        MaxGossip { own, current: own }
    }

    /// Wire encoding (8-byte little endian).
    pub fn encode(v: u64) -> Vec<u8> {
        v.to_le_bytes().to_vec()
    }

    fn decode(bytes: &[u8]) -> Option<u64> {
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }
}

impl Process for MaxGossip {
    fn on_pulse(&mut self, ctx: &mut Context<'_>) {
        for m in ctx.inbox() {
            if let Some(v) = Self::decode(m.bytes()) {
                self.current = self.current.max(v);
            }
        }
        // `own` is immutable ROM state, so recovery re-seeds from it.
        self.current = self.current.max(self.own);
        ctx.broadcast(Self::encode(self.current));
    }

    fn scramble(&mut self, rng: &mut StdRng) {
        // Transient faults corrupt the volatile register, not the identity.
        self.current = rng.next_u64() % (1 << 20);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "max-gossip"
    }
}

/// Single-shot token relay: the source broadcasts one token, every other
/// process forwards it once on first receipt and then goes quiet.
///
/// This is the reference *quiescent* workload: [`Process::always_active`]
/// returns `true` only while the process still owes a send (the unfired
/// source), so after the wavefront passes, a round's active set is just the
/// frontier — on a ring, two processes out of n. On a pulse with an empty
/// inbox an unfired relay would do nothing observable and a fired one never
/// sends again, which is exactly the opt-out contract.
///
/// `hops` records the token's travel distance, so the verdict "every
/// process fired and `max(hops)` equals the source's eccentricity" checks
/// that skipping idle processes lost no deliveries.
#[derive(Debug, Default)]
pub struct Relay {
    /// Whether this process originates the token at round 0.
    pub source: bool,
    /// Whether the one-shot send has happened.
    pub fired: bool,
    /// Hop count at which the token arrived (0 for the source).
    pub hops: u64,
}

impl Relay {
    /// The designated source process.
    pub fn source() -> Relay {
        Relay {
            source: true,
            ..Relay::default()
        }
    }
}

impl Process for Relay {
    fn on_pulse(&mut self, ctx: &mut Context<'_>) {
        if self.fired {
            // Late duplicates from the opposite ring direction land here;
            // absorbing them silently keeps the wavefront single-shot.
            return;
        }
        if self.source {
            self.fired = true;
            ctx.broadcast(MaxGossip::encode(0));
            return;
        }
        let arrived = ctx
            .inbox()
            .iter()
            .filter_map(|m| MaxGossip::decode(m.bytes()))
            .min();
        if let Some(hops) = arrived {
            self.fired = true;
            self.hops = hops + 1;
            ctx.broadcast(MaxGossip::encode(self.hops));
        }
    }

    fn always_active(&self) -> bool {
        // Only the unfired source owes a spontaneous step; everyone else
        // is woken by the token itself (or a fault intervention).
        self.source && !self.fired
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "relay"
    }
}

/// How many of the listed processors have seen the token.
pub fn relay_fired(sim: &Simulation, ids: impl IntoIterator<Item = usize>) -> usize {
    ids.into_iter()
        .filter(|&id| {
            sim.process_as::<Relay>(ProcessId(id))
                .is_some_and(|p| p.fired)
        })
        .count()
}

/// Whether all listed processors currently agree on one gossip value.
pub fn gossip_agreed(sim: &Simulation, ids: impl IntoIterator<Item = usize>) -> bool {
    let mut value = None;
    for id in ids {
        let Some(p) = sim.process_as::<MaxGossip>(ProcessId(id)) else {
            return false;
        };
        if *value.get_or_insert(p.current) != p.current {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_propagates_across_a_ring() {
        let n = 7;
        let mut sim = Simulation::builder(Topology::ring(n))
            .build_with(|id| Box::new(MaxGossip::new(id.index() as u64)) as Box<dyn Process>);
        // Ring diameter is floor(n/2); one extra round for the final adopt.
        sim.run(n as u64 / 2 + 2);
        assert!(gossip_agreed(&sim, 0..n));
        assert_eq!(
            sim.process_as::<MaxGossip>(ProcessId(0)).unwrap().current,
            (n - 1) as u64
        );
    }

    #[test]
    fn recovers_from_total_scramble() {
        let n = 5;
        let mut sim = Simulation::builder(Topology::complete(n))
            .build_with(|id| Box::new(MaxGossip::new(id.index() as u64)) as Box<dyn Process>);
        sim.run(3);
        sim.inject(&TransientFault::total(n, 0xBEEF));
        sim.run(4);
        assert!(gossip_agreed(&sim, 0..n), "agreement restored after fault");
    }

    #[test]
    fn flood_and_gossip_scrambles_change_observable_state() {
        use ga_simnet::rng::process_rng;
        let mut flood = Flood { heard: usize::MAX };
        let mut rng = process_rng(2, ProcessId(0), Round(1));
        Process::scramble(&mut flood, &mut rng);
        assert_ne!(flood.heard, usize::MAX);

        let mut gossip = MaxGossip::new(3);
        let mut rng = process_rng(2, ProcessId(0), Round(1));
        Process::scramble(&mut gossip, &mut rng);
        assert_ne!(gossip.current, 3, "volatile register corrupted");
        assert_eq!(gossip.own, 3, "identity is ROM");
    }

    #[test]
    fn relay_wavefront_covers_a_ring_and_reports_hops() {
        let n = 9;
        let mut sim = Simulation::builder(Topology::ring(n)).build_with(|id| {
            let relay = if id.index() == 0 {
                Relay::source()
            } else {
                Relay::default()
            };
            Box::new(relay) as Box<dyn Process>
        });
        // Round 0 fires the source; the two wavefronts meet after the
        // eccentricity (floor(n/2)) more rounds.
        sim.run(n as u64 / 2 + 2);
        assert_eq!(relay_fired(&sim, 0..n), n);
        let max_hops = (0..n)
            .map(|i| sim.process_as::<Relay>(ProcessId(i)).unwrap().hops)
            .max()
            .unwrap();
        assert_eq!(max_hops, n as u64 / 2, "token travelled the eccentricity");
        // Everything has fired, so the system is fully quiescent.
        assert_eq!(sim.quiescent_processes(), n);
        assert_eq!(sim.pending_messages(), 0);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(MaxGossip::decode(&[1, 2, 3]), None);
        assert_eq!(MaxGossip::decode(&7u64.to_le_bytes()), Some(7));
    }

    #[test]
    fn agreed_is_false_for_non_gossiper() {
        let mut sim = Simulation::builder(Topology::complete(3))
            .build_with(|_| Box::new(Flood::default()) as Box<dyn Process>);
        sim.run(1);
        assert!(!gossip_agreed(&sim, 0..3));
    }
}

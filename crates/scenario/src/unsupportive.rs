//! The `unsupportive` suite: recovery under *recurring* corruption.
//!
//! The `stabilize` suite measures recovery from a single transient burst.
//! Dolev & Herman's "unsupportive environments" model (arXiv cs/0105013)
//! is harsher: faults keep re-firing while the system is still converging,
//! and the interesting quantity becomes the *critical re-fire frequency*
//! — the corruption period below which the system is re-corrupted faster
//! than it can recover and never stabilizes between bursts.
//!
//! This suite charts that frontier with the [`BfsTree`] spanning-tree
//! workload, whose recovery time has a *certified* topology bound
//! ([`certified_bound`], after Altisen & Bozga, arXiv 2502.17035) — so the
//! verdicts here check measured recoveries against a theorem instead of
//! merely plotting them. Two families of known diameter 4 (`ring(8)` and
//! `grid(3, 3)`) sweep corruption **period × intensity** via a single
//! recurring [`ScheduledAction::Corrupt`] entry
//! ([`Recurrence::Every`] — one schedule entry, re-armed lazily at fire
//! time), and the stabilization probe scores one episode per burst:
//!
//! * `period > certified_bound` — every episode recovers; each emits one
//!   `rounds_to_stabilize`, the verdict checks all of them against the
//!   bound, and `censored = 0`.
//! * `period ≲ recovery time` — episodes are squeezed shut while still
//!   illegal and **censored**; the verdict fails (exit code 2, tolerated
//!   by the tooling: a censored frontier point is the finding, not an
//!   error) and `legal_fraction` records how little availability
//!   survives sustained bursts.
//!
//! Render the frontier with
//! `scenario run --suite unsupportive --table rounds_to_stabilize`: the
//! `rate` column is the fraction of runs whose episodes all recovered
//! within the bound, and the percentiles aggregate per-episode recovery
//! times. `--events` + `scenario trace` shows the same story as
//! `LegalityFlip` runs between `corruption_applied` marks.

use std::sync::Arc;

use ga_simnet::prelude::*;

use crate::bfs::{bfs_tree_legal, certified_bound, BfsTree};
use crate::record::{RunRecord, Scenario, Verdict};
use crate::spec::{ScenarioSpec, TopologyFamily};
use crate::sweep::{expand_grid, ParamGrid};

/// The round the first burst fires at — late enough for the clean-start
/// tree to have converged, so episode 0 measures recovery, not initial
/// convergence.
pub const BURST_START: u64 = 8;

/// Last round (inclusive) a re-fire may be scheduled at: every period in
/// the grid gets at least three bursts inside the window.
pub const BURST_UNTIL: u64 = 38;

/// Round budget: the burst window plus a recovery tail longer than any
/// certified bound in the suite, so the *final* episode is never censored
/// by the budget — only by the next burst, which is the frontier.
const ROUND_BUDGET: u64 = 60;

/// Decorrelates this suite's corruption draws from every other family.
const SALT: u64 = 0xD01E_0BF5;

/// The corruption intensity knob `c ∈ (0, 1]`: scramble `ceil(c · n)`
/// seed-chosen registers and corrupt/drop each in-flight claim with
/// probability `c`. (The channel degradation is what makes a register
/// scramble observable to [`BfsTree`] at all — with the claims intact one
/// pulse re-adopts the pre-burst distances.)
fn corruption(n: usize, c: f64) -> CorruptionFamily {
    let k = ((c * n as f64).ceil() as usize).clamp(1, n);
    CorruptionFamily::intensity(k, c, SALT)
}

/// Axis lookup inside an [`expand_grid`] point.
fn param(point: &[(String, f64)], name: &str) -> f64 {
    point
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| *v)
        .expect("grid axis present")
}

/// The period × intensity grid. Periods straddle the certified bound
/// (6 rounds for both topologies): 2 and 4 re-fire faster than a full
/// recovery, 8 and 15 leave room — the censoring boundary between them is
/// the critical re-fire frequency the suite charts.
fn frontier_grid() -> ParamGrid {
    ParamGrid::new()
        .axis("period", [2.0, 4.0, 8.0, 15.0])
        .axis("c", [0.25, 1.0])
}

/// Verdict: every opened episode recovered between bursts *and* every
/// measured recovery sits within the certified topology bound.
fn certified_verdict(bound: u64) -> impl Fn(&Simulation, &RunRecord) -> Verdict + Clone {
    move |_sim: &Simulation, record: &RunRecord| {
        let within = record
            .metrics
            .iter()
            .filter(|(name, _)| name == "rounds_to_stabilize")
            .all(|(_, v)| *v <= bound as f64);
        Verdict::check(
            record.get_metric("censored") == Some(0.0),
            "every episode recovers before the next burst",
        )
        .and(Verdict::check(
            within,
            "every recovery within the certified bound",
        ))
    }
}

/// One frontier family over `topology` (a fixed graph of known diameter).
fn family(
    name: &'static str,
    family: TopologyFamily,
    topology: Topology,
) -> Vec<Arc<dyn Scenario>> {
    let bound = certified_bound(&topology)
        .expect("frontier topologies are connected and therefore have a certified bound");
    let n = topology.len();
    expand_grid(name, &frontier_grid(), move |point| {
        let period = param(point, "period") as u64;
        let c = param(point, "c");
        let recurrence = Recurrence::Every {
            period,
            until: BURST_UNTIL,
        };
        ScenarioSpec::new(name, family.clone(), |id, _| Box::new(BfsTree::new(id)))
            .schedule(Schedule::new().at(
                BURST_START,
                ScheduledAction::Corrupt(corruption(n, c), recurrence),
            ))
            .max_rounds(ROUND_BUDGET)
            .stabilization_episodes(recurrence.firing_rounds(BURST_START), bfs_tree_legal)
            .verdict(certified_verdict(bound))
    })
}

/// Every scenario of the `unsupportive` suite: the ring and grid frontier
/// families (2 × 8 grid points).
pub fn suite() -> Vec<Arc<dyn Scenario>> {
    let mut scenarios = family(
        "unsupportive_ring",
        TopologyFamily::Ring(8),
        Topology::ring(8),
    );
    scenarios.extend(family(
        "unsupportive_grid",
        TopologyFamily::Grid(3, 3),
        Topology::grid(3, 3),
    ));
    scenarios
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_shape() {
        let scenarios = suite();
        assert_eq!(
            scenarios.len(),
            16,
            "2 families × 4 periods × 2 intensities"
        );
        assert!(scenarios
            .iter()
            .any(|s| s.name() == "unsupportive_ring[period=2,c=1]"));
        assert!(scenarios
            .iter()
            .any(|s| s.name() == "unsupportive_grid[period=15,c=0.25]"));
    }

    #[test]
    fn slow_periods_pass_the_certified_bound_at_suite_seeds() {
        // period 15 > bound 6: every episode recovers and every recovery
        // is within the certified bound, at both default suite seeds.
        for scenario in suite() {
            if !scenario.name().contains("[period=15,") {
                continue;
            }
            for seed in [80, 81] {
                let r = scenario.run(seed);
                assert!(
                    r.verdict.passed(),
                    "{} seed {seed}: {:?}",
                    scenario.name(),
                    r.verdict
                );
                assert_eq!(r.get_metric("censored"), Some(0.0));
                let recoveries: Vec<f64> = r
                    .metrics
                    .iter()
                    .filter(|(n, _)| n == "rounds_to_stabilize")
                    .map(|(_, v)| *v)
                    .collect();
                assert_eq!(recoveries.len(), 3, "one per burst at 8, 23, 38");
                assert!(recoveries.iter().any(|&v| v > 0.0), "bursts actually hurt");
            }
        }
    }

    #[test]
    fn fast_periods_at_full_intensity_censor() {
        // period 2 at c = 1 re-corrupts faster than any recovery: the
        // squeezed episodes censor, the verdict fails (the charted
        // frontier) and availability collapses.
        for name in [
            "unsupportive_ring[period=2,c=1]",
            "unsupportive_grid[period=2,c=1]",
        ] {
            let scenario = suite()
                .into_iter()
                .find(|s| s.name() == name)
                .expect("grid point exists");
            let r = scenario.run(80);
            assert!(!r.verdict.passed(), "{name} must censor");
            assert!(r.get_metric("censored").unwrap() >= 10.0, "{r:?}");
            let legal = r.get_metric("legal_fraction").unwrap();
            assert!(
                legal < 0.5,
                "availability collapses under period 2: {legal}"
            );
        }
    }

    #[test]
    fn frontier_runs_are_pure_and_shard_invariant() {
        let scenario = suite()
            .into_iter()
            .find(|s| s.name() == "unsupportive_ring[period=4,c=1]")
            .unwrap();
        let a = scenario.run(80);
        assert_eq!(a, scenario.run(80), "pure in the seed");
        assert_eq!(a, scenario.run_sharded(80, 4), "shards never change it");
    }
}

//! §3.3 distributed-authority plays as scenario specs — the `authority`
//! suite.
//!
//! The fully distributed game authority (clock-scheduled BA activations,
//! commit/reveal plays, executive punishment —
//! [`game_authority::distributed`]) used to wire its own complete-graph
//! simulator, locking the paper's centerpiece out of the sweep/shard/
//! record machinery. Here every §3.3 play family is a [`ScenarioSpec`]:
//! the spec owns topology, delivery, churn schedule and run seed, and the
//! [`AuthorityCluster`] contributes only process construction. Stop and
//! verdict predicates are stated over the [`PlayRecord`]s the processors
//! accumulate, so `scenario run --suite authority --workers W --shards S`
//! produces byte-identical summaries at any `(W, S)`.
//!
//! Variants:
//!
//! * **honest** — all agents best-respond; plays complete foul-free and
//!   identically everywhere.
//! * **selfish_cluster** — two agents play worst responses (§3.2's foul);
//!   both are convicted in the first audited play and the survivors keep
//!   agreeing.
//! * **mute** — a lazy free-rider never commits; it is convicted
//!   immediately and play continues without it.
//! * **churn** — a scheduled disconnect silences an honest agent mid-play
//!   (it is convicted as absent, §3.3's dropped demand) and the survivors
//!   keep completing identical plays after the reconnect.
//! * **noise** — a simnet-level noise adversary, placed per seed by
//!   [`PlacementStrategy::RandomF`], spews random bytes instead of
//!   following the protocol; the authority convicts whichever position it
//!   landed on.

use std::sync::Arc;

use ga_game_theory::game::{ClosureGame, Game};
use ga_simnet::prelude::*;
use game_authority::distributed::{AgentMode, AuthorityCluster, AuthorityProcess, PlayRecord};

use crate::record::{Scenario, Verdict};
use crate::spec::{PlacementStrategy, Role, ScenarioSpec, TopologyFamily};

/// The n-agent, 2-resource congestion game every authority spec plays:
/// an agent's cost is the number of agents sharing its resource, so the
/// best response is always the less crowded resource. Shared with the
/// `stabilize` suite's authority-recovery port.
pub(crate) fn congestion(n: usize) -> Arc<dyn Game + Send + Sync> {
    Arc::new(ClosureGame::new(
        "authority-congestion",
        n,
        vec![2; n],
        |agent, p| {
            let mine = p.action(agent);
            p.actions().iter().filter(|&&a| a == mine).count() as f64
        },
    ))
}

/// Play records of processor `id`, if it runs the authority protocol
/// (`None` for simnet-level adversaries occupying the slot).
pub fn play_records(sim: &Simulation, id: usize) -> Option<&[PlayRecord]> {
    sim.process_as::<AuthorityProcess>(ProcessId(id))
        .map(AuthorityProcess::records)
}

/// Smallest completed-play count across the authority processors in
/// `ids` (non-authority slots are skipped).
pub fn min_plays(sim: &Simulation, ids: impl IntoIterator<Item = usize>) -> u64 {
    ids.into_iter()
        .filter_map(|id| play_records(sim, id))
        .map(|records| records.len() as u64)
        .min()
        .unwrap_or(0)
}

/// Whether the listed processors hold identical play-record sequences
/// (non-authority slots are skipped).
pub fn plays_agree(sim: &Simulation, ids: impl IntoIterator<Item = usize>) -> bool {
    let mut reference: Option<&[PlayRecord]> = None;
    for id in ids {
        let Some(records) = play_records(sim, id) else {
            continue;
        };
        if *reference.get_or_insert(records) != records {
            return false;
        }
    }
    true
}

/// The base spec for a cluster: complete graph, stop once every
/// authority processor finished `plays` plays, standard probe metrics
/// (`plays`, `punished`, `last_fouls` at the first authority slot).
fn authority_spec(name: &str, cluster: AuthorityCluster, plays: u64) -> ScenarioSpec {
    let n = cluster.n();
    let period = cluster.play_len();
    let factory = cluster.clone();
    ScenarioSpec::new_seeded(name, TopologyFamily::Complete(n), move |id, _n, seed| {
        factory.process(id.index(), seed)
    })
    .max_rounds(period * (plays + 2))
    .stop_when(move |sim| min_plays(sim, 0..n) >= plays)
    // Per-round observable: how many plays the slowest authority
    // processor has completed, sampled after every pulse (its mean rises
    // with play throughput — a run stalling mid-play shows up here even
    // when the final `plays` count looks healthy).
    .round_metric("live_plays", move |sim| min_plays(sim, 0..n) as f64)
    .probe(move |sim, record| {
        record.metric("plays", min_plays(sim, 0..n) as f64);
        if let Some(witness) = (0..n).find(|&id| play_records(sim, id).is_some()) {
            let p = sim
                .process_as::<AuthorityProcess>(ProcessId(witness))
                .expect("witness is an authority processor");
            let punished = p.punished().iter().filter(|&&p| p).count();
            record.metric("punished", punished as f64);
            let last_fouls = p.records().last().map_or(0, |rec| rec.fouls);
            record.metric("last_fouls", last_fouls as f64);
        }
    })
}

/// All agents honest: every play completes foul-free and identically.
fn honest() -> Arc<dyn Scenario> {
    let n = 4;
    Arc::new(
        authority_spec(
            "authority_honest",
            AuthorityCluster::new(congestion(n), 1),
            3,
        )
        .verdict(move |sim, record| {
            Verdict::check(record.stopped_at.is_some(), "3 plays within the budget")
                .and(Verdict::check(
                    plays_agree(sim, 0..n),
                    "identical play records everywhere",
                ))
                .and(Verdict::check(
                    play_records(sim, 0).is_some_and(|r| r.iter().all(|rec| rec.fouls == 0)),
                    "honest plays carry no fouls",
                ))
        }),
    )
}

/// §3.2's selfish cluster: agents 5 and 6 play worst responses. Play 0
/// has no previous outcome (no best-response obligation); play 1 exposes
/// and convicts both, and the five honest survivors keep agreeing.
///
/// Punishing an agent removes its clock claims too, so liveness needs
/// `punished ≤ f`: a cluster of two takes `f = 2`, hence `n = 7`.
fn selfish_cluster() -> Arc<dyn Scenario> {
    let n = 7;
    let cluster = AuthorityCluster::new(congestion(n), 2)
        .mode(5, AgentMode::WorstResponse)
        .mode(6, AgentMode::WorstResponse);
    Arc::new(
        authority_spec("authority_selfish_cluster", cluster, 3).verdict(move |sim, record| {
            let caught = play_records(sim, 0).is_some_and(|r| {
                r.len() >= 2 && r[0].fouls == 0 && r[1].fouls & 0b110_0000 == 0b110_0000
            });
            let survivors_clean = (0..5).all(|i| {
                sim.process_as::<AuthorityProcess>(ProcessId(i))
                    .is_some_and(|p| p.punished()[5] && p.punished()[6] && !p.punished()[i])
            });
            Verdict::check(record.stopped_at.is_some(), "3 plays within the budget")
                .and(Verdict::check(
                    caught,
                    "the cluster must be convicted in the first audited play",
                ))
                .and(Verdict::check(
                    survivors_clean,
                    "every survivor disconnects exactly the cluster",
                ))
                .and(Verdict::check(
                    plays_agree(sim, 0..n),
                    "identical play records everywhere",
                ))
        }),
    )
}

/// A lazy free-rider: participates in agreement but never commits or
/// reveals. Convicted as missing in play 0; the survivors play on.
fn mute() -> Arc<dyn Scenario> {
    let n = 4;
    let cluster = AuthorityCluster::new(congestion(n), 1).mode(3, AgentMode::Mute);
    Arc::new(
        authority_spec("authority_mute", cluster, 3).verdict(move |sim, record| {
            let records = play_records(sim, 0).unwrap_or(&[]);
            Verdict::check(record.stopped_at.is_some(), "3 plays within the budget")
                .and(Verdict::check(
                    records.first().is_some_and(|rec| rec.fouls & 0b1000 != 0),
                    "the mute agent is convicted in play 0",
                ))
                .and(Verdict::check(
                    records.last().is_some_and(|rec| rec.fouls & 0b0111 == 0),
                    "the survivors play on foul-free",
                ))
                .and(Verdict::check(
                    plays_agree(sim, 0..n),
                    "identical play records everywhere",
                ))
        }),
    )
}

/// Churn: a scheduled disconnect silences honest agent 3 during play 1,
/// so the executive drops its demand (it is convicted as absent) and the
/// survivors keep completing identical plays after the reconnect.
fn churn() -> Arc<dyn Scenario> {
    let n = 4;
    let cluster = AuthorityCluster::new(congestion(n), 1);
    let period = cluster.play_len();
    Arc::new(
        authority_spec("authority_churn", cluster, 4)
            .schedule(
                Schedule::new()
                    .at(period + 1, ScheduledAction::Disconnect(ProcessId(3)))
                    .at(
                        period * 2 + 1,
                        ScheduledAction::Reconnect(ProcessId(3), (0..3).map(ProcessId).collect()),
                    ),
            )
            .stop_when(move |sim| min_plays(sim, 0..3) >= 4)
            .verdict(move |sim, record| {
                let convicted = (0..3).all(|i| {
                    sim.process_as::<AuthorityProcess>(ProcessId(i))
                        .is_some_and(|p| p.punished()[3] && !p.punished()[i])
                });
                Verdict::check(record.stopped_at.is_some(), "4 plays within the budget")
                    .and(Verdict::check(
                        convicted,
                        "the disconnected agent's demand is dropped (convicted as absent)",
                    ))
                    .and(Verdict::check(
                        plays_agree(sim, 0..3),
                        "the survivors agree on every play",
                    ))
            }),
    )
}

/// A simnet-level noise adversary — random bytes, no protocol — placed
/// per run seed by [`PlacementStrategy::RandomF`], so one spec covers
/// the whole adversary-position family. The honest majority convicts
/// whichever position it landed on.
fn noise() -> Arc<dyn Scenario> {
    let n = 4;
    let cluster = AuthorityCluster::new(congestion(n), 1);
    Arc::new(
        authority_spec("authority_noise", cluster, 3)
            .place(PlacementStrategy::RandomF {
                f: 1,
                role: Role::Noise { max_len: 24 },
            })
            .verdict(move |sim, record| {
                let Some(noisy) = (0..n).find(|&id| play_records(sim, id).is_none()) else {
                    return Verdict::Fail("no noise slot placed".into());
                };
                let honest: Vec<usize> = (0..n).filter(|&id| id != noisy).collect();
                let convicted = honest.iter().all(|&i| {
                    sim.process_as::<AuthorityProcess>(ProcessId(i))
                        .is_some_and(|p| p.punished()[noisy] && !p.punished()[i])
                });
                Verdict::check(record.stopped_at.is_some(), "3 plays within the budget")
                    .and(Verdict::check(
                        convicted,
                        "the noise position is convicted wherever it lands",
                    ))
                    .and(Verdict::check(
                        plays_agree(sim, honest.iter().copied()),
                        "the honest majority agrees on every play",
                    ))
            }),
    )
}

/// The `authority` suite: every §3.3 play family as a spec.
pub fn suite() -> Vec<Arc<dyn Scenario>> {
    vec![honest(), selfish_cluster(), mute(), churn(), noise()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_passes_across_seeds() {
        for scenario in suite() {
            for seed in [40, 41] {
                let record = scenario.run(seed);
                assert!(
                    record.verdict.passed(),
                    "{} failed at seed {seed}: {:?}",
                    scenario.name(),
                    record.verdict
                );
                assert!(record.get_metric("plays").unwrap_or(0.0) >= 3.0);
            }
        }
    }

    #[test]
    fn records_are_shard_invariant() {
        // The authority's per-process randomness is all (seed, id, round)
        // derived, so intra-run sharding must not change a single play.
        for scenario in suite() {
            let serial = scenario.run_sharded(40, 1);
            for shards in [2, 4] {
                assert_eq!(
                    scenario.run_sharded(40, shards),
                    serial,
                    "{} diverged at {shards} shards",
                    scenario.name()
                );
            }
        }
    }

    #[test]
    fn helpers_skip_non_authority_slots() {
        let spec = ScenarioSpec::new("helper_probe", TopologyFamily::Complete(3), |_, _| {
            Box::new(crate::workload::Flood::default())
        })
        .max_rounds(2)
        .probe(|sim, r| {
            r.metric("min_plays", min_plays(sim, 0..3) as f64);
            r.metric("agree", f64::from(plays_agree(sim, 0..3)));
        });
        let record = spec.run(0);
        assert_eq!(record.get_metric("min_plays"), Some(0.0));
        assert_eq!(record.get_metric("agree"), Some(1.0), "vacuously true");
    }
}
